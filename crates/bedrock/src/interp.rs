//! Big-step interpreter for Bedrock2 (the paper's `σ_T`).
//!
//! Execution is fuel-indexed: every loop iteration and function call
//! consumes one unit of fuel, and running out of fuel is an error. A
//! successful run within finite fuel therefore witnesses termination, which
//! is how this crate mirrors Bedrock2's total-correctness semantics ("the
//! semantics only give meaning to terminating loops", Box 2).

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BExpr, BFunction, Cmd, Program};
use crate::mem::{MemAccessError, Memory};

/// An entry of the event trace: one external interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Action name.
    pub action: String,
    /// Argument words passed to the environment.
    pub args: Vec<u64>,
    /// Response words returned by the environment.
    pub rets: Vec<u64>,
}

/// Handler giving meaning to `Interact` commands.
///
/// The handler plays the role of the external world in Bedrock2's semantics:
/// it receives the action name and argument words and returns the response
/// words (which the interpreter then records on the trace).
pub trait ExternalHandler {
    /// Performs the interaction.
    ///
    /// # Errors
    ///
    /// Returns a message when the action is unknown or the environment
    /// cannot satisfy it (e.g. reading from an exhausted input stream).
    fn interact(&mut self, action: &str, args: &[u64], mem: &mut Memory)
        -> Result<Vec<u64>, String>;
}

/// An [`ExternalHandler`] that rejects every interaction; suitable for pure
/// programs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoExternals;

impl ExternalHandler for NoExternals {
    fn interact(
        &mut self,
        action: &str,
        _args: &[u64],
        _mem: &mut Memory,
    ) -> Result<Vec<u64>, String> {
        Err(format!("no external handler for action `{action}`"))
    }
}

/// Observer invoked each time a `while` loop is about to test its
/// condition.
///
/// The trusted checker in `rupicola-core` uses this to validate inferred
/// loop invariants (§3.4.2) *at runtime*: at every loop head it recomputes
/// the closed-form partial-execution term for the current iteration and
/// compares it against the actual locals and memory.
pub trait LoopHook {
    /// Called at a loop head, before the condition is evaluated.
    ///
    /// # Errors
    ///
    /// Returning an error aborts execution (reported as
    /// [`ExecError::HookFailure`]).
    fn at_loop_head(
        &mut self,
        function: &str,
        cond: &BExpr,
        locals: &Locals,
        mem: &Memory,
    ) -> Result<(), String>;
}

/// A [`LoopHook`] that observes nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoHook;

impl LoopHook for NoHook {
    fn at_loop_head(
        &mut self,
        _function: &str,
        _cond: &BExpr,
        _locals: &Locals,
        _mem: &Memory,
    ) -> Result<(), String> {
        Ok(())
    }
}

/// A queue-backed handler for the `io_read` / `io_write` / `writer_tell`
/// actions that Rupicola's monadic extensions compile to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct QueueIo {
    /// Words served to `io_read`, front first.
    pub input: std::collections::VecDeque<u64>,
}

impl QueueIo {
    /// Creates a handler with the given input stream.
    pub fn new<I: IntoIterator<Item = u64>>(input: I) -> Self {
        QueueIo { input: input.into_iter().collect() }
    }
}

impl ExternalHandler for QueueIo {
    fn interact(
        &mut self,
        action: &str,
        args: &[u64],
        _mem: &mut Memory,
    ) -> Result<Vec<u64>, String> {
        match action {
            "io_read" => {
                let w = self.input.pop_front().ok_or("io input exhausted")?;
                Ok(vec![w])
            }
            "io_write" | "writer_tell" => {
                if args.len() != 1 {
                    return Err(format!("{action} expects 1 argument"));
                }
                Ok(vec![])
            }
            other => Err(format!("no external handler for action `{other}`")),
        }
    }
}

/// Errors of Bedrock2 execution (stuck states of the semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Fuel exhausted: the execution did not terminate within the bound.
    OutOfFuel,
    /// A read of an unbound local.
    UndefinedVariable(String),
    /// An invalid memory access.
    Memory(MemAccessError),
    /// A call to an unknown function.
    UnknownFunction(String),
    /// A reference to an unknown inline table.
    UnknownTable(String),
    /// An inline-table access out of bounds.
    TableOutOfBounds {
        /// Table name.
        table: String,
        /// Byte offset used.
        offset: u64,
        /// Table length in bytes.
        len: u64,
    },
    /// Call or interact arity mismatch.
    ArityMismatch {
        /// What was called.
        name: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        found: usize,
    },
    /// An external interaction failed.
    External(String),
    /// A `stackalloc` body freed or resized its own allocation.
    StackDiscipline(String),
    /// A loop-head hook (e.g. an invariant check) rejected the state.
    HookFailure(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "out of fuel (possible nontermination)"),
            ExecError::UndefinedVariable(v) => write!(f, "undefined local `{v}`"),
            ExecError::Memory(e) => write!(f, "{e}"),
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::UnknownTable(n) => write!(f, "unknown inline table `{n}`"),
            ExecError::TableOutOfBounds { table, offset, len } => {
                write!(f, "inline table `{table}`: offset {offset} out of bounds for {len} bytes")
            }
            ExecError::ArityMismatch { name, expected, found } => {
                write!(f, "`{name}` expects {expected} values, got {found}")
            }
            ExecError::External(m) => write!(f, "external interaction failed: {m}"),
            ExecError::StackDiscipline(m) => write!(f, "stack discipline violation: {m}"),
            ExecError::HookFailure(m) => write!(f, "loop hook failed: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MemAccessError> for ExecError {
    fn from(e: MemAccessError) -> Self {
        ExecError::Memory(e)
    }
}

/// A microarchitectural observation log: what a timing attacker sees.
///
/// The standard constant-time leakage model exposes the sequence of
/// branch decisions (control flow drives the instruction cache and the
/// branch predictor) and the sequence of memory addresses touched (the
/// data cache), but not the *values* read or written. Two executions with
/// identical logs are indistinguishable to such an attacker; the
/// secret-independence property tested in the workspace root is exactly
/// "logs agree across inputs differing only in secrets".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CtLog {
    /// Every branch decision, in evaluation order: `If` conditions and
    /// each `While` condition test (`true` = taken / loop entered).
    pub branches: Vec<bool>,
    /// Every address touched, in evaluation order: load addresses, store
    /// addresses, and inline-table byte offsets.
    pub addrs: Vec<u64>,
}

impl CtLog {
    fn branch(log: &mut Option<CtLog>, taken: bool) {
        if let Some(log) = log.as_mut() {
            log.branches.push(taken);
        }
    }

    fn addr(log: &mut Option<CtLog>, a: u64) {
        if let Some(log) = log.as_mut() {
            log.addrs.push(a);
        }
    }
}

/// The mutable machine state threaded through execution: memory plus the
/// event trace. (Locals are per-call and live in the interpreter frames.)
#[derive(Debug)]
pub struct ExecState {
    /// The heap.
    pub mem: Memory,
    /// The event trace, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Byte used to fill fresh `stackalloc` regions. Bedrock2 leaves their
    /// initial contents unspecified; the validator runs programs under two
    /// different poisons to detect code that depends on them.
    pub stack_poison: u8,
    /// Fuel units consumed so far (one per function call and per loop
    /// iteration). Callers that retry with escalated fuel read this to
    /// distinguish "needed a little more" from "diverges".
    pub fuel_used: u64,
    /// When `Some`, every branch decision and memory address is recorded
    /// (see [`CtLog`]). `None` by default: recording is opt-in so the
    /// hot differential paths pay nothing.
    pub ct_log: Option<CtLog>,
}

impl Default for ExecState {
    fn default() -> Self {
        ExecState::new(Memory::new())
    }
}

impl ExecState {
    /// Creates a state with the given memory, an empty trace and the
    /// default poison byte `0xAA`.
    pub fn new(mem: Memory) -> Self {
        ExecState { mem, trace: Vec::new(), stack_poison: 0xAA, fuel_used: 0, ct_log: None }
    }

    /// Sets the stack poison byte (builder style).
    #[must_use]
    pub fn with_stack_poison(mut self, poison: u8) -> Self {
        self.stack_poison = poison;
        self
    }

    /// Enables branch/address recording (builder style).
    #[must_use]
    pub fn with_ct_log(mut self) -> Self {
        self.ct_log = Some(CtLog::default());
        self
    }
}

/// Per-call locals map.
pub type Locals = HashMap<String, u64>;

/// The Bedrock2 interpreter, borrowing the program it executes.
#[derive(Debug, Clone, Copy)]
pub struct Interpreter<'p> {
    program: &'p Program,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter over `program`.
    pub fn new(program: &'p Program) -> Self {
        Interpreter { program }
    }

    /// Calls a function by name with argument words, returning its result
    /// words.
    ///
    /// # Errors
    ///
    /// Any stuck state of the semantics ([`ExecError`]), including fuel
    /// exhaustion.
    pub fn call(
        &self,
        name: &str,
        args: &[u64],
        state: &mut ExecState,
        externals: &mut dyn ExternalHandler,
        fuel: u64,
    ) -> Result<Vec<u64>, ExecError> {
        self.call_with_hook(name, args, state, externals, fuel, &mut NoHook)
    }

    /// Like [`Interpreter::call`], but invokes `hook` at every loop head.
    ///
    /// # Errors
    ///
    /// As [`Interpreter::call`]; additionally fails with
    /// [`ExecError::HookFailure`] when the hook rejects a state.
    pub fn call_with_hook(
        &self,
        name: &str,
        args: &[u64],
        state: &mut ExecState,
        externals: &mut dyn ExternalHandler,
        fuel: u64,
        hook: &mut dyn LoopHook,
    ) -> Result<Vec<u64>, ExecError> {
        let mut fuel = fuel;
        self.call_internal(name, args, state, externals, &mut fuel, hook)
    }

    /// Like [`Interpreter::call`], but also returns the top frame's final
    /// locals map. Differential harnesses (the optimization validator, the
    /// equivalence battery) use this to compare *all* observable state of
    /// two bodies, not just the declared returns.
    ///
    /// # Errors
    ///
    /// As [`Interpreter::call`].
    pub fn call_with_locals(
        &self,
        name: &str,
        args: &[u64],
        state: &mut ExecState,
        externals: &mut dyn ExternalHandler,
        fuel: u64,
    ) -> Result<(Vec<u64>, Locals), ExecError> {
        let f = self
            .program
            .function(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        if args.len() != f.args.len() {
            return Err(ExecError::ArityMismatch {
                name: name.to_string(),
                expected: f.args.len(),
                found: args.len(),
            });
        }
        let mut fuel = fuel;
        if fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        fuel -= 1;
        state.fuel_used += 1;
        let mut locals = Locals::new();
        for (p, a) in f.args.iter().zip(args) {
            locals.insert(p.clone(), *a);
        }
        self.exec(f, &f.body, &mut locals, state, externals, &mut fuel, &mut NoHook)?;
        let mut rets = Vec::with_capacity(f.rets.len());
        for r in &f.rets {
            rets.push(
                *locals
                    .get(r)
                    .ok_or_else(|| ExecError::UndefinedVariable(r.clone()))?,
            );
        }
        Ok((rets, locals))
    }

    fn call_internal(
        &self,
        name: &str,
        args: &[u64],
        state: &mut ExecState,
        externals: &mut dyn ExternalHandler,
        fuel: &mut u64,
        hook: &mut dyn LoopHook,
    ) -> Result<Vec<u64>, ExecError> {
        let f = self
            .program
            .function(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        if args.len() != f.args.len() {
            return Err(ExecError::ArityMismatch {
                name: name.to_string(),
                expected: f.args.len(),
                found: args.len(),
            });
        }
        if *fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        *fuel -= 1;
        state.fuel_used += 1;
        let mut locals = Locals::new();
        for (p, a) in f.args.iter().zip(args) {
            locals.insert(p.clone(), *a);
        }
        self.exec(f, &f.body, &mut locals, state, externals, fuel, hook)?;
        let mut rets = Vec::with_capacity(f.rets.len());
        for r in &f.rets {
            rets.push(
                *locals
                    .get(r)
                    .ok_or_else(|| ExecError::UndefinedVariable(r.clone()))?,
            );
        }
        Ok(rets)
    }

    /// Evaluates an expression in the context of function `f` (for inline
    /// tables) and the given locals.
    pub fn eval_expr(
        &self,
        f: &BFunction,
        e: &BExpr,
        locals: &Locals,
        mem: &Memory,
    ) -> Result<u64, ExecError> {
        self.eval_expr_log(f, e, locals, mem, &mut None)
    }

    /// [`Interpreter::eval_expr`], recording load addresses and table
    /// offsets into `log` when enabled.
    fn eval_expr_log(
        &self,
        f: &BFunction,
        e: &BExpr,
        locals: &Locals,
        mem: &Memory,
        log: &mut Option<CtLog>,
    ) -> Result<u64, ExecError> {
        match e {
            BExpr::Lit(w) => Ok(*w),
            BExpr::Var(v) => locals
                .get(v)
                .copied()
                .ok_or_else(|| ExecError::UndefinedVariable(v.clone())),
            BExpr::Load(size, addr) => {
                let a = self.eval_expr_log(f, addr, locals, mem, log)?;
                CtLog::addr(log, a);
                Ok(mem.load(a, *size)?)
            }
            BExpr::InlineTable { size, table, index } => {
                let t = f
                    .table(table)
                    .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
                let off = self.eval_expr_log(f, index, locals, mem, log)?;
                CtLog::addr(log, off);
                let n = size.bytes();
                if off.checked_add(n).is_none_or(|end| end > t.data.len() as u64) {
                    return Err(ExecError::TableOutOfBounds {
                        table: table.clone(),
                        offset: off,
                        len: t.data.len() as u64,
                    });
                }
                let mut out = [0u8; 8];
                out[..n as usize]
                    .copy_from_slice(&t.data[off as usize..(off + n) as usize]);
                Ok(u64::from_le_bytes(out))
            }
            BExpr::Op(op, a, b) => {
                let va = self.eval_expr_log(f, a, locals, mem, log)?;
                let vb = self.eval_expr_log(f, b, locals, mem, log)?;
                Ok(op.eval(va, vb))
            }
        }
    }

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn exec(
        &self,
        f: &BFunction,
        cmd: &Cmd,
        locals: &mut Locals,
        state: &mut ExecState,
        externals: &mut dyn ExternalHandler,
        fuel: &mut u64,
        hook: &mut dyn LoopHook,
    ) -> Result<(), ExecError> {
        match cmd {
            Cmd::Skip => Ok(()),
            Cmd::Set(v, e) => {
                let w = self.eval_expr_log(f, e, locals, &state.mem, &mut state.ct_log)?;
                locals.insert(v.clone(), w);
                Ok(())
            }
            Cmd::Unset(v) => {
                locals.remove(v);
                Ok(())
            }
            Cmd::Store(size, addr, val) => {
                let a = self.eval_expr_log(f, addr, locals, &state.mem, &mut state.ct_log)?;
                let w = self.eval_expr_log(f, val, locals, &state.mem, &mut state.ct_log)?;
                CtLog::addr(&mut state.ct_log, a);
                state.mem.store(a, *size, w)?;
                Ok(())
            }
            Cmd::Seq(a, b) => {
                self.exec(f, a, locals, state, externals, fuel, hook)?;
                self.exec(f, b, locals, state, externals, fuel, hook)
            }
            Cmd::If { cond, then_, else_ } => {
                let c = self.eval_expr_log(f, cond, locals, &state.mem, &mut state.ct_log)?;
                CtLog::branch(&mut state.ct_log, c != 0);
                if c != 0 {
                    self.exec(f, then_, locals, state, externals, fuel, hook)
                } else {
                    self.exec(f, else_, locals, state, externals, fuel, hook)
                }
            }
            Cmd::While { cond, body } => {
                loop {
                    hook.at_loop_head(&f.name, cond, locals, &state.mem)
                        .map_err(ExecError::HookFailure)?;
                    let c = self.eval_expr_log(f, cond, locals, &state.mem, &mut state.ct_log)?;
                    CtLog::branch(&mut state.ct_log, c != 0);
                    if c == 0 {
                        return Ok(());
                    }
                    if *fuel == 0 {
                        return Err(ExecError::OutOfFuel);
                    }
                    *fuel -= 1;
                    state.fuel_used += 1;
                    self.exec(f, body, locals, state, externals, fuel, hook)?;
                }
            }
            Cmd::Call { rets, func, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_expr_log(f, a, locals, &state.mem, &mut state.ct_log)?);
                }
                let out = self.call_internal(func, &argv, state, externals, fuel, hook)?;
                if out.len() != rets.len() {
                    return Err(ExecError::ArityMismatch {
                        name: func.clone(),
                        expected: rets.len(),
                        found: out.len(),
                    });
                }
                for (r, w) in rets.iter().zip(out) {
                    locals.insert(r.clone(), w);
                }
                Ok(())
            }
            Cmd::Interact { rets, action, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_expr_log(f, a, locals, &state.mem, &mut state.ct_log)?);
                }
                let out = externals
                    .interact(action, &argv, &mut state.mem)
                    .map_err(ExecError::External)?;
                if out.len() != rets.len() {
                    return Err(ExecError::ArityMismatch {
                        name: action.clone(),
                        expected: rets.len(),
                        found: out.len(),
                    });
                }
                state.trace.push(TraceEvent {
                    action: action.clone(),
                    args: argv,
                    rets: out.clone(),
                });
                for (r, w) in rets.iter().zip(out) {
                    locals.insert(r.clone(), w);
                }
                Ok(())
            }
            Cmd::StackAlloc { var, nbytes, body } => {
                // Bedrock2 leaves the initial contents unspecified; the
                // poison byte makes accidental dependence detectable.
                let base = state.mem.alloc(vec![state.stack_poison; *nbytes as usize]);
                locals.insert(var.clone(), base);
                let result = self.exec(f, body, locals, state, externals, fuel, hook);
                match state.mem.dealloc(base) {
                    Some(_) => result,
                    None => Err(ExecError::StackDiscipline(format!(
                        "stack region {base:#x} was freed by the body"
                    ))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AccessSize as Sz, BTable, BinOp};

    fn run_fn(f: BFunction, args: &[u64], mem: Memory) -> Result<(Vec<u64>, ExecState), ExecError> {
        let name = f.name.clone();
        let mut p = Program::new();
        p.insert(f);
        let interp = Interpreter::new(&p);
        let mut state = ExecState::new(mem);
        let rets = interp.call(&name, args, &mut state, &mut NoExternals, 100_000)?;
        Ok((rets, state))
    }

    #[test]
    fn straightline_arithmetic() {
        let f = BFunction::new(
            "f",
            ["x"],
            ["y"],
            Cmd::set("y", BExpr::op(BinOp::Mul, BExpr::var("x"), BExpr::lit(3))),
        );
        let (rets, _) = run_fn(f, &[14], Memory::new()).unwrap();
        assert_eq!(rets, vec![42]);
    }

    #[test]
    fn while_loop_sums() {
        // acc = 0; i = 0; while (i < n) { acc += i; i += 1; }
        let body = Cmd::seq([
            Cmd::set("acc", BExpr::lit(0)),
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                Cmd::seq([
                    Cmd::set("acc", BExpr::op(BinOp::Add, BExpr::var("acc"), BExpr::var("i"))),
                    Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                ]),
            ),
        ]);
        let f = BFunction::new("sum", ["n"], ["acc"], body);
        let (rets, _) = run_fn(f, &[10], Memory::new()).unwrap();
        assert_eq!(rets, vec![45]);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let f = BFunction::new("spin", Vec::<String>::new(), Vec::<String>::new(),
            Cmd::while_(BExpr::lit(1), Cmd::Skip));
        assert_eq!(run_fn(f, &[], Memory::new()).unwrap_err(), ExecError::OutOfFuel);
    }

    #[test]
    fn loads_and_stores_hit_memory() {
        let mut mem = Memory::new();
        let p = mem.alloc(vec![1, 2, 3, 4]);
        // swap bytes 0 and 3
        let body = Cmd::seq([
            Cmd::set("a", BExpr::load(Sz::One, BExpr::var("p"))),
            Cmd::set(
                "b",
                BExpr::load(Sz::One, BExpr::op(BinOp::Add, BExpr::var("p"), BExpr::lit(3))),
            ),
            Cmd::store(Sz::One, BExpr::var("p"), BExpr::var("b")),
            Cmd::store(
                Sz::One,
                BExpr::op(BinOp::Add, BExpr::var("p"), BExpr::lit(3)),
                BExpr::var("a"),
            ),
        ]);
        let f = BFunction::new("swap", ["p"], Vec::<String>::new(), body);
        let (_, state) = run_fn(f, &[p], mem).unwrap();
        assert_eq!(state.mem.region(p).unwrap(), &[4, 2, 3, 1]);
    }

    #[test]
    fn oob_store_traps() {
        let mut mem = Memory::new();
        let p = mem.alloc(vec![0; 2]);
        let f = BFunction::new(
            "oob",
            ["p"],
            Vec::<String>::new(),
            Cmd::store(Sz::One, BExpr::op(BinOp::Add, BExpr::var("p"), BExpr::lit(2)), BExpr::lit(0)),
        );
        assert!(matches!(run_fn(f, &[p], mem), Err(ExecError::Memory(_))));
    }

    #[test]
    fn inline_table_lookup() {
        let f = BFunction::new(
            "nth",
            ["i"],
            ["x"],
            Cmd::set("x", BExpr::table(Sz::One, "t", BExpr::var("i"))),
        )
        .with_table(BTable { name: "t".into(), data: vec![10, 20, 30] });
        let (rets, _) = run_fn(f.clone(), &[2], Memory::new()).unwrap();
        assert_eq!(rets, vec![30]);
        assert!(matches!(
            run_fn(f, &[3], Memory::new()),
            Err(ExecError::TableOutOfBounds { .. })
        ));
    }

    #[test]
    fn calls_pass_args_and_rets() {
        let callee = BFunction::new(
            "inc",
            ["x"],
            ["y"],
            Cmd::set("y", BExpr::op(BinOp::Add, BExpr::var("x"), BExpr::lit(1))),
        );
        let caller = BFunction::new(
            "twice",
            ["x"],
            ["y"],
            Cmd::seq([
                Cmd::Call { rets: vec!["y".into()], func: "inc".into(), args: vec![BExpr::var("x")] },
                Cmd::Call { rets: vec!["y".into()], func: "inc".into(), args: vec![BExpr::var("y")] },
            ]),
        );
        let mut p = Program::new();
        p.insert(callee);
        p.insert(caller);
        let interp = Interpreter::new(&p);
        let mut state = ExecState::new(Memory::new());
        let rets = interp.call("twice", &[40], &mut state, &mut NoExternals, 1000).unwrap();
        assert_eq!(rets, vec![42]);
    }

    #[test]
    fn interact_records_trace() {
        let f = BFunction::new(
            "echo",
            Vec::<String>::new(),
            ["x"],
            Cmd::seq([
                Cmd::Interact { rets: vec!["x".into()], action: "io_read".into(), args: vec![] },
                Cmd::Interact { rets: vec![], action: "io_write".into(), args: vec![BExpr::var("x")] },
            ]),
        );
        let mut p = Program::new();
        p.insert(f);
        let interp = Interpreter::new(&p);
        let mut state = ExecState::new(Memory::new());
        let mut io = QueueIo::new([7]);
        let rets = interp.call("echo", &[], &mut state, &mut io, 1000).unwrap();
        assert_eq!(rets, vec![7]);
        assert_eq!(
            state.trace,
            vec![
                TraceEvent { action: "io_read".into(), args: vec![], rets: vec![7] },
                TraceEvent { action: "io_write".into(), args: vec![7], rets: vec![] },
            ]
        );
    }

    #[test]
    fn interact_without_handler_fails() {
        let f = BFunction::new(
            "bad",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::Interact { rets: vec![], action: "mystery".into(), args: vec![] },
        );
        assert!(matches!(run_fn(f, &[], Memory::new()), Err(ExecError::External(_))));
    }

    #[test]
    fn stackalloc_scopes_memory() {
        // Write into the scratch region; region must be gone afterwards.
        let body = Cmd::StackAlloc {
            var: "p".into(),
            nbytes: 8,
            body: Box::new(Cmd::seq([
                Cmd::store(Sz::Eight, BExpr::var("p"), BExpr::lit(99)),
                Cmd::set("x", BExpr::load(Sz::Eight, BExpr::var("p"))),
            ])),
        };
        let f = BFunction::new("scratch", Vec::<String>::new(), ["x"], body);
        let (rets, state) = run_fn(f, &[], Memory::new()).unwrap();
        assert_eq!(rets, vec![99]);
        assert_eq!(state.mem.region_count(), 0);
    }

    #[test]
    fn stackalloc_contents_are_poisoned_not_zero() {
        let body = Cmd::StackAlloc {
            var: "p".into(),
            nbytes: 1,
            body: Box::new(Cmd::set("x", BExpr::load(Sz::One, BExpr::var("p")))),
        };
        let f = BFunction::new("peek", Vec::<String>::new(), ["x"], body);
        let (rets, _) = run_fn(f, &[], Memory::new()).unwrap();
        assert_eq!(rets, vec![0xAA]);
    }

    #[test]
    fn unset_removes_locals() {
        let f = BFunction::new(
            "f",
            ["x"],
            ["x"],
            Cmd::Unset("x".into()),
        );
        assert!(matches!(
            run_fn(f, &[1], Memory::new()),
            Err(ExecError::UndefinedVariable(_))
        ));
    }

    #[test]
    fn unknown_function_and_arity() {
        let p = Program::new();
        let interp = Interpreter::new(&p);
        let mut state = ExecState::new(Memory::new());
        assert!(matches!(
            interp.call("nope", &[], &mut state, &mut NoExternals, 10),
            Err(ExecError::UnknownFunction(_))
        ));
    }
}
