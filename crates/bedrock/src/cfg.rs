//! A control-flow graph over [`Cmd`], for dataflow analyses.
//!
//! Bedrock2 commands are structured (no `goto`), so the CFG is computed by a
//! single syntactic walk: `Seq` extends the current block, `If` ends it with
//! a [`Terminator::Branch`] into two sub-chains that re-join, `While` becomes
//! a dedicated head block whose branch condition guards the body chain and
//! whose back edge returns to the head. `stackalloc` is linearized into an
//! [`Stmt::AllocEnter`]/[`Stmt::AllocExit`] bracket so analyses can model the
//! scratch region's lexical lifetime.
//!
//! Branch edges keep the branch condition (and polarity), which lets forward
//! analyses refine their state along each edge — the CFG analog of learning
//! `i < n` when entering a loop body.
//!
//! Every `Set` statement carries a `site` ordinal assigned in syntactic
//! order (the same order a plain left-to-right walk of the `Cmd` visits
//! assignments). [`remove_set_sites`] rewrites a command by that numbering,
//! so a client can compute a set of assignment sites on the CFG (e.g. dead
//! stores) and delete exactly those from the structured tree.

use crate::ast::{AccessSize, BExpr, Cmd};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// A straight-line statement inside a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = e`. `site` is the syntactic ordinal of this assignment in the
    /// original command (see [`remove_set_sites`]).
    Set {
        /// Assigned local.
        var: String,
        /// Right-hand side.
        expr: BExpr,
        /// Syntactic assignment ordinal.
        site: usize,
    },
    /// Removes a local from scope.
    Unset(String),
    /// `store<size>(addr, value)`.
    Store(AccessSize, BExpr, BExpr),
    /// A call to another function.
    Call {
        /// Variables receiving the results.
        rets: Vec<String>,
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<BExpr>,
    },
    /// An external interaction.
    Interact {
        /// Variables receiving the response words.
        rets: Vec<String>,
        /// Action name.
        action: String,
        /// Arguments.
        args: Vec<BExpr>,
    },
    /// Start of a `stackalloc` scope: `var` receives the base address of a
    /// fresh `nbytes`-byte scratch region. `site` numbers the allocation
    /// syntactically (loop iterations share a site).
    AllocEnter {
        /// Variable bound to the base address.
        var: String,
        /// Region size in bytes.
        nbytes: u64,
        /// Syntactic allocation ordinal.
        site: usize,
    },
    /// End of the `stackalloc` scope opened by the matching `site`: the
    /// region is freed and must no longer be accessed.
    AllocExit {
        /// The variable of the matching [`Stmt::AllocEnter`].
        var: String,
        /// Matching allocation ordinal.
        site: usize,
    },
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional transfer.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// The condition.
        cond: BExpr,
        /// Successor when the condition is nonzero.
        then_: BlockId,
        /// Successor when the condition is zero.
        else_: BlockId,
    },
    /// Function exit.
    Return,
}

/// A basic block: straight-line statements plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The statements, in execution order.
    pub stmts: Vec<Stmt>,
    /// How the block ends.
    pub term: Terminator,
}

/// A control-flow graph lowered from a [`Cmd`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// The blocks; [`BlockId`]s index into this vector.
    pub blocks: Vec<Block>,
    /// The unique entry block.
    pub entry: BlockId,
    /// The unique exit block (terminated by [`Terminator::Return`]).
    pub exit: BlockId,
}

struct Builder {
    blocks: Vec<Block>,
    set_sites: usize,
    alloc_sites: usize,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block { stmts: Vec::new(), term: Terminator::Return });
        self.blocks.len() - 1
    }

    /// Lowers `cmd`, appending to `cur`; returns the block where control
    /// continues afterwards.
    fn lower(&mut self, cmd: &Cmd, cur: BlockId) -> BlockId {
        match cmd {
            Cmd::Skip => cur,
            Cmd::Set(var, expr) => {
                let site = self.set_sites;
                self.set_sites += 1;
                self.blocks[cur].stmts.push(Stmt::Set {
                    var: var.clone(),
                    expr: expr.clone(),
                    site,
                });
                cur
            }
            Cmd::Unset(v) => {
                self.blocks[cur].stmts.push(Stmt::Unset(v.clone()));
                cur
            }
            Cmd::Store(size, addr, val) => {
                self.blocks[cur]
                    .stmts
                    .push(Stmt::Store(*size, addr.clone(), val.clone()));
                cur
            }
            Cmd::Seq(a, b) => {
                let mid = self.lower(a, cur);
                self.lower(b, mid)
            }
            Cmd::If { cond, then_, else_ } => {
                let t_entry = self.new_block();
                let t_exit = self.lower(then_, t_entry);
                let e_entry = self.new_block();
                let e_exit = self.lower(else_, e_entry);
                let join = self.new_block();
                self.blocks[cur].term = Terminator::Branch {
                    cond: cond.clone(),
                    then_: t_entry,
                    else_: e_entry,
                };
                self.blocks[t_exit].term = Terminator::Jump(join);
                self.blocks[e_exit].term = Terminator::Jump(join);
                join
            }
            Cmd::While { cond, body } => {
                let head = self.new_block();
                let b_entry = self.new_block();
                let b_exit = self.lower(body, b_entry);
                let after = self.new_block();
                self.blocks[cur].term = Terminator::Jump(head);
                self.blocks[head].term = Terminator::Branch {
                    cond: cond.clone(),
                    then_: b_entry,
                    else_: after,
                };
                self.blocks[b_exit].term = Terminator::Jump(head);
                after
            }
            Cmd::Call { rets, func, args } => {
                self.blocks[cur].stmts.push(Stmt::Call {
                    rets: rets.clone(),
                    func: func.clone(),
                    args: args.clone(),
                });
                cur
            }
            Cmd::Interact { rets, action, args } => {
                self.blocks[cur].stmts.push(Stmt::Interact {
                    rets: rets.clone(),
                    action: action.clone(),
                    args: args.clone(),
                });
                cur
            }
            Cmd::StackAlloc { var, nbytes, body } => {
                let site = self.alloc_sites;
                self.alloc_sites += 1;
                self.blocks[cur].stmts.push(Stmt::AllocEnter {
                    var: var.clone(),
                    nbytes: *nbytes,
                    site,
                });
                let exit = self.lower(body, cur);
                self.blocks[exit]
                    .stmts
                    .push(Stmt::AllocExit { var: var.clone(), site });
                exit
            }
        }
    }
}

impl Cfg {
    /// Lowers a command body into a CFG.
    pub fn build(body: &Cmd) -> Cfg {
        let mut b = Builder { blocks: Vec::new(), set_sites: 0, alloc_sites: 0 };
        let entry = b.new_block();
        let exit = b.lower(body, entry);
        b.blocks[exit].term = Terminator::Return;
        Cfg { blocks: b.blocks, entry, exit }
    }

    /// The successor blocks of `b`, in edge order.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match &self.blocks[b].term {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Return => vec![],
        }
    }

    /// Predecessor lists, indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in 0..self.blocks.len() {
            for s in self.successors(b) {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Blocks in reverse postorder from the entry (a good iteration order
    /// for forward analyses). Unreachable blocks are excluded.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit "children done" marker.
        let mut stack = vec![(self.entry, false)];
        while let Some((b, children_done)) = stack.pop() {
            if children_done {
                post.push(b);
                continue;
            }
            if visited[b] {
                continue;
            }
            visited[b] = true;
            stack.push((b, true));
            for s in self.successors(b).into_iter().rev() {
                if !visited[s] {
                    stack.push((s, false));
                }
            }
        }
        post.reverse();
        post
    }
}

/// Rewrites `body`, deleting the `Set` statements whose syntactic ordinal
/// (the `site` numbering of [`Cfg::build`]) is in `sites`. Used to strip
/// dead stores flagged by a liveness analysis.
pub fn remove_set_sites(body: &Cmd, sites: &std::collections::BTreeSet<usize>) -> Cmd {
    fn go(cmd: &Cmd, next: &mut usize, sites: &std::collections::BTreeSet<usize>) -> Cmd {
        match cmd {
            Cmd::Set(v, e) => {
                let site = *next;
                *next += 1;
                if sites.contains(&site) {
                    Cmd::Skip
                } else {
                    Cmd::Set(v.clone(), e.clone())
                }
            }
            Cmd::Skip | Cmd::Unset(_) | Cmd::Store(..) | Cmd::Call { .. } | Cmd::Interact { .. } => {
                cmd.clone()
            }
            Cmd::Seq(a, b) => {
                let a = go(a, next, sites);
                let b = go(b, next, sites);
                Cmd::Seq(Box::new(a), Box::new(b))
            }
            Cmd::If { cond, then_, else_ } => {
                let t = go(then_, next, sites);
                let e = go(else_, next, sites);
                Cmd::If { cond: cond.clone(), then_: Box::new(t), else_: Box::new(e) }
            }
            Cmd::While { cond, body } => {
                let b = go(body, next, sites);
                Cmd::While { cond: cond.clone(), body: Box::new(b) }
            }
            Cmd::StackAlloc { var, nbytes, body } => Cmd::StackAlloc {
                var: var.clone(),
                nbytes: *nbytes,
                body: Box::new(go(body, next, sites)),
            },
        }
    }
    let mut next = 0;
    go(body, &mut next, sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    fn counted_loop() -> Cmd {
        // i = 0; while (i < n) { acc = acc + i; i = i + 1; } out = acc
        Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                Cmd::seq([
                    Cmd::set("acc", BExpr::op(BinOp::Add, BExpr::var("acc"), BExpr::var("i"))),
                    Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                ]),
            ),
            Cmd::set("out", BExpr::var("acc")),
        ])
    }

    #[test]
    fn loop_gets_head_body_and_after_blocks() {
        let cfg = Cfg::build(&counted_loop());
        // entry -> head -(true)-> body -> head -(false)-> after(exit)
        let preds = cfg.predecessors();
        let head = match &cfg.blocks[cfg.entry].term {
            Terminator::Jump(h) => *h,
            other => panic!("entry should jump to the loop head, got {other:?}"),
        };
        assert!(matches!(cfg.blocks[head].term, Terminator::Branch { .. }));
        // The head has two predecessors: the entry and the body (back edge).
        assert_eq!(preds[head].len(), 2);
        assert!(matches!(cfg.blocks[cfg.exit].term, Terminator::Return));
    }

    #[test]
    fn if_rejoins() {
        let c = Cmd::if_(
            BExpr::var("c"),
            Cmd::set("x", BExpr::lit(1)),
            Cmd::set("x", BExpr::lit(2)),
        );
        let cfg = Cfg::build(&c);
        let preds = cfg.predecessors();
        // The join block (exit) has both branch arms as predecessors.
        assert_eq!(preds[cfg.exit].len(), 2);
    }

    #[test]
    fn set_sites_follow_syntactic_order() {
        let cfg = Cfg::build(&counted_loop());
        let mut sites = Vec::new();
        for b in cfg.reverse_postorder() {
            for s in &cfg.blocks[b].stmts {
                if let Stmt::Set { var, site, .. } = s {
                    sites.push((*site, var.clone()));
                }
            }
        }
        sites.sort();
        let names: Vec<_> = sites.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(names, vec!["i", "acc", "i", "out"]);
    }

    #[test]
    fn remove_set_sites_deletes_by_ordinal() {
        let body = counted_loop();
        // Site 1 is `acc = acc + i` (the first body statement).
        let stripped = remove_set_sites(&body, &[1usize].into_iter().collect());
        assert_eq!(stripped.statement_count(), body.statement_count() - 1);
        // Unrelated sites survive.
        let cfg = Cfg::build(&stripped);
        let all: Vec<_> = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .filter_map(|s| match s {
                Stmt::Set { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        assert!(all.contains(&"out".to_string()));
        assert!(!all.iter().any(|v| v == "acc"));
    }

    #[test]
    fn stackalloc_brackets_share_a_site() {
        let c = Cmd::StackAlloc {
            var: "p".into(),
            nbytes: 16,
            body: Box::new(Cmd::set("x", BExpr::lit(0))),
        };
        let cfg = Cfg::build(&c);
        let stmts = &cfg.blocks[cfg.entry].stmts;
        assert!(matches!(stmts[0], Stmt::AllocEnter { site: 0, .. }));
        assert!(matches!(stmts[2], Stmt::AllocExit { site: 0, .. }));
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let cfg = Cfg::build(&counted_loop());
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry);
        assert_eq!(rpo.len(), cfg.blocks.len());
    }
}
