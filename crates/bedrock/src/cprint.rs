//! Pretty-printer from Bedrock2 to C.
//!
//! Mirrors Bedrock2's `ToCString.v`: "a very small program … that is
//! essentially implementing an identity function" (§4.3). The output is
//! self-contained C11 relying only on `<stdint.h>`: locals are `uintptr_t`,
//! loads and stores go through casts, and inline tables become `static
//! const` arrays.

use std::fmt::Write as _;

use crate::ast::{AccessSize, BExpr, BFunction, BinOp, Cmd, Program};

/// Renders a whole program: a preamble plus every function, in name order.
pub fn program_to_c(p: &Program) -> String {
    let mut out = String::from("#include <stdint.h>\n#include <stddef.h>\n\n");
    for f in p.iter() {
        out.push_str(&function_to_c(f));
        out.push('\n');
    }
    out
}

/// Renders one function.
///
/// Functions with zero returns become `void`; one return becomes
/// `uintptr_t`; Bedrock2 functions with more returns are printed with an
/// out-parameter per extra return, following the convention of Bedrock2's
/// own printer.
pub fn function_to_c(f: &BFunction) -> String {
    let mut out = String::new();
    let ret_ty = match f.rets.len() {
        0 => "void",
        _ => "uintptr_t",
    };
    let mut params: Vec<String> = f.args.iter().map(|a| format!("uintptr_t {a}")).collect();
    for extra in f.rets.iter().skip(1) {
        params.push(format!("uintptr_t *out_{extra}"));
    }
    let params = if params.is_empty() { "void".to_string() } else { params.join(", ") };
    let _ = writeln!(out, "{ret_ty} {}({params}) {{", f.name);
    for t in &f.tables {
        let items: Vec<String> = t.data.iter().map(|b| format!("0x{b:02x}")).collect();
        let _ = writeln!(
            out,
            "  static const uint8_t {}[{}] = {{{}}};",
            t.name,
            t.data.len(),
            items.join(", ")
        );
    }
    // Declare every assigned local that is not a parameter.
    for v in f.body.assigned_vars() {
        if !f.args.contains(&v) {
            let _ = writeln!(out, "  uintptr_t {v} = 0;");
        }
    }
    print_cmd(&mut out, &f.body, 1);
    match f.rets.len() {
        0 => {}
        _ => {
            for extra in f.rets.iter().skip(1) {
                let _ = writeln!(out, "  *out_{extra} = {extra};");
            }
            let _ = writeln!(out, "  return {};", f.rets[0]);
        }
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn load_cast(size: AccessSize) -> &'static str {
    match size {
        AccessSize::One => "uint8_t",
        AccessSize::Two => "uint16_t",
        AccessSize::Four => "uint32_t",
        AccessSize::Eight => "uint64_t",
    }
}

/// Renders an expression.
pub fn expr_to_c(e: &BExpr) -> String {
    match e {
        BExpr::Lit(w) => {
            if *w > i64::MAX as u64 {
                format!("(uintptr_t)0x{w:x}ULL")
            } else {
                format!("(uintptr_t){w}ULL")
            }
        }
        BExpr::Var(v) => v.clone(),
        BExpr::Load(size, addr) => {
            format!("(uintptr_t)(*({}*)({}))", load_cast(*size), expr_to_c(addr))
        }
        BExpr::InlineTable { size, table, index } => match size {
            AccessSize::One => format!("(uintptr_t){table}[{}]", expr_to_c(index)),
            _ => format!(
                "(uintptr_t)(*({}*)&{table}[{}])",
                load_cast(*size),
                expr_to_c(index)
            ),
        },
        BExpr::Op(op, a, b) => {
            let (sa, sb) = (expr_to_c(a), expr_to_c(b));
            match op {
                BinOp::MulHuu => format!(
                    "(uintptr_t)(((unsigned __int128)({sa}) * (unsigned __int128)({sb})) >> 64)"
                ),
                BinOp::DivU => format!("(({sb}) == 0 ? (uintptr_t)-1 : ({sa}) / ({sb}))"),
                BinOp::RemU => format!("(({sb}) == 0 ? ({sa}) : ({sa}) % ({sb}))"),
                BinOp::Sru => format!("(({sa}) >> (({sb}) & 63))"),
                BinOp::Slu => format!("(({sa}) << (({sb}) & 63))"),
                BinOp::Srs => format!("((uintptr_t)((intptr_t)({sa}) >> (({sb}) & 63)))"),
                BinOp::LtS => format!("((uintptr_t)((intptr_t)({sa}) < (intptr_t)({sb})))"),
                BinOp::LtU | BinOp::Eq => {
                    format!("((uintptr_t)(({sa}) {} ({sb})))", op.c_symbol())
                }
                _ => format!("(({sa}) {} ({sb}))", op.c_symbol()),
            }
        }
    }
}

fn print_cmd(out: &mut String, cmd: &Cmd, level: usize) {
    match cmd {
        Cmd::Skip => {}
        Cmd::Set(v, e) => {
            indent(out, level);
            let _ = writeln!(out, "{v} = {};", expr_to_c(e));
        }
        Cmd::Unset(v) => {
            indent(out, level);
            let _ = writeln!(out, "/* unset {v} */");
        }
        Cmd::Store(size, addr, val) => {
            indent(out, level);
            let _ = writeln!(
                out,
                "*({}*)({}) = ({})({});",
                load_cast(*size),
                expr_to_c(addr),
                load_cast(*size),
                expr_to_c(val)
            );
        }
        Cmd::Seq(a, b) => {
            print_cmd(out, a, level);
            print_cmd(out, b, level);
        }
        Cmd::If { cond, then_, else_ } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", expr_to_c(cond));
            print_cmd(out, then_, level + 1);
            if !matches!(**else_, Cmd::Skip) {
                indent(out, level);
                out.push_str("} else {\n");
                print_cmd(out, else_, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Cmd::While { cond, body } => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) {{", expr_to_c(cond));
            print_cmd(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        Cmd::Call { rets, func, args } => {
            indent(out, level);
            let argv: Vec<String> = args.iter().map(expr_to_c).collect();
            match rets.len() {
                0 => {
                    let _ = writeln!(out, "{func}({});", argv.join(", "));
                }
                1 => {
                    let _ = writeln!(out, "{} = {func}({});", rets[0], argv.join(", "));
                }
                _ => {
                    let extra: Vec<String> =
                        rets.iter().skip(1).map(|r| format!("&{r}")).collect();
                    let _ = writeln!(
                        out,
                        "{} = {func}({}, {});",
                        rets[0],
                        argv.join(", "),
                        extra.join(", ")
                    );
                }
            }
        }
        Cmd::Interact { rets, action, args } => {
            indent(out, level);
            let argv: Vec<String> = args.iter().map(expr_to_c).collect();
            match rets.len() {
                0 => {
                    let _ = writeln!(out, "{action}({});", argv.join(", "));
                }
                1 => {
                    let _ = writeln!(out, "{} = {action}({});", rets[0], argv.join(", "));
                }
                _ => {
                    let _ = writeln!(out, "/* interact {action} */");
                }
            }
        }
        Cmd::StackAlloc { var, nbytes, body } => {
            indent(out, level);
            out.push_str("{\n");
            indent(out, level + 1);
            let _ = writeln!(out, "uint8_t {var}_buf[{nbytes}];");
            indent(out, level + 1);
            let _ = writeln!(out, "{var} = (uintptr_t){var}_buf;");
            print_cmd(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AccessSize as Sz, BTable};

    fn upstr_like() -> BFunction {
        // while (i < len) { store1(s+i, load1(s+i) | 0x20); i++ }
        let body = Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("len")),
                Cmd::seq([
                    Cmd::store(
                        Sz::One,
                        BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i")),
                        BExpr::op(
                            BinOp::Or,
                            BExpr::load(Sz::One, BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i"))),
                            BExpr::lit(0x20),
                        ),
                    ),
                    Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                ]),
            ),
        ]);
        BFunction::new("lower", ["s", "len"], Vec::<String>::new(), body)
    }

    #[test]
    fn emits_c_function_shell() {
        let c = function_to_c(&upstr_like());
        assert!(c.contains("void lower(uintptr_t s, uintptr_t len) {"));
        assert!(c.contains("while (((uintptr_t)((i) < (len)))) {"));
        assert!(c.contains("*(uint8_t*)"));
        assert!(c.contains("uintptr_t i = 0;"));
    }

    #[test]
    fn emits_return_for_single_ret() {
        let f = BFunction::new("h", ["x"], ["x"], Cmd::Skip);
        let c = function_to_c(&f);
        assert!(c.contains("uintptr_t h(uintptr_t x)"));
        assert!(c.contains("return x;"));
    }

    #[test]
    fn emits_inline_tables_as_static_const() {
        let f = BFunction::new(
            "t",
            ["i"],
            ["x"],
            Cmd::set("x", BExpr::table(Sz::One, "tbl", BExpr::var("i"))),
        )
        .with_table(BTable { name: "tbl".into(), data: vec![1, 2] });
        let c = function_to_c(&f);
        assert!(c.contains("static const uint8_t tbl[2] = {0x01, 0x02};"));
        assert!(c.contains("x = (uintptr_t)tbl[i];"));
    }

    #[test]
    fn division_guards_match_semantics() {
        let f = BFunction::new("d", ["a", "b"], ["c"],
            Cmd::set("c", BExpr::op(BinOp::DivU, BExpr::var("a"), BExpr::var("b"))));
        let c = function_to_c(&f);
        assert!(c.contains("== 0 ? (uintptr_t)-1"));
    }

    #[test]
    fn whole_program_has_preamble() {
        let mut p = Program::new();
        p.insert(upstr_like());
        let c = program_to_c(&p);
        assert!(c.starts_with("#include <stdint.h>"));
    }

    #[test]
    fn stackalloc_prints_a_scoped_buffer() {
        let f = BFunction::new(
            "s",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::StackAlloc { var: "p".into(), nbytes: 16, body: Box::new(Cmd::Skip) },
        );
        let c = function_to_c(&f);
        assert!(c.contains("uint8_t p_buf[16];"));
        assert!(c.contains("p = (uintptr_t)p_buf;"));
    }
}
