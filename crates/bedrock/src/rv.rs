//! A RV64I(+M) subset: instruction set, assembler and simulator.
//!
//! Bedrock2 "has a verified compiler to RISC-V with a complete correctness
//! proof" (Box 2); the paper's end-to-end story runs "from high-level
//! specifications to assembly". This module provides the target half of
//! that leg: enough of RV64 to execute compiled Bedrock2 — integer
//! register-register and register-immediate arithmetic, the M-extension
//! multiply/divide group (with RISC-V's division-by-zero semantics, which
//! Bedrock2's operators mirror), loads and stores at all four widths,
//! conditional branches, and jumps.
//!
//! Programs are assembled from symbolic labels ([`assemble`]) and run by a
//! fuel-indexed simulator ([`Machine::run`]) over the same region-based
//! [`Memory`] used by the Bedrock2 interpreter, so out-of-bounds accesses
//! trap identically at both levels.

use crate::mem::Memory;
use std::collections::HashMap;
use std::fmt;

/// A register number (x0–x31; x0 is hardwired to zero).
pub type Reg = u8;

/// The always-zero register.
pub const ZERO: Reg = 0;

/// An immediate operand: a literal, or a symbol resolved at load time
/// (inline-table base addresses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Imm {
    /// A literal value.
    Lit(i64),
    /// The base address of the named inline table, patched by the loader.
    TableBase(String),
}

impl Imm {
    /// Resolves the immediate against the loader's symbol table.
    ///
    /// # Errors
    ///
    /// Returns the unresolved symbol name.
    pub fn resolve(&self, symbols: &HashMap<String, u64>) -> Result<i64, String> {
        match self {
            Imm::Lit(v) => Ok(*v),
            Imm::TableBase(name) => symbols
                .get(name)
                .map(|v| *v as i64)
                .ok_or_else(|| name.clone()),
        }
    }
}

/// A (pseudo-)instruction over symbolic branch labels.
///
/// `Li` is the load-immediate pseudo-instruction (a `lui`/`addi` chain in
/// real encodings); branch/jump targets are label names resolved by
/// [`assemble`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Asm {
    // R-type.
    Add(Reg, Reg, Reg),
    Sub(Reg, Reg, Reg),
    Mul(Reg, Reg, Reg),
    Mulhu(Reg, Reg, Reg),
    Divu(Reg, Reg, Reg),
    Remu(Reg, Reg, Reg),
    And(Reg, Reg, Reg),
    Or(Reg, Reg, Reg),
    Xor(Reg, Reg, Reg),
    Sll(Reg, Reg, Reg),
    Srl(Reg, Reg, Reg),
    Sra(Reg, Reg, Reg),
    Slt(Reg, Reg, Reg),
    Sltu(Reg, Reg, Reg),
    // Immediate forms.
    Li(Reg, Imm),
    Addi(Reg, Reg, i64),
    // Loads/stores: (dst/src, base, offset).
    Lbu(Reg, Reg, i64),
    Lhu(Reg, Reg, i64),
    Lwu(Reg, Reg, i64),
    Ld(Reg, Reg, i64),
    Sb(Reg, Reg, i64),
    Sh(Reg, Reg, i64),
    Sw(Reg, Reg, i64),
    Sd(Reg, Reg, i64),
    // Control flow over labels.
    Label(String),
    Beq(Reg, Reg, String),
    Bne(Reg, Reg, String),
    Bltu(Reg, Reg, String),
    Bgeu(Reg, Reg, String),
    J(String),
    /// Stop execution (stands in for the return to the runtime).
    Halt,
}

/// An executable instruction (labels resolved to instruction indices).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Instr {
    Add(Reg, Reg, Reg),
    Sub(Reg, Reg, Reg),
    Mul(Reg, Reg, Reg),
    Mulhu(Reg, Reg, Reg),
    Divu(Reg, Reg, Reg),
    Remu(Reg, Reg, Reg),
    And(Reg, Reg, Reg),
    Or(Reg, Reg, Reg),
    Xor(Reg, Reg, Reg),
    Sll(Reg, Reg, Reg),
    Srl(Reg, Reg, Reg),
    Sra(Reg, Reg, Reg),
    Slt(Reg, Reg, Reg),
    Sltu(Reg, Reg, Reg),
    Li(Reg, i64),
    Addi(Reg, Reg, i64),
    Lbu(Reg, Reg, i64),
    Lhu(Reg, Reg, i64),
    Lwu(Reg, Reg, i64),
    Ld(Reg, Reg, i64),
    Sb(Reg, Reg, i64),
    Sh(Reg, Reg, i64),
    Sw(Reg, Reg, i64),
    Sd(Reg, Reg, i64),
    Beq(Reg, Reg, usize),
    Bne(Reg, Reg, usize),
    Bltu(Reg, Reg, usize),
    Bgeu(Reg, Reg, usize),
    J(usize),
    Halt,
}

impl fmt::Display for Asm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn r(x: &Reg) -> String {
            format!("x{x}")
        }
        match self {
            Asm::Add(d, a, b) => write!(f, "  add   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Sub(d, a, b) => write!(f, "  sub   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Mul(d, a, b) => write!(f, "  mul   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Mulhu(d, a, b) => write!(f, "  mulhu {}, {}, {}", r(d), r(a), r(b)),
            Asm::Divu(d, a, b) => write!(f, "  divu  {}, {}, {}", r(d), r(a), r(b)),
            Asm::Remu(d, a, b) => write!(f, "  remu  {}, {}, {}", r(d), r(a), r(b)),
            Asm::And(d, a, b) => write!(f, "  and   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Or(d, a, b) => write!(f, "  or    {}, {}, {}", r(d), r(a), r(b)),
            Asm::Xor(d, a, b) => write!(f, "  xor   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Sll(d, a, b) => write!(f, "  sll   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Srl(d, a, b) => write!(f, "  srl   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Sra(d, a, b) => write!(f, "  sra   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Slt(d, a, b) => write!(f, "  slt   {}, {}, {}", r(d), r(a), r(b)),
            Asm::Sltu(d, a, b) => write!(f, "  sltu  {}, {}, {}", r(d), r(a), r(b)),
            Asm::Li(d, Imm::Lit(v)) => write!(f, "  li    {}, {v}", r(d)),
            Asm::Li(d, Imm::TableBase(t)) => write!(f, "  li    {}, %{t}", r(d)),
            Asm::Addi(d, s, i) => write!(f, "  addi  {}, {}, {i}", r(d), r(s)),
            Asm::Lbu(d, b, o) => write!(f, "  lbu   {}, {o}({})", r(d), r(b)),
            Asm::Lhu(d, b, o) => write!(f, "  lhu   {}, {o}({})", r(d), r(b)),
            Asm::Lwu(d, b, o) => write!(f, "  lwu   {}, {o}({})", r(d), r(b)),
            Asm::Ld(d, b, o) => write!(f, "  ld    {}, {o}({})", r(d), r(b)),
            Asm::Sb(s, b, o) => write!(f, "  sb    {}, {o}({})", r(s), r(b)),
            Asm::Sh(s, b, o) => write!(f, "  sh    {}, {o}({})", r(s), r(b)),
            Asm::Sw(s, b, o) => write!(f, "  sw    {}, {o}({})", r(s), r(b)),
            Asm::Sd(s, b, o) => write!(f, "  sd    {}, {o}({})", r(s), r(b)),
            Asm::Label(l) => write!(f, "{l}:"),
            Asm::Beq(a, b, l) => write!(f, "  beq   {}, {}, {l}", r(a), r(b)),
            Asm::Bne(a, b, l) => write!(f, "  bne   {}, {}, {l}", r(a), r(b)),
            Asm::Bltu(a, b, l) => write!(f, "  bltu  {}, {}, {l}", r(a), r(b)),
            Asm::Bgeu(a, b, l) => write!(f, "  bgeu  {}, {}, {l}", r(a), r(b)),
            Asm::J(l) => write!(f, "  j     {l}"),
            Asm::Halt => write!(f, "  halt"),
        }
    }
}

/// Renders a whole assembly listing.
pub fn listing(asm: &[Asm]) -> String {
    asm.iter().map(|a| format!("{a}\n")).collect()
}

/// Parses a listing back into symbolic assembly — the exact inverse of
/// [`listing`] on its output. This is the wire format of machine-code
/// artifacts (`serial::encode_rv_artifact`): text a reviewer can diff, yet
/// total to decode — every malformed line is an `Err`, never a panic, so
/// a corrupted cached artifact surfaces as an eviction.
///
/// # Errors
///
/// Describes the first unparseable line.
pub fn parse_listing(text: &str) -> Result<Vec<Asm>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: `{raw}`", lineno + 1);
        if let Some(label) = line.strip_suffix(':') {
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err("malformed label"));
            }
            out.push(Asm::Label(label.to_string()));
            continue;
        }
        let mut words = line.split_whitespace();
        let mnemonic = words.next().ok_or_else(|| err("empty instruction"))?;
        let rest: String = words.collect::<Vec<_>>().join(" ");
        let ops: Vec<&str> =
            if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
        let reg = |s: &str| -> Result<Reg, String> {
            let n: u32 = s
                .strip_prefix('x')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| err("expected register"))?;
            if n < 32 {
                Ok(n as Reg)
            } else {
                Err(err("register out of range"))
            }
        };
        let int = |s: &str| -> Result<i64, String> {
            s.parse().map_err(|_| err("expected integer"))
        };
        // `-8(x5)`-style memory operand: offset before the parenthesized base.
        let mem_op = |s: &str| -> Result<(Reg, i64), String> {
            let open = s.find('(').ok_or_else(|| err("expected offset(base)"))?;
            let close = s.strip_suffix(')').ok_or_else(|| err("expected offset(base)"))?;
            Ok((reg(&close[open + 1..])?, int(&s[..open])?))
        };
        let three = |k: fn(Reg, Reg, Reg) -> Asm| -> Result<Asm, String> {
            if ops.len() != 3 {
                return Err(err("expected three operands"));
            }
            Ok(k(reg(ops[0])?, reg(ops[1])?, reg(ops[2])?))
        };
        let load_store = |k: fn(Reg, Reg, i64) -> Asm| -> Result<Asm, String> {
            if ops.len() != 2 {
                return Err(err("expected two operands"));
            }
            let (base, off) = mem_op(ops[1])?;
            Ok(k(reg(ops[0])?, base, off))
        };
        let branch = |k: fn(Reg, Reg, String) -> Asm| -> Result<Asm, String> {
            if ops.len() != 3 {
                return Err(err("expected two registers and a label"));
            }
            Ok(k(reg(ops[0])?, reg(ops[1])?, ops[2].to_string()))
        };
        let a = match mnemonic {
            "add" => three(Asm::Add)?,
            "sub" => three(Asm::Sub)?,
            "mul" => three(Asm::Mul)?,
            "mulhu" => three(Asm::Mulhu)?,
            "divu" => three(Asm::Divu)?,
            "remu" => three(Asm::Remu)?,
            "and" => three(Asm::And)?,
            "or" => three(Asm::Or)?,
            "xor" => three(Asm::Xor)?,
            "sll" => three(Asm::Sll)?,
            "srl" => three(Asm::Srl)?,
            "sra" => three(Asm::Sra)?,
            "slt" => three(Asm::Slt)?,
            "sltu" => three(Asm::Sltu)?,
            "li" => {
                if ops.len() != 2 {
                    return Err(err("expected register and immediate"));
                }
                let imm = match ops[1].strip_prefix('%') {
                    Some(table) if !table.is_empty() => Imm::TableBase(table.to_string()),
                    Some(_) => return Err(err("empty table symbol")),
                    None => Imm::Lit(int(ops[1])?),
                };
                Asm::Li(reg(ops[0])?, imm)
            }
            "addi" => {
                if ops.len() != 3 {
                    return Err(err("expected two registers and an immediate"));
                }
                Asm::Addi(reg(ops[0])?, reg(ops[1])?, int(ops[2])?)
            }
            "lbu" => load_store(Asm::Lbu)?,
            "lhu" => load_store(Asm::Lhu)?,
            "lwu" => load_store(Asm::Lwu)?,
            "ld" => load_store(Asm::Ld)?,
            "sb" => load_store(Asm::Sb)?,
            "sh" => load_store(Asm::Sh)?,
            "sw" => load_store(Asm::Sw)?,
            "sd" => load_store(Asm::Sd)?,
            "beq" => branch(Asm::Beq)?,
            "bne" => branch(Asm::Bne)?,
            "bltu" => branch(Asm::Bltu)?,
            "bgeu" => branch(Asm::Bgeu)?,
            "j" => {
                if ops.len() != 1 || ops[0].is_empty() {
                    return Err(err("expected a label"));
                }
                Asm::J(ops[0].to_string())
            }
            "halt" => {
                if !ops.is_empty() {
                    return Err(err("halt takes no operands"));
                }
                Asm::Halt
            }
            _ => return Err(err("unknown mnemonic")),
        };
        out.push(a);
    }
    Ok(out)
}

/// Errors of assembly and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvError {
    /// A branch referenced an undefined label.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// An immediate referenced an unknown symbol at load time.
    UnresolvedSymbol(String),
    /// The program counter left the instruction array.
    PcOutOfRange(usize),
    /// A memory access trapped.
    Memory(String),
    /// Fuel exhausted.
    OutOfFuel,
}

impl fmt::Display for RvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            RvError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            RvError::UnresolvedSymbol(s) => write!(f, "unresolved symbol `{s}`"),
            RvError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
            RvError::Memory(m) => write!(f, "memory trap: {m}"),
            RvError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for RvError {}

/// Resolves labels and symbols, producing executable code.
///
/// # Errors
///
/// Fails on undefined/duplicate labels or unresolved table symbols.
pub fn assemble(asm: &[Asm], symbols: &HashMap<String, u64>) -> Result<Vec<Instr>, RvError> {
    // Pass 1: label → instruction index (labels occupy no slot).
    let mut labels: HashMap<&str, usize> = HashMap::new();
    let mut idx = 0;
    for a in asm {
        if let Asm::Label(l) = a {
            if labels.insert(l, idx).is_some() {
                return Err(RvError::DuplicateLabel(l.clone()));
            }
        } else {
            idx += 1;
        }
    }
    let target = |l: &String| {
        labels
            .get(l.as_str())
            .copied()
            .ok_or_else(|| RvError::UndefinedLabel(l.clone()))
    };
    // Pass 2: emit.
    let mut out = Vec::with_capacity(idx);
    for a in asm {
        let i = match a {
            Asm::Label(_) => continue,
            Asm::Add(d, a, b) => Instr::Add(*d, *a, *b),
            Asm::Sub(d, a, b) => Instr::Sub(*d, *a, *b),
            Asm::Mul(d, a, b) => Instr::Mul(*d, *a, *b),
            Asm::Mulhu(d, a, b) => Instr::Mulhu(*d, *a, *b),
            Asm::Divu(d, a, b) => Instr::Divu(*d, *a, *b),
            Asm::Remu(d, a, b) => Instr::Remu(*d, *a, *b),
            Asm::And(d, a, b) => Instr::And(*d, *a, *b),
            Asm::Or(d, a, b) => Instr::Or(*d, *a, *b),
            Asm::Xor(d, a, b) => Instr::Xor(*d, *a, *b),
            Asm::Sll(d, a, b) => Instr::Sll(*d, *a, *b),
            Asm::Srl(d, a, b) => Instr::Srl(*d, *a, *b),
            Asm::Sra(d, a, b) => Instr::Sra(*d, *a, *b),
            Asm::Slt(d, a, b) => Instr::Slt(*d, *a, *b),
            Asm::Sltu(d, a, b) => Instr::Sltu(*d, *a, *b),
            Asm::Li(d, imm) => Instr::Li(
                *d,
                imm.resolve(symbols).map_err(RvError::UnresolvedSymbol)?,
            ),
            Asm::Addi(d, s, i) => Instr::Addi(*d, *s, *i),
            Asm::Lbu(d, b, o) => Instr::Lbu(*d, *b, *o),
            Asm::Lhu(d, b, o) => Instr::Lhu(*d, *b, *o),
            Asm::Lwu(d, b, o) => Instr::Lwu(*d, *b, *o),
            Asm::Ld(d, b, o) => Instr::Ld(*d, *b, *o),
            Asm::Sb(s, b, o) => Instr::Sb(*s, *b, *o),
            Asm::Sh(s, b, o) => Instr::Sh(*s, *b, *o),
            Asm::Sw(s, b, o) => Instr::Sw(*s, *b, *o),
            Asm::Sd(s, b, o) => Instr::Sd(*s, *b, *o),
            Asm::Beq(a1, a2, l) => Instr::Beq(*a1, *a2, target(l)?),
            Asm::Bne(a1, a2, l) => Instr::Bne(*a1, *a2, target(l)?),
            Asm::Bltu(a1, a2, l) => Instr::Bltu(*a1, *a2, target(l)?),
            Asm::Bgeu(a1, a2, l) => Instr::Bgeu(*a1, *a2, target(l)?),
            Asm::J(l) => Instr::J(target(l)?),
            Asm::Halt => Instr::Halt,
        };
        out.push(i);
    }
    Ok(out)
}

/// The RV64 machine state: 32 registers and a program counter; memory is
/// borrowed per run.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct Machine {
    /// Register file (`regs[0]` reads as zero regardless of writes).
    pub regs: [u64; 32],
    /// Program counter, as an instruction index.
    pub pc: usize,
    /// Instructions retired across all `run` calls — the dynamic cost
    /// counter behind the cycle-estimate rows (every instruction in this
    /// subset is modeled at one cycle).
    pub executed: u64,
}


impl Machine {
    /// A fresh machine.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, r: Reg) -> u64 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    fn set(&mut self, r: Reg, v: u64) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Runs until `Halt`, a trap, or fuel exhaustion.
    ///
    /// # Errors
    ///
    /// See [`RvError`].
    pub fn run(
        &mut self,
        code: &[Instr],
        mem: &mut Memory,
        mut fuel: u64,
    ) -> Result<(), RvError> {
        use crate::ast::AccessSize as Sz;
        loop {
            if fuel == 0 {
                return Err(RvError::OutOfFuel);
            }
            fuel -= 1;
            self.executed += 1;
            let instr = code.get(self.pc).ok_or(RvError::PcOutOfRange(self.pc))?;
            let mut next = self.pc + 1;
            match instr {
                Instr::Add(d, a, b) => self.set(*d, self.get(*a).wrapping_add(self.get(*b))),
                Instr::Sub(d, a, b) => self.set(*d, self.get(*a).wrapping_sub(self.get(*b))),
                Instr::Mul(d, a, b) => self.set(*d, self.get(*a).wrapping_mul(self.get(*b))),
                Instr::Mulhu(d, a, b) => self.set(
                    *d,
                    ((u128::from(self.get(*a)) * u128::from(self.get(*b))) >> 64) as u64,
                ),
                Instr::Divu(d, a, b) => {
                    let (x, y) = (self.get(*a), self.get(*b));
                    self.set(*d, x.checked_div(y).unwrap_or(u64::MAX));
                }
                Instr::Remu(d, a, b) => {
                    let (x, y) = (self.get(*a), self.get(*b));
                    self.set(*d, x.checked_rem(y).unwrap_or(x));
                }
                Instr::And(d, a, b) => self.set(*d, self.get(*a) & self.get(*b)),
                Instr::Or(d, a, b) => self.set(*d, self.get(*a) | self.get(*b)),
                Instr::Xor(d, a, b) => self.set(*d, self.get(*a) ^ self.get(*b)),
                Instr::Sll(d, a, b) => {
                    self.set(*d, self.get(*a).wrapping_shl((self.get(*b) & 63) as u32));
                }
                Instr::Srl(d, a, b) => {
                    self.set(*d, self.get(*a).wrapping_shr((self.get(*b) & 63) as u32));
                }
                Instr::Sra(d, a, b) => {
                    self.set(*d, ((self.get(*a) as i64) >> (self.get(*b) & 63)) as u64);
                }
                Instr::Slt(d, a, b) => {
                    self.set(*d, u64::from((self.get(*a) as i64) < (self.get(*b) as i64)));
                }
                Instr::Sltu(d, a, b) => self.set(*d, u64::from(self.get(*a) < self.get(*b))),
                Instr::Li(d, v) => self.set(*d, *v as u64),
                Instr::Addi(d, s, i) => self.set(*d, self.get(*s).wrapping_add(*i as u64)),
                Instr::Lbu(d, b, o) | Instr::Lhu(d, b, o) | Instr::Lwu(d, b, o)
                | Instr::Ld(d, b, o) => {
                    let sz = match instr {
                        Instr::Lbu(..) => Sz::One,
                        Instr::Lhu(..) => Sz::Two,
                        Instr::Lwu(..) => Sz::Four,
                        _ => Sz::Eight,
                    };
                    let addr = self.get(*b).wrapping_add(*o as u64);
                    let v = mem.load(addr, sz).map_err(|e| RvError::Memory(e.to_string()))?;
                    self.set(*d, v);
                }
                Instr::Sb(s, b, o) | Instr::Sh(s, b, o) | Instr::Sw(s, b, o)
                | Instr::Sd(s, b, o) => {
                    let sz = match instr {
                        Instr::Sb(..) => Sz::One,
                        Instr::Sh(..) => Sz::Two,
                        Instr::Sw(..) => Sz::Four,
                        _ => Sz::Eight,
                    };
                    let addr = self.get(*b).wrapping_add(*o as u64);
                    mem.store(addr, sz, self.get(*s))
                        .map_err(|e| RvError::Memory(e.to_string()))?;
                }
                Instr::Beq(a, b, t) => {
                    if self.get(*a) == self.get(*b) {
                        next = *t;
                    }
                }
                Instr::Bne(a, b, t) => {
                    if self.get(*a) != self.get(*b) {
                        next = *t;
                    }
                }
                Instr::Bltu(a, b, t) => {
                    if self.get(*a) < self.get(*b) {
                        next = *t;
                    }
                }
                Instr::Bgeu(a, b, t) => {
                    if self.get(*a) >= self.get(*b) {
                        next = *t;
                    }
                }
                Instr::J(t) => next = *t,
                Instr::Halt => return Ok(()),
            }
            self.pc = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_asm(asm: &[Asm], mem: &mut Memory) -> Machine {
        let code = assemble(asm, &HashMap::new()).unwrap();
        let mut m = Machine::new();
        m.run(&code, mem, 100_000).unwrap();
        m
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut mem = Memory::new();
        let m = run_asm(
            &[Asm::Li(0, Imm::Lit(42)), Asm::Add(5, 0, 0), Asm::Halt],
            &mut mem,
        );
        assert_eq!(m.regs[5], 0);
    }

    #[test]
    fn arithmetic_and_branches() {
        // Sum 0..10 with a branch loop.
        let asm = [
            Asm::Li(5, Imm::Lit(0)),  // acc
            Asm::Li(6, Imm::Lit(0)),  // i
            Asm::Li(7, Imm::Lit(10)), // n
            Asm::Label("head".into()),
            Asm::Bgeu(6, 7, "end".into()),
            Asm::Add(5, 5, 6),
            Asm::Addi(6, 6, 1),
            Asm::J("head".into()),
            Asm::Label("end".into()),
            Asm::Halt,
        ];
        let mut mem = Memory::new();
        let m = run_asm(&asm, &mut mem);
        assert_eq!(m.regs[5], 45);
    }

    #[test]
    fn division_semantics_match_bedrock() {
        let asm = [
            Asm::Li(5, Imm::Lit(7)),
            Asm::Li(6, Imm::Lit(0)),
            Asm::Divu(7, 5, 6),
            Asm::Remu(8, 5, 6),
            Asm::Halt,
        ];
        let mut mem = Memory::new();
        let m = run_asm(&asm, &mut mem);
        assert_eq!(m.regs[7], u64::MAX);
        assert_eq!(m.regs[8], 7);
    }

    #[test]
    fn memory_loads_and_stores() {
        let mut mem = Memory::new();
        let base = mem.alloc(vec![0; 16]);
        let asm = [
            Asm::Li(5, Imm::Lit(base as i64)),
            Asm::Li(6, Imm::Lit(0x1234_5678_9abc_def0)),
            Asm::Sd(6, 5, 0),
            Asm::Lbu(7, 5, 0),
            Asm::Lhu(8, 5, 0),
            Asm::Lwu(9, 5, 0),
            Asm::Ld(10, 5, 0),
            Asm::Halt,
        ];
        let m = run_asm(&asm, &mut mem);
        assert_eq!(m.regs[7], 0xf0);
        assert_eq!(m.regs[8], 0xdef0);
        assert_eq!(m.regs[9], 0x9abc_def0);
        assert_eq!(m.regs[10], 0x1234_5678_9abc_def0);
    }

    #[test]
    fn oob_access_traps() {
        let mut mem = Memory::new();
        let base = mem.alloc(vec![0; 4]);
        let asm = [
            Asm::Li(5, Imm::Lit(base as i64)),
            Asm::Ld(6, 5, 0), // 8-byte load from a 4-byte region
            Asm::Halt,
        ];
        let code = assemble(&asm, &HashMap::new()).unwrap();
        let mut m = Machine::new();
        let err = m.run(&code, &mut mem, 100).unwrap_err();
        assert!(matches!(err, RvError::Memory(_)));
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let asm = [Asm::Label("spin".into()), Asm::J("spin".into())];
        let code = assemble(&asm, &HashMap::new()).unwrap();
        let mut mem = Memory::new();
        let mut m = Machine::new();
        assert_eq!(m.run(&code, &mut mem, 100).unwrap_err(), RvError::OutOfFuel);
    }

    #[test]
    fn listing_round_trips_through_parse() {
        let asm = vec![
            Asm::Li(5, Imm::Lit(-3)),
            Asm::Li(6, Imm::TableBase("tbl".into())),
            Asm::Label("head".into()),
            Asm::Lbu(7, 5, -8),
            Asm::Sd(7, 2, 16),
            Asm::Addi(6, 6, 1),
            Asm::Mulhu(8, 6, 7),
            Asm::Bltu(6, 7, "head".into()),
            Asm::J("end".into()),
            Asm::Label("end".into()),
            Asm::Halt,
        ];
        assert_eq!(parse_listing(&listing(&asm)).unwrap(), asm);
    }

    #[test]
    fn parse_listing_is_total_on_garbage() {
        for bad in [
            "  frobnicate x1, x2, x3",
            "  add   x5, x6",
            "  add   x5, x6, x99",
            "  lbu   x5, x6",
            "  li    x5, %",
            "  li    x5, twelve",
            "  halt  x1",
            "two words:",
        ] {
            assert!(parse_listing(bad).is_err(), "accepted `{bad}`");
        }
        assert_eq!(parse_listing("").unwrap(), Vec::<Asm>::new());
    }

    #[test]
    fn executed_counts_retired_instructions() {
        let asm = [Asm::Li(5, Imm::Lit(1)), Asm::Add(6, 5, 5), Asm::Halt];
        let code = assemble(&asm, &HashMap::new()).unwrap();
        let mut mem = Memory::new();
        let mut m = Machine::new();
        m.run(&code, &mut mem, 100).unwrap();
        assert_eq!(m.executed, 3);
    }

    #[test]
    fn assembler_rejects_bad_labels() {
        assert_eq!(
            assemble(&[Asm::J("nowhere".into())], &HashMap::new()).unwrap_err(),
            RvError::UndefinedLabel("nowhere".into())
        );
        assert_eq!(
            assemble(
                &[Asm::Label("l".into()), Asm::Label("l".into())],
                &HashMap::new()
            )
            .unwrap_err(),
            RvError::DuplicateLabel("l".into())
        );
        assert_eq!(
            assemble(&[Asm::Li(5, Imm::TableBase("t".into()))], &HashMap::new()).unwrap_err(),
            RvError::UnresolvedSymbol("t".into())
        );
    }
}
