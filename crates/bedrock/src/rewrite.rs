//! Shared AST rewrite utilities for Bedrock2→Bedrock2 transformations.
//!
//! The site-tagged CFG in [`crate::cfg`] gives analyses a *read* view of a
//! function body (and [`crate::cfg::remove_set_sites`] one specific edit);
//! this module is the *write* side used by the optimization pass manager:
//! generic expression visitors and rewriters that keep the traversal order
//! conventions of `cfg.rs` — statements are visited in syntactic order,
//! matching the site ordinals `Cfg::build` assigns — so a pass can consume
//! site-indexed facts from `rupicola-analysis` and apply rewrites without
//! re-deriving its own walk.

use crate::ast::{BExpr, Cmd};

/// Applies `f` bottom-up to every node of `e`, children first, rebuilding
/// the expression. `f` sees each node *after* its children were rewritten,
/// so local rewrites compose (folding `1 + 2` inside `(1 + 2) * x` exposes
/// `3 * x` to the parent's visit).
pub fn map_expr_bottom_up(e: &BExpr, f: &mut impl FnMut(BExpr) -> BExpr) -> BExpr {
    let rebuilt = match e {
        BExpr::Lit(_) | BExpr::Var(_) => e.clone(),
        BExpr::Load(size, addr) => BExpr::Load(*size, Box::new(map_expr_bottom_up(addr, f))),
        BExpr::InlineTable { size, table, index } => BExpr::InlineTable {
            size: *size,
            table: table.clone(),
            index: Box::new(map_expr_bottom_up(index, f)),
        },
        BExpr::Op(op, a, b) => BExpr::Op(
            *op,
            Box::new(map_expr_bottom_up(a, f)),
            Box::new(map_expr_bottom_up(b, f)),
        ),
    };
    f(rebuilt)
}

/// Calls `f` on every subexpression of `e`, including `e` itself, parents
/// before children (pre-order).
pub fn for_each_subexpr<'e>(e: &'e BExpr, f: &mut impl FnMut(&'e BExpr)) {
    f(e);
    match e {
        BExpr::Lit(_) | BExpr::Var(_) => {}
        BExpr::Load(_, addr) => for_each_subexpr(addr, f),
        BExpr::InlineTable { index, .. } => for_each_subexpr(index, f),
        BExpr::Op(_, a, b) => {
            for_each_subexpr(a, f);
            for_each_subexpr(b, f);
        }
    }
}

/// Number of AST nodes in `e` — the interpreter's per-evaluation work is
/// proportional to this, so passes use it as their cost model.
pub fn expr_size(e: &BExpr) -> usize {
    let mut n = 0;
    for_each_subexpr(e, &mut |_| n += 1);
    n
}

/// Whether `e` reads memory (`Load` or an inline table). Pure expressions
/// are total — every operator is, division by zero included — so they can
/// be duplicated, reordered, or deleted freely; memory reads can trap and
/// must keep their multiplicity.
pub fn reads_memory(e: &BExpr) -> bool {
    let mut found = false;
    for_each_subexpr(e, &mut |sub| {
        found |= matches!(sub, BExpr::Load(..) | BExpr::InlineTable { .. });
    });
    found
}

/// Total AST nodes across every expression of `cmd` (conditions, RHSs,
/// addresses, arguments), plus one per statement — the interpreter work
/// for one pass over the body with each loop run once.
pub fn cmd_size(cmd: &Cmd) -> usize {
    let mut n = 1;
    match cmd {
        Cmd::Skip | Cmd::Unset(_) => {}
        Cmd::Set(_, e) => n += expr_size(e),
        Cmd::Store(_, addr, val) => n += expr_size(addr) + expr_size(val),
        Cmd::Seq(a, b) => n += cmd_size(a) + cmd_size(b) - 1,
        Cmd::If { cond, then_, else_ } => {
            n += expr_size(cond) + cmd_size(then_) + cmd_size(else_);
        }
        Cmd::While { cond, body } => n += expr_size(cond) + cmd_size(body),
        Cmd::Call { args, .. } | Cmd::Interact { args, .. } => {
            n += args.iter().map(expr_size).sum::<usize>();
        }
        Cmd::StackAlloc { body, .. } => n += cmd_size(body),
    }
    n
}

/// Rewrites every expression occurrence in `cmd` (in syntactic order, the
/// same order `cfg::Cfg::build` assigns sites) through `f`. `f` receives
/// each whole top-level expression — a `Set` RHS, a `Store` address or
/// value, an `If`/`While` condition, a call argument — and returns its
/// replacement; use [`map_expr_bottom_up`] inside `f` for per-node
/// rewrites.
pub fn map_cmd_exprs(cmd: &Cmd, f: &mut impl FnMut(&BExpr) -> BExpr) -> Cmd {
    match cmd {
        Cmd::Skip => Cmd::Skip,
        Cmd::Set(v, e) => Cmd::Set(v.clone(), f(e)),
        Cmd::Unset(v) => Cmd::Unset(v.clone()),
        Cmd::Store(size, addr, val) => Cmd::Store(*size, f(addr), f(val)),
        Cmd::Seq(a, b) => Cmd::Seq(
            Box::new(map_cmd_exprs(a, f)),
            Box::new(map_cmd_exprs(b, f)),
        ),
        Cmd::If { cond, then_, else_ } => Cmd::If {
            cond: f(cond),
            then_: Box::new(map_cmd_exprs(then_, f)),
            else_: Box::new(map_cmd_exprs(else_, f)),
        },
        Cmd::While { cond, body } => Cmd::While {
            cond: f(cond),
            body: Box::new(map_cmd_exprs(body, f)),
        },
        Cmd::Call { rets, func, args } => Cmd::Call {
            rets: rets.clone(),
            func: func.clone(),
            args: args.iter().map(&mut *f).collect(),
        },
        Cmd::Interact { rets, action, args } => Cmd::Interact {
            rets: rets.clone(),
            action: action.clone(),
            args: args.iter().map(&mut *f).collect(),
        },
        Cmd::StackAlloc { var, nbytes, body } => Cmd::StackAlloc {
            var: var.clone(),
            nbytes: *nbytes,
            body: Box::new(map_cmd_exprs(body, f)),
        },
    }
}

/// Flattens the `Seq` spine of `cmd` into a statement list. Nested
/// control-flow bodies are *not* flattened — each `If`/`While`/
/// `StackAlloc` stays one element, carrying its body. Inverse of
/// [`seq_of`].
pub fn spine_of(cmd: &Cmd) -> Vec<Cmd> {
    fn walk(cmd: &Cmd, out: &mut Vec<Cmd>) {
        match cmd {
            Cmd::Seq(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Cmd::Skip => {}
            other => out.push(other.clone()),
        }
    }
    let mut out = Vec::new();
    walk(cmd, &mut out);
    out
}

/// Rebuilds a `Seq` spine from a statement list (right-nested, the shape
/// `Cmd::seq` produces). An empty list is `Skip`.
pub fn seq_of(stmts: Vec<Cmd>) -> Cmd {
    Cmd::seq(stmts)
}

/// Every variable name occurring anywhere in `f`: arguments, returns,
/// assignment targets, and expression reads. Fresh-name generators consult
/// this to avoid capture.
pub fn all_names(f: &crate::ast::BFunction) -> std::collections::BTreeSet<String> {
    let mut names: std::collections::BTreeSet<String> =
        f.args.iter().chain(f.rets.iter()).cloned().collect();
    names.extend(f.body.assigned_vars());
    collect_names(&f.body, &mut names);
    names
}

fn collect_names(cmd: &Cmd, names: &mut std::collections::BTreeSet<String>) {
    match cmd {
        Cmd::Skip => {}
        Cmd::Set(v, e) => {
            names.insert(v.clone());
            names.extend(e.vars());
        }
        Cmd::Unset(v) => {
            names.insert(v.clone());
        }
        Cmd::Store(_, addr, val) => {
            names.extend(addr.vars());
            names.extend(val.vars());
        }
        Cmd::Seq(a, b) => {
            collect_names(a, names);
            collect_names(b, names);
        }
        Cmd::If { cond, then_, else_ } => {
            names.extend(cond.vars());
            collect_names(then_, names);
            collect_names(else_, names);
        }
        Cmd::While { cond, body } => {
            names.extend(cond.vars());
            collect_names(body, names);
        }
        Cmd::Call { rets, args, .. } | Cmd::Interact { rets, args, .. } => {
            names.extend(rets.iter().cloned());
            for a in args {
                names.extend(a.vars());
            }
        }
        Cmd::StackAlloc { var, body, .. } => {
            names.insert(var.clone());
            collect_names(body, names);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AccessSize, BFunction, BinOp};

    fn add(a: BExpr, b: BExpr) -> BExpr {
        BExpr::op(BinOp::Add, a, b)
    }

    #[test]
    fn bottom_up_sees_rewritten_children() {
        // (1 + 2) * x with "fold literal adds" must expose 3 to the parent.
        let e = BExpr::op(BinOp::Mul, add(BExpr::lit(1), BExpr::lit(2)), BExpr::var("x"));
        let mut seen_three = false;
        let out = map_expr_bottom_up(&e, &mut |node| match node {
            BExpr::Op(BinOp::Add, a, b) => match (&*a, &*b) {
                (BExpr::Lit(x), BExpr::Lit(y)) => BExpr::lit(x.wrapping_add(*y)),
                _ => BExpr::Op(BinOp::Add, a, b),
            },
            BExpr::Op(BinOp::Mul, a, _) => {
                seen_three = matches!(&*a, BExpr::Lit(3));
                BExpr::Op(BinOp::Mul, a, Box::new(BExpr::var("x")))
            }
            other => other,
        });
        assert!(seen_three);
        assert_eq!(out, BExpr::op(BinOp::Mul, BExpr::lit(3), BExpr::var("x")));
    }

    #[test]
    fn expr_size_counts_nodes() {
        let e = BExpr::load(AccessSize::One, add(BExpr::var("s"), BExpr::var("i")));
        assert_eq!(expr_size(&e), 4);
        assert!(reads_memory(&e));
        assert!(!reads_memory(&add(BExpr::var("s"), BExpr::var("i"))));
    }

    #[test]
    fn spine_round_trips() {
        let body = Cmd::seq([
            Cmd::set("a", BExpr::lit(1)),
            Cmd::while_(BExpr::var("a"), Cmd::set("a", BExpr::lit(0))),
            Cmd::set("b", BExpr::lit(2)),
        ]);
        let spine = spine_of(&body);
        assert_eq!(spine.len(), 3);
        assert_eq!(seq_of(spine), body);
    }

    #[test]
    fn map_cmd_exprs_hits_every_position() {
        let body = Cmd::seq([
            Cmd::set("a", BExpr::lit(1)),
            Cmd::store(AccessSize::One, BExpr::var("p"), BExpr::var("a")),
            Cmd::if_(BExpr::var("a"), Cmd::Skip, Cmd::Skip),
        ]);
        let mut count = 0;
        map_cmd_exprs(&body, &mut |e| {
            count += 1;
            e.clone()
        });
        assert_eq!(count, 4); // RHS, addr, value, cond
    }

    #[test]
    fn all_names_covers_args_rets_and_temps() {
        let f = BFunction::new(
            "f",
            ["s"],
            ["out"],
            Cmd::seq([
                Cmd::set("t", add(BExpr::var("s"), BExpr::var("k"))),
                Cmd::set("out", BExpr::var("t")),
            ]),
        );
        let names = all_names(&f);
        for n in ["s", "out", "t", "k"] {
            assert!(names.contains(n), "missing {n}");
        }
    }
}
