//! A Rust implementation of Bedrock2, the target language of Rupicola.
//!
//! Bedrock2 (Erbsen et al., PLDI 2021) is "an untyped version of the C
//! programming language" (paper, Box 2): structured control flow (function
//! calls, conditionals, loops), a flat byte-addressed heap, a per-function
//! context of word-valued locals, and an event trace capturing externally
//! observable events. Loops only have meaning when they terminate, so proofs
//! about Bedrock2 programs are total-correctness proofs — this crate mirrors
//! that with a fuel-indexed interpreter: successful execution within finite
//! fuel *is* the termination witness.
//!
//! The crate provides:
//!
//! - the abstract syntax ([`ast`]): expressions, commands, functions,
//!   inline tables, stack allocation, external interactions;
//! - a region-based memory model ([`mem`]) that traps out-of-bounds and
//!   unallocated accesses (the low-level bugs Rupicola rules out);
//! - a big-step interpreter ([`interp`]) with pluggable external handlers;
//! - a C pretty-printer ([`cprint`]) in the spirit of Bedrock2's ~200-line
//!   `ToCString`;
//! - a compiler to an RV64 subset plus an ISA simulator ([`rv_compile`],
//!   [`rv`]) — the Bedrock2-to-RISC-V leg of the end-to-end story;
//! - a Rust transpiler ([`rsprint`]) used by the benchmark harness to run
//!   generated programs at native speed (our stand-in for the paper's
//!   GCC/Clang route).
//!
//! # Example
//!
//! ```
//! use rupicola_bedrock::ast::*;
//! use rupicola_bedrock::interp::{Interpreter, ExecState, NoExternals};
//! use rupicola_bedrock::mem::Memory;
//!
//! // x = 3; x = x + 4;
//! let body = Cmd::seq([
//!     Cmd::set("x", BExpr::lit(3)),
//!     Cmd::set("x", BExpr::op(BinOp::Add, BExpr::var("x"), BExpr::lit(4))),
//! ]);
//! let f = BFunction::new("seven", Vec::<String>::new(), ["x"], body);
//! let mut program = Program::new();
//! program.insert(f);
//! let interp = Interpreter::new(&program);
//! let mut state = ExecState::new(Memory::new());
//! let rets = interp
//!     .call("seven", &[], &mut state, &mut NoExternals, 1_000)
//!     .unwrap();
//! assert_eq!(rets, vec![7]);
//! ```

pub mod ast;
pub mod cfg;
pub mod cprint;
pub mod interp;
pub mod mem;
pub mod rewrite;
pub mod rsprint;
pub mod rv;
pub mod rv_compile;
pub mod serial;

pub use ast::{AccessSize, BExpr, BFunction, BTable, BinOp, Cmd, Program};
pub use cfg::{Block, BlockId, Cfg, Stmt, Terminator};
pub use interp::{ExecError, ExecState, ExternalHandler, Interpreter, LoopHook, NoExternals, NoHook, TraceEvent};
pub use mem::Memory;
