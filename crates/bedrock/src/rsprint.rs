//! Transpiler from Bedrock2 to Rust.
//!
//! The paper benchmarks Rupicola's output by pretty-printing Bedrock2 to C
//! and handing it to GCC/Clang. In this reproduction the native route is
//! rustc: this module prints a Bedrock2 function as a safe Rust function
//! over an explicit byte-addressed heap (`mem: &mut Vec<u8>`, addresses are
//! indices), preserving the shape of the generated code — straight-line
//! word arithmetic, `while` loops, explicit loads and stores — so the
//! Figure 2 comparison against handwritten baselines is meaningful.
//!
//! The transpiler covers everything except `Interact` (which involves the
//! external world and remains interpreter-only): expressions (including
//! inline tables), assignments, conditionals, loops, calls, and
//! `stackalloc` (grown at the end of the memory vector and truncated on
//! scope exit, mirroring a stack discipline).

use std::fmt;
use std::fmt::Write as _;

use crate::ast::{AccessSize, BExpr, BFunction, BinOp, Cmd, Program};

/// Why a function could not be transpiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranspileError {
    /// The construct is intentionally interpreter-only.
    Unsupported(&'static str),
    /// A call or return-shape the printer cannot express.
    BadShape(String),
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::Unsupported(what) => {
                write!(f, "construct not supported by the Rust backend: {what}")
            }
            TranspileError::BadShape(m) => write!(f, "cannot transpile: {m}"),
        }
    }
}

impl std::error::Error for TranspileError {}

/// Transpiles a whole program; functions appear in name order.
///
/// # Errors
///
/// Fails if any function uses an interpreter-only construct.
pub fn program_to_rust(p: &Program) -> Result<String, TranspileError> {
    let mut out = String::new();
    for f in p.iter() {
        out.push_str(&function_to_rust(f)?);
        out.push('\n');
    }
    Ok(out)
}

fn table_const(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_uppercase() } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'T');
    }
    s
}

/// Transpiles one function.
///
/// The emitted signature is
/// `pub fn <name>(mem: &mut Vec<u8>, <args: u64>...) -> <rets>` where
/// `<rets>` is `()`, `u64`, or a tuple.
///
/// # Errors
///
/// Fails on `Interact` (interpreter-only).
pub fn function_to_rust(f: &BFunction) -> Result<String, TranspileError> {
    let mut out = String::new();
    let args: Vec<String> = f.args.iter().map(|a| format!("mut {a}: u64")).collect();
    let ret_ty = match f.rets.len() {
        0 => "()".to_string(),
        1 => "u64".to_string(),
        n => format!("({})", vec!["u64"; n].join(", ")),
    };
    let _ = writeln!(
        out,
        "#[allow(unused_mut, unused_variables, unused_parens, unused_assignments, clippy::all)]\npub fn {}(mem: &mut Vec<u8>{}{}) -> {ret_ty} {{",
        f.name,
        if args.is_empty() { "" } else { ", " },
        args.join(", ")
    );
    for t in &f.tables {
        let items: Vec<String> = t.data.iter().map(u8::to_string).collect();
        let _ = writeln!(
            out,
            "    static {}: [u8; {}] = [{}];",
            table_const(&t.name),
            t.data.len(),
            items.join(", ")
        );
    }
    for v in f.body.assigned_vars() {
        if !f.args.contains(&v) {
            let _ = writeln!(out, "    let mut {v}: u64 = 0;");
        }
    }
    print_cmd(&mut out, &f.body, 1)?;
    match f.rets.len() {
        0 => {}
        1 => {
            let _ = writeln!(out, "    {}", f.rets[0]);
        }
        _ => {
            let _ = writeln!(out, "    ({})", f.rets.join(", "));
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// Renders an expression as Rust.
pub fn expr_to_rust(e: &BExpr) -> String {
    match e {
        BExpr::Lit(w) => format!("{w}u64"),
        BExpr::Var(v) => v.clone(),
        BExpr::Load(size, addr) => {
            let a = expr_to_rust(addr);
            match size {
                AccessSize::One => format!("u64::from(mem[({a}) as usize])"),
                AccessSize::Two => format!(
                    "{{ let a = ({a}) as usize; u64::from(u16::from_le_bytes(mem[a..a + 2].try_into().unwrap())) }}"
                ),
                AccessSize::Four => format!(
                    "{{ let a = ({a}) as usize; u64::from(u32::from_le_bytes(mem[a..a + 4].try_into().unwrap())) }}"
                ),
                AccessSize::Eight => format!(
                    "{{ let a = ({a}) as usize; u64::from_le_bytes(mem[a..a + 8].try_into().unwrap()) }}"
                ),
            }
        }
        BExpr::InlineTable { size, table, index } => {
            let t = table_const(table);
            let i = expr_to_rust(index);
            match size {
                AccessSize::One => format!("u64::from({t}[({i}) as usize])"),
                AccessSize::Two => format!(
                    "{{ let a = ({i}) as usize; u64::from(u16::from_le_bytes({t}[a..a + 2].try_into().unwrap())) }}"
                ),
                AccessSize::Four => format!(
                    "{{ let a = ({i}) as usize; u64::from(u32::from_le_bytes({t}[a..a + 4].try_into().unwrap())) }}"
                ),
                AccessSize::Eight => format!(
                    "{{ let a = ({i}) as usize; u64::from_le_bytes({t}[a..a + 8].try_into().unwrap()) }}"
                ),
            }
        }
        BExpr::Op(op, a, b) => {
            let (sa, sb) = (expr_to_rust(a), expr_to_rust(b));
            match op {
                BinOp::Add => format!("({sa}).wrapping_add({sb})"),
                BinOp::Sub => format!("({sa}).wrapping_sub({sb})"),
                BinOp::Mul => format!("({sa}).wrapping_mul({sb})"),
                BinOp::MulHuu => {
                    format!("((u128::from({sa}) * u128::from({sb})) >> 64) as u64")
                }
                BinOp::DivU => format!(
                    "{{ let d = {sb}; if d == 0 {{ u64::MAX }} else {{ ({sa}) / d }} }}"
                ),
                BinOp::RemU => format!(
                    "{{ let n = {sa}; let d = {sb}; if d == 0 {{ n }} else {{ n % d }} }}"
                ),
                BinOp::And => format!("(({sa}) & ({sb}))"),
                BinOp::Or => format!("(({sa}) | ({sb}))"),
                BinOp::Xor => format!("(({sa}) ^ ({sb}))"),
                BinOp::Sru => format!("(({sa}) >> (({sb}) & 63))"),
                BinOp::Slu => format!("(({sa}) << (({sb}) & 63))"),
                BinOp::Srs => format!("((({sa}) as i64 >> (({sb}) & 63)) as u64)"),
                BinOp::LtS => format!("u64::from((({sa}) as i64) < (({sb}) as i64))"),
                BinOp::LtU => format!("u64::from(({sa}) < ({sb}))"),
                BinOp::Eq => format!("u64::from(({sa}) == ({sb}))"),
            }
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_cmd(out: &mut String, cmd: &Cmd, level: usize) -> Result<(), TranspileError> {
    match cmd {
        Cmd::Skip => {}
        Cmd::Set(v, e) => {
            indent(out, level);
            let _ = writeln!(out, "{v} = {};", expr_to_rust(e));
        }
        Cmd::Unset(_) => {}
        Cmd::Store(size, addr, val) => {
            indent(out, level);
            let a = expr_to_rust(addr);
            let v = expr_to_rust(val);
            match size {
                AccessSize::One => {
                    let _ = writeln!(out, "mem[({a}) as usize] = ({v}) as u8;");
                }
                AccessSize::Two => {
                    let _ = writeln!(out, "{{ let a = ({a}) as usize; let v = ({v}) as u16; mem[a..a + 2].copy_from_slice(&v.to_le_bytes()); }}");
                }
                AccessSize::Four => {
                    let _ = writeln!(out, "{{ let a = ({a}) as usize; let v = ({v}) as u32; mem[a..a + 4].copy_from_slice(&v.to_le_bytes()); }}");
                }
                AccessSize::Eight => {
                    let _ = writeln!(out, "{{ let a = ({a}) as usize; let v = {v}; mem[a..a + 8].copy_from_slice(&v.to_le_bytes()); }}");
                }
            }
        }
        Cmd::Seq(a, b) => {
            print_cmd(out, a, level)?;
            print_cmd(out, b, level)?;
        }
        Cmd::If { cond, then_, else_ } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) != 0 {{", expr_to_rust(cond));
            print_cmd(out, then_, level + 1)?;
            if !matches!(**else_, Cmd::Skip) {
                indent(out, level);
                out.push_str("} else {\n");
                print_cmd(out, else_, level + 1)?;
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Cmd::While { cond, body } => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) != 0 {{", expr_to_rust(cond));
            print_cmd(out, body, level + 1)?;
            indent(out, level);
            out.push_str("}\n");
        }
        Cmd::Call { rets, func, args } => {
            indent(out, level);
            let argv: Vec<String> = args.iter().map(expr_to_rust).collect();
            let call = format!(
                "{func}(mem{}{})",
                if argv.is_empty() { "" } else { ", " },
                argv.join(", ")
            );
            match rets.len() {
                0 => {
                    let _ = writeln!(out, "{call};");
                }
                1 => {
                    let _ = writeln!(out, "{} = {call};", rets[0]);
                }
                _ => {
                    let tmp: Vec<String> =
                        (0..rets.len()).map(|i| format!("r{i}")).collect();
                    let _ = writeln!(out, "let ({}) = {call};", tmp.join(", "));
                    for (r, t) in rets.iter().zip(&tmp) {
                        indent(out, level);
                        let _ = writeln!(out, "{r} = {t};");
                    }
                }
            }
        }
        Cmd::Interact { .. } => return Err(TranspileError::Unsupported("interact")),
        Cmd::StackAlloc { var, nbytes, body } => {
            indent(out, level);
            let _ = writeln!(out, "{var} = mem.len() as u64;");
            indent(out, level);
            let _ = writeln!(out, "mem.resize(mem.len() + {nbytes}, 0xAA);");
            print_cmd(out, body, level)?;
            indent(out, level);
            let _ = writeln!(out, "mem.truncate({var} as usize);");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AccessSize as Sz, BTable};

    #[test]
    fn transpiles_loop_shape() {
        let body = Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("len")),
                Cmd::seq([
                    Cmd::store(
                        Sz::One,
                        BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i")),
                        BExpr::lit(0),
                    ),
                    Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                ]),
            ),
        ]);
        let f = BFunction::new("zero", ["s", "len"], Vec::<String>::new(), body);
        let rs = function_to_rust(&f).unwrap();
        assert!(rs.contains("pub fn zero(mem: &mut Vec<u8>, mut s: u64, mut len: u64) -> ()"));
        assert!(rs.contains("while (u64::from((i) < (len))) != 0 {"));
        assert!(rs.contains("mem[((s).wrapping_add(i)) as usize]"));
    }

    #[test]
    fn transpiles_tables() {
        let f = BFunction::new(
            "t",
            ["i"],
            ["x"],
            Cmd::set("x", BExpr::table(Sz::One, "lut", BExpr::var("i"))),
        )
        .with_table(BTable { name: "lut".into(), data: vec![5, 6] });
        let rs = function_to_rust(&f).unwrap();
        assert!(rs.contains("static LUT: [u8; 2] = [5, 6];"));
        assert!(rs.contains("u64::from(LUT[(i) as usize])"));
        assert!(rs.trim_end().ends_with('}'));
    }

    #[test]
    fn rejects_interact() {
        let f = BFunction::new(
            "io",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::Interact { rets: vec![], action: "io_write".into(), args: vec![] },
        );
        assert_eq!(
            function_to_rust(&f),
            Err(TranspileError::Unsupported("interact"))
        );
    }

    #[test]
    fn stackalloc_grows_and_truncates() {
        let f = BFunction::new(
            "s",
            Vec::<String>::new(),
            ["x"],
            Cmd::StackAlloc {
                var: "p".into(),
                nbytes: 8,
                body: Box::new(Cmd::seq([
                    Cmd::store(Sz::Eight, BExpr::var("p"), BExpr::lit(7)),
                    Cmd::set("x", BExpr::load(Sz::Eight, BExpr::var("p"))),
                ])),
            },
        );
        let rs = function_to_rust(&f).unwrap();
        assert!(rs.contains("p = mem.len() as u64;"), "{rs}");
        assert!(rs.contains("mem.resize(mem.len() + 8, 0xAA);"), "{rs}");
        assert!(rs.contains("mem.truncate(p as usize);"), "{rs}");
    }

    #[test]
    fn table_const_sanitizes() {
        assert_eq!(table_const("crc-table"), "CRC_TABLE");
        assert_eq!(table_const("0tbl"), "T0TBL");
    }

    #[test]
    fn multi_ret_is_tuple() {
        let f = BFunction::new(
            "pairy",
            ["x"],
            ["x", "y"],
            Cmd::set("y", BExpr::var("x")),
        );
        let rs = function_to_rust(&f).unwrap();
        assert!(rs.contains("-> (u64, u64)"));
        assert!(rs.contains("(x, y)"));
    }
}
