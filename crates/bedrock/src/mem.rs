//! The Bedrock2 memory model: a byte-addressed heap made of disjoint
//! allocated regions.
//!
//! Bedrock2's semantics gives meaning only to accesses of mapped addresses;
//! everything else is a stuck execution. We model the mapped fragment as a
//! set of disjoint regions and *trap* (return an error) on any access that
//! is out of bounds, unaligned with an allocation, or spans two regions —
//! precisely the class of low-level bugs the paper's approach rules out by
//! construction.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::AccessSize;

/// An invalid memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessError {
    /// The faulting address.
    pub addr: u64,
    /// The width of the attempted access.
    pub size: u64,
    /// Whether the access was a store.
    pub write: bool,
}

impl fmt::Display for MemAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}-byte {} at address {:#x}",
            self.size,
            if self.write { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for MemAccessError {}

/// A byte-addressed memory of disjoint regions.
///
/// Regions are allocated with [`Memory::alloc`] (bump allocation with guard
/// gaps, so adjacent regions are never contiguous and pointer arithmetic
/// cannot silently walk from one object into another) or at caller-chosen
/// addresses with [`Memory::alloc_at`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Memory {
    regions: BTreeMap<u64, Vec<u8>>,
    next_base: u64,
}

/// Base address of the first bump-allocated region. Nonzero so that null is
/// never mapped.
const ALLOC_BASE: u64 = 0x1000;
/// Guard gap between bump-allocated regions.
const GUARD: u64 = 64;

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory { regions: BTreeMap::new(), next_base: ALLOC_BASE }
    }

    /// Allocates a fresh region containing `data`, returning its base
    /// address.
    pub fn alloc(&mut self, data: Vec<u8>) -> u64 {
        let base = self.next_base;
        let len = data.len() as u64;
        self.next_base = base + len + GUARD + (GUARD - (base + len) % GUARD);
        self.regions.insert(base, data);
        base
    }

    /// Allocates a region at a caller-chosen base address.
    ///
    /// Returns `false` (and allocates nothing) when the region would overlap
    /// an existing region or wrap around the address space.
    pub fn alloc_at(&mut self, base: u64, data: Vec<u8>) -> bool {
        let len = data.len() as u64;
        if base.checked_add(len).is_none() {
            return false;
        }
        let overlaps_prev = self
            .regions
            .range(..=base)
            .next_back()
            .is_some_and(|(b, d)| b + d.len() as u64 > base);
        let overlaps_next = self
            .regions
            .range(base..)
            .next()
            .is_some_and(|(b, _)| *b < base + len);
        if overlaps_prev || (len > 0 && overlaps_next) {
            return false;
        }
        self.regions.insert(base, data);
        if base + len + GUARD > self.next_base {
            self.next_base = base + len + GUARD;
        }
        true
    }

    /// Frees the region with the given base address, returning its contents.
    ///
    /// Returns `None` if `base` is not the base of a region (freeing the
    /// middle of an object is invalid).
    pub fn dealloc(&mut self, base: u64) -> Option<Vec<u8>> {
        self.regions.remove(&base)
    }

    /// A read-only view of the region based at `base`.
    pub fn region(&self, base: u64) -> Option<&[u8]> {
        self.regions.get(&base).map(Vec::as_slice)
    }

    /// A mutable view of the region based at `base`.
    pub fn region_mut(&mut self, base: u64) -> Option<&mut Vec<u8>> {
        self.regions.get_mut(&base)
    }

    /// Number of allocated regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Iterates every allocated region as `(base, bytes)`, in address
    /// order. Comparing two memories region-by-region through this view is
    /// how the RISC-V differential checks heap agreement: whole-`Memory`
    /// equality also compares the bump-allocator cursor, which stays
    /// advanced after `dealloc`, so two heaps with identical contents but
    /// different allocation histories (interpreter vs. machine runner,
    /// which allocates and frees a frame) would spuriously differ.
    pub fn regions(&self) -> impl Iterator<Item = (u64, &[u8])> + '_ {
        self.regions.iter().map(|(b, d)| (*b, d.as_slice()))
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> usize {
        self.regions.values().map(Vec::len).sum()
    }

    fn locate(&self, addr: u64, size: u64, write: bool) -> Result<(u64, usize), MemAccessError> {
        let err = MemAccessError { addr, size, write };
        let (base, data) = self.regions.range(..=addr).next_back().ok_or(err)?;
        let off = addr - base;
        let end = off.checked_add(size).ok_or(err)?;
        if end > data.len() as u64 {
            return Err(err);
        }
        Ok((*base, off as usize))
    }

    /// Loads `size` bytes at `addr`, zero-extended into a word
    /// (little-endian).
    ///
    /// # Errors
    ///
    /// Fails when the access is not contained in a single allocated region.
    pub fn load(&self, addr: u64, size: AccessSize) -> Result<u64, MemAccessError> {
        let n = size.bytes();
        let (base, off) = self.locate(addr, n, false)?;
        let data = &self.regions[&base];
        let mut out = [0u8; 8];
        out[..n as usize].copy_from_slice(&data[off..off + n as usize]);
        Ok(u64::from_le_bytes(out))
    }

    /// Stores the low `size` bytes of `value` at `addr` (little-endian).
    ///
    /// # Errors
    ///
    /// Fails when the access is not contained in a single allocated region.
    pub fn store(&mut self, addr: u64, size: AccessSize, value: u64) -> Result<(), MemAccessError> {
        let n = size.bytes();
        let (base, off) = self.locate(addr, n, true)?;
        let data = self.regions.get_mut(&base).expect("located");
        data[off..off + n as usize].copy_from_slice(&value.to_le_bytes()[..n as usize]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store_roundtrip() {
        let mut m = Memory::new();
        let p = m.alloc(vec![0; 16]);
        m.store(p, AccessSize::Eight, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load(p, AccessSize::Eight).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.load(p, AccessSize::One).unwrap(), 0x88); // little-endian
        assert_eq!(m.load(p + 7, AccessSize::One).unwrap(), 0x11);
    }

    #[test]
    fn subword_store_zero_extends_on_load() {
        let mut m = Memory::new();
        let p = m.alloc(vec![0xff; 8]);
        m.store(p, AccessSize::Two, 0xabcd).unwrap();
        assert_eq!(m.load(p, AccessSize::Two).unwrap(), 0xabcd);
        assert_eq!(m.load(p + 2, AccessSize::One).unwrap(), 0xff);
    }

    #[test]
    fn oob_and_unmapped_accesses_trap() {
        let mut m = Memory::new();
        let p = m.alloc(vec![0; 4]);
        assert!(m.load(p + 4, AccessSize::One).is_err());
        assert!(m.load(p + 1, AccessSize::Four).is_err()); // spans the end
        assert!(m.load(0, AccessSize::One).is_err()); // null
        assert!(m.store(p + 4, AccessSize::One, 0).is_err());
        assert_eq!(
            m.load(p + 100, AccessSize::One),
            Err(MemAccessError { addr: p + 100, size: 1, write: false })
        );
    }

    #[test]
    fn regions_are_not_contiguous() {
        let mut m = Memory::new();
        let a = m.alloc(vec![0; 8]);
        let b = m.alloc(vec![0; 8]);
        assert!(b > a + 8); // guard gap
        assert!(m.load(a + 8, AccessSize::One).is_err()); // gap is unmapped
    }

    #[test]
    fn alloc_at_rejects_overlap() {
        let mut m = Memory::new();
        assert!(m.alloc_at(0x2000, vec![0; 16]));
        assert!(!m.alloc_at(0x2008, vec![0; 16]));
        assert!(!m.alloc_at(0x1ff8, vec![0; 16]));
        assert!(m.alloc_at(0x3000, vec![0; 16]));
        assert!(!m.alloc_at(u64::MAX - 4, vec![0; 16])); // wraps
    }

    #[test]
    fn dealloc_requires_base() {
        let mut m = Memory::new();
        let p = m.alloc(vec![1, 2, 3]);
        assert_eq!(m.dealloc(p + 1), None);
        assert_eq!(m.dealloc(p), Some(vec![1, 2, 3]));
        assert!(m.load(p, AccessSize::One).is_err());
    }

    #[test]
    fn region_views() {
        let mut m = Memory::new();
        let p = m.alloc(vec![9, 9]);
        assert_eq!(m.region(p), Some(&[9u8, 9][..]));
        m.region_mut(p).unwrap()[0] = 1;
        assert_eq!(m.region(p), Some(&[1u8, 9][..]));
        assert_eq!(m.region_count(), 1);
        assert_eq!(m.allocated_bytes(), 2);
    }
}
