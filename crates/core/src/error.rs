//! Compilation errors.
//!
//! Rupicola's "default reaction to unexpected input is to stop and ask for
//! user guidance" (§3): when no lemma applies, the engine surfaces the
//! *residual goal* so that "users never have to guess at what is happening:
//! they can learn the shape of missing lemmas from the goals printed".

use crate::limits::ResourceKind;
use std::fmt;

/// Why a compilation run stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// No registered lemma applies: the unsolved subgoal is returned to the
    /// user, who may plug in new lemmas.
    ResidualGoal {
        /// Rendering of the open goal.
        goal: String,
        /// A hint about what kind of extension would make progress.
        hint: String,
    },
    /// A lemma applied but one of its side conditions could not be
    /// discharged by any registered solver.
    SideCondition {
        /// Rendering of the unsolved condition.
        cond: String,
        /// Hypotheses that were available.
        hyps: Vec<String>,
        /// The lemma that generated the condition.
        lemma: String,
    },
    /// The function specification is inconsistent with the model.
    Spec(String),
    /// An internal invariant of the engine was violated (a bug).
    Internal(String),
    /// A run budget of [`EngineLimits`](crate::limits::EngineLimits) was
    /// exhausted: the extension set is non-productive (e.g. a lemma that
    /// recurses without consuming source) or the program is far beyond the
    /// configured capacity. Carries the partial derivation path (the stack
    /// of lemma names active when the budget ran out) for diagnostics.
    ResourceExhausted {
        /// Which budget ran out.
        resource: ResourceKind,
        /// The configured ceiling.
        limit: usize,
        /// Lemma names from the derivation root to the active application.
        path: Vec<String>,
    },
    /// An extension-supplied lemma panicked. The panic was caught at the
    /// application boundary: only this derivation is aborted, the process
    /// and other requests are unaffected.
    LemmaPanicked {
        /// The lemma whose `try_apply` panicked.
        lemma: String,
        /// The panic payload, rendered.
        message: String,
        /// Lemma names from the derivation root to the panicking
        /// application (inclusive).
        path: Vec<String>,
    },
}

fn write_path(f: &mut fmt::Formatter<'_>, path: &[String]) -> fmt::Result {
    const SHOWN: usize = 4;
    if path.is_empty() {
        write!(f, "(at the derivation root)")
    } else if path.len() <= 2 * SHOWN {
        write!(f, "derivation path: {}", path.join(" > "))
    } else {
        // A runaway recursion produces hundreds of identical entries;
        // elide the middle.
        write!(
            f,
            "derivation path: {} > … ({} more) … > {}",
            path[..SHOWN].join(" > "),
            path.len() - 2 * SHOWN,
            path[path.len() - SHOWN..].join(" > ")
        )
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ResidualGoal { goal, hint } => {
                writeln!(f, "no compilation lemma applies; residual goal:")?;
                writeln!(f, "{goal}")?;
                write!(f, "hint: {hint}")
            }
            CompileError::SideCondition { cond, hyps, lemma } => {
                writeln!(f, "unsolved side condition of `{lemma}`: {cond}")?;
                if hyps.is_empty() {
                    write!(f, "(no hypotheses in scope)")
                } else {
                    write!(f, "hypotheses: {}", hyps.join("; "))
                }
            }
            CompileError::Spec(m) => write!(f, "specification error: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
            CompileError::ResourceExhausted { resource, limit, path } => {
                writeln!(f, "compilation exceeded the {resource} budget ({limit})")?;
                write_path(f, path)
            }
            CompileError::LemmaPanicked { lemma, message, path } => {
                writeln!(f, "lemma `{lemma}` panicked: {message}")?;
                write_path(f, path)
            }
        }
    }
}

impl std::error::Error for CompileError {}
