//! Compilation errors.
//!
//! Rupicola's "default reaction to unexpected input is to stop and ask for
//! user guidance" (§3): when no lemma applies, the engine surfaces the
//! *residual goal* so that "users never have to guess at what is happening:
//! they can learn the shape of missing lemmas from the goals printed".

use std::fmt;

/// Why a compilation run stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// No registered lemma applies: the unsolved subgoal is returned to the
    /// user, who may plug in new lemmas.
    ResidualGoal {
        /// Rendering of the open goal.
        goal: String,
        /// A hint about what kind of extension would make progress.
        hint: String,
    },
    /// A lemma applied but one of its side conditions could not be
    /// discharged by any registered solver.
    SideCondition {
        /// Rendering of the unsolved condition.
        cond: String,
        /// Hypotheses that were available.
        hyps: Vec<String>,
        /// The lemma that generated the condition.
        lemma: String,
    },
    /// The function specification is inconsistent with the model.
    Spec(String),
    /// An internal invariant of the engine was violated (a bug).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ResidualGoal { goal, hint } => {
                writeln!(f, "no compilation lemma applies; residual goal:")?;
                writeln!(f, "{goal}")?;
                write!(f, "hint: {hint}")
            }
            CompileError::SideCondition { cond, hyps, lemma } => {
                writeln!(f, "unsolved side condition of `{lemma}`: {cond}")?;
                if hyps.is_empty() {
                    write!(f, "(no hypotheses in scope)")
                } else {
                    write!(f, "hypotheses: {}", hyps.join("; "))
                }
            }
            CompileError::Spec(m) => write!(f, "specification error: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}
