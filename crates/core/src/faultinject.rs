//! Derivation-mutation fault injection: adversarial validation of the
//! trusted checker.
//!
//! The safety story of relational compilation rests on the checker
//! rejecting every wrong artifact an (arbitrarily buggy) search engine
//! could produce. This module *measures* that claim instead of asserting
//! it: it systematically generates mutants of a [`CompiledFunction`] —
//! wrong code, corrupted inline tables, tampered witnesses, mismatched
//! return slots — runs each through [`check_with`], and reports the
//! mutation kill-rate.
//!
//! Mutant classes split in two:
//!
//! - **Structural** mutants corrupt the witness or the ABI contract
//!   (dropped/forged side-condition records, truncated derivation trees,
//!   mismatched return slots). These must be killed *deterministically* —
//!   a surviving structural mutant is a checker bug.
//! - **Semantic** mutants corrupt the generated code (swapped operators,
//!   off-by-one literals, flipped table bytes) while leaving the witness
//!   intact. These are killed by differential execution, which is
//!   input-dependent: survivors are possible (a mutation in code the test
//!   vectors never reach) and are reported explicitly rather than averaged
//!   away.
//!
//! Corruption mutants model *post-construction* tampering (memory
//! corruption, a malicious serializer): they edit the derivation tree
//! without re-deriving the integrity counters. A corruption that
//! consistently re-counts a truncated tree is structurally undetectable by
//! design — witness *completeness* is not checked, behaviour is (by the
//! differential layer).

use crate::check::{check_with, CheckConfig, CheckError};
use crate::derive::{Derivation, DerivationNode, SideCondRecord};
use crate::engine::CompiledFunction;
use crate::fnspec::RetSpec;
use crate::goal::SideCond;
use crate::lemma::HintDbs;
use rupicola_bedrock::{BExpr, BinOp, Cmd};
use rupicola_lang::dsl::{word_lit};
use std::fmt;

/// The mutation classes of the fault matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationClass {
    /// A binary operator in the generated code replaced by a different one.
    SwappedBinOp,
    /// A literal in the generated code incremented by one.
    OffByOneLiteral,
    /// A byte of a function-local inline table flipped.
    CorruptedTableBytes,
    /// A recorded side condition removed from the witness (counters left
    /// stale, modeling corruption).
    DroppedSideCond,
    /// An unsolvable side condition appended to the witness, with the
    /// integrity counters consistently re-derived (so only re-solving can
    /// catch it).
    ForgedSideCond,
    /// A subtree removed from the derivation (counters left stale).
    TruncatedDerivation,
    /// The spec's return slots disagree with the code (slot dropped,
    /// heaplet renamed, or return local dropped).
    MismatchedRetSlot,
}

impl MutationClass {
    /// All classes, structural last.
    pub const ALL: [MutationClass; 7] = [
        MutationClass::SwappedBinOp,
        MutationClass::OffByOneLiteral,
        MutationClass::CorruptedTableBytes,
        MutationClass::DroppedSideCond,
        MutationClass::ForgedSideCond,
        MutationClass::TruncatedDerivation,
        MutationClass::MismatchedRetSlot,
    ];

    /// Whether the checker must kill this class deterministically.
    pub fn is_structural(self) -> bool {
        matches!(
            self,
            MutationClass::DroppedSideCond
                | MutationClass::ForgedSideCond
                | MutationClass::TruncatedDerivation
                | MutationClass::MismatchedRetSlot
        )
    }
}

impl fmt::Display for MutationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MutationClass::SwappedBinOp => "swapped-binop",
            MutationClass::OffByOneLiteral => "off-by-one-literal",
            MutationClass::CorruptedTableBytes => "corrupted-table-bytes",
            MutationClass::DroppedSideCond => "dropped-side-cond",
            MutationClass::ForgedSideCond => "forged-side-cond",
            MutationClass::TruncatedDerivation => "truncated-derivation",
            MutationClass::MismatchedRetSlot => "mismatched-ret-slot",
        })
    }
}

/// One generated mutant.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Its class.
    pub class: MutationClass,
    /// What exactly was mutated.
    pub description: String,
    /// The mutated artifact.
    pub cf: CompiledFunction,
}

/// Per-class tallies of one matrix run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// The class.
    pub class: MutationClass,
    /// Mutants generated.
    pub generated: usize,
    /// Mutants the checker rejected.
    pub killed: usize,
}

/// A mutant the checker accepted.
#[derive(Debug, Clone)]
pub struct Survivor {
    /// Its class.
    pub class: MutationClass,
    /// What was mutated.
    pub description: String,
}

/// The outcome of running every mutant of one artifact through the
/// checker.
#[derive(Debug, Clone)]
pub struct FaultMatrix {
    /// Tallies per class (classes with zero generated mutants included).
    pub stats: Vec<ClassStats>,
    /// Mutants the checker failed to reject.
    pub survivors: Vec<Survivor>,
}

impl FaultMatrix {
    /// Total mutants generated.
    pub fn generated(&self) -> usize {
        self.stats.iter().map(|s| s.generated).sum()
    }

    /// Total mutants killed.
    pub fn killed(&self) -> usize {
        self.stats.iter().map(|s| s.killed).sum()
    }

    /// Whether every *structural* mutant was killed.
    pub fn structural_clean(&self) -> bool {
        self.stats
            .iter()
            .filter(|s| s.class.is_structural())
            .all(|s| s.killed == s.generated)
    }
}

/// Generates every mutant of `cf` across all classes.
pub fn mutants(cf: &CompiledFunction) -> Vec<Mutant> {
    let mut out = Vec::new();
    code_mutants(cf, &mut out);
    table_mutants(cf, &mut out);
    witness_mutants(cf, &mut out);
    ret_slot_mutants(cf, &mut out);
    out
}

/// Runs every mutant through the checker and tallies kills.
pub fn run_matrix(cf: &CompiledFunction, dbs: &HintDbs, config: &CheckConfig) -> FaultMatrix {
    let all = mutants(cf);
    let mut stats: Vec<ClassStats> = MutationClass::ALL
        .iter()
        .map(|&class| ClassStats { class, generated: 0, killed: 0 })
        .collect();
    let mut survivors = Vec::new();
    for m in all {
        let killed = check_with(&m.cf, dbs, config).is_err();
        if let Some(entry) = stats.iter_mut().find(|s| s.class == m.class) {
            entry.generated += 1;
            if killed {
                entry.killed += 1;
            }
        }
        if !killed {
            survivors.push(Survivor { class: m.class, description: m.description });
        }
    }
    FaultMatrix { stats, survivors }
}

/// Runs one mutant through the checker; `Some(rejection)` when it was
/// killed, `None` when it *survived*.
pub fn expect_killed(m: &Mutant, dbs: &HintDbs, config: &CheckConfig) -> Option<CheckError> {
    check_with(&m.cf, dbs, config).err()
}

// --- code mutants (semantic) ----------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum ExprMutation {
    SwapOp,
    BumpLit,
}

struct ExprMutator {
    kind: ExprMutation,
    target: usize,
    seen: usize,
    applied: Option<String>,
}

fn swap_op(op: BinOp) -> BinOp {
    match op {
        BinOp::Add => BinOp::Sub,
        BinOp::Sub => BinOp::Add,
        BinOp::Mul => BinOp::Add,
        BinOp::MulHuu => BinOp::Mul,
        BinOp::DivU => BinOp::RemU,
        BinOp::RemU => BinOp::DivU,
        BinOp::And => BinOp::Or,
        BinOp::Or => BinOp::And,
        BinOp::Xor => BinOp::Or,
        BinOp::Sru => BinOp::Slu,
        BinOp::Slu => BinOp::Sru,
        BinOp::Srs => BinOp::Sru,
        BinOp::LtS => BinOp::LtU,
        BinOp::LtU => BinOp::Eq,
        BinOp::Eq => BinOp::LtU,
    }
}

impl ExprMutator {
    fn expr(&mut self, e: &BExpr) -> BExpr {
        match e {
            BExpr::Lit(w) => {
                if self.kind == ExprMutation::BumpLit {
                    let here = self.seen;
                    self.seen += 1;
                    if here == self.target {
                        self.applied = Some(format!("literal {w} -> {}", w.wrapping_add(1)));
                        return BExpr::Lit(w.wrapping_add(1));
                    }
                }
                e.clone()
            }
            BExpr::Var(_) => e.clone(),
            BExpr::Load(size, addr) => BExpr::Load(*size, Box::new(self.expr(addr))),
            BExpr::InlineTable { size, table, index } => BExpr::InlineTable {
                size: *size,
                table: table.clone(),
                index: Box::new(self.expr(index)),
            },
            BExpr::Op(op, a, b) => {
                let mut op = *op;
                if self.kind == ExprMutation::SwapOp {
                    let here = self.seen;
                    self.seen += 1;
                    if here == self.target {
                        let new = swap_op(op);
                        self.applied = Some(format!("operator {op:?} -> {new:?}"));
                        op = new;
                    }
                }
                BExpr::Op(op, Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
        }
    }

    fn cmd(&mut self, c: &Cmd) -> Cmd {
        match c {
            Cmd::Skip => Cmd::Skip,
            Cmd::Set(x, e) => Cmd::Set(x.clone(), self.expr(e)),
            Cmd::Unset(x) => Cmd::Unset(x.clone()),
            Cmd::Store(size, addr, val) => Cmd::Store(*size, self.expr(addr), self.expr(val)),
            Cmd::Seq(a, b) => Cmd::Seq(Box::new(self.cmd(a)), Box::new(self.cmd(b))),
            Cmd::If { cond, then_, else_ } => Cmd::If {
                cond: self.expr(cond),
                then_: Box::new(self.cmd(then_)),
                else_: Box::new(self.cmd(else_)),
            },
            Cmd::While { cond, body } => Cmd::While {
                cond: self.expr(cond),
                body: Box::new(self.cmd(body)),
            },
            Cmd::Call { rets, func, args } => Cmd::Call {
                rets: rets.clone(),
                func: func.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
            },
            Cmd::Interact { rets, action, args } => Cmd::Interact {
                rets: rets.clone(),
                action: action.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
            },
            Cmd::StackAlloc { var, nbytes, body } => Cmd::StackAlloc {
                var: var.clone(),
                nbytes: *nbytes,
                body: Box::new(self.cmd(body)),
            },
        }
    }
}

fn count_sites(body: &Cmd, kind: ExprMutation) -> usize {
    let mut m = ExprMutator { kind, target: usize::MAX, seen: 0, applied: None };
    m.cmd(body);
    m.seen
}

fn code_mutants(cf: &CompiledFunction, out: &mut Vec<Mutant>) {
    for (kind, class) in [
        (ExprMutation::SwapOp, MutationClass::SwappedBinOp),
        (ExprMutation::BumpLit, MutationClass::OffByOneLiteral),
    ] {
        let sites = count_sites(&cf.function.body, kind);
        for target in 0..sites {
            let mut m = ExprMutator { kind, target, seen: 0, applied: None };
            let body = m.cmd(&cf.function.body);
            let Some(applied) = m.applied else { continue };
            let mut mutated = cf.clone();
            mutated.function.body = body;
            out.push(Mutant {
                class,
                description: format!("{applied} (site {target})"),
                cf: mutated,
            });
        }
    }
}

fn table_mutants(cf: &CompiledFunction, out: &mut Vec<Mutant>) {
    for (ti, table) in cf.function.tables.iter().enumerate() {
        if table.data.is_empty() {
            continue;
        }
        let positions = [0, table.data.len() / 2, table.data.len() - 1];
        let mut done = Vec::new();
        for &pos in &positions {
            if done.contains(&pos) {
                continue;
            }
            done.push(pos);
            let mut mutated = cf.clone();
            mutated.function.tables[ti].data[pos] ^= 0xFF;
            out.push(Mutant {
                class: MutationClass::CorruptedTableBytes,
                description: format!("table `{}` byte {pos} flipped", table.name),
                cf: mutated,
            });
        }
    }
}

// --- witness mutants (structural) -----------------------------------------

fn walk_mut(node: &mut DerivationNode, f: &mut dyn FnMut(&mut DerivationNode)) {
    f(node);
    for c in &mut node.children {
        walk_mut(c, f);
    }
}

fn witness_mutants(cf: &CompiledFunction, out: &mut Vec<Mutant>) {
    // DroppedSideCond: remove each record in turn, leaving the integrity
    // counters stale (the corruption model).
    let total_sc = cf.derivation.side_cond_count;
    for target in 0..total_sc {
        let mut mutated = cf.clone();
        let mut seen = 0;
        let mut dropped = None;
        walk_mut(&mut mutated.derivation.root, &mut |n| {
            let here = n.side_conds.len();
            if dropped.is_none() && seen + here > target {
                let rec = n.side_conds.remove(target - seen);
                dropped = Some(format!("dropped `{}` from `{}`", rec.cond, n.lemma));
            }
            seen += here;
        });
        let Some(description) = dropped else { continue };
        out.push(Mutant { class: MutationClass::DroppedSideCond, description, cf: mutated });
    }

    // ForgedSideCond: append an unsolvable obligation and *consistently*
    // re-derive the counters, so only re-solving can reject it.
    {
        let mut root = cf.derivation.root.clone();
        root.side_conds.push(SideCondRecord {
            cond: SideCond::Lt(word_lit(5), word_lit(3)),
            solver: "lia".into(),
            hyps: Vec::new().into(),
        });
        let mut mutated = cf.clone();
        mutated.derivation = Derivation::new(root);
        out.push(Mutant {
            class: MutationClass::ForgedSideCond,
            description: "forged side condition 5 < 3 at the root (counters re-derived)".into(),
            cf: mutated,
        });
    }

    // TruncatedDerivation: drop the last child of each internal node,
    // leaving counters stale.
    let internal_nodes = {
        let mut n = 0;
        cf.derivation.root.walk(&mut |node| {
            if !node.children.is_empty() {
                n += 1;
            }
        });
        n
    };
    for target in 0..internal_nodes {
        let mut mutated = cf.clone();
        let mut seen = 0;
        let mut truncated = None;
        walk_mut(&mut mutated.derivation.root, &mut |n| {
            if n.children.is_empty() {
                return;
            }
            if truncated.is_none() && seen == target {
                let child = n.children.pop().unwrap_or_else(|| DerivationNode::leaf("", ""));
                truncated =
                    Some(format!("dropped subtree `{}` under `{}`", child.lemma, n.lemma));
            }
            seen += 1;
        });
        let Some(description) = truncated else { continue };
        out.push(Mutant { class: MutationClass::TruncatedDerivation, description, cf: mutated });
    }
}

// --- ABI mutants (structural) ---------------------------------------------

fn ret_slot_mutants(cf: &CompiledFunction, out: &mut Vec<Mutant>) {
    // Drop the last declared return slot: the model's result arity no
    // longer matches the spec.
    if !cf.spec.rets.is_empty() {
        let mut mutated = cf.clone();
        let dropped = mutated.spec.rets.pop();
        out.push(Mutant {
            class: MutationClass::MismatchedRetSlot,
            description: format!(
                "dropped return slot {}",
                dropped.map_or_else(String::new, |r| format!("{r:?}"))
            ),
            cf: mutated,
        });
    }
    // Re-point each in-place slot at a parameter that owns no region.
    for (i, ret) in cf.spec.rets.iter().enumerate() {
        if let RetSpec::InPlace { param } = ret {
            let mut mutated = cf.clone();
            let bogus = format!("{param}_bogus");
            mutated.spec.rets[i] = RetSpec::InPlace { param: bogus.clone() };
            out.push(Mutant {
                class: MutationClass::MismatchedRetSlot,
                description: format!("in-place slot `{param}` re-pointed at `{bogus}`"),
                cf: mutated,
            });
        }
    }
    // Drop the last return local from the generated function: the code
    // returns fewer words than the spec consumes.
    if !cf.function.rets.is_empty() {
        let mut mutated = cf.clone();
        let dropped = mutated.function.rets.pop().unwrap_or_default();
        out.push(Mutant {
            class: MutationClass::MismatchedRetSlot,
            description: format!("dropped return local `{dropped}` from the function"),
            cf: mutated,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::fnspec::{ArgSpec, FnSpec};
    use rupicola_bedrock::BFunction;
    use rupicola_lang::dsl::*;
    use rupicola_lang::{ElemKind, Model};

    /// A correct hand-built identity artifact (mirrors `check::tests`).
    fn identity_compiled() -> CompiledFunction {
        let model = Model::new("id", ["s"], var("s"));
        let spec = FnSpec::new(
            "id",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        CompiledFunction {
            function: BFunction::new("id", ["s", "len"], Vec::<String>::new(), Cmd::Skip),
            derivation: Derivation::new(DerivationNode::leaf("done", "s")),
            model,
            spec,
            linked: Vec::new(),
            optimized: None,
            stats: Default::default(),
        }
    }

    #[test]
    fn identity_generates_ret_slot_and_forged_mutants() {
        let cf = identity_compiled();
        assert!(check(&cf, &HintDbs::new()).is_ok());
        let ms = mutants(&cf);
        assert!(ms.iter().any(|m| m.class == MutationClass::MismatchedRetSlot));
        assert!(ms.iter().any(|m| m.class == MutationClass::ForgedSideCond));
    }

    #[test]
    fn structural_mutants_of_identity_are_all_killed() {
        let cf = identity_compiled();
        let matrix = run_matrix(&cf, &HintDbs::new(), &CheckConfig::default());
        assert!(matrix.structural_clean(), "survivors: {:?}", matrix.survivors);
    }

    #[test]
    fn swap_covers_every_operator() {
        // swap_op must be a fixpoint-free endomap: mutants always differ.
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::MulHuu,
            BinOp::DivU,
            BinOp::RemU,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Sru,
            BinOp::Slu,
            BinOp::Srs,
            BinOp::LtS,
            BinOp::LtU,
            BinOp::Eq,
        ] {
            assert_ne!(swap_op(op), op, "{op:?} swaps to itself");
        }
    }

    #[test]
    fn mutator_counts_and_rewrites_consistently() {
        let body = Cmd::seq(vec![
            Cmd::set("x", BExpr::op(BinOp::Add, BExpr::var("a"), BExpr::lit(1))),
            Cmd::set("y", BExpr::op(BinOp::Mul, BExpr::var("x"), BExpr::lit(3))),
        ]);
        assert_eq!(count_sites(&body, ExprMutation::SwapOp), 2);
        assert_eq!(count_sites(&body, ExprMutation::BumpLit), 2);
        let mut m = ExprMutator { kind: ExprMutation::BumpLit, target: 1, seen: 0, applied: None };
        let mutated = m.cmd(&body);
        assert!(m.applied.is_some());
        assert_ne!(mutated, body);
    }
}
