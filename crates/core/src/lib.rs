//! The Rupicola-rs relational compilation engine.
//!
//! This crate is the paper's primary contribution, rebuilt in Rust:
//! compilation as *code-generating proof search* (§2). A compiler is an
//! ordered collection of lemmas ([`lemma::HintDbs`]); compiling a
//! [`rupicola_lang::Model`] against a [`fnspec::FnSpec`] means resolving the
//! goal `∃ c, {t; m; l; σ} c {P (model)}` by applying lemmas until the
//! terminal rule closes the derivation. Every successful run produces a
//! Bedrock2 function *and* a [`derive::Derivation`] witness, which the
//! trusted checker ([`check`]) re-validates structurally, differentially,
//! and — for loops — by evaluating the inferred invariants of §3.4.2 at
//! every loop head.
//!
//! # Crate map
//!
//! | module | paper section | role |
//! |---|---|---|
//! | [`goal`] | §3.3 | the statement judgment `{t; m; l; σ} ?c {P p}` |
//! | [`lemma`] | §2.3 | lemma traits and hint databases |
//! | [`engine`] | §2.2, §3.2 | non-backtracking proof search, `done` rule |
//! | [`solver`] | §3.2 | side-condition solvers (`lia` analog) |
//! | [`invariant`] | §3.4.2 | predicate/loop-invariant inference |
//! | [`fnspec`] | §3.2 | `fnspec!` ABI layer |
//! | [`mod@derive`] | §2 | derivation witnesses |
//! | [`check`] | §4.3 (trusted base) | the trusted checker |
//!
//! # Example
//!
//! Compiling the identity function over byte arrays needs no lemmas at all
//! (the terminal rule suffices), and the checker validates the result:
//!
//! ```
//! use rupicola_core::{compile, check::check, fnspec::{ArgSpec, FnSpec, RetSpec}, lemma::HintDbs};
//! use rupicola_lang::{dsl::*, ElemKind, Model};
//!
//! let model = Model::new("id", ["s"], var("s"));
//! let spec = FnSpec::new(
//!     "id",
//!     vec![
//!         ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
//!         ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
//!     ],
//!     vec![RetSpec::InPlace { param: "s".into() }],
//! );
//! let compiled = compile(&model, &spec, &HintDbs::new())?;
//! let report = check(&compiled, &HintDbs::new())?;
//! assert!(report.vectors_run > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod check;
pub mod derive;
pub mod engine;
pub mod error;
pub mod faultinject;
pub mod fnspec;
pub mod goal;
pub mod invariant;
pub mod lemma;
pub mod limits;
pub mod serial;
pub mod solver;

pub use engine::{catch_quiet, compile, compile_with_limits, CompileStats, CompiledFunction, Compiler};
pub use error::CompileError;
pub use limits::{EngineLimits, ResourceKind};
pub use goal::{DefChain, Hyp, HypEntry, HypRef, MonadCtx, Post, RetSlot, SideCond, StmtGoal};
pub use lemma::{Applied, AppliedExpr, Dispatch, DispatchMode, ExprLemma, HeadKey, HintDbs, StmtLemma};
