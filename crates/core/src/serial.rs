//! JSON codec for compiled artifacts: specs, witnesses, and
//! [`CompiledFunction`] itself.
//!
//! This is the top layer of the artifact codec (see `rupicola_lang::codec`
//! for the shared conventions; `rupicola_bedrock::serial` covers the
//! target syntax). What gets persisted is everything the independent
//! checker needs to re-validate a compilation result from scratch:
//!
//! - the Bedrock2 function and its linked callees,
//! - the full [`Derivation`] witness, including per-node side-condition
//!   records with their hypothesis snapshots and the stored integrity
//!   counters (stored *as-is*, NOT recomputed on decode — the checker
//!   recounts them, so a corrupted artifact that drops a node without
//!   fixing the counters is rejected structurally),
//! - the source [`Model`] and the [`FnSpec`] ABI (from which the checker
//!   rebuilds the initial goal and concretizes test vectors),
//! - the [`CompileStats`] of the original run (so cached suite passes
//!   still cross-check against build-time stats).
//!
//! Symbolic goals are deliberately *not* serialized: `StmtGoal` is
//! reconstructible via `FnSpec::initial_goal`, and keeping it out of the
//! format keeps heaplet identifiers an engine-internal notion.

use crate::derive::{Derivation, DerivationNode, SideCondRecord};
use crate::engine::{CompileStats, CompiledFunction};
use crate::fnspec::{ArgSpec, FnSpec, RetSpec, TraceSpec};
use crate::goal::{Hyp, MonadCtx, SideCond};
use crate::invariant::{LoopInvariant, LoopInvariantKind};
use rupicola_bedrock::serial::{decode_bfunction, encode_bfunction};
use rupicola_lang::codec::{
    decode_elem_kind, decode_expr, decode_model, decode_monad_kind, encode_elem_kind,
    encode_expr, encode_model, encode_monad_kind, DecodeResult,
};
use rupicola_lang::json::Json;
use rupicola_lang::Ident;
use rupicola_sep::ScalarKind;

// ---------------------------------------------------------------------------
// Local helpers (same shapes as the lower codec layers)
// ---------------------------------------------------------------------------

fn tagged<'a>(j: &'a Json, what: &str) -> DecodeResult<(String, &'a [Json])> {
    let items = j
        .as_arr()
        .ok_or_else(|| format!("expected {what} (tagged array), got {}", j.render_compact()))?;
    let (tag, rest) = items
        .split_first()
        .ok_or_else(|| format!("empty tagged array for {what}"))?;
    let tag = tag
        .as_str()
        .ok_or_else(|| format!("{what} tag is not a string"))?;
    Ok((tag.to_string(), rest))
}

fn field<'a>(rest: &'a [Json], i: usize, tag: &str) -> DecodeResult<&'a Json> {
    rest.get(i)
        .ok_or_else(|| format!("`{tag}` is missing field {i}"))
}

fn str_field(rest: &[Json], i: usize, tag: &str) -> DecodeResult<String> {
    field(rest, i, tag)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{tag}` field {i} is not a string"))
}

fn arity(rest: &[Json], n: usize, tag: &str) -> DecodeResult<()> {
    if rest.len() == n {
        Ok(())
    } else {
        Err(format!("`{tag}` expects {n} fields, got {}", rest.len()))
    }
}

fn obj_get<'a>(j: &'a Json, key: &str, what: &str) -> DecodeResult<&'a Json> {
    j.get(key)
        .ok_or_else(|| format!("{what} is missing key `{key}`"))
}

fn obj_str(j: &Json, key: &str, what: &str) -> DecodeResult<String> {
    obj_get(j, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what} key `{key}` is not a string"))
}

fn obj_usize(j: &Json, key: &str, what: &str) -> DecodeResult<usize> {
    let n = obj_get(j, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what} key `{key}` is not an integer"))?;
    usize::try_from(n).map_err(|_| format!("{what} key `{key}` out of range"))
}

fn obj_arr<'a>(j: &'a Json, key: &str, what: &str) -> DecodeResult<&'a [Json]> {
    obj_get(j, key, what)?
        .as_arr()
        .ok_or_else(|| format!("{what} key `{key}` is not an array"))
}

fn encode_scalar_kind(k: ScalarKind) -> Json {
    Json::str(k.as_str())
}

fn decode_scalar_kind(j: &Json) -> DecodeResult<ScalarKind> {
    j.as_str()
        .and_then(ScalarKind::from_str_tag)
        .ok_or_else(|| format!("expected scalar kind, got {}", j.render_compact()))
}

// ---------------------------------------------------------------------------
// Hypotheses and side conditions
// ---------------------------------------------------------------------------

/// Encodes a [`Hyp`].
pub fn encode_hyp(h: &Hyp) -> Json {
    match h {
        Hyp::EqWord(a, b) => Json::Arr(vec![Json::str("eq"), encode_expr(a), encode_expr(b)]),
        Hyp::LtU(a, b) => Json::Arr(vec![Json::str("ltu"), encode_expr(a), encode_expr(b)]),
        Hyp::LeU(a, b) => Json::Arr(vec![Json::str("leu"), encode_expr(a), encode_expr(b)]),
    }
}

/// Decodes a [`Hyp`].
pub fn decode_hyp(j: &Json) -> DecodeResult<Hyp> {
    let (tag, rest) = tagged(j, "hyp")?;
    let t = tag.as_str();
    arity(rest, 2, t)?;
    let a = decode_expr(field(rest, 0, t)?)?;
    let b = decode_expr(field(rest, 1, t)?)?;
    match t {
        "eq" => Ok(Hyp::EqWord(a, b)),
        "ltu" => Ok(Hyp::LtU(a, b)),
        "leu" => Ok(Hyp::LeU(a, b)),
        other => Err(format!("unknown hyp tag `{other}`")),
    }
}

/// Encodes a [`SideCond`].
pub fn encode_side_cond(c: &SideCond) -> Json {
    match c {
        SideCond::Lt(a, b) => Json::Arr(vec![Json::str("lt"), encode_expr(a), encode_expr(b)]),
        SideCond::Le(a, b) => Json::Arr(vec![Json::str("le"), encode_expr(a), encode_expr(b)]),
        SideCond::NonZero(a) => Json::Arr(vec![Json::str("nonzero"), encode_expr(a)]),
    }
}

/// Decodes a [`SideCond`].
pub fn decode_side_cond(j: &Json) -> DecodeResult<SideCond> {
    let (tag, rest) = tagged(j, "side condition")?;
    let t = tag.as_str();
    match t {
        "lt" | "le" => {
            arity(rest, 2, t)?;
            let a = decode_expr(field(rest, 0, t)?)?;
            let b = decode_expr(field(rest, 1, t)?)?;
            Ok(if t == "lt" { SideCond::Lt(a, b) } else { SideCond::Le(a, b) })
        }
        "nonzero" => {
            arity(rest, 1, t)?;
            Ok(SideCond::NonZero(decode_expr(field(rest, 0, t)?)?))
        }
        other => Err(format!("unknown side-condition tag `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Specs
// ---------------------------------------------------------------------------

/// Encodes a [`MonadCtx`] (`"pure"` or the monad's name).
pub fn encode_monad_ctx(m: MonadCtx) -> Json {
    match m {
        MonadCtx::Pure => Json::str("pure"),
        MonadCtx::Monadic(k) => encode_monad_kind(k),
    }
}

/// Decodes a [`MonadCtx`].
pub fn decode_monad_ctx(j: &Json) -> DecodeResult<MonadCtx> {
    if j.as_str() == Some("pure") {
        Ok(MonadCtx::Pure)
    } else {
        decode_monad_kind(j).map(MonadCtx::Monadic)
    }
}

/// Encodes a [`TraceSpec`].
pub fn encode_trace_spec(t: TraceSpec) -> Json {
    Json::str(match t {
        TraceSpec::Unchanged => "unchanged",
        TraceSpec::MirrorsSource => "mirrors-source",
    })
}

/// Decodes a [`TraceSpec`].
pub fn decode_trace_spec(j: &Json) -> DecodeResult<TraceSpec> {
    match j.as_str() {
        Some("unchanged") => Ok(TraceSpec::Unchanged),
        Some("mirrors-source") => Ok(TraceSpec::MirrorsSource),
        _ => Err(format!("expected trace spec, got {}", j.render_compact())),
    }
}

/// Encodes an [`ArgSpec`].
pub fn encode_arg_spec(a: &ArgSpec) -> Json {
    match a {
        ArgSpec::Scalar { name, param, kind } => Json::Arr(vec![
            Json::str("scalar"),
            Json::str(name.clone()),
            Json::str(param.clone()),
            encode_scalar_kind(*kind),
        ]),
        ArgSpec::ArrayPtr { name, param, elem } => Json::Arr(vec![
            Json::str("arrayptr"),
            Json::str(name.clone()),
            Json::str(param.clone()),
            encode_elem_kind(*elem),
        ]),
        ArgSpec::LenOf { name, param, elem } => Json::Arr(vec![
            Json::str("lenof"),
            Json::str(name.clone()),
            Json::str(param.clone()),
            encode_elem_kind(*elem),
        ]),
        ArgSpec::CellPtr { name, param } => Json::Arr(vec![
            Json::str("cellptr"),
            Json::str(name.clone()),
            Json::str(param.clone()),
        ]),
    }
}

/// Decodes an [`ArgSpec`].
pub fn decode_arg_spec(j: &Json) -> DecodeResult<ArgSpec> {
    let (tag, rest) = tagged(j, "arg spec")?;
    let t = tag.as_str();
    match t {
        "scalar" => {
            arity(rest, 3, t)?;
            Ok(ArgSpec::Scalar {
                name: str_field(rest, 0, t)?,
                param: str_field(rest, 1, t)?,
                kind: decode_scalar_kind(field(rest, 2, t)?)?,
            })
        }
        "arrayptr" | "lenof" => {
            arity(rest, 3, t)?;
            let name = str_field(rest, 0, t)?;
            let param = str_field(rest, 1, t)?;
            let elem = decode_elem_kind(field(rest, 2, t)?)?;
            Ok(if t == "arrayptr" {
                ArgSpec::ArrayPtr { name, param, elem }
            } else {
                ArgSpec::LenOf { name, param, elem }
            })
        }
        "cellptr" => {
            arity(rest, 2, t)?;
            Ok(ArgSpec::CellPtr {
                name: str_field(rest, 0, t)?,
                param: str_field(rest, 1, t)?,
            })
        }
        other => Err(format!("unknown arg-spec tag `{other}`")),
    }
}

/// Encodes a [`RetSpec`].
pub fn encode_ret_spec(r: &RetSpec) -> Json {
    match r {
        RetSpec::Scalar { name, kind } => Json::Arr(vec![
            Json::str("scalar"),
            Json::str(name.clone()),
            encode_scalar_kind(*kind),
        ]),
        RetSpec::InPlace { param } => {
            Json::Arr(vec![Json::str("inplace"), Json::str(param.clone())])
        }
    }
}

/// Decodes a [`RetSpec`].
pub fn decode_ret_spec(j: &Json) -> DecodeResult<RetSpec> {
    let (tag, rest) = tagged(j, "ret spec")?;
    let t = tag.as_str();
    match t {
        "scalar" => {
            arity(rest, 2, t)?;
            Ok(RetSpec::Scalar {
                name: str_field(rest, 0, t)?,
                kind: decode_scalar_kind(field(rest, 1, t)?)?,
            })
        }
        "inplace" => {
            arity(rest, 1, t)?;
            Ok(RetSpec::InPlace { param: str_field(rest, 0, t)? })
        }
        other => Err(format!("unknown ret-spec tag `{other}`")),
    }
}

/// Encodes a [`FnSpec`].
pub fn encode_fn_spec(s: &FnSpec) -> Json {
    Json::obj([
        ("name", Json::str(s.name.clone())),
        ("args", Json::Arr(s.args.iter().map(encode_arg_spec).collect())),
        ("rets", Json::Arr(s.rets.iter().map(encode_ret_spec).collect())),
        ("monad", encode_monad_ctx(s.monad)),
        ("trace", encode_trace_spec(s.trace)),
        ("hints", Json::Arr(s.hints.iter().map(encode_hyp).collect())),
    ])
}

/// Decodes a [`FnSpec`].
pub fn decode_fn_spec(j: &Json) -> DecodeResult<FnSpec> {
    Ok(FnSpec {
        name: obj_str(j, "name", "fn spec")?,
        args: obj_arr(j, "args", "fn spec")?
            .iter()
            .map(decode_arg_spec)
            .collect::<DecodeResult<Vec<ArgSpec>>>()?,
        rets: obj_arr(j, "rets", "fn spec")?
            .iter()
            .map(decode_ret_spec)
            .collect::<DecodeResult<Vec<RetSpec>>>()?,
        monad: decode_monad_ctx(obj_get(j, "monad", "fn spec")?)?,
        trace: decode_trace_spec(obj_get(j, "trace", "fn spec")?)?,
        hints: obj_arr(j, "hints", "fn spec")?
            .iter()
            .map(decode_hyp)
            .collect::<DecodeResult<Vec<Hyp>>>()?,
    })
}

// ---------------------------------------------------------------------------
// Loop invariants
// ---------------------------------------------------------------------------

fn encode_invariant_kind(k: &LoopInvariantKind) -> Json {
    match k {
        LoopInvariantKind::ArrayMapInPlace { ptr_local, elem, x, f, arr } => Json::Arr(vec![
            Json::str("mapinplace"),
            Json::str(ptr_local.clone()),
            encode_elem_kind(*elem),
            Json::str(x.clone()),
            encode_expr(f),
            encode_expr(arr),
        ]),
        LoopInvariantKind::ArrayFoldScalar { acc_local, elem, acc, x, f, init, arr } => {
            Json::Arr(vec![
                Json::str("foldscalar"),
                Json::str(acc_local.clone()),
                encode_elem_kind(*elem),
                Json::str(acc.clone()),
                Json::str(x.clone()),
                encode_expr(f),
                encode_expr(init),
                encode_expr(arr),
            ])
        }
        LoopInvariantKind::RangeFoldScalar { acc_local, i, acc, f, init, from } => {
            Json::Arr(vec![
                Json::str("rangefoldscalar"),
                Json::str(acc_local.clone()),
                Json::str(i.clone()),
                Json::str(acc.clone()),
                encode_expr(f),
                encode_expr(init),
                encode_expr(from),
            ])
        }
        LoopInvariantKind::RangeFoldArrayPut { ptr_local, elem, i, acc, f, init, from } => {
            Json::Arr(vec![
                Json::str("rangefoldarrayput"),
                Json::str(ptr_local.clone()),
                encode_elem_kind(*elem),
                Json::str(i.clone()),
                Json::str(acc.clone()),
                encode_expr(f),
                encode_expr(init),
                encode_expr(from),
            ])
        }
    }
}

fn decode_invariant_kind(j: &Json) -> DecodeResult<LoopInvariantKind> {
    let (tag, rest) = tagged(j, "loop-invariant kind")?;
    let t = tag.as_str();
    match t {
        "mapinplace" => {
            arity(rest, 5, t)?;
            Ok(LoopInvariantKind::ArrayMapInPlace {
                ptr_local: str_field(rest, 0, t)?,
                elem: decode_elem_kind(field(rest, 1, t)?)?,
                x: str_field(rest, 2, t)?,
                f: decode_expr(field(rest, 3, t)?)?,
                arr: decode_expr(field(rest, 4, t)?)?,
            })
        }
        "foldscalar" => {
            arity(rest, 7, t)?;
            Ok(LoopInvariantKind::ArrayFoldScalar {
                acc_local: str_field(rest, 0, t)?,
                elem: decode_elem_kind(field(rest, 1, t)?)?,
                acc: str_field(rest, 2, t)?,
                x: str_field(rest, 3, t)?,
                f: decode_expr(field(rest, 4, t)?)?,
                init: decode_expr(field(rest, 5, t)?)?,
                arr: decode_expr(field(rest, 6, t)?)?,
            })
        }
        "rangefoldscalar" => {
            arity(rest, 6, t)?;
            Ok(LoopInvariantKind::RangeFoldScalar {
                acc_local: str_field(rest, 0, t)?,
                i: str_field(rest, 1, t)?,
                acc: str_field(rest, 2, t)?,
                f: decode_expr(field(rest, 3, t)?)?,
                init: decode_expr(field(rest, 4, t)?)?,
                from: decode_expr(field(rest, 5, t)?)?,
            })
        }
        "rangefoldarrayput" => {
            arity(rest, 7, t)?;
            Ok(LoopInvariantKind::RangeFoldArrayPut {
                ptr_local: str_field(rest, 0, t)?,
                elem: decode_elem_kind(field(rest, 1, t)?)?,
                i: str_field(rest, 2, t)?,
                acc: str_field(rest, 3, t)?,
                f: decode_expr(field(rest, 4, t)?)?,
                init: decode_expr(field(rest, 5, t)?)?,
                from: decode_expr(field(rest, 6, t)?)?,
            })
        }
        other => Err(format!("unknown loop-invariant tag `{other}`")),
    }
}

/// Encodes a [`LoopInvariant`].
pub fn encode_loop_invariant(inv: &LoopInvariant) -> Json {
    Json::obj([
        ("index_local", Json::str(inv.index_local.clone())),
        (
            "bindings",
            Json::Arr(
                inv.bindings
                    .iter()
                    .map(|(n, e)| Json::Arr(vec![Json::str(n.clone()), encode_expr(e)]))
                    .collect(),
            ),
        ),
        ("kind", encode_invariant_kind(&inv.kind)),
    ])
}

/// Decodes a [`LoopInvariant`].
pub fn decode_loop_invariant(j: &Json) -> DecodeResult<LoopInvariant> {
    let bindings = obj_arr(j, "bindings", "loop invariant")?
        .iter()
        .map(|pair| {
            let items = pair
                .as_arr()
                .ok_or_else(|| "invariant binding is not a pair".to_string())?;
            match items {
                [name, expr] => {
                    let name = name
                        .as_str()
                        .ok_or_else(|| "binding name is not a string".to_string())?;
                    Ok((name.to_string(), decode_expr(expr)?))
                }
                _ => Err("invariant binding is not a pair".to_string()),
            }
        })
        .collect::<DecodeResult<Vec<(Ident, rupicola_lang::Expr)>>>()?;
    Ok(LoopInvariant {
        index_local: obj_str(j, "index_local", "loop invariant")?,
        bindings,
        kind: decode_invariant_kind(obj_get(j, "kind", "loop invariant")?)?,
    })
}

// ---------------------------------------------------------------------------
// Derivations
// ---------------------------------------------------------------------------

/// Encodes a [`SideCondRecord`].
pub fn encode_side_cond_record(r: &SideCondRecord) -> Json {
    Json::obj([
        ("cond", encode_side_cond(&r.cond)),
        ("solver", Json::str(r.solver.as_ref())),
        ("hyps", Json::Arr(r.hyps.iter().map(|h| encode_hyp(&h.hyp)).collect())),
    ])
}

/// Decodes a [`SideCondRecord`]. Names come back owned (`Cow::Owned`);
/// equality with the original records is still by content.
pub fn decode_side_cond_record(j: &Json) -> DecodeResult<SideCondRecord> {
    let hyps = obj_arr(j, "hyps", "side-condition record")?
        .iter()
        .map(decode_hyp)
        .collect::<DecodeResult<Vec<Hyp>>>()?;
    Ok(SideCondRecord {
        cond: decode_side_cond(obj_get(j, "cond", "side-condition record")?)?,
        solver: obj_str(j, "solver", "side-condition record")?.into(),
        hyps: hyps.into_iter().map(crate::goal::HypEntry::shared).collect(),
    })
}

/// Encodes a [`DerivationNode`] (recursively).
pub fn encode_derivation_node(n: &DerivationNode) -> Json {
    let invariant = match &n.invariant {
        Some(inv) => encode_loop_invariant(inv),
        None => Json::Null,
    };
    Json::obj([
        ("lemma", Json::str(n.lemma.as_ref())),
        ("focus", Json::str(n.focus.clone())),
        (
            "side_conds",
            Json::Arr(n.side_conds.iter().map(encode_side_cond_record).collect()),
        ),
        ("invariant", invariant),
        (
            "children",
            Json::Arr(n.children.iter().map(encode_derivation_node).collect()),
        ),
    ])
}

/// Decodes a [`DerivationNode`].
pub fn decode_derivation_node(j: &Json) -> DecodeResult<DerivationNode> {
    let invariant = match obj_get(j, "invariant", "derivation node")? {
        Json::Null => None,
        other => Some(decode_loop_invariant(other)?),
    };
    Ok(DerivationNode {
        lemma: obj_str(j, "lemma", "derivation node")?.into(),
        focus: obj_str(j, "focus", "derivation node")?,
        side_conds: obj_arr(j, "side_conds", "derivation node")?
            .iter()
            .map(decode_side_cond_record)
            .collect::<DecodeResult<Vec<SideCondRecord>>>()?,
        invariant,
        children: obj_arr(j, "children", "derivation node")?
            .iter()
            .map(decode_derivation_node)
            .collect::<DecodeResult<Vec<DerivationNode>>>()?,
    })
}

/// Encodes a [`Derivation`], *including* its stored integrity counters.
pub fn encode_derivation(d: &Derivation) -> Json {
    Json::obj([
        ("root", encode_derivation_node(&d.root)),
        ("side_cond_count", Json::U64(d.side_cond_count as u64)),
        ("node_count", Json::U64(d.node_count as u64)),
    ])
}

/// Decodes a [`Derivation`]. The integrity counters are taken from the
/// artifact verbatim — NOT recomputed — so that the checker's recount
/// still guards against witness corruption after a round-trip.
pub fn decode_derivation(j: &Json) -> DecodeResult<Derivation> {
    Ok(Derivation {
        root: decode_derivation_node(obj_get(j, "root", "derivation")?)?,
        side_cond_count: obj_usize(j, "side_cond_count", "derivation")?,
        node_count: obj_usize(j, "node_count", "derivation")?,
    })
}

// ---------------------------------------------------------------------------
// Stats and the full artifact
// ---------------------------------------------------------------------------

/// Encodes [`CompileStats`].
pub fn encode_compile_stats(s: &CompileStats) -> Json {
    Json::obj([
        ("lemma_applications", Json::U64(s.lemma_applications as u64)),
        ("side_conditions", Json::U64(s.side_conditions as u64)),
        ("solver_cache_hits", Json::U64(s.solver_cache_hits as u64)),
        ("solver_cache_misses", Json::U64(s.solver_cache_misses as u64)),
        (
            "solver_confirm_compares",
            Json::U64(s.solver_confirm_compares as u64),
        ),
        ("opt_passes_applied", Json::U64(s.opt_passes_applied as u64)),
        ("opt_passes_rolled_back", Json::U64(s.opt_passes_rolled_back as u64)),
        ("opt_sites_rewritten", Json::U64(s.opt_sites_rewritten as u64)),
    ])
}

/// Decodes [`CompileStats`].
pub fn decode_compile_stats(j: &Json) -> DecodeResult<CompileStats> {
    Ok(CompileStats {
        lemma_applications: obj_usize(j, "lemma_applications", "compile stats")?,
        side_conditions: obj_usize(j, "side_conditions", "compile stats")?,
        solver_cache_hits: obj_usize(j, "solver_cache_hits", "compile stats")?,
        solver_cache_misses: obj_usize(j, "solver_cache_misses", "compile stats")?,
        solver_confirm_compares: obj_usize(j, "solver_confirm_compares", "compile stats")?,
        opt_passes_applied: obj_usize(j, "opt_passes_applied", "compile stats")?,
        opt_passes_rolled_back: obj_usize(j, "opt_passes_rolled_back", "compile stats")?,
        opt_sites_rewritten: obj_usize(j, "opt_sites_rewritten", "compile stats")?,
    })
}

/// Encodes a full [`CompiledFunction`] artifact.
pub fn encode_compiled_function(cf: &CompiledFunction) -> Json {
    Json::obj([
        ("function", encode_bfunction(&cf.function)),
        (
            "linked",
            Json::Arr(cf.linked.iter().map(encode_bfunction).collect()),
        ),
        ("derivation", encode_derivation(&cf.derivation)),
        ("model", encode_model(&cf.model)),
        ("spec", encode_fn_spec(&cf.spec)),
        (
            "optimized",
            match &cf.optimized {
                Some(f) => encode_bfunction(f),
                None => Json::Null,
            },
        ),
        ("stats", encode_compile_stats(&cf.stats)),
    ])
}

/// Decodes a full [`CompiledFunction`] artifact.
///
/// Decoding alone confers no trust: the store's verified-load path hands
/// the result to the independent checker before serving it.
pub fn decode_compiled_function(j: &Json) -> DecodeResult<CompiledFunction> {
    Ok(CompiledFunction {
        function: decode_bfunction(obj_get(j, "function", "compiled function")?)?,
        derivation: decode_derivation(obj_get(j, "derivation", "compiled function")?)?,
        model: decode_model(obj_get(j, "model", "compiled function")?)?,
        spec: decode_fn_spec(obj_get(j, "spec", "compiled function")?)?,
        linked: obj_arr(j, "linked", "compiled function")?
            .iter()
            .map(decode_bfunction)
            .collect::<DecodeResult<Vec<_>>>()?,
        optimized: match obj_get(j, "optimized", "compiled function")? {
            Json::Null => None,
            j => Some(decode_bfunction(j)?),
        },
        stats: decode_compile_stats(obj_get(j, "stats", "compiled function")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_lang::dsl::*;
    use rupicola_lang::ElemKind;

    fn sample_spec() -> FnSpec {
        FnSpec::new(
            "upstr",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::Scalar { name: "k".into(), param: "k".into(), kind: ScalarKind::Word },
                ArgSpec::CellPtr { name: "c".into(), param: "c".into() },
            ],
            vec![
                RetSpec::InPlace { param: "s".into() },
                RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Bool },
            ],
        )
        .with_monad(MonadCtx::Monadic(rupicola_lang::MonadKind::Writer))
        .with_trace(TraceSpec::MirrorsSource)
        .with_hint(Hyp::LtU(var("i"), array_len_b(var("s"))))
    }

    #[test]
    fn fn_specs_round_trip() {
        let spec = sample_spec();
        let j = encode_fn_spec(&spec);
        assert_eq!(decode_fn_spec(&j).unwrap(), spec);
        let reparsed = rupicola_lang::json::parse(&j.render()).unwrap();
        assert_eq!(decode_fn_spec(&reparsed).unwrap(), spec);
    }

    #[test]
    fn derivations_round_trip_with_invariants_and_counters() {
        let mut node = DerivationNode::leaf("compile_map", "ListArray.map …");
        node.side_conds.push(SideCondRecord {
            cond: SideCond::Lt(var("i"), var("n")),
            solver: "lia".into(),
            hyps: vec![Hyp::EqWord(var("i"), word_lit(0))].into_iter().map(crate::goal::HypEntry::shared).collect(),
        });
        node.invariant = Some(LoopInvariant {
            index_local: "i".into(),
            bindings: vec![("s0".into(), var("s"))],
            kind: LoopInvariantKind::ArrayMapInPlace {
                ptr_local: "s".into(),
                elem: ElemKind::Byte,
                x: "b".into(),
                f: byte_or(var("b"), byte_lit(0x20)),
                arr: var("s0"),
            },
        });
        let d = Derivation::new(
            DerivationNode::leaf("compile_let", "let/n s := …")
                .with_child(node)
                .with_child(DerivationNode::leaf("done", "s")),
        );
        let j = encode_derivation(&d);
        assert_eq!(decode_derivation(&j).unwrap(), d);
        let reparsed = rupicola_lang::json::parse(&j.render()).unwrap();
        assert_eq!(decode_derivation(&reparsed).unwrap(), d);
    }

    #[test]
    fn counters_pass_through_verbatim() {
        // A tampered counter must survive the round-trip *tampered*, so the
        // checker can catch it: the codec must not silently repair witnesses.
        let mut d = Derivation::new(DerivationNode::leaf("done", "x"));
        d.node_count = 99;
        let back = decode_derivation(&encode_derivation(&d)).unwrap();
        assert_eq!(back.node_count, 99);
    }

    #[test]
    fn all_invariant_kinds_round_trip() {
        let kinds = [
            LoopInvariantKind::ArrayFoldScalar {
                acc_local: "acc".into(),
                elem: ElemKind::Word,
                acc: "a".into(),
                x: "x".into(),
                f: word_add(var("a"), var("x")),
                init: word_lit(0),
                arr: var("ws"),
            },
            LoopInvariantKind::RangeFoldScalar {
                acc_local: "acc".into(),
                i: "i".into(),
                acc: "a".into(),
                f: word_mul(var("a"), var("i")),
                init: word_lit(1),
                from: word_lit(2),
            },
        ];
        for kind in kinds {
            let inv = LoopInvariant { index_local: "i".into(), bindings: vec![], kind };
            let j = encode_loop_invariant(&inv);
            assert_eq!(decode_loop_invariant(&j).unwrap(), inv);
        }
    }

    #[test]
    fn decode_rejects_mangled_specs() {
        for bad in [
            r#"["scalar","a","x","float"]"#,
            r#"["inplace"]"#,
            r#"{"name":"f"}"#,
        ] {
            let j = rupicola_lang::json::parse(bad).unwrap();
            assert!(
                decode_arg_spec(&j).is_err() && decode_fn_spec(&j).is_err(),
                "accepted {bad}"
            );
        }
    }
}
