//! Derivations: the proof witnesses produced by relational compilation.
//!
//! In Coq, each run of Rupicola produces a proof term checked by the
//! kernel. Here, each run produces a [`Derivation`]: a tree with one node
//! per lemma application, recording the goal it discharged, the side
//! conditions it generated (with the solver that discharged each and the
//! hypotheses in scope), and any inferred loop invariant. The trusted
//! checker (`crate::check`) re-validates this witness: structurally (every
//! lemma registered, every side condition re-solved) and behaviourally
//! (differential execution plus runtime invariant checking).

use crate::goal::SideCond;
use crate::invariant::LoopInvariant;
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A discharged side condition, as recorded in a derivation node.
///
/// Name fields are `Cow<'static, str>`: in the overwhelmingly common case
/// they are the `&'static str` names lemmas and solvers register under, and
/// borrowing them keeps witness construction allocation-free; fault
/// injection and tests can still store arbitrary owned strings. Equality is
/// by content either way.
#[derive(Debug, Clone, PartialEq)]
pub struct SideCondRecord {
    /// The condition.
    pub cond: SideCond,
    /// The registered solver that discharged it.
    pub solver: Cow<'static, str>,
    /// The hypotheses that were in scope. Shared (`Arc`) because the memo
    /// cache and every record of a repeated condition hold the same
    /// snapshot; equality is still structural.
    pub hyps: Arc<[crate::goal::HypRef]>,
}

impl fmt::Display for SideCondRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}  [by {}]", self.cond, self.solver)
    }
}

/// One lemma application.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationNode {
    /// Name of the lemma (as registered in the hint database) or of the
    /// engine-internal rule (`"done"`).
    pub lemma: Cow<'static, str>,
    /// A rendering of the source focus the lemma consumed.
    pub focus: String,
    /// Discharged side conditions.
    pub side_conds: Vec<SideCondRecord>,
    /// Inferred loop invariant, for loop lemmas.
    pub invariant: Option<LoopInvariant>,
    /// Subderivations (premises), in order.
    pub children: Vec<DerivationNode>,
}

impl DerivationNode {
    /// A leaf node for lemma `lemma` applied to `focus`.
    pub fn leaf(lemma: impl Into<Cow<'static, str>>, focus: impl Into<String>) -> Self {
        DerivationNode {
            lemma: lemma.into(),
            focus: focus.into(),
            side_conds: Vec::new(),
            invariant: None,
            children: Vec::new(),
        }
    }

    /// Adds a child (builder style).
    #[must_use]
    pub fn with_child(mut self, child: DerivationNode) -> Self {
        self.children.push(child);
        self
    }

    /// Total number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(DerivationNode::size).sum::<usize>()
    }

    /// Iterates over all nodes (preorder).
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a DerivationNode)) {
        visit(self);
        for c in &self.children {
            c.walk(visit);
        }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            write!(f, "  ")?;
        }
        write!(f, "{} ⊢ {}", self.lemma, self.focus)?;
        if let Some(inv) = &self.invariant {
            write!(f, "   (invariant: {inv})")?;
        }
        writeln!(f)?;
        for sc in &self.side_conds {
            for _ in 0..=depth {
                write!(f, "  ")?;
            }
            writeln!(f, "⊨ {sc}")?;
        }
        for c in &self.children {
            c.render(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for DerivationNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// The full witness of one compilation run.
///
/// `side_cond_count` and `node_count` are *integrity counters*: they are
/// computed once at construction, and the trusted checker recomputes both
/// from the tree and rejects the witness on any mismatch. A corruption
/// that drops a side-condition record or truncates children without
/// consistently re-counting is therefore caught structurally, before any
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Derivation {
    /// The derivation tree.
    pub root: DerivationNode,
    /// Number of side conditions discharged across the tree.
    pub side_cond_count: usize,
    /// Number of nodes in the tree.
    pub node_count: usize,
}

impl Derivation {
    /// Wraps a root node, computing summary statistics.
    pub fn new(root: DerivationNode) -> Self {
        let mut count = 0;
        root.walk(&mut |n| count += n.side_conds.len());
        let node_count = root.size();
        Derivation { root, side_cond_count: count, node_count }
    }

    /// Total number of lemma applications.
    pub fn size(&self) -> usize {
        self.root.size()
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.render(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_lang::dsl::*;

    #[test]
    fn derivation_counts_nodes_and_side_conds() {
        let mut node = DerivationNode::leaf("compile_map", "ListArray.map …");
        node.side_conds.push(SideCondRecord {
            cond: SideCond::Lt(var("i"), var("n")),
            solver: "lia".into(),
            hyps: Vec::new().into(),
        });
        let root = DerivationNode::leaf("compile_let", "let/n s := …")
            .with_child(node)
            .with_child(DerivationNode::leaf("done", "s"));
        let d = Derivation::new(root);
        assert_eq!(d.size(), 3);
        assert_eq!(d.side_cond_count, 1);
    }

    #[test]
    fn display_is_indented_tree() {
        let root = DerivationNode::leaf("a", "x").with_child(DerivationNode::leaf("b", "y"));
        let shown = format!("{}", Derivation::new(root));
        assert!(shown.contains("a ⊢ x"));
        assert!(shown.contains("  b ⊢ y"));
    }
}
