//! Side-condition solvers.
//!
//! Compilation lemmas emit logical side conditions — "tricky side conditions
//! on array bounds or integer overflows" (§3.1) — and registered solvers
//! discharge them. The default solver, [`Lia`], plays the role of Coq's
//! linear-arithmetic tactic that the paper plugs in "to handle index-bounds
//! side conditions" (§3.2): it combines
//!
//! - *interval analysis* of scalar terms (byte-typed subterms lie in
//!   `0..=255`, `x & 0xff` lies in `0..=255`, comparisons in `0..=1`, …),
//! - *hypothesis rewriting* using binding equations (`i = 0`), and
//! - *hypothesis matching* after linear normalization, with one step of
//!   transitive chaining.
//!
//! Both the compiler and the trusted checker run the solvers: the checker
//! re-solves every recorded side condition when re-validating a derivation.

use crate::goal::{Hyp, HypRef, SideCond};
use rupicola_lang::{Expr, ExprRef, PrimOp, Value};
use std::collections::BTreeMap;

/// A registered side-condition solver.
pub trait SideSolver: Send + Sync {
    /// Solver name, recorded in derivations.
    fn name(&self) -> &'static str;
    /// Attempts to discharge the condition under the hypotheses.
    fn solve(&self, cond: &SideCond, hyps: &[HypRef]) -> bool;
}

/// The built-in linear-arithmetic/interval solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lia;

impl SideSolver for Lia {
    fn name(&self) -> &'static str {
        "lia"
    }

    fn solve(&self, cond: &SideCond, hyps: &[HypRef]) -> bool {
        match cond {
            SideCond::Lt(a, b) => prove_lt(a, b, hyps, 3),
            SideCond::Le(a, b) => prove_le(a, b, hyps, 3),
            SideCond::NonZero(a) => {
                let a = rewrite(a, hyps, REWRITE_DEPTH);
                range_of(&a, hyps, 6).0 >= 1
            }
        }
    }
}

const MAX: u128 = u64::MAX as u128;

/// Hypothesis-rewriting budget: one unit per equation hop. Ghost renames
/// chain one `length s = length s'` equation per in-place update, so a
/// straight-line program with n array puts needs depth n to normalize the
/// final length back to the original (chacha20_block's feed-forward does
/// 16 in a row); 64 leaves headroom without letting a cyclic equation set
/// run away.
const REWRITE_DEPTH: usize = 64;

/// A linear normal form: `consts + Σ coeff·atom`, over ℤ.
///
/// Used only for *syntactic matching* of goals against hypotheses (where
/// wrap-around cannot change the verdict because both sides normalize the
/// same way); interval reasoning handles the semantic part.
#[derive(Debug, Clone, PartialEq)]
pub struct LinExpr {
    consts: i128,
    /// Atoms keyed by their interned id. Sound because id equality ⟺
    /// structural equality among live terms (the `ExprRef` in the value
    /// keeps each atom alive for the map's lifetime), and nothing
    /// observable depends on the *order* of atoms — `add` matches by key
    /// and the verdict-bearing queries only inspect coefficients. The
    /// pre-interning solver keyed by `format!("{e:?}")`, a whole-tree
    /// render per atom.
    terms: BTreeMap<u64, (i128, ExprRef)>,
}

impl LinExpr {
    fn constant(c: i128) -> Self {
        LinExpr { consts: c, terms: BTreeMap::new() }
    }

    fn atom(e: &Expr) -> Self {
        let atom = ExprRef::new(e.clone());
        let mut terms = BTreeMap::new();
        terms.insert(atom.id(), (1, atom));
        LinExpr { consts: 0, terms }
    }

    fn add(mut self, other: &LinExpr, sign: i128) -> Self {
        self.consts += sign * other.consts;
        for (k, (c, e)) in &other.terms {
            let entry = self.terms.entry(*k).or_insert((0, e.clone()));
            entry.0 += sign * c;
        }
        self.terms.retain(|_, (c, _)| *c != 0);
        self
    }

    fn scale(mut self, k: i128) -> Self {
        self.consts *= k;
        for (c, _) in self.terms.values_mut() {
            *c *= k;
        }
        self.terms.retain(|_, (c, _)| *c != 0);
        self
    }

    /// The constant value of a linear form with no atoms.
    pub fn as_constant(&self) -> Option<i128> {
        self.terms.is_empty().then_some(self.consts)
    }

    /// `self - other`, if the difference is a pure constant.
    fn diff_const(&self, other: &LinExpr) -> Option<i128> {
        let d = self.clone().add(other, -1);
        d.terms.is_empty().then_some(d.consts)
    }

    /// `self - k·other`, if the difference is a pure constant (used by the
    /// division-bound rule).
    fn diff_scaled_const(&self, other: &LinExpr, k: i128) -> Option<i128> {
        let d = self.clone().add(&other.clone().scale(k), -1);
        d.terms.is_empty().then_some(d.consts)
    }
}

fn lit_value(e: &Expr) -> Option<u64> {
    match e {
        Expr::Lit(v) => v.to_scalar_word(),
        _ => None,
    }
}

/// Linearizes a term (addition, subtraction, multiplication by literals and
/// denotation-preserving casts are interpreted; everything else is an atom).
pub fn linearize(e: &Expr) -> LinExpr {
    use PrimOp::*;
    match e {
        Expr::Lit(v) => match v.to_scalar_word() {
            Some(w) => LinExpr::constant(w as i128),
            None => LinExpr::atom(e),
        },
        Expr::Prim { op, args } if args.len() == 2 => {
            let (a, b) = (&args[0], &args[1]);
            match op {
                WAdd | NAdd => linearize(a).add(&linearize(b), 1),
                WSub => linearize(a).add(&linearize(b), -1),
                WMul | NMul => {
                    if let Some(k) = lit_value(a) {
                        linearize(b).scale(k as i128)
                    } else if let Some(k) = lit_value(b) {
                        linearize(a).scale(k as i128)
                    } else {
                        LinExpr::atom(e)
                    }
                }
                _ => LinExpr::atom(e),
            }
        }
        Expr::Prim { op, args }
            if args.len() == 1
                && matches!(op, WordOfNat | NatOfWord | WordOfByte | WordOfBool) =>
        {
            // Denotation-preserving injections: same number.
            linearize(&args[0])
        }
        _ => LinExpr::atom(e),
    }
}

/// Rewrites a term by substituting variable definitions from `EqWord`
/// hypotheses (`x = rhs`), to a bounded depth.
pub fn rewrite(e: &Expr, hyps: &[HypRef], depth: usize) -> Expr {
    if depth == 0 {
        return e.clone();
    }
    // Equations are oriented new-term = old-term (ghost renames record
    // `length s = length s'1`); rewriting left-to-right normalizes goals
    // toward the oldest form, in which the other hypotheses are phrased.
    for h in hyps {
        if let Hyp::EqWord(lhs, rhs) = &h.hyp {
            if lhs == e && rhs != e {
                return rewrite(rhs, hyps, depth - 1);
            }
        }
    }
    if matches!(e, Expr::Var(_)) {
        return e.clone();
    }
    // Structural recursion via substitution on the few shapes solvers see;
    // fall back to the original term otherwise.
    match e {
        Expr::Prim { op, args } => Expr::Prim {
            op: *op,
            args: args.iter().map(|a| rewrite(a, hyps, depth - 1)).collect(),
        },
        Expr::ArrayLen { elem, arr } => Expr::ArrayLen {
            elem: *elem,
            arr: rewrite(arr, hyps, depth - 1).boxed(),
        },
        _ => e.clone(),
    }
}

fn bits_mask(x: u128) -> u128 {
    if x == 0 {
        0
    } else {
        (1u128 << (128 - x.leading_zeros())) - 1
    }
}

/// Computes a sound interval `[lo, hi]` for the numeric denotation of a
/// scalar term, refined by hypotheses.
pub fn range_of(e: &Expr, hyps: &[HypRef], depth: usize) -> (u128, u128) {
    let base = range_of_raw(e, hyps, depth);
    refine_with_hyps(e, base, hyps, depth)
}

fn refine_with_hyps(e: &Expr, mut range: (u128, u128), hyps: &[HypRef], depth: usize) -> (u128, u128) {
    if depth == 0 {
        return range;
    }
    for h in hyps {
        match &h.hyp {
            Hyp::LtU(a, b) if a == e => {
                let (_, hi_b) = range_of_raw(b, hyps, depth - 1);
                if hi_b > 0 {
                    range.1 = range.1.min(hi_b - 1);
                }
            }
            Hyp::LeU(a, b) if a == e => {
                let (_, hi_b) = range_of_raw(b, hyps, depth - 1);
                range.1 = range.1.min(hi_b);
            }
            Hyp::LtU(a, b) if b == e => {
                let (lo_a, _) = range_of_raw(a, hyps, depth - 1);
                range.0 = range.0.max(lo_a + 1);
            }
            Hyp::LeU(a, b) if b == e => {
                let (lo_a, _) = range_of_raw(a, hyps, depth - 1);
                range.0 = range.0.max(lo_a);
            }
            Hyp::EqWord(a, b) if a == e => {
                let (lo_b, hi_b) = range_of_raw(b, hyps, depth - 1);
                range.0 = range.0.max(lo_b);
                range.1 = range.1.min(hi_b);
            }
            _ => {}
        }
    }
    range
}

#[allow(clippy::too_many_lines)]
fn range_of_raw(e: &Expr, hyps: &[HypRef], depth: usize) -> (u128, u128) {
    use PrimOp::*;
    if depth == 0 {
        return (0, MAX);
    }
    let r = |x: &Expr| range_of(x, hyps, depth - 1);
    match e {
        Expr::Lit(v) => match v {
            Value::Bool(b) => (u128::from(*b), u128::from(*b)),
            _ => match v.to_scalar_word() {
                Some(w) => (u128::from(w), u128::from(w)),
                None => (0, MAX),
            },
        },
        Expr::Var(_) => {
            // Definitions refine variables.
            for h in hyps {
                if let Hyp::EqWord(lhs, rhs) = &h.hyp {
                    if lhs == e && rhs != e {
                        return range_of(rhs, hyps, depth - 1);
                    }
                }
            }
            (0, MAX)
        }
        Expr::Prim { op, args } => {
            let bin = |f: &dyn Fn((u128, u128), (u128, u128)) -> (u128, u128)| {
                f(r(&args[0]), r(&args[1]))
            };
            match op {
                WAdd | NAdd => {
                    let ((la, ha), (lb, hb)) = (r(&args[0]), r(&args[1]));
                    if ha + hb <= MAX {
                        (la + lb, ha + hb)
                    } else {
                        (0, MAX)
                    }
                }
                WSub => {
                    let ((la, ha), (lb, hb)) = (r(&args[0]), r(&args[1]));
                    if la >= hb {
                        (la - hb, ha - lb)
                    } else {
                        (0, MAX)
                    }
                }
                NSub => {
                    let ((_, ha), _) = (r(&args[0]), r(&args[1]));
                    (0, ha)
                }
                WMul | NMul => {
                    let ((la, ha), (lb, hb)) = (r(&args[0]), r(&args[1]));
                    if ha.saturating_mul(hb) <= MAX {
                        (la * lb, ha * hb)
                    } else {
                        (0, MAX)
                    }
                }
                WDivU => bin(&|(la, ha), (lb, hb)| {
                    if lb >= 1 {
                        (la / hb.max(1), ha / lb)
                    } else {
                        (0, MAX)
                    }
                }),
                WRemU => bin(&|(_, ha), (lb, hb)| {
                    if lb >= 1 {
                        (0, ha.min(hb - 1))
                    } else {
                        (0, ha)
                    }
                }),
                WAnd => bin(&|(_, ha), (_, hb)| (0, ha.min(hb))),
                WOr | WXor => bin(&|(_, ha), (_, hb)| (0, bits_mask(ha.max(hb)))),
                WShl => {
                    if let Some(k) = lit_value(&args[1]) {
                        let (la, ha) = r(&args[0]);
                        let k = k & 63;
                        if ha << k <= MAX {
                            (la << k, ha << k)
                        } else {
                            (0, MAX)
                        }
                    } else {
                        (0, MAX)
                    }
                }
                WShr => {
                    if let Some(k) = lit_value(&args[1]) {
                        let (la, ha) = r(&args[0]);
                        (la >> (k & 63), ha >> (k & 63))
                    } else {
                        let (_, ha) = r(&args[0]);
                        (0, ha)
                    }
                }
                WSar => (0, MAX),
                BAdd | BSub | BShl => (0, 255),
                BShr => {
                    // A byte shifted right by a literal cannot exceed
                    // 255 >> k — the bound that puts `b >> 4` inside a
                    // 16-entry table (the hex-encoder's digit lookup).
                    if let Some(k) = lit_value(&args[1]) {
                        let (la, ha) = r(&args[0]);
                        (la.min(255) >> (k & 7), ha.min(255) >> (k & 7))
                    } else {
                        (0, 255)
                    }
                }
                BAnd => bin(&|(_, ha), (_, hb)| (0, ha.min(hb).min(255))),
                BOr | BXor => bin(&|(_, ha), (_, hb)| (0, bits_mask(ha.max(hb)).min(255))),
                WLtU | WLtS | WEq | BLtU | BEq | Not | BoolAnd | BoolOr | BoolEq | NLt | NEq => {
                    (0, 1)
                }
                WordOfByte => {
                    let (lo, hi) = r(&args[0]);
                    (lo, hi.min(255))
                }
                ByteOfWord => {
                    let (lo, hi) = r(&args[0]);
                    if hi <= 255 {
                        (lo, hi)
                    } else {
                        (0, 255)
                    }
                }
                WordOfNat | NatOfWord => r(&args[0]),
                WordOfBool => (0, 1),
            }
        }
        Expr::ArrayGet { elem, .. } => match elem {
            rupicola_lang::ElemKind::Byte => (0, 255),
            rupicola_lang::ElemKind::Word => (0, MAX),
        },
        Expr::TableGet { .. } => (0, MAX),
        Expr::If { then_, else_, .. } => {
            let (lt, ht) = r(then_);
            let (le_, he) = r(else_);
            (lt.min(le_), ht.max(he))
        }
        _ => (0, MAX),
    }
}

fn lin_eq(a: &Expr, b: &Expr) -> bool {
    linearize(a) == linearize(b)
}

fn prove_lt(a: &Expr, b: &Expr, hyps: &[HypRef], depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    let a = rewrite(a, hyps, REWRITE_DEPTH);
    let b = rewrite(b, hyps, REWRITE_DEPTH);
    let (_, ha) = range_of(&a, hyps, 6);
    let (lb, _) = range_of(&b, hyps, 6);
    if ha < lb {
        return true;
    }
    for h in hyps {
        match &h.hyp {
            Hyp::LtU(x, y) => {
                let (x, y) = (rewrite(x, hyps, REWRITE_DEPTH), rewrite(y, hyps, REWRITE_DEPTH));
                if lin_eq(&a, &x) && lin_eq(&b, &y) {
                    return true;
                }
                // Constant-offset shifting: from x < y conclude
                // x + da < y + db when da ≤ db and neither side wraps.
                let (la, lx, lb, ly) = (linearize(&a), linearize(&x), linearize(&b), linearize(&y));
                if let (Some(da), Some(db)) = (la.diff_const(&lx), lb.diff_const(&ly)) {
                    if da <= db {
                        let (lo_x, hi_x) = range_of(&x, hyps, 6);
                        let (lo_y, hi_y) = range_of(&y, hyps, 6);
                        let x_ok = if da >= 0 {
                            hi_x.checked_add(da as u128).is_some_and(|v| v <= MAX)
                        } else {
                            lo_x >= da.unsigned_abs()
                        };
                        let y_ok = if db >= 0 {
                            hi_y.checked_add(db as u128).is_some_and(|v| v <= MAX)
                        } else {
                            lo_y >= db.unsigned_abs()
                        };
                        if x_ok && y_ok {
                            return true;
                        }
                    }
                }
                // Division bound: from x < b' / m (or b' >> k) conclude
                // m·x + c < b' for 0 ≤ c ≤ m−1, since m·(b'/m) ≤ b'.
                if let Expr::Prim { op, args } = &y {
                    let m = match (op, lit_value(&args[1])) {
                        (PrimOp::WDivU, Some(m)) if m > 0 => Some(m as i128),
                        (PrimOp::WShr, Some(k)) if k < 63 => Some(1i128 << k),
                        _ => None,
                    };
                    if let Some(m) = m {
                        let lx = linearize(&x);
                        if lin_eq(&b, &args[0]) {
                            if let Some(c) = linearize(&a).diff_scaled_const(&lx, m) {
                                if (0..m).contains(&c) {
                                    return true;
                                }
                            }
                        }
                    }
                }
                // a ≤ x and x < y and y ≤ b.
                if lin_eq(&a, &x) && prove_le(&y, &b, hyps, depth - 1) {
                    return true;
                }
                if lin_eq(&b, &y) && prove_le(&a, &x, hyps, depth - 1) {
                    return true;
                }
            }
            Hyp::LeU(x, y) => {
                let (x, y) = (rewrite(x, hyps, REWRITE_DEPTH), rewrite(y, hyps, REWRITE_DEPTH));
                // a ≤ y (via x) and y < b.
                if lin_eq(&a, &x) && prove_lt(&y, &b, hyps, depth - 1) {
                    return true;
                }
            }
            Hyp::EqWord(..) => {}
        }
    }
    false
}

fn prove_le(a: &Expr, b: &Expr, hyps: &[HypRef], depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    let a = rewrite(a, hyps, REWRITE_DEPTH);
    let b = rewrite(b, hyps, REWRITE_DEPTH);
    if lin_eq(&a, &b) {
        return true;
    }
    let (_, ha) = range_of(&a, hyps, 6);
    let (lb, _) = range_of(&b, hyps, 6);
    if ha <= lb {
        return true;
    }
    for h in hyps {
        match &h.hyp {
            Hyp::LeU(x, y) | Hyp::LtU(x, y) => {
                let (x, y) = (rewrite(x, hyps, REWRITE_DEPTH), rewrite(y, hyps, REWRITE_DEPTH));
                if lin_eq(&a, &x) && lin_eq(&b, &y) {
                    return true;
                }
                if lin_eq(&a, &x) && prove_le(&y, &b, hyps, depth - 1) {
                    return true;
                }
            }
            Hyp::EqWord(..) => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_lang::dsl::*;

    fn lia(cond: SideCond, hyps: &[HypRef]) -> bool {
        Lia.solve(&cond, hyps)
    }

    fn hs(v: &[Hyp]) -> Vec<HypRef> {
        v.iter().cloned().map(crate::goal::HypEntry::shared).collect()
    }

    #[test]
    fn constants_compare_by_interval() {
        assert!(lia(SideCond::Lt(word_lit(3), word_lit(4)), &[]));
        assert!(!lia(SideCond::Lt(word_lit(4), word_lit(4)), &[]));
        assert!(lia(SideCond::Le(word_lit(4), word_lit(4)), &[]));
        assert!(lia(SideCond::NonZero(word_lit(1)), &[]));
        assert!(!lia(SideCond::NonZero(word_lit(0)), &[]));
    }

    #[test]
    fn byte_terms_fit_byte_tables() {
        // b & 0xff < 256 — the crc32 table-bound side condition.
        let idx = word_and(var("x"), word_lit(0xff));
        assert!(lia(SideCond::Lt(idx, word_lit(256)), &[]));
        // word_of_byte b < 256 — the fasta/upstr table pattern.
        let idx2 = word_of_byte(var("b"));
        assert!(lia(SideCond::Lt(idx2, word_lit(256)), &[]));
        // but an arbitrary word is not provably < 256.
        assert!(!lia(SideCond::Lt(var("x"), word_lit(256)), &[]));
    }

    #[test]
    fn loop_bound_hypothesis_matches() {
        // i < length s ⊢ i < length s
        let hyp = Hyp::LtU(var("i"), array_len_b(var("s")));
        assert!(lia(
            SideCond::Lt(var("i"), array_len_b(var("s"))),
            &hs(std::slice::from_ref(&hyp))
        ));
        // but not i < length t
        assert!(!lia(SideCond::Lt(var("i"), array_len_b(var("t"))), &hs(std::slice::from_ref(&hyp))));
    }

    #[test]
    fn equations_rewrite_goals() {
        // j = i, i < n ⊢ j < n
        let hyps = vec![
            Hyp::EqWord(var("j"), var("i")),
            Hyp::LtU(var("i"), var("n")),
        ];
        assert!(lia(SideCond::Lt(var("j"), var("n")), &hs(&hyps)));
    }

    #[test]
    fn linear_normalization_matches_offsets() {
        // i + 1 ≤ n from hyp i + 1 ≤ n written differently: 1 + i ≤ n.
        let hyps = vec![Hyp::LeU(word_add(word_lit(1), var("i")), var("n"))];
        assert!(lia(
            SideCond::Le(word_add(var("i"), word_lit(1)), var("n")),
            &hs(&hyps)
        ));
    }

    #[test]
    fn chaining_le_then_lt() {
        // a ≤ c, c < b ⊢ a < b
        let hyps = vec![Hyp::LeU(var("a"), var("c")), Hyp::LtU(var("c"), var("b"))];
        assert!(lia(SideCond::Lt(var("a"), var("b")), &hs(&hyps)));
    }

    #[test]
    fn nonzero_via_equation() {
        let hyps = vec![Hyp::EqWord(var("d"), word_lit(8))];
        assert!(lia(SideCond::NonZero(var("d")), &hs(&hyps)));
        assert!(!lia(SideCond::NonZero(var("e")), &hs(&hyps)));
    }

    #[test]
    fn range_of_tracks_shifts_and_masks() {
        assert_eq!(range_of(&word_shr(word_lit(1024), word_lit(3)), &[], 6), (128, 128));
        assert_eq!(range_of(&word_and(var("x"), word_lit(0x0f)), &[], 6), (0, 15));
        assert_eq!(range_of(&word_remu(var("x"), word_lit(10)), &[], 6), (0, 9));
        assert_eq!(range_of(&byte_of_word(var("x")), &[], 6), (0, 255));
        assert_eq!(range_of(&word_eq(var("x"), var("y")), &[], 6), (0, 1));
    }

    #[test]
    fn range_uses_hypotheses() {
        let hyps = vec![Hyp::LtU(var("i"), word_lit(100))];
        assert_eq!(range_of(&var("i"), &hs(&hyps), 6), (0, 99));
        // i*8 + 8 ≤ 800 given i < 100.
        assert!(lia(
            SideCond::Le(
                word_add(word_mul(var("i"), word_lit(8)), word_lit(8)),
                word_lit(800)
            ),
            &hs(&hyps)
        ));
    }

    #[test]
    fn mul_by_literal_linearizes() {
        let a = word_mul(var("i"), word_lit(8));
        let b = word_mul(word_lit(8), var("i"));
        assert!(lin_eq(&a, &b));
        assert!(!lin_eq(&a, &word_mul(var("i"), word_lit(4))));
    }

    #[test]
    fn offset_shifting_is_wrap_safe() {
        // i < len − 3, len < 2³² ⊢ i + 3 < len  (the utf8 window bound).
        let hyps = vec![
            Hyp::LtU(var("i"), word_sub(var("len"), word_lit(3))),
            Hyp::LtU(var("len"), word_lit(1 << 32)),
            Hyp::LeU(word_lit(4), var("len")),
        ];
        assert!(lia(
            SideCond::Lt(word_add(var("i"), word_lit(3)), var("len")),
            &hs(&hyps)
        ));
        // Without the range hint the no-wrap check fails and the rule
        // (soundly) declines.
        let no_range = vec![Hyp::LtU(var("i"), word_sub(var("len"), word_lit(3)))];
        assert!(!lia(
            SideCond::Lt(word_add(var("i"), word_lit(3)), var("len")),
            &hs(&no_range)
        ));
    }

    #[test]
    fn division_bound_rule() {
        // i < len / 2 ⊢ 2·i + 1 < len  (the ip checksum bound).
        let hyps = vec![Hyp::LtU(var("i"), word_divu(var("len"), word_lit(2)))];
        assert!(lia(
            SideCond::Lt(
                word_add(word_mul(word_lit(2), var("i")), word_lit(1)),
                var("len")
            ),
            &hs(&hyps)
        ));
        // And via a shift instead of a division.
        let hyps2 = vec![Hyp::LtU(var("i"), word_shr(var("len"), word_lit(1)))];
        assert!(lia(
            SideCond::Lt(word_mul(word_lit(2), var("i")), var("len")),
            &hs(&hyps2)
        ));
        // c ≥ m is out of range for the rule.
        assert!(!lia(
            SideCond::Lt(
                word_add(word_mul(word_lit(2), var("i")), word_lit(2)),
                var("len")
            ),
            &hs(&hyps)
        ));
    }

    #[test]
    fn casts_are_denotation_preserving_in_linear_form() {
        assert!(lin_eq(&word_of_nat(var("n")), &var("n")));
        assert!(lin_eq(
            &word_add(word_of_nat(var("n")), word_lit(1)),
            &word_add(var("n"), word_lit(1))
        ));
    }
}
