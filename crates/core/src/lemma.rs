//! Lemma traits and hint databases.
//!
//! "A relational compiler is just a collection of facts connecting target
//! programs to source programs" (§2.3). Here each *fact* is a value
//! implementing [`StmtLemma`] or [`ExprLemma`]: it inspects a goal, and if
//! its syntactic premises match, emits target code, discharges its side
//! conditions through the engine, and recursively compiles its continuation
//! premises. A [`HintDbs`] is the analog of Coq's hint databases: the
//! ordered collections of lemmas (and side-condition solvers) that
//! constitute a compiler.
//!
//! The search is deliberately *non-backtracking* — "compilers built with
//! Rupicola (almost) never backtrack" (§3.1): returning `Some(Err(…))` from
//! `try_apply` commits to the lemma and propagates the failure, so lemmas
//! do their (cheap, syntactic) applicability checks before committing.

use crate::derive::DerivationNode;
use crate::engine::Compiler;
use crate::error::CompileError;
use crate::goal::StmtGoal;
use crate::solver::{Lia, SideSolver};
use rupicola_bedrock::{BExpr, Cmd};
use rupicola_lang::Expr;
use std::fmt;
use std::sync::Arc;

/// The result of applying a statement lemma: the emitted command (covering
/// the *entire* remaining program, since lemmas compile their continuations
/// recursively) and the derivation node recording the application.
#[derive(Debug, Clone, PartialEq)]
pub struct Applied {
    /// Emitted Bedrock2 code.
    pub cmd: Cmd,
    /// Witness node.
    pub node: DerivationNode,
}

/// The result of applying an expression lemma.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedExpr {
    /// Emitted Bedrock2 expression.
    pub expr: BExpr,
    /// Witness node.
    pub node: DerivationNode,
}

/// A compilation lemma for the statement judgment (§3.3).
pub trait StmtLemma: Send + Sync {
    /// The lemma's name, recorded in derivations and checked on
    /// re-validation.
    fn name(&self) -> &'static str;

    /// Attempts to apply the lemma.
    ///
    /// - `None`: the lemma's premises do not match this goal; the engine
    ///   tries the next lemma.
    /// - `Some(Ok(applied))`: the lemma applied and all its premises
    ///   (side conditions, subgoals, continuation) were discharged.
    /// - `Some(Err(e))`: the lemma matched but a premise failed; the engine
    ///   does *not* backtrack and reports `e`.
    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>>;
}

/// A compilation lemma for the expression judgment (`EXPR m l E v`, §3.3).
pub trait ExprLemma: Send + Sync {
    /// The lemma's name.
    fn name(&self) -> &'static str;

    /// Attempts to compile `term` to a Bedrock2 expression under the
    /// symbolic state of `goal` (the ambient statement goal).
    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>>;
}

/// The hint databases making up a compiler: statement lemmas, expression
/// lemmas, and side-condition solvers, each tried in registration order.
#[derive(Clone)]
pub struct HintDbs {
    stmt: Vec<Arc<dyn StmtLemma>>,
    expr: Vec<Arc<dyn ExprLemma>>,
    solvers: Vec<Arc<dyn SideSolver>>,
}

impl fmt::Debug for HintDbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HintDbs")
            .field("stmt", &self.stmt.iter().map(|l| l.name()).collect::<Vec<_>>())
            .field("expr", &self.expr.iter().map(|l| l.name()).collect::<Vec<_>>())
            .field(
                "solvers",
                &self.solvers.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Default for HintDbs {
    fn default() -> Self {
        Self::new()
    }
}

impl HintDbs {
    /// An empty database with only the built-in `lia` solver. This is
    /// Rupicola's "minimal core": all constructs (even `let`) come from
    /// extension crates.
    pub fn new() -> Self {
        HintDbs {
            stmt: Vec::new(),
            expr: Vec::new(),
            solvers: vec![Arc::new(Lia)],
        }
    }

    /// Registers a statement lemma (tried after existing ones).
    pub fn register_stmt<L: StmtLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.stmt.push(Arc::new(lemma));
        self
    }

    /// Registers a statement lemma ahead of existing ones (a
    /// program-specific override).
    pub fn register_stmt_front<L: StmtLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.stmt.insert(0, Arc::new(lemma));
        self
    }

    /// Registers an expression lemma.
    pub fn register_expr<L: ExprLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.expr.push(Arc::new(lemma));
        self
    }

    /// Registers an expression lemma ahead of existing ones.
    pub fn register_expr_front<L: ExprLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.expr.insert(0, Arc::new(lemma));
        self
    }

    /// Registers a side-condition solver.
    pub fn register_solver<S: SideSolver + 'static>(&mut self, solver: S) -> &mut Self {
        self.solvers.push(Arc::new(solver));
        self
    }

    /// Registers a side-condition solver ahead of the existing ones.
    pub fn register_solver_front<S: SideSolver + 'static>(&mut self, solver: S) -> &mut Self {
        self.solvers.insert(0, Arc::new(solver));
        self
    }

    /// Statement lemmas, in application order.
    pub fn stmt_lemmas(&self) -> &[Arc<dyn StmtLemma>] {
        &self.stmt
    }

    /// Expression lemmas, in application order.
    pub fn expr_lemmas(&self) -> &[Arc<dyn ExprLemma>] {
        &self.expr
    }

    /// Side-condition solvers, in application order.
    pub fn solvers(&self) -> &[Arc<dyn SideSolver>] {
        &self.solvers
    }

    /// Whether a lemma with this name is registered (in either judgment) or
    /// is an engine-internal rule. The checker rejects derivations citing
    /// unknown lemmas.
    pub fn knows_lemma(&self, name: &str) -> bool {
        name == "done"
            || self.stmt.iter().any(|l| l.name() == name)
            || self.expr.iter().any(|l| l.name() == name)
    }

    /// All registered lemma names (statement then expression).
    pub fn lemma_names(&self) -> Vec<&'static str> {
        self.stmt
            .iter()
            .map(|l| l.name())
            .chain(self.expr.iter().map(|l| l.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl StmtLemma for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn try_apply(
            &self,
            _goal: &StmtGoal,
            _cx: &mut Compiler<'_>,
        ) -> Option<Result<Applied, CompileError>> {
            None
        }
    }

    #[test]
    fn registration_order_and_front() {
        struct Second;
        impl StmtLemma for Second {
            fn name(&self) -> &'static str {
                "second"
            }
            fn try_apply(
                &self,
                _goal: &StmtGoal,
                _cx: &mut Compiler<'_>,
            ) -> Option<Result<Applied, CompileError>> {
                None
            }
        }
        let mut dbs = HintDbs::new();
        dbs.register_stmt(Dummy);
        dbs.register_stmt_front(Second);
        let names: Vec<_> = dbs.stmt_lemmas().iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["second", "dummy"]);
    }

    #[test]
    fn knows_builtin_done_and_registered() {
        let mut dbs = HintDbs::new();
        assert!(dbs.knows_lemma("done"));
        assert!(!dbs.knows_lemma("dummy"));
        dbs.register_stmt(Dummy);
        assert!(dbs.knows_lemma("dummy"));
    }

    #[test]
    fn default_db_has_lia() {
        let dbs = HintDbs::new();
        assert_eq!(dbs.solvers().len(), 1);
        assert_eq!(dbs.solvers()[0].name(), "lia");
        assert!(dbs.lemma_names().is_empty());
    }
}
