//! Lemma traits and hint databases.
//!
//! "A relational compiler is just a collection of facts connecting target
//! programs to source programs" (§2.3). Here each *fact* is a value
//! implementing [`StmtLemma`] or [`ExprLemma`]: it inspects a goal, and if
//! its syntactic premises match, emits target code, discharges its side
//! conditions through the engine, and recursively compiles its continuation
//! premises. A [`HintDbs`] is the analog of Coq's hint databases: the
//! ordered collections of lemmas (and side-condition solvers) that
//! constitute a compiler.
//!
//! The search is deliberately *non-backtracking* — "compilers built with
//! Rupicola (almost) never backtrack" (§3.1): returning `Some(Err(…))` from
//! `try_apply` commits to the lemma and propagates the failure, so lemmas
//! do their (cheap, syntactic) applicability checks before committing.

use crate::derive::DerivationNode;
use crate::engine::Compiler;
use crate::error::CompileError;
use crate::goal::StmtGoal;
use crate::solver::{Lia, SideSolver};
use rupicola_bedrock::{BExpr, Cmd};
use rupicola_lang::Expr;
use std::fmt;
use std::sync::Arc;

/// The head constructor of a source term — the dispatch key of the lemma
/// index.
///
/// Every [`Expr`] variant maps to exactly one `HeadKey` via [`HeadKey::of`].
/// A lemma whose premises start with a syntactic match on the goal's head
/// (which is almost all of them: `let Expr::Let { .. } = &goal.prog else
/// { return None }`) declares the heads it can match through
/// [`StmtLemma::dispatch`] / [`ExprLemma::dispatch`]; the engine then skips
/// it entirely for goals with any other head, instead of paying a
/// `catch_unwind`-guarded `try_apply` call that is guaranteed to decline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HeadKey {
    /// `Expr::Var`.
    Var,
    /// `Expr::Lit`.
    Lit,
    /// `Expr::Prim`.
    Prim,
    /// `Expr::Extern`.
    Extern,
    /// `Expr::Let`.
    Let,
    /// `Expr::Copy`.
    Copy,
    /// `Expr::Stack`.
    Stack,
    /// `Expr::If`.
    If,
    /// `Expr::Pair`.
    Pair,
    /// `Expr::Fst`.
    Fst,
    /// `Expr::Snd`.
    Snd,
    /// `Expr::CellGet`.
    CellGet,
    /// `Expr::CellPut`.
    CellPut,
    /// `Expr::ArrayLen`.
    ArrayLen,
    /// `Expr::ArrayGet`.
    ArrayGet,
    /// `Expr::ArrayPut`.
    ArrayPut,
    /// `Expr::TableGet`.
    TableGet,
    /// `Expr::ArrayMap`.
    ArrayMap,
    /// `Expr::ArrayFold`.
    ArrayFold,
    /// `Expr::RangeFold`.
    RangeFold,
    /// `Expr::RangeFoldBreak`.
    RangeFoldBreak,
    /// `Expr::RangeFoldM`.
    RangeFoldM,
    /// `Expr::Ret`.
    Ret,
    /// `Expr::Bind`.
    Bind,
    /// `Expr::NondetBytes`.
    NondetBytes,
    /// `Expr::NondetWord`.
    NondetWord,
    /// `Expr::IoRead`.
    IoRead,
    /// `Expr::IoWrite`.
    IoWrite,
    /// `Expr::WriterTell`.
    WriterTell,
    /// `Expr::FreeOp`.
    FreeOp,
}

impl HeadKey {
    /// Number of head keys (= number of `Expr` variants).
    pub const COUNT: usize = 30;

    /// All head keys, in discriminant order.
    pub const ALL: [HeadKey; HeadKey::COUNT] = [
        HeadKey::Var,
        HeadKey::Lit,
        HeadKey::Prim,
        HeadKey::Extern,
        HeadKey::Let,
        HeadKey::Copy,
        HeadKey::Stack,
        HeadKey::If,
        HeadKey::Pair,
        HeadKey::Fst,
        HeadKey::Snd,
        HeadKey::CellGet,
        HeadKey::CellPut,
        HeadKey::ArrayLen,
        HeadKey::ArrayGet,
        HeadKey::ArrayPut,
        HeadKey::TableGet,
        HeadKey::ArrayMap,
        HeadKey::ArrayFold,
        HeadKey::RangeFold,
        HeadKey::RangeFoldBreak,
        HeadKey::RangeFoldM,
        HeadKey::Ret,
        HeadKey::Bind,
        HeadKey::NondetBytes,
        HeadKey::NondetWord,
        HeadKey::IoRead,
        HeadKey::IoWrite,
        HeadKey::WriterTell,
        HeadKey::FreeOp,
    ];

    /// The head key of a term.
    pub fn of(e: &Expr) -> HeadKey {
        match e {
            Expr::Var(_) => HeadKey::Var,
            Expr::Lit(_) => HeadKey::Lit,
            Expr::Prim { .. } => HeadKey::Prim,
            Expr::Extern { .. } => HeadKey::Extern,
            Expr::Let { .. } => HeadKey::Let,
            Expr::Copy(_) => HeadKey::Copy,
            Expr::Stack(_) => HeadKey::Stack,
            Expr::If { .. } => HeadKey::If,
            Expr::Pair(..) => HeadKey::Pair,
            Expr::Fst(_) => HeadKey::Fst,
            Expr::Snd(_) => HeadKey::Snd,
            Expr::CellGet(_) => HeadKey::CellGet,
            Expr::CellPut { .. } => HeadKey::CellPut,
            Expr::ArrayLen { .. } => HeadKey::ArrayLen,
            Expr::ArrayGet { .. } => HeadKey::ArrayGet,
            Expr::ArrayPut { .. } => HeadKey::ArrayPut,
            Expr::TableGet { .. } => HeadKey::TableGet,
            Expr::ArrayMap { .. } => HeadKey::ArrayMap,
            Expr::ArrayFold { .. } => HeadKey::ArrayFold,
            Expr::RangeFold { .. } => HeadKey::RangeFold,
            Expr::RangeFoldBreak { .. } => HeadKey::RangeFoldBreak,
            Expr::RangeFoldM { .. } => HeadKey::RangeFoldM,
            Expr::Ret { .. } => HeadKey::Ret,
            Expr::Bind { .. } => HeadKey::Bind,
            Expr::NondetBytes { .. } => HeadKey::NondetBytes,
            Expr::NondetWord { .. } => HeadKey::NondetWord,
            Expr::IoRead => HeadKey::IoRead,
            Expr::IoWrite(_) => HeadKey::IoWrite,
            Expr::WriterTell(_) => HeadKey::WriterTell,
            Expr::FreeOp { .. } => HeadKey::FreeOp,
        }
    }
}

/// A lemma's dispatch declaration: the set of goal heads it can possibly
/// match.
///
/// This is an *applicability bound*, not a semantic contract: declaring
/// `Heads(&[HeadKey::Let])` promises that `try_apply` returns `None` for
/// every goal whose head is not `Let`, so the engine may skip the call.
/// Declaring a head the lemma then declines is fine (the engine just pays
/// the call); omitting a head the lemma *would* match is a dispatch bug —
/// the equivalence battery (indexed vs forced-linear byte-identical
/// derivations) exists to catch exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// The lemma may match any goal; it is consulted for every head (the
    /// default, always safe).
    Wildcard,
    /// The lemma can only match goals whose head is in the given set.
    Heads(&'static [HeadKey]),
}

fn head_key_from_usize(i: usize) -> HeadKey {
    HeadKey::ALL[i]
}

impl Dispatch {
    fn admits(self, head: HeadKey) -> bool {
        match self {
            Dispatch::Wildcard => true,
            Dispatch::Heads(hs) => hs.contains(&head),
        }
    }
}

/// How the engine walks a hint database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Per-head lemma index (the default): for each goal, only the lemmas
    /// whose [`Dispatch`] admits the goal's head are tried, in registration
    /// order. Provably order-preserving: the index for each head is the
    /// registration sequence with non-matching lemmas removed, and removed
    /// lemmas are exactly those whose `try_apply` would have returned
    /// `None`.
    #[default]
    Indexed,
    /// The seed engine's behavior: every lemma is tried in registration
    /// order for every goal, and the side-condition memo cache is disabled.
    /// This is the reference mode the equivalence battery compares
    /// [`DispatchMode::Indexed`] against, and the `serial` baseline of the
    /// `speed` harness.
    Linear,
}

/// The result of applying a statement lemma: the emitted command (covering
/// the *entire* remaining program, since lemmas compile their continuations
/// recursively) and the derivation node recording the application.
#[derive(Debug, Clone, PartialEq)]
pub struct Applied {
    /// Emitted Bedrock2 code.
    pub cmd: Cmd,
    /// Witness node.
    pub node: DerivationNode,
}

/// The result of applying an expression lemma.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedExpr {
    /// Emitted Bedrock2 expression.
    pub expr: BExpr,
    /// Witness node.
    pub node: DerivationNode,
}

/// A compilation lemma for the statement judgment (§3.3).
pub trait StmtLemma: Send + Sync {
    /// The lemma's name, recorded in derivations and checked on
    /// re-validation.
    fn name(&self) -> &'static str;

    /// Attempts to apply the lemma.
    ///
    /// - `None`: the lemma's premises do not match this goal; the engine
    ///   tries the next lemma.
    /// - `Some(Ok(applied))`: the lemma applied and all its premises
    ///   (side conditions, subgoals, continuation) were discharged.
    /// - `Some(Err(e))`: the lemma matched but a premise failed; the engine
    ///   does *not* backtrack and reports `e`.
    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>>;

    /// The goal heads this lemma can match (see [`Dispatch`]). The default
    /// is [`Dispatch::Wildcard`] — always sound, never skipped.
    fn dispatch(&self) -> Dispatch {
        Dispatch::Wildcard
    }
}

/// A compilation lemma for the expression judgment (`EXPR m l E v`, §3.3).
pub trait ExprLemma: Send + Sync {
    /// The lemma's name.
    fn name(&self) -> &'static str;

    /// Attempts to compile `term` to a Bedrock2 expression under the
    /// symbolic state of `goal` (the ambient statement goal).
    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>>;

    /// The term heads this lemma can match (see [`Dispatch`]). The default
    /// is [`Dispatch::Wildcard`].
    fn dispatch(&self) -> Dispatch {
        Dispatch::Wildcard
    }
}

/// The hint databases making up a compiler: statement lemmas, expression
/// lemmas, and side-condition solvers, each tried in registration order.
#[derive(Clone)]
pub struct HintDbs {
    stmt: Vec<Arc<dyn StmtLemma>>,
    expr: Vec<Arc<dyn ExprLemma>>,
    solvers: Vec<Arc<dyn SideSolver>>,
    mode: DispatchMode,
    solver_memo: bool,
    /// Per-head candidate lists: `stmt_index[head as usize]` holds the
    /// indices (into `stmt`) of the lemmas whose dispatch admits `head`, in
    /// registration order. Rebuilt on every registration.
    stmt_index: Vec<Vec<u32>>,
    expr_index: Vec<Vec<u32>>,
    /// Identity orders, used in [`DispatchMode::Linear`].
    stmt_all: Vec<u32>,
    expr_all: Vec<u32>,
}

impl fmt::Debug for HintDbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HintDbs")
            .field("stmt", &self.stmt.iter().map(|l| l.name()).collect::<Vec<_>>())
            .field("expr", &self.expr.iter().map(|l| l.name()).collect::<Vec<_>>())
            .field(
                "solvers",
                &self.solvers.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Default for HintDbs {
    fn default() -> Self {
        Self::new()
    }
}

impl HintDbs {
    /// An empty database with only the built-in `lia` solver. This is
    /// Rupicola's "minimal core": all constructs (even `let`) come from
    /// extension crates.
    pub fn new() -> Self {
        HintDbs {
            stmt: Vec::new(),
            expr: Vec::new(),
            solvers: vec![Arc::new(Lia)],
            mode: DispatchMode::Indexed,
            solver_memo: true,
            stmt_index: vec![Vec::new(); HeadKey::COUNT],
            expr_index: vec![Vec::new(); HeadKey::COUNT],
            stmt_all: Vec::new(),
            expr_all: Vec::new(),
        }
    }

    /// Registers a statement lemma (tried after existing ones).
    pub fn register_stmt<L: StmtLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.register_stmt_arc(Arc::new(lemma))
    }

    /// Registers an already-boxed statement lemma (tried after existing
    /// ones). Lets callers rebuild databases from the `Arc`s of another
    /// database's [`HintDbs::stmt_lemmas`] — the equivalence battery uses
    /// this to compile with random lemma subsets.
    pub fn register_stmt_arc(&mut self, lemma: Arc<dyn StmtLemma>) -> &mut Self {
        // Appending preserves the order of everything already indexed, so
        // the buckets extend incrementally — no full rebuild.
        let i = self.stmt.len() as u32;
        let dispatch = lemma.dispatch();
        self.stmt.push(lemma);
        self.stmt_all.push(i);
        for (h, bucket) in self.stmt_index.iter_mut().enumerate() {
            if dispatch.admits(head_key_from_usize(h)) {
                bucket.push(i);
            }
        }
        self
    }

    /// Registers a statement lemma ahead of existing ones (a
    /// program-specific override).
    pub fn register_stmt_front<L: StmtLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.stmt.insert(0, Arc::new(lemma));
        self.rebuild_stmt_index();
        self
    }

    /// Registers an expression lemma.
    pub fn register_expr<L: ExprLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.register_expr_arc(Arc::new(lemma))
    }

    /// Registers an already-boxed expression lemma (see
    /// [`HintDbs::register_stmt_arc`]).
    pub fn register_expr_arc(&mut self, lemma: Arc<dyn ExprLemma>) -> &mut Self {
        let i = self.expr.len() as u32;
        let dispatch = lemma.dispatch();
        self.expr.push(lemma);
        self.expr_all.push(i);
        for (h, bucket) in self.expr_index.iter_mut().enumerate() {
            if dispatch.admits(head_key_from_usize(h)) {
                bucket.push(i);
            }
        }
        self
    }

    /// Registers an expression lemma ahead of existing ones.
    pub fn register_expr_front<L: ExprLemma + 'static>(&mut self, lemma: L) -> &mut Self {
        self.expr.insert(0, Arc::new(lemma));
        self.rebuild_expr_index();
        self
    }

    /// Registers a side-condition solver.
    pub fn register_solver<S: SideSolver + 'static>(&mut self, solver: S) -> &mut Self {
        self.register_solver_arc(Arc::new(solver))
    }

    /// Registers an already-boxed side-condition solver (see
    /// [`HintDbs::register_stmt_arc`]).
    pub fn register_solver_arc(&mut self, solver: Arc<dyn SideSolver>) -> &mut Self {
        self.solvers.push(solver);
        self
    }

    /// Registers a side-condition solver ahead of the existing ones.
    pub fn register_solver_front<S: SideSolver + 'static>(&mut self, solver: S) -> &mut Self {
        self.solvers.insert(0, Arc::new(solver));
        self
    }

    /// Sets how the engine walks this database (see [`DispatchMode`]).
    /// [`DispatchMode::Linear`] also disables the side-condition memo
    /// cache, making the engine behave exactly like the pre-index seed.
    pub fn set_dispatch_mode(&mut self, mode: DispatchMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// The active dispatch mode.
    pub fn dispatch_mode(&self) -> DispatchMode {
        self.mode
    }

    /// Enables/disables the engine's side-condition memo cache for runs
    /// using this database (default: enabled). Disable it when registering
    /// *stateful* solvers whose verdict is not a pure function of
    /// `(cond, hyps)`.
    pub fn set_solver_memo(&mut self, enabled: bool) -> &mut Self {
        self.solver_memo = enabled;
        self
    }

    /// Whether runs using this database memoize side-condition discharges.
    /// False in [`DispatchMode::Linear`] regardless of the flag.
    pub fn solver_memo_enabled(&self) -> bool {
        self.solver_memo && self.mode == DispatchMode::Indexed
    }

    fn rebuild_stmt_index(&mut self) {
        self.stmt_all = (0..self.stmt.len() as u32).collect();
        for (h, bucket) in self.stmt_index.iter_mut().enumerate() {
            bucket.clear();
            let head = head_key_from_usize(h);
            bucket.extend(
                self.stmt
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.dispatch().admits(head))
                    .map(|(i, _)| i as u32),
            );
        }
    }

    fn rebuild_expr_index(&mut self) {
        self.expr_all = (0..self.expr.len() as u32).collect();
        for (h, bucket) in self.expr_index.iter_mut().enumerate() {
            bucket.clear();
            let head = head_key_from_usize(h);
            bucket.extend(
                self.expr
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.dispatch().admits(head))
                    .map(|(i, _)| i as u32),
            );
        }
    }

    /// The statement-lemma try order for a goal with program `prog`:
    /// indices into [`HintDbs::stmt_lemmas`], in registration order, with
    /// (in [`DispatchMode::Indexed`]) lemmas that cannot match the head
    /// removed.
    pub fn stmt_order(&self, prog: &Expr) -> &[u32] {
        match self.mode {
            DispatchMode::Linear => &self.stmt_all,
            DispatchMode::Indexed => &self.stmt_index[HeadKey::of(prog) as usize],
        }
    }

    /// The expression-lemma try order for `term` (see
    /// [`HintDbs::stmt_order`]).
    pub fn expr_order(&self, term: &Expr) -> &[u32] {
        match self.mode {
            DispatchMode::Linear => &self.expr_all,
            DispatchMode::Indexed => &self.expr_index[HeadKey::of(term) as usize],
        }
    }

    /// Statement lemmas, in application order.
    pub fn stmt_lemmas(&self) -> &[Arc<dyn StmtLemma>] {
        &self.stmt
    }

    /// Expression lemmas, in application order.
    pub fn expr_lemmas(&self) -> &[Arc<dyn ExprLemma>] {
        &self.expr
    }

    /// Side-condition solvers, in application order.
    pub fn solvers(&self) -> &[Arc<dyn SideSolver>] {
        &self.solvers
    }

    /// Whether a lemma with this name is registered (in either judgment) or
    /// is an engine-internal rule. The checker rejects derivations citing
    /// unknown lemmas.
    pub fn knows_lemma(&self, name: &str) -> bool {
        name == "done"
            || self.stmt.iter().any(|l| l.name() == name)
            || self.expr.iter().any(|l| l.name() == name)
    }

    /// A canonical textual identity of this database *as a compiler
    /// configuration*: statement-lemma names in try order, then
    /// expression-lemma names, then solver names, then the dispatch mode
    /// and effective memo flag.
    ///
    /// Two databases with equal identity strings consult the same lemmas
    /// and solvers in the same order under the same engine configuration —
    /// exactly the property the persistent artifact store's fingerprint
    /// needs: reordering lemmas, adding or removing one, switching
    /// [`DispatchMode`], or toggling the memo cache all change the string,
    /// so a cached artifact can never be served for a *different* compiler
    /// than the one that produced it. (Lemma *names* stand in for lemma
    /// *behavior*; a behavioral change under an unchanged name is caught
    /// by the verify-on-load checker pass instead.)
    pub fn identity_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256);
        s.push_str("stmt=");
        for l in &self.stmt {
            s.push_str(l.name());
            s.push(',');
        }
        s.push_str(";expr=");
        for l in &self.expr {
            s.push_str(l.name());
            s.push(',');
        }
        s.push_str(";solvers=");
        for sv in &self.solvers {
            s.push_str(sv.name());
            s.push(',');
        }
        let _ = write!(
            s,
            ";mode={:?};memo={}",
            self.mode,
            self.solver_memo_enabled()
        );
        s
    }

    /// All registered lemma names (statement then expression).
    pub fn lemma_names(&self) -> Vec<&'static str> {
        self.stmt
            .iter()
            .map(|l| l.name())
            .chain(self.expr.iter().map(|l| l.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl StmtLemma for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn try_apply(
            &self,
            _goal: &StmtGoal,
            _cx: &mut Compiler<'_>,
        ) -> Option<Result<Applied, CompileError>> {
            None
        }
    }

    #[test]
    fn registration_order_and_front() {
        struct Second;
        impl StmtLemma for Second {
            fn name(&self) -> &'static str {
                "second"
            }
            fn try_apply(
                &self,
                _goal: &StmtGoal,
                _cx: &mut Compiler<'_>,
            ) -> Option<Result<Applied, CompileError>> {
                None
            }
        }
        let mut dbs = HintDbs::new();
        dbs.register_stmt(Dummy);
        dbs.register_stmt_front(Second);
        let names: Vec<_> = dbs.stmt_lemmas().iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["second", "dummy"]);
    }

    #[test]
    fn knows_builtin_done_and_registered() {
        let mut dbs = HintDbs::new();
        assert!(dbs.knows_lemma("done"));
        assert!(!dbs.knows_lemma("dummy"));
        dbs.register_stmt(Dummy);
        assert!(dbs.knows_lemma("dummy"));
    }

    #[test]
    fn default_db_has_lia() {
        let dbs = HintDbs::new();
        assert_eq!(dbs.solvers().len(), 1);
        assert_eq!(dbs.solvers()[0].name(), "lia");
        assert!(dbs.lemma_names().is_empty());
    }
}
