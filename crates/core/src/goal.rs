//! Compilation goals: the judgments `{t; m; l; σ} ?c {P p}` of §3.3.
//!
//! A [`StmtGoal`] is the statement judgment: it packages the source program
//! remainder `p`, the symbolic machine state reached after the
//! already-derived prefix (locals, heap), the hypotheses learnt along the
//! way, the ambient monad (the lift of §3.4.1), and the postcondition slots
//! describing where results must end up. The Bedrock2 command `?c` is the
//! evar: it is *produced*, not stored in the goal.
//!
//! Hypotheses are the logical context used to discharge side conditions:
//! binding facts (`i = 0`), loop bounds (`i < length s`) and user hints
//! (§3.4.2's "incidental properties").

use rupicola_lang::intern::{name_bit, occ_bloom};
use rupicola_lang::{Expr, Ident, MonadKind};
use rupicola_sep::{HeapletId, SymHeap, SymLocals, SymValue};
use std::fmt;
use std::sync::Arc;

/// A hypothesis: a fact about source terms known to hold at this point.
///
/// All comparisons are on the numeric denotation of scalar terms (words,
/// bytes, naturals and booleans all denote numbers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Hyp {
    /// The two terms denote the same number.
    EqWord(Expr, Expr),
    /// Strict unsigned less-than.
    LtU(Expr, Expr),
    /// Unsigned less-than-or-equal.
    LeU(Expr, Expr),
}

impl Hyp {
    /// A copy sharing no term structure with `self` (see
    /// [`Expr::deep_clone`]; used by the reference engine configuration to
    /// keep the seed's copy discipline when snapshotting hypotheses).
    #[must_use]
    pub fn deep_clone(&self) -> Hyp {
        match self {
            Hyp::EqWord(a, b) => Hyp::EqWord(a.deep_clone(), b.deep_clone()),
            Hyp::LtU(a, b) => Hyp::LtU(a.deep_clone(), b.deep_clone()),
            Hyp::LeU(a, b) => Hyp::LeU(a.deep_clone(), b.deep_clone()),
        }
    }
}

impl fmt::Display for Hyp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hyp::EqWord(a, b) => write!(f, "{a} = {b}"),
            Hyp::LtU(a, b) => write!(f, "{a} < {b}"),
            Hyp::LeU(a, b) => write!(f, "{a} ≤ {b}"),
        }
    }
}

/// One entry of a goal's hypothesis snapshot: the hypothesis behind a
/// shared pointer (so snapshotting a goal bumps a reference count per
/// entry instead of deep-copying two term trees), plus the union of the
/// terms' variable-occurrence blooms, computed once at construction.
///
/// The bloom makes [`StmtGoal::shadow`]'s "does this hypothesis mention
/// the rebound name?" test O(1) for the common case (it does not): a
/// clear bit proves the name occurs nowhere in either term. Equality and
/// hashing delegate to the hypothesis itself — the bloom is derived data.
#[derive(Debug)]
pub struct HypEntry {
    /// The hypothesis.
    pub hyp: Hyp,
    occ: u64,
}

/// A shared hypothesis-snapshot entry. `Vec<HypRef>` clones in one memcpy
/// plus a reference-count bump per entry — this is what lets every
/// `let/n` rebinding snapshot a goal with hundreds of accumulated
/// hypotheses without an O(hyps × term-size) copy.
pub type HypRef = Arc<HypEntry>;

impl HypEntry {
    /// Wraps a hypothesis for a goal snapshot, precomputing its
    /// occurrence bloom.
    pub fn shared(hyp: Hyp) -> HypRef {
        let occ = match &hyp {
            Hyp::EqWord(a, b) | Hyp::LtU(a, b) | Hyp::LeU(a, b) => occ_bloom(a) | occ_bloom(b),
        };
        Arc::new(HypEntry { hyp, occ })
    }

    /// Whether either term *may* mention `name` (one-sided: `false` is
    /// definitive, `true` means "check exactly").
    pub fn may_mention(&self, name: &str) -> bool {
        self.occ & name_bit(name) != 0
    }
}

impl PartialEq for HypEntry {
    fn eq(&self, other: &Self) -> bool {
        self.hyp == other.hyp
    }
}

impl Eq for HypEntry {}

impl std::hash::Hash for HypEntry {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.hyp.hash(state);
    }
}

impl fmt::Display for HypEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.hyp.fmt(f)
    }
}

/// The evaluation prefix of a goal as a persistent chain: `(name,
/// definition)` equations in binding order, including ghost saves.
///
/// Goals snapshot this on every compiled statement, and for a straight-line
/// program the chain grows one equation per statement — with a `Vec` each
/// snapshot would copy the entire prefix (O(statements²) term clones per
/// compile, the dominant cost the speed harness measured before this
/// representation). The chain is append-only (nothing ever rewrites a
/// recorded definition — `shadow` renames hypotheses and state, not
/// history), so a snapshot is one `Arc` bump and a push is one allocation.
/// Readers that need binding order ([`StmtGoal::binding_defs`]) pay the
/// O(n) walk, which happens only when a loop invariant is recorded.
#[derive(Clone, Default)]
pub struct DefChain {
    head: Option<Arc<DefNode>>,
    len: usize,
}

#[derive(Debug)]
struct DefNode {
    name: Ident,
    value: Expr,
    prev: Option<Arc<DefNode>>,
}

impl DefChain {
    /// The empty chain.
    pub fn new() -> DefChain {
        DefChain::default()
    }

    /// Appends one `(name, definition)` equation. O(1).
    pub fn push(&mut self, entry: (Ident, Expr)) {
        self.head = Some(Arc::new(DefNode { name: entry.0, value: entry.1, prev: self.head.take() }));
        self.len += 1;
    }

    /// Number of recorded equations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no equations are recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The equations in binding (oldest-first) order. O(n).
    pub fn to_vec(&self) -> Vec<(Ident, Expr)> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.push((node.name.clone(), node.value.clone()));
            cur = node.prev.as_deref();
        }
        out.reverse();
        out
    }

    /// A copy sharing no term structure with `self` (the reference
    /// engine configuration's discipline; see [`StmtGoal::deep_clone`]).
    #[must_use]
    pub fn deep_clone(&self) -> DefChain {
        self.to_vec().into_iter().map(|(n, e)| (n, e.deep_clone())).collect()
    }
}

impl PartialEq for DefChain {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let (mut a, mut b) = (self.head.as_ref(), other.head.as_ref());
        while let (Some(x), Some(y)) = (a, b) {
            if Arc::ptr_eq(x, y) {
                return true; // shared tail: identical from here down
            }
            if x.name != y.name || x.value != y.value {
                return false;
            }
            (a, b) = (x.prev.as_ref(), y.prev.as_ref());
        }
        true
    }
}

impl Eq for DefChain {}

impl FromIterator<(Ident, Expr)> for DefChain {
    fn from_iter<I: IntoIterator<Item = (Ident, Expr)>>(iter: I) -> DefChain {
        let mut chain = DefChain::new();
        for entry in iter {
            chain.push(entry);
        }
        chain
    }
}

impl From<Vec<(Ident, Expr)>> for DefChain {
    fn from(v: Vec<(Ident, Expr)>) -> DefChain {
        v.into_iter().collect()
    }
}

impl fmt::Debug for DefChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

/// A side condition generated during compilation, to be discharged by a
/// registered solver.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SideCond {
    /// `idx < len` (an index-bounds obligation).
    Lt(Expr, Expr),
    /// `a ≤ b`.
    Le(Expr, Expr),
    /// `term ≠ 0` (e.g. a division guard).
    NonZero(Expr),
}

impl fmt::Display for SideCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SideCond::Lt(a, b) => write!(f, "{a} < {b}"),
            SideCond::Le(a, b) => write!(f, "{a} ≤ {b}"),
            SideCond::NonZero(a) => write!(f, "{a} ≠ 0"),
        }
    }
}

/// The ambient monad of the program being compiled (the lift of §3.4.1).
///
/// `Pure` bindings inside a monadic program are compiled by the same lemmas
/// as in pure programs — the judgment is phrased so that "lemmas about
/// nonmonadic terms apply regardless of the source program's ambient monad".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonadCtx {
    /// No ambient monad.
    #[default]
    Pure,
    /// The given monad, lifted into the postcondition.
    Monadic(MonadKind),
}

impl MonadCtx {
    /// Whether a `Ret`/`Bind` of monad `m` is admissible under this context.
    pub fn admits(self, m: MonadKind) -> bool {
        match self {
            MonadCtx::Pure => false,
            MonadCtx::Monadic(k) => k == m,
        }
    }
}

impl fmt::Display for MonadCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonadCtx::Pure => write!(f, "pure"),
            MonadCtx::Monadic(k) => write!(f, "{k}"),
        }
    }
}

/// Where one component of the final result must end up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetSlot {
    /// A scalar component, assigned to the named Bedrock2 local (which is
    /// one of the function's `rets`).
    ScalarTo(String),
    /// An array or cell component that must reside, at exit, in the given
    /// heaplet (the in-place output of the ABI's ensures clause).
    InHeaplet(HeapletId),
}

/// The postcondition skeleton: one slot per component of the model's result
/// (pairs are flattened left-to-right).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Post {
    /// Result slots, in order.
    pub slots: Vec<RetSlot>,
}

/// The statement-compilation judgment (minus the evar).
#[derive(Debug, Clone, PartialEq)]
pub struct StmtGoal {
    /// The source program remainder.
    pub prog: Expr,
    /// Symbolic Bedrock2 locals.
    pub locals: SymLocals,
    /// Symbolic heap (separation-logic context).
    pub heap: SymHeap,
    /// Hypotheses available to side-condition solvers, as shared
    /// snapshot entries (see [`HypEntry`]).
    pub hyps: Vec<HypRef>,
    /// The ambient monad.
    pub monad: MonadCtx,
    /// Result slots.
    pub post: Post,
    /// The evaluation prefix: `(name, definition)` equations in binding
    /// order, including ghost saves. Re-evaluating this chain from the
    /// function's inputs reconstructs every bound value — the checker uses
    /// it to evaluate loop-invariant terms at runtime. Monadic definitions
    /// are not recorded (they are not re-evaluable offline).
    pub defs: DefChain,
}

impl StmtGoal {
    /// Rebinds source name `name`: every occurrence of `Var name` in the
    /// symbolic state (locals, heap contents and lengths, hypotheses) is
    /// renamed to the ghost `ghost`, preserving meaning, so that `name` can
    /// be re-bound to a new value (the paper's `let/n acc := acc + 1`
    /// pattern).
    pub fn shadow(&mut self, name: &str, ghost: &str) {
        let replacement = Expr::Var(ghost.to_string());
        let sub = |e: &Expr| rupicola_sep::subst(e, name, &replacement);
        let names: Vec<String> = self.locals.iter().map(|(n, _)| n.to_string()).collect();
        for n in names {
            if let Some(SymValue::Scalar(k, term)) = self.locals.get(&n).cloned() {
                self.locals.set(n, SymValue::Scalar(k, sub(&term)));
            }
        }
        let ids: Vec<HeapletId> = self.heap.iter().map(|(id, _)| id).collect();
        for id in ids {
            if let Some(h) = self.heap.get_mut(id) {
                h.content = rupicola_sep::subst(&h.content, name, &replacement);
                if let Some(len) = &h.len {
                    h.len = Some(rupicola_sep::subst(len, name, &replacement));
                }
            }
        }
        for h in &mut self.hyps {
            // Bloom gate: most hypotheses do not mention the rebound name
            // (a straight-line program accumulates one equation per past
            // statement, almost all about other names), and a clear bit
            // proves it without walking either term.
            if !h.may_mention(name) {
                continue;
            }
            let rewritten = match &h.hyp {
                Hyp::EqWord(a, b) => Hyp::EqWord(sub(a), sub(b)),
                Hyp::LtU(a, b) => Hyp::LtU(sub(a), sub(b)),
                Hyp::LeU(a, b) => Hyp::LeU(sub(a), sub(b)),
            };
            *h = HypEntry::shared(rewritten);
        }
    }

    /// Appends a hypothesis to the snapshot.
    pub fn push_hyp(&mut self, h: Hyp) {
        self.hyps.push(HypEntry::shared(h));
    }

    /// Appends every hypothesis in `hyps` to the snapshot.
    pub fn extend_hyps<I: IntoIterator<Item = Hyp>>(&mut self, hyps: I) {
        self.hyps.extend(hyps.into_iter().map(HypEntry::shared));
    }

    /// The `(name, definition)` evaluation prefix (see the `defs` field).
    pub fn binding_defs(&self) -> Vec<(Ident, Expr)> {
        self.defs.to_vec()
    }

    /// A copy sharing no term structure with `self`: the program remainder,
    /// every locals binding, heaplet content/length, hypothesis, and
    /// definition equation is rebuilt node by node
    /// ([`Expr::deep_clone`]).
    ///
    /// With `Box<Expr>` subterms (the seed representation) this is what
    /// `clone()` always did; with [`rupicola_lang::ExprRef`] sharing,
    /// `clone()` is a handful of reference-count bumps. The reference
    /// (`Linear`) engine configuration calls this wherever the seed engine
    /// cloned a goal, so that the serial baseline the speed harness
    /// measures preserves the seed compiler's allocation behavior (see
    /// `Compiler::clone_goal`).
    #[must_use]
    pub fn deep_clone(&self) -> StmtGoal {
        StmtGoal {
            prog: self.prog.deep_clone(),
            locals: self.locals.deep_clone(),
            heap: self.heap.deep_clone(),
            hyps: self.hyps.iter().map(|h| HypEntry::shared(h.hyp.deep_clone())).collect(),
            monad: self.monad,
            post: self.post.clone(),
            defs: self.defs.deep_clone(),
        }
    }
}

impl fmt::Display for StmtGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{ locals := {}", self.locals)?;
        writeln!(f, "  mem    := {}", self.heap)?;
        if !self.hyps.is_empty() {
            write!(f, "  hyps   := ")?;
            for (i, h) in self.hyps.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{h}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  monad  := {} }}", self.monad)?;
        write!(f, "?c {{ pred ({}) }}", self.prog)
    }
}

/// Flattens a (possibly nested-pair) result term into its components,
/// left-to-right, one level per pair: `(a, (b, c))` becomes `[a, b, c]`.
pub fn flatten_result(term: &Expr) -> Vec<&Expr> {
    match term {
        Expr::Pair(a, b) => {
            let mut out = flatten_result(a);
            out.extend(flatten_result(b));
            out
        }
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_lang::dsl::*;
    use rupicola_sep::ScalarKind;

    fn goal_with_acc() -> StmtGoal {
        let mut locals = SymLocals::new();
        locals.set("acc", SymValue::Scalar(ScalarKind::Word, var("acc")));
        StmtGoal {
            prog: var("acc"),
            locals,
            heap: SymHeap::new(),
            hyps: vec![HypEntry::shared(Hyp::EqWord(var("acc"), word_lit(0)))],
            monad: MonadCtx::Pure,
            post: Post::default(),
            defs: vec![("acc".to_string(), word_lit(0))].into(),
        }
    }

    #[test]
    fn shadow_renames_state_not_prog() {
        let mut g = goal_with_acc();
        g.shadow("acc", "acc'0");
        let (term, _) = g.locals.get("acc").unwrap().scalar_term().unwrap();
        assert_eq!(term, &var("acc'0"));
        assert_eq!(g.hyps[0].hyp, Hyp::EqWord(var("acc'0"), word_lit(0)));
        assert_eq!(g.prog, var("acc")); // program text untouched
    }

    #[test]
    fn shadow_rewrites_heap_contents() {
        let mut g = goal_with_acc();
        g.heap.add(rupicola_sep::Heaplet {
            kind: rupicola_sep::HeapletKind::Array { elem: rupicola_lang::ElemKind::Byte },
            content: array_put_b(var("s"), word_lit(0), byte_lit(1)),
            len: Some(array_len_b(var("s"))),
            ptr_name: "&s".into(),
        });
        g.shadow("s", "s'1");
        let (_, h) = g.heap.iter().next().unwrap();
        assert_eq!(h.content, array_put_b(var("s'1"), word_lit(0), byte_lit(1)));
        assert_eq!(h.len, Some(array_len_b(var("s'1"))));
    }

    #[test]
    fn binding_defs_extracts_equations() {
        let g = goal_with_acc();
        assert_eq!(g.binding_defs(), vec![("acc".to_string(), word_lit(0))]);
    }

    #[test]
    fn flatten_result_unnests_pairs() {
        let t = pair(var("a"), pair(var("b"), var("c")));
        let parts = flatten_result(&t);
        assert_eq!(parts, vec![&var("a"), &var("b"), &var("c")]);
        assert_eq!(flatten_result(&var("x")), vec![&var("x")]);
    }

    #[test]
    fn monad_ctx_admits() {
        use rupicola_lang::MonadKind::*;
        assert!(MonadCtx::Monadic(Io).admits(Io));
        assert!(!MonadCtx::Monadic(Io).admits(Writer));
        assert!(!MonadCtx::Pure.admits(Io));
    }

    #[test]
    fn goal_display_mentions_all_parts() {
        let g = goal_with_acc();
        let shown = format!("{g}");
        assert!(shown.contains("locals"));
        assert!(shown.contains("pred (acc)"));
        assert!(shown.contains("acc = 0"));
    }
}
