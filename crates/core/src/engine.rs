//! The proof-search engine: code-generating goal resolution.
//!
//! Compiling a program `s` is proving `∃ t, t ∼ s` (§2): the engine holds
//! the current goal, tries the registered lemmas in order, and lets the
//! matching lemma emit target code and recurse into its premises. There is
//! no backtracking; when nothing applies, the residual goal is surfaced to
//! the user (§3.1).
//!
//! The engine owns two built-in rules only:
//!
//! - fresh-name generation (for loop counters and ghost renames), and
//! - the terminal `done` rule, which checks that the final source term
//!   matches the postcondition slots (scalar results are compiled through
//!   the expression judgment; in-place results must already live in their
//!   designated heaplets).
//!
//! Everything else — even plain `let` — is an extension lemma.

use crate::derive::{Derivation, DerivationNode, SideCondRecord};
use crate::error::CompileError;
use crate::fnspec::FnSpec;
use crate::goal::{flatten_result, HypEntry, HypRef, RetSlot, SideCond, StmtGoal};
use crate::lemma::HintDbs;
use crate::limits::{EngineLimits, FreshNamesExhausted, ResourceKind};
use rupicola_bedrock::{BExpr, BFunction, BTable, Cmd};
use rupicola_lang::{Expr, Model};
use std::any::Any;
use std::cell::Cell;
use std::borrow::Cow;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

// --- panic isolation -------------------------------------------------------
//
// Extension lemmas and solvers are untrusted: a panic in `try_apply` or
// `solve` must degrade the *request*, not the process. Every such call is
// wrapped in `catch_unwind`. The default panic hook would still print a
// backtrace for each caught panic, so while a guarded call is on the stack
// we suppress the hook (per thread); the previous hook is chained for
// panics originating anywhere else.

thread_local! {
    static SUPPRESS_PANIC_HOOK: Cell<u32> = const { Cell::new(0) };
}

fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_HOOK.with(|s| s.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, catching panics without letting the global hook print.
/// Shared with the trusted checker, which re-runs the same untrusted
/// solvers during witness re-validation, and with the lemma-library
/// linter, which probes untrusted lemmas against benchmark goal shapes.
pub fn catch_quiet<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    install_quiet_hook();
    SUPPRESS_PANIC_HOOK.with(|s| s.set(s.get() + 1));
    let result = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_HOOK.with(|s| s.set(s.get() - 1));
    result
}

/// Canonical memo-cache hash for a side-condition discharge. The key
/// hashes the condition and the *full* hypothesis list: with the interned
/// representation, hashing a hypothesis reads its subterms' cached
/// structural hashes, so the whole list costs the sum of top-level node
/// widths, not a tree walk. (The pre-interning engine hashed only
/// `hyps.len()` because anything more meant re-walking every hypothesis
/// per solve — which made distinct hypothesis *contents* collide into one
/// bucket and pushed the cost onto confirmation scans.) The hash only
/// selects a bucket; every candidate in it is still confirmed by full
/// equality — itself an id comparison per shared subterm — so collisions
/// cannot corrupt the cache. `DefaultHasher::new()` is keyed with fixed
/// constants, so the hash is deterministic across runs and threads.
fn memo_hash(cond: &SideCond, hyps: &[HypRef]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cond.hash(&mut h);
    hyps.len().hash(&mut h);
    for hyp in hyps {
        hyp.hash(&mut h);
    }
    h.finish()
}

/// Renders a caught panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// Statistics of one compilation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Number of lemma applications (statement + expression).
    pub lemma_applications: usize,
    /// Number of side conditions discharged.
    pub side_conditions: usize,
    /// Side conditions discharged from the memo cache (no solver ran).
    pub solver_cache_hits: usize,
    /// Side conditions that went through the solver loop while the memo
    /// cache was enabled (cacheable misses). Zero when the cache is off.
    pub solver_cache_misses: usize,
    /// Candidate entries compared during memo-cache bucket scans (each is
    /// one `(cond, hyps)` equality confirm — an id comparison per shared
    /// subterm). Now that `memo_hash` keys on the full hypothesis list,
    /// buckets are near-singletons and this stays close to
    /// `solver_cache_hits + solver_cache_misses`; under the old
    /// length-only key it grew with every distinct hypothesis set that
    /// shared a count.
    pub solver_confirm_compares: usize,
    /// Optimization passes that ran and were kept (validated rewrites).
    /// Zero until the pass manager in `rupicola-opt` processes the
    /// function.
    pub opt_passes_applied: usize,
    /// Optimization passes that rewrote something but failed translation
    /// validation and were rolled back.
    pub opt_passes_rolled_back: usize,
    /// Total sites rewritten by kept optimization passes.
    pub opt_sites_rewritten: usize,
}

impl CompileStats {
    /// Cache hits as a fraction of cacheable side-condition discharges
    /// (`None` when the cache never engaged).
    pub fn solver_cache_hit_rate(&self) -> Option<f64> {
        let total = self.solver_cache_hits + self.solver_cache_misses;
        (total > 0).then(|| self.solver_cache_hits as f64 / total as f64)
    }
}

/// The compiler state threaded through lemma applications.
///
/// Lemmas receive `&mut Compiler` and use it to compile their continuation
/// premises ([`Compiler::compile_stmt`]), their expression subgoals
/// ([`Compiler::compile_expr`]), to discharge side conditions
/// ([`Compiler::solve`]), and to generate fresh names.
#[derive(Debug)]
pub struct Compiler<'a> {
    /// The model being compiled (for inline-table lookups).
    pub model: &'a Model,
    /// The hint databases in use.
    pub dbs: &'a HintDbs,
    /// Run statistics.
    pub stats: CompileStats,
    /// Separately verified Bedrock2 functions that the emitted code calls
    /// (the paper's "linking against separately compiled verified
    /// fragments"). Lemmas register callees with [`Compiler::link`].
    linked: Vec<BFunction>,
    fresh: usize,
    /// Resource budgets for this run.
    limits: EngineLimits,
    /// Current recursion depth of the statement/expression judgments.
    depth: usize,
    /// Solver invocations so far.
    solver_steps: usize,
    /// Stack of lemma names currently being applied (derivation root
    /// first); rendered into `ResourceExhausted`/`LemmaPanicked` errors.
    /// Names are `&'static str` so pushing a frame never allocates — this
    /// runs once per *tried* lemma, the engine's hottest edge.
    path: Vec<&'static str>,
    /// When this run started — the origin of the optional
    /// [`EngineLimits::max_wall_ms`] deadline. Only consulted when a
    /// deadline is configured, so the default configuration pays one
    /// `Option` branch per judgment and no clock reads.
    started: std::time::Instant,
    /// Side-condition memo cache: structural hash of `(cond, hyps)` →
    /// entries confirmed by full equality → index of the solver that
    /// discharged it. Only successful discharges are cached; a solver that
    /// declines or panics is always re-consulted.
    side_cache: HashMap<u64, Vec<SideCacheEntry>>,
    /// Loop-counter locals already emitted in this run. Two sibling loops
    /// whose binders share a source name must get *distinct* Bedrock2
    /// locals — the trusted checker matches loop-head invariants by
    /// counter local, so a collision would make one loop's invariant fire
    /// at the other's head (see `claim_loop_local`).
    loop_locals: std::collections::HashSet<String>,
}

/// One confirmed memo-cache entry: the condition and hypothesis snapshot
/// (compared in full on a hash-bucket hit) and the index of the solver
/// that discharged them.
type SideCacheEntry = (SideCond, Arc<[HypRef]>, usize);

impl<'a> Compiler<'a> {
    /// Creates a compiler for `model` using the lemmas of `dbs` with
    /// default [`EngineLimits`].
    pub fn new(model: &'a Model, dbs: &'a HintDbs) -> Self {
        Self::with_limits(model, dbs, EngineLimits::default())
    }

    /// Creates a compiler with explicit resource budgets.
    pub fn with_limits(model: &'a Model, dbs: &'a HintDbs, limits: EngineLimits) -> Self {
        Compiler {
            model,
            dbs,
            stats: CompileStats::default(),
            linked: Vec::new(),
            fresh: 0,
            limits,
            depth: 0,
            solver_steps: 0,
            path: Vec::new(),
            started: std::time::Instant::now(),
            side_cache: HashMap::new(),
            loop_locals: std::collections::HashSet::new(),
        }
    }

    /// Claims `name` as a loop-counter local. Returns `true` on first
    /// claim; `false` if an earlier loop in this run already uses it (the
    /// caller must then pick a fresh local, keeping counter locals unique
    /// per function so invariant checking can tell loop heads apart).
    pub fn claim_loop_local(&mut self, name: &str) -> bool {
        self.loop_locals.insert(name.to_string())
    }

    /// The budgets this run is metered against.
    pub fn limits(&self) -> &EngineLimits {
        &self.limits
    }

    /// Whether this run uses the optimized engine paths.
    ///
    /// `true` under [`DispatchMode::Indexed`](crate::DispatchMode::Indexed).
    /// Under `Linear` the engine is the *reference configuration*: it keeps
    /// the seed's implementations end to end (linear lemma scans, no
    /// side-condition memoization, and the original allocating helper
    /// routines in the extension crates). Helpers that grew a faster
    /// implementation branch on this so the reference configuration stays
    /// byte-for-byte the seed engine — that is what the equivalence battery
    /// compares the optimized pipeline against.
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.dbs.dispatch_mode() == crate::DispatchMode::Indexed
    }

    /// Copies a goal under the active configuration's cost model: a
    /// structure-sharing `clone()` on the fast path, the seed's node-by-node
    /// [`StmtGoal::deep_clone`] in the reference configuration. Both
    /// results are `==` to `goal`; only the allocation behavior differs.
    #[must_use]
    pub fn clone_goal(&self, goal: &StmtGoal) -> StmtGoal {
        if self.fast_path() {
            goal.clone()
        } else {
            goal.deep_clone()
        }
    }

    /// Copies a term under the active configuration's cost model (see
    /// [`Compiler::clone_goal`]).
    #[must_use]
    pub fn clone_term(&self, term: &Expr) -> Expr {
        if self.fast_path() {
            term.clone()
        } else {
            term.deep_clone()
        }
    }

    /// Renders a derivation focus of the form `{term}`. Fast path: one
    /// buffer through [`Expr::write_into`]. Reference configuration: the
    /// seed's `format!` through the `Display` reference printer. Identical
    /// bytes either way (the printer-agreement invariant; the equivalence
    /// battery compares these strings across engines).
    #[must_use]
    pub fn focus_term(&self, term: &Expr) -> String {
        if self.fast_path() {
            term.display_string()
        } else {
            format!("{term}")
        }
    }

    /// Renders a binding focus `let/n {name} := {value}` (see
    /// [`Compiler::focus_term`]).
    #[must_use]
    pub fn focus_let(&self, name: &str, value: &Expr) -> String {
        if self.fast_path() {
            let mut s = String::with_capacity(64);
            s.push_str("let/n ");
            s.push_str(name);
            s.push_str(" := ");
            value.write_into(&mut s);
            s
        } else {
            format!("let/n {name} := {value}")
        }
    }

    /// Renders a resolution focus `{term} ↦ {target}` (see
    /// [`Compiler::focus_term`]).
    #[must_use]
    pub fn focus_mapsto(&self, term: &Expr, target: &str) -> String {
        if self.fast_path() {
            let mut s = String::with_capacity(48);
            term.write_into(&mut s);
            s.push_str(" ↦ ");
            s.push_str(target);
            s
        } else {
            format!("{term} ↦ {target}")
        }
    }

    /// Renders a literal-resolution focus `{term} ↦ {w}` (see
    /// [`Compiler::focus_term`]).
    #[must_use]
    pub fn focus_mapsto_word(&self, term: &Expr, w: u64) -> String {
        if self.fast_path() {
            use std::fmt::Write;
            let mut s = String::with_capacity(48);
            term.write_into(&mut s);
            s.push_str(" ↦ ");
            let _ = write!(s, "{w}");
            s
        } else {
            format!("{term} ↦ {w}")
        }
    }

    /// The current derivation path (lemma names, root first).
    pub fn derivation_path(&self) -> &[&'static str] {
        &self.path
    }

    fn path_strings(&self) -> Vec<String> {
        self.path.iter().map(|s| (*s).to_string()).collect()
    }

    fn exhausted(&self, resource: ResourceKind, limit: usize) -> CompileError {
        CompileError::ResourceExhausted { resource, limit, path: self.path_strings() }
    }

    /// Converts a caught `try_apply` panic into a typed error: a
    /// [`FreshNamesExhausted`] payload (thrown by [`Compiler::fresh_var`])
    /// becomes `ResourceExhausted`, anything else `LemmaPanicked`.
    fn panic_to_error(&self, lemma: &str, payload: Box<dyn Any + Send>) -> CompileError {
        if let Some(e) = payload.downcast_ref::<FreshNamesExhausted>() {
            return self.exhausted(ResourceKind::FreshNames, e.limit);
        }
        CompileError::LemmaPanicked {
            lemma: lemma.to_string(),
            message: panic_message(payload.as_ref()),
            path: self.path_strings(),
        }
    }

    /// Registers a callee to be linked into the final program (idempotent
    /// per function name).
    pub fn link(&mut self, callee: BFunction) {
        if !self.linked.iter().any(|f| f.name == callee.name) {
            self.linked.push(callee);
        }
    }

    /// Claims the next fresh index, unwinding with a typed payload when
    /// the budget is exhausted (converted to `ResourceExhausted` at the
    /// enclosing lemma-application boundary; fresh names are only minted
    /// inside `try_apply`).
    fn next_fresh(&mut self) -> usize {
        if self.fresh >= self.limits.max_fresh_names {
            std::panic::panic_any(FreshNamesExhausted { limit: self.limits.max_fresh_names });
        }
        let n = self.fresh;
        self.fresh += 1;
        n
    }

    /// A fresh Bedrock2 local name with the given prefix (e.g. `_i0`).
    pub fn fresh_var(&mut self, prefix: &str) -> String {
        let n = self.next_fresh();
        format!("{prefix}{n}")
    }

    /// A fresh *ghost* name derived from a source name; ghosts appear only
    /// in symbolic terms (they contain `'`, which no emitted local uses).
    pub fn fresh_ghost(&mut self, name: &str) -> String {
        let n = self.next_fresh();
        format!("{name}'{n}")
    }

    /// Charges one judgment-entry against the depth and application
    /// budgets. Returns the error to report if a budget is exceeded.
    fn enter_judgment(&mut self) -> Result<(), CompileError> {
        if self.depth >= self.limits.max_recursion_depth {
            return Err(self.exhausted(
                ResourceKind::RecursionDepth,
                self.limits.max_recursion_depth,
            ));
        }
        if self.stats.lemma_applications >= self.limits.max_lemma_applications {
            return Err(self.exhausted(
                ResourceKind::LemmaApplications,
                self.limits.max_lemma_applications,
            ));
        }
        // Inclusive like the other ceilings: `max_wall_ms: Some(0)` means
        // "no time at all" and fails at the first judgment, which gives
        // tests a deterministic way to exercise the deadline path.
        if let Some(ms) = self.limits.max_wall_ms {
            if self.started.elapsed().as_millis() >= u128::from(ms) {
                return Err(self.exhausted(
                    ResourceKind::WallClock,
                    usize::try_from(ms).unwrap_or(usize::MAX),
                ));
            }
        }
        Ok(())
    }

    /// Resolves a statement goal by trying each statement lemma in order,
    /// falling back to the terminal `done` rule.
    ///
    /// # Errors
    ///
    /// Propagates lemma failures (no backtracking) and reports a
    /// [`CompileError::ResidualGoal`] when nothing applies. A panicking
    /// lemma yields [`CompileError::LemmaPanicked`]; exceeding an
    /// [`EngineLimits`] budget yields [`CompileError::ResourceExhausted`].
    pub fn compile_stmt(
        &mut self,
        goal: &StmtGoal,
    ) -> Result<(Cmd, DerivationNode), CompileError> {
        self.enter_judgment()?;
        self.depth += 1;
        let result = self.compile_stmt_inner(goal);
        self.depth -= 1;
        result
    }

    fn compile_stmt_inner(
        &mut self,
        goal: &StmtGoal,
    ) -> Result<(Cmd, DerivationNode), CompileError> {
        // Copy the `&HintDbs` out of `self` so iterating the lemma slice
        // does not hold a borrow of the compiler across `try_apply`.
        // `stmt_order` is the dispatch index: only lemmas whose declared
        // head set admits the goal's head, in registration order (or all of
        // them, in `DispatchMode::Linear`).
        let dbs = self.dbs;
        let lemmas = dbs.stmt_lemmas();
        for &i in dbs.stmt_order(&goal.prog) {
            let lemma = &lemmas[i as usize];
            self.path.push(lemma.name());
            match catch_quiet(AssertUnwindSafe(|| lemma.try_apply(goal, self))) {
                Err(payload) => return Err(self.panic_to_error(lemma.name(), payload)),
                Ok(None) => {
                    self.path.pop();
                }
                Ok(Some(res)) => {
                    let applied = res?;
                    self.path.pop();
                    self.stats.lemma_applications += 1;
                    return Ok((applied.cmd, applied.node));
                }
            }
        }
        self.compile_done(goal)
    }

    /// Resolves an expression goal (`EXPR m l ?e (term)`).
    ///
    /// # Errors
    ///
    /// As [`Compiler::compile_stmt`].
    pub fn compile_expr(
        &mut self,
        term: &Expr,
        goal: &StmtGoal,
    ) -> Result<(BExpr, DerivationNode), CompileError> {
        self.enter_judgment()?;
        self.depth += 1;
        let result = self.compile_expr_inner(term, goal);
        self.depth -= 1;
        result
    }

    fn compile_expr_inner(
        &mut self,
        term: &Expr,
        goal: &StmtGoal,
    ) -> Result<(BExpr, DerivationNode), CompileError> {
        let dbs = self.dbs;
        let lemmas = dbs.expr_lemmas();
        for &i in dbs.expr_order(term) {
            let lemma = &lemmas[i as usize];
            self.path.push(lemma.name());
            match catch_quiet(AssertUnwindSafe(|| lemma.try_apply(term, goal, self))) {
                Err(payload) => return Err(self.panic_to_error(lemma.name(), payload)),
                Ok(None) => {
                    self.path.pop();
                }
                Ok(Some(res)) => {
                    let applied = res?;
                    self.path.pop();
                    self.stats.lemma_applications += 1;
                    return Ok((applied.expr, applied.node));
                }
            }
        }
        Err(CompileError::ResidualGoal {
            goal: format!("EXPR {} ?e ↝ ({term})", goal.locals),
            hint: format!(
                "no expression lemma matches `{term}`; register an ExprLemma for this construct \
                 or bind the value with let/n first"
            ),
        })
    }

    /// Discharges a side condition through the registered solvers.
    ///
    /// Each solver invocation is one *step* against the
    /// [`EngineLimits::solver_step_budget`]. A panicking solver is treated
    /// as "does not prove it": the engine falls through to the next
    /// registered solver, so one buggy solver cannot take down the others.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::SideCondition`] when no solver proves it,
    /// or [`CompileError::ResourceExhausted`] when the step budget runs
    /// out.
    pub fn solve(
        &mut self,
        lemma: &str,
        cond: SideCond,
        hyps: &[HypRef],
    ) -> Result<SideCondRecord, CompileError> {
        // Memo cache: solvers are consulted in a fixed order and must be
        // pure in `(cond, hyps)` (see `HintDbs::set_solver_memo`), so the
        // first solver to discharge a condition is a function of the
        // canonicalized pair — replaying the recorded solver name yields a
        // byte-identical `SideCondRecord` without re-running anything.
        // Only *successes* are cached: a decline (or a panic, which is
        // treated as a decline) leaves no trace, so a flaky solver is
        // always re-consulted.
        let dbs = self.dbs;
        let key = dbs.solver_memo_enabled().then(|| memo_hash(&cond, hyps));
        if let Some(k) = key {
            let mut confirms = 0usize;
            let hit = self.side_cache.get(&k).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(c, h, _)| {
                        confirms += 1;
                        // Entry-level pointer equality first: snapshots
                        // share their `HypEntry` allocations across goals,
                        // so a hit usually confirms without even the
                        // per-entry id compares.
                        *c == cond
                            && h.len() == hyps.len()
                            && h.iter()
                                .zip(hyps)
                                .all(|(x, y)| Arc::ptr_eq(x, y) || x == y)
                    })
                    .map(|(_, h, idx)| (h.clone(), *idx))
            });
            self.stats.solver_confirm_compares += confirms;
            if let Some((shared, idx)) = hit {
                self.stats.side_conditions += 1;
                self.stats.solver_cache_hits += 1;
                // The cached snapshot is structurally equal to `hyps`
                // (checked above), so reusing it keeps the record
                // byte-identical to what the solver loop would produce —
                // without cloning the hypotheses again.
                return Ok(SideCondRecord {
                    cond,
                    solver: Cow::Borrowed(dbs.solvers()[idx].name()),
                    hyps: shared,
                });
            }
            self.stats.solver_cache_misses += 1;
        }
        for (idx, s) in dbs.solvers().iter().enumerate() {
            if self.solver_steps >= self.limits.solver_step_budget {
                return Err(
                    self.exhausted(ResourceKind::SolverSteps, self.limits.solver_step_budget)
                );
            }
            self.solver_steps += 1;
            // `Ok(false)` means the solver declined; `Err(_)` means it
            // panicked — same outcome, fall through to the next solver.
            if let Ok(true) = catch_quiet(|| s.solve(&cond, hyps)) {
                self.stats.side_conditions += 1;
                // Snapshot the hypotheses for the record. Fast path: shallow
                // copies into one shared allocation (also the memo-cache
                // entry). Reference configuration: the seed's node-by-node
                // copies.
                let shared: Arc<[HypRef]> = if self.fast_path() {
                    hyps.into()
                } else {
                    hyps.iter().map(|h| HypEntry::shared(h.hyp.deep_clone())).collect()
                };
                if let Some(k) = key {
                    self.side_cache
                        .entry(k)
                        .or_default()
                        .push((cond.clone(), shared.clone(), idx));
                }
                return Ok(SideCondRecord {
                    cond,
                    solver: Cow::Borrowed(s.name()),
                    hyps: shared,
                });
            }
        }
        Err(CompileError::SideCondition {
            cond: cond.to_string(),
            hyps: hyps.iter().map(ToString::to_string).collect(),
            lemma: lemma.to_string(),
        })
    }

    /// The terminal rule: the program remainder is the final result term.
    fn compile_done(&mut self, goal: &StmtGoal) -> Result<(Cmd, DerivationNode), CompileError> {
        // Unwrap a final monadic return.
        let result = match &goal.prog {
            Expr::Ret { monad, value } if goal.monad.admits(*monad) => value.as_ref(),
            other => other,
        };
        let components = flatten_result(result);
        if components.len() != goal.post.slots.len() {
            return Err(CompileError::ResidualGoal {
                goal: goal.to_string(),
                hint: format!(
                    "the result term has {} component(s) but the spec declares {} return slot(s); \
                     no statement lemma matched the program head either",
                    components.len(),
                    goal.post.slots.len()
                ),
            });
        }
        let mut cmds = Vec::new();
        let mut node = DerivationNode::leaf("done", self.focus_term(result));
        for (slot, comp) in goal.post.slots.iter().zip(components) {
            match slot {
                RetSlot::ScalarTo(ret_var) => {
                    let (e, child) = self.compile_expr(comp, goal)?;
                    cmds.push(Cmd::set(ret_var.clone(), e));
                    node.children.push(child);
                }
                RetSlot::InHeaplet(id) => {
                    let ok = match comp {
                        Expr::Var(x) => goal
                            .locals
                            .get(x)
                            .and_then(rupicola_sep::SymValue::ptr)
                            .is_some_and(|h| h == *id)
                            || goal.heap.find_by_content(comp) == Some(*id),
                        other => goal.heap.find_by_content(other) == Some(*id),
                    };
                    if !ok {
                        return Err(CompileError::ResidualGoal {
                            goal: goal.to_string(),
                            hint: format!(
                                "result component `{comp}` must reside in heaplet {id}, but the \
                                 memory predicate does not place it there"
                            ),
                        });
                    }
                }
            }
        }
        Ok((Cmd::seq(cmds), node))
    }
}

/// The output of a successful compilation run: the Bedrock2 function and
/// its correctness witness, bundled with the model and spec so that the
/// trusted checker can re-validate everything.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunction {
    /// The derived Bedrock2 function.
    pub function: BFunction,
    /// The derivation witness.
    pub derivation: Derivation,
    /// The source model.
    pub model: Model,
    /// The ABI specification.
    pub spec: FnSpec,
    /// Separately verified callees the function links against.
    pub linked: Vec<BFunction>,
    /// The optimized body, when the staged pass pipeline in `rupicola-opt`
    /// rewrote the function and every pass survived translation
    /// validation. `None` straight out of the engine. The certified
    /// `function` is never replaced: consumers opt into the optimized body
    /// explicitly, and validators always re-anchor on `function`.
    pub optimized: Option<BFunction>,
    /// Run statistics.
    pub stats: CompileStats,
}

impl CompiledFunction {
    /// Rebuilds the initial compilation goal from the bundled model and
    /// spec. Analyses use this to recover the separation-logic footprint
    /// and hypothesis set the certificate was derived under, without
    /// trusting anything recorded in the derivation itself.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Spec`] when the bundled spec no longer
    /// matches the bundled model (a corrupted certificate).
    pub fn initial_goal(&self) -> Result<crate::goal::StmtGoal, CompileError> {
        self.spec.initial_goal(&self.model)
    }
}

/// Compiles a model against its specification using the given databases —
/// the `Derive … SuchThat … Proof. compile. Qed.` entry point of §3.2.
///
/// # Errors
///
/// Returns the first [`CompileError`]: a spec inconsistency, an unsolved
/// side condition, or a residual goal (with the rendered goal, so the
/// missing lemma's shape can be read off).
pub fn compile(
    model: &Model,
    spec: &FnSpec,
    dbs: &HintDbs,
) -> Result<CompiledFunction, CompileError> {
    compile_with_limits(model, spec, dbs, EngineLimits::default())
}

/// [`compile`] with explicit resource budgets: the entry point for serving
/// untrusted extension sets, where a non-productive or panicking lemma must
/// fail this request only.
///
/// # Errors
///
/// As [`compile`], plus [`CompileError::ResourceExhausted`] /
/// [`CompileError::LemmaPanicked`] when a budget is exceeded or an
/// extension panics.
pub fn compile_with_limits(
    model: &Model,
    spec: &FnSpec,
    dbs: &HintDbs,
    limits: EngineLimits,
) -> Result<CompiledFunction, CompileError> {
    let goal = spec.initial_goal(model)?;
    let mut cx = Compiler::with_limits(model, dbs, limits);
    let (body, root) = cx.compile_stmt(&goal)?;
    let mut function = BFunction::new(
        spec.name.clone(),
        spec.arg_names(),
        spec.ret_names(),
        body,
    );
    for t in &model.tables {
        function = function.with_table(BTable {
            name: t.name.clone(),
            data: t
                .data
                .to_layout_bytes()
                .ok_or_else(|| CompileError::Spec(format!("table `{}` has no layout", t.name)))?,
        });
    }
    Ok(CompiledFunction {
        function,
        derivation: Derivation::new(root),
        model: model.clone(),
        spec: spec.clone(),
        linked: cx.linked,
        optimized: None,
        stats: cx.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnspec::{ArgSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_sep::ScalarKind;

    /// With an empty database, nothing applies: the engine must surface a
    /// residual goal, not wrong code.
    #[test]
    fn empty_db_reports_residual_goal() {
        let model = Model::new("f", ["x"], word_add(var("x"), word_lit(1)));
        let spec = FnSpec::new(
            "f",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let err = compile(&model, &spec, &HintDbs::new()).unwrap_err();
        match err {
            CompileError::ResidualGoal { goal, .. } => {
                assert!(goal.contains("word.add"), "goal was: {goal}");
            }
            other => panic!("expected residual goal, got {other}"),
        }
    }

    /// A trivially returnable in-place result compiles with the empty
    /// database: `done` needs no lemmas for pointer results.
    #[test]
    fn identity_array_model_compiles_with_done_only() {
        let model = Model::new("id", ["s"], var("s"));
        let spec = FnSpec::new(
            "id",
            vec![ArgSpec::ArrayPtr {
                name: "s".into(),
                param: "s".into(),
                elem: rupicola_lang::ElemKind::Byte,
            }],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        let out = compile(&model, &spec, &HintDbs::new()).unwrap();
        assert_eq!(out.function.body, Cmd::Skip);
        assert_eq!(out.derivation.root.lemma, "done");
    }

    #[test]
    fn arity_mismatch_is_residual() {
        let model = Model::new("f", ["s"], pair(var("s"), word_lit(0)));
        let spec = FnSpec::new(
            "f",
            vec![ArgSpec::ArrayPtr {
                name: "s".into(),
                param: "s".into(),
                elem: rupicola_lang::ElemKind::Byte,
            }],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        assert!(matches!(
            compile(&model, &spec, &HintDbs::new()),
            Err(CompileError::ResidualGoal { .. })
        ));
    }

    #[test]
    fn fresh_names_are_distinct() {
        let model = Model::new("f", Vec::<String>::new(), word_lit(0));
        let dbs = HintDbs::new();
        let mut cx = Compiler::new(&model, &dbs);
        let a = cx.fresh_var("_i");
        let b = cx.fresh_var("_i");
        let g = cx.fresh_ghost("acc");
        assert_ne!(a, b);
        assert!(g.contains('\''));
    }
}
