//! Predicate and loop-invariant inference (§3.4.2).
//!
//! Rupicola does not take strongest postconditions at control-flow joins —
//! that would produce disjunctions later compilation steps cannot match.
//! Instead it builds a *template* by (1) identifying the targets of the
//! construct from the names in its bindings, (2) classifying each target as
//! scalar or pointer by inspecting the locals and the memory predicate,
//! (3) abstracting the corresponding binding or heaplet, and (4) closing
//! over the result. For forward edges the template is instantiated with the
//! source program itself; for loops it is instantiated with a closed-form
//! *partial-execution term* ("`map f (first n l) ++ skip n l`"), which this
//! module also renders as a [`LoopInvariant`] that the trusted checker can
//! evaluate at every loop head.

use crate::goal::StmtGoal;
use rupicola_lang::{ElemKind, Expr, Ident};
use rupicola_sep::{HeapletId, ScalarKind, SymValue};
use std::fmt;

/// Classification of one target of a control-flow construct (step 2 of the
/// heuristic).
#[derive(Debug, Clone, PartialEq)]
pub enum TargetClass {
    /// The name is not currently bound: a fresh scalar will be created
    /// (like `"r"` in the paper's compare-and-swap example).
    NewScalar,
    /// The name is bound to a scalar local: the template abstracts over the
    /// binding in the locals map.
    Scalar(ScalarKind),
    /// The name is bound to a pointer: the template abstracts over the
    /// corresponding heaplet's contents.
    Pointer(HeapletId),
}

/// The inferred template: one abstracted slot per target (steps 3–4).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantTemplate {
    /// `(target name, classification)` pairs, in binding order.
    pub targets: Vec<(Ident, TargetClass)>,
}

impl InvariantTemplate {
    /// Runs steps 1–3 of the §3.4.2 heuristic for the given target names in
    /// the state of `goal`.
    pub fn infer(names: &[Ident], goal: &StmtGoal) -> Self {
        let targets = names
            .iter()
            .map(|n| {
                let class = match goal.locals.get(n) {
                    None => TargetClass::NewScalar,
                    Some(SymValue::Scalar(k, _)) => TargetClass::Scalar(*k),
                    Some(SymValue::Ptr(id)) => TargetClass::Pointer(*id),
                };
                (n.clone(), class)
            })
            .collect();
        InvariantTemplate { targets }
    }

    /// The pointer targets of the template.
    pub fn pointer_targets(&self) -> impl Iterator<Item = (&Ident, HeapletId)> {
        self.targets.iter().filter_map(|(n, c)| match c {
            TargetClass::Pointer(id) => Some((n, *id)),
            _ => None,
        })
    }
}

impl fmt::Display for InvariantTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ (")?;
        for (i, (n, _)) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, ") l m ⇒ l = {{")?;
        for (i, (n, c)) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match c {
                TargetClass::NewScalar | TargetClass::Scalar(_) => write!(f, "\"{n}\": _")?,
                TargetClass::Pointer(id) => write!(f, "\"{n}\": &{id}")?,
            }
        }
        write!(f, "}} ∧ (…abstracted heaplets…) m")
    }
}

/// The closed-form characterization of one generated loop, checkable at
/// runtime.
///
/// The `kind` captures the partial-execution term for iteration `n`; the
/// `bindings` are the let-prefix equations needed to evaluate the terms it
/// mentions from the function's inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInvariant {
    /// The Bedrock2 local holding the iteration counter.
    pub index_local: String,
    /// Evaluation prefix: `(name, definition)` equations, oldest first.
    pub bindings: Vec<(Ident, Expr)>,
    /// The shape-specific part.
    pub kind: LoopInvariantKind,
}

/// The shape-specific part of a [`LoopInvariant`].
#[derive(Debug, Clone, PartialEq)]
pub enum LoopInvariantKind {
    /// In-place `ListArray.map`: after `n` iterations the array at
    /// `ptr_local` contains `map f (first n arr) ++ skip n arr`.
    ArrayMapInPlace {
        /// Bedrock2 local holding the array pointer.
        ptr_local: String,
        /// Element representation.
        elem: ElemKind,
        /// Element binder of `f`.
        x: Ident,
        /// Map body.
        f: Expr,
        /// Source term for the array being mapped (in prefix scope).
        arr: Expr,
    },
    /// Scalar `List.fold_left`: after `n` iterations the local `acc_local`
    /// holds `fold_left f (first n arr) init`.
    ArrayFoldScalar {
        /// Bedrock2 local holding the accumulator.
        acc_local: String,
        /// Element representation.
        elem: ElemKind,
        /// Accumulator binder of `f`.
        acc: Ident,
        /// Element binder of `f`.
        x: Ident,
        /// Fold body.
        f: Expr,
        /// Initial accumulator (in prefix scope).
        init: Expr,
        /// Source term for the array (in prefix scope).
        arr: Expr,
    },
    /// Ranged fold whose accumulator is the array itself, one `put` per
    /// iteration: after the counter reaches `i`, the memory at `ptr_local`
    /// holds `fold_range from i (fun i a => put a idx v) init` (the
    /// scatter shape of [`crate::check`]'s partial-execution checking).
    RangeFoldArrayPut {
        /// Bedrock2 local holding the array pointer.
        ptr_local: String,
        /// Element representation.
        elem: ElemKind,
        /// Index binder of `f`.
        i: Ident,
        /// Accumulator (array) binder of `f`.
        acc: Ident,
        /// Fold body (an `ArrayPut` on the accumulator).
        f: Expr,
        /// Source term for the initial array (in prefix scope).
        init: Expr,
        /// Loop start (in prefix scope).
        from: Expr,
    },
    /// Scalar ranged fold: after the counter reaches `i`, `acc_local` holds
    /// the fold of `f` over `from..i`.
    RangeFoldScalar {
        /// Bedrock2 local holding the accumulator.
        acc_local: String,
        /// Index binder of `f`.
        i: Ident,
        /// Accumulator binder of `f`.
        acc: Ident,
        /// Fold body.
        f: Expr,
        /// Initial accumulator (in prefix scope).
        init: Expr,
        /// Loop start (in prefix scope).
        from: Expr,
    },
}

impl fmt::Display for LoopInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LoopInvariantKind::ArrayMapInPlace { ptr_local, x, f: body, arr, .. } => write!(
                f,
                "array {ptr_local} (map (fun {x} => {body}) (first {i} ({arr})) ++ skip {i} ({arr}))",
                i = self.index_local
            ),
            LoopInvariantKind::ArrayFoldScalar { acc_local, acc, x, f: body, init, arr, .. } => {
                write!(
                    f,
                    "{acc_local} = fold_left (fun {acc} {x} => {body}) (first {i} ({arr})) ({init})",
                    i = self.index_local
                )
            }
            LoopInvariantKind::RangeFoldArrayPut { ptr_local, i, acc, f: body, init, from, .. } => {
                write!(
                    f,
                    "array {ptr_local} (fold_range ({from}) {n} (fun {i} {acc} => {body}) ({init}))",
                    n = self.index_local
                )
            }
            LoopInvariantKind::RangeFoldScalar { acc_local, i, acc, f: body, init, from } => {
                write!(
                    f,
                    "{acc_local} = fold_range ({from}) {n} (fun {i} {acc} => {body}) ({init})",
                    n = self.index_local
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::{MonadCtx, Post};
    use rupicola_lang::dsl::*;
    use rupicola_sep::{Heaplet, HeapletKind, SymHeap, SymLocals};

    fn cas_goal() -> StmtGoal {
        // locals {"c": p}, memory cell p c — the paper's CAS example.
        let mut heap = SymHeap::new();
        let id = heap.add(Heaplet {
            kind: HeapletKind::Cell,
            content: var("c"),
            len: None,
            ptr_name: "p".into(),
        });
        let mut locals = SymLocals::new();
        locals.set("c", SymValue::Ptr(id));
        StmtGoal {
            prog: var("c"),
            locals,
            heap,
            hyps: vec![],
            monad: MonadCtx::Pure,
            post: Post::default(),
            defs: Default::default(),
        }
    }

    #[test]
    fn cas_example_classification() {
        // Targets "r" and "c": "r" is a scalar (no binding), "c" a pointer.
        let goal = cas_goal();
        let t = InvariantTemplate::infer(&["r".into(), "c".into()], &goal);
        assert_eq!(t.targets[0], ("r".into(), TargetClass::NewScalar));
        assert!(matches!(t.targets[1], (_, TargetClass::Pointer(_))));
        assert_eq!(t.pointer_targets().count(), 1);
    }

    #[test]
    fn scalar_binding_classifies_as_scalar() {
        let mut goal = cas_goal();
        goal.locals
            .set("x", SymValue::Scalar(ScalarKind::Byte, byte_lit(0)));
        let t = InvariantTemplate::infer(&["x".into()], &goal);
        assert_eq!(t.targets[0], ("x".into(), TargetClass::Scalar(ScalarKind::Byte)));
    }

    #[test]
    fn template_display_shows_closure() {
        let goal = cas_goal();
        let t = InvariantTemplate::infer(&["r".into(), "c".into()], &goal);
        let shown = format!("{t}");
        assert!(shown.contains("λ (r, c)"));
        assert!(shown.contains("\"c\": &h0"));
    }

    #[test]
    fn loop_invariant_displays_partial_execution_term() {
        let inv = LoopInvariant {
            index_local: "i".into(),
            bindings: vec![],
            kind: LoopInvariantKind::ArrayMapInPlace {
                ptr_local: "s".into(),
                elem: ElemKind::Byte,
                x: "b".into(),
                f: byte_or(var("b"), byte_lit(0x20)),
                arr: var("s"),
            },
        };
        let shown = format!("{inv}");
        assert!(shown.contains("first i"));
        assert!(shown.contains("skip i"));
    }
}
