//! Function specifications: the ABI layer (`fnspec!` in the paper, §3.2).
//!
//! A [`FnSpec`] is "the collection of low-level representation choices that
//! are visible to other low-level code but abstracted away in the high-level
//! code": how each model parameter arrives (by value, as an array pointer,
//! as a pointer-plus-length pair, as a cell pointer) and how each component
//! of the model's result leaves (as a returned scalar, or written back in
//! place over an input region).
//!
//! The spec determines both the *initial compilation goal* (the symbolic
//! precondition: locals, heaplets and hypotheses) and, for the trusted
//! checker, the *concretization* of test inputs into Bedrock2 memories.

use crate::error::CompileError;
use crate::goal::{Hyp, MonadCtx, Post, RetSlot, StmtGoal};
use rupicola_bedrock::Memory;
use rupicola_lang::{ElemKind, Expr, Ident, Model, Value};
use rupicola_sep::{Heaplet, HeapletKind, ScalarKind, SymHeap, SymLocals, SymValue};
use std::collections::HashMap;

/// How one Bedrock2 argument relates to the model.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSpec {
    /// A scalar passed by value, bound to a model parameter.
    Scalar {
        /// Bedrock2 argument name.
        name: String,
        /// Model parameter it carries.
        param: Ident,
        /// Scalar kind of the parameter.
        kind: ScalarKind,
    },
    /// A pointer to an array whose contents are a model parameter
    /// (`(array p s ∗ r) m` in the paper's `upstr` spec).
    ArrayPtr {
        /// Bedrock2 argument name.
        name: String,
        /// Model parameter holding the list.
        param: Ident,
        /// Element representation.
        elem: ElemKind,
    },
    /// A scalar argument specified to equal the length of an array
    /// parameter (`wlen = of_nat (length s)`).
    LenOf {
        /// Bedrock2 argument name.
        name: String,
        /// The array parameter measured.
        param: Ident,
        /// Element representation of that parameter.
        elem: ElemKind,
    },
    /// A pointer to a one-word cell parameter.
    CellPtr {
        /// Bedrock2 argument name.
        name: String,
        /// Model parameter holding the cell.
        param: Ident,
    },
}

impl ArgSpec {
    /// The Bedrock2 argument name.
    pub fn name(&self) -> &str {
        match self {
            ArgSpec::Scalar { name, .. }
            | ArgSpec::ArrayPtr { name, .. }
            | ArgSpec::LenOf { name, .. }
            | ArgSpec::CellPtr { name, .. } => name,
        }
    }
}

/// How one component of the model's result leaves the function.
///
/// Components are matched positionally against the model's (possibly
/// pair-valued) result, flattened left-to-right.
#[derive(Debug, Clone, PartialEq)]
pub enum RetSpec {
    /// Returned as a Bedrock2 return value.
    Scalar {
        /// Name of the Bedrock2 local returned.
        name: String,
        /// Scalar kind of the component.
        kind: ScalarKind,
    },
    /// Written back in place over the region of the given array or cell
    /// parameter.
    InPlace {
        /// The input parameter whose region holds the output.
        param: Ident,
    },
}

/// Expectations on the event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSpec {
    /// `tr' = tr`: the function performs no observable I/O.
    #[default]
    Unchanged,
    /// The Bedrock2 trace must mirror the source program's effect log
    /// (io reads/writes, writer output, free-monad commands).
    MirrorsSource,
}

/// A complete function specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSpec {
    /// Bedrock2 function name.
    pub name: String,
    /// Argument bindings, in Bedrock2 argument order.
    pub args: Vec<ArgSpec>,
    /// Result bindings, in model-result component order.
    pub rets: Vec<RetSpec>,
    /// The ambient monad of the model.
    pub monad: MonadCtx,
    /// Trace expectations.
    pub trace: TraceSpec,
    /// User-supplied hypotheses (the paper's *incidental* properties,
    /// §3.4.2, "proven at the source level and recovered during compilation
    /// using hints"). The checker validates them on every test vector.
    pub hints: Vec<Hyp>,
}

impl FnSpec {
    /// Creates a spec with no hints, pure monad and unchanged trace.
    pub fn new(name: impl Into<String>, args: Vec<ArgSpec>, rets: Vec<RetSpec>) -> Self {
        FnSpec {
            name: name.into(),
            args,
            rets,
            monad: MonadCtx::Pure,
            trace: TraceSpec::default(),
            hints: Vec::new(),
        }
    }

    /// Sets the ambient monad (builder style).
    #[must_use]
    pub fn with_monad(mut self, monad: MonadCtx) -> Self {
        self.monad = monad;
        self
    }

    /// Sets the trace expectation (builder style).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = trace;
        self
    }

    /// Adds a hint hypothesis (builder style).
    #[must_use]
    pub fn with_hint(mut self, hint: Hyp) -> Self {
        self.hints.push(hint);
        self
    }

    /// Bedrock2 argument names, in order.
    pub fn arg_names(&self) -> Vec<String> {
        self.args.iter().map(|a| a.name().to_string()).collect()
    }

    /// Bedrock2 return-variable names, in order.
    pub fn ret_names(&self) -> Vec<String> {
        self.rets
            .iter()
            .filter_map(|r| match r {
                RetSpec::Scalar { name, .. } => Some(name.clone()),
                RetSpec::InPlace { .. } => None,
            })
            .collect()
    }

    /// Checks internal consistency against a model and returns the initial
    /// compilation goal.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Spec`] when parameters are unbound, bound
    /// twice, or referenced by `LenOf`/`InPlace` without being array/cell
    /// parameters.
    pub fn initial_goal(&self, model: &Model) -> Result<StmtGoal, CompileError> {
        let mut locals = SymLocals::new();
        let mut heap = SymHeap::new();
        let mut hyps: Vec<crate::goal::HypRef> =
            self.hints.iter().cloned().map(crate::goal::HypEntry::shared).collect();
        let mut bound: HashMap<&str, ()> = HashMap::new();
        let mut heaplet_of_param: HashMap<&str, rupicola_sep::HeapletId> = HashMap::new();

        for a in &self.args {
            match a {
                ArgSpec::Scalar { name, param, kind } => {
                    self.ensure_param(model, param)?;
                    if bound.insert(param, ()).is_some() {
                        return Err(CompileError::Spec(format!("parameter `{param}` bound twice")));
                    }
                    locals.set(name.clone(), SymValue::Scalar(*kind, Expr::Var(param.clone())));
                }
                ArgSpec::ArrayPtr { name, param, elem } => {
                    self.ensure_param(model, param)?;
                    if bound.insert(param, ()).is_some() {
                        return Err(CompileError::Spec(format!("parameter `{param}` bound twice")));
                    }
                    let id = heap.add(Heaplet {
                        kind: HeapletKind::Array { elem: *elem },
                        content: Expr::Var(param.clone()),
                        len: Some(Expr::ArrayLen {
                            elem: *elem,
                            arr: Expr::Var(param.clone()).boxed(),
                        }),
                        ptr_name: name.clone(),
                    });
                    heaplet_of_param.insert(param, id);
                    locals.set(name.clone(), SymValue::Ptr(id));
                }
                ArgSpec::LenOf { name, param, elem } => {
                    self.ensure_param(model, param)?;
                    locals.set(
                        name.clone(),
                        SymValue::Scalar(
                            ScalarKind::Word,
                            Expr::ArrayLen {
                                elem: *elem,
                                arr: Expr::Var(param.clone()).boxed(),
                            },
                        ),
                    );
                }
                ArgSpec::CellPtr { name, param } => {
                    self.ensure_param(model, param)?;
                    if bound.insert(param, ()).is_some() {
                        return Err(CompileError::Spec(format!("parameter `{param}` bound twice")));
                    }
                    let id = heap.add(Heaplet {
                        kind: HeapletKind::Cell,
                        content: Expr::Var(param.clone()),
                        len: None,
                        ptr_name: name.clone(),
                    });
                    heaplet_of_param.insert(param, id);
                    locals.set(name.clone(), SymValue::Ptr(id));
                }
            }
        }
        for p in &model.params {
            if !bound.contains_key(p.as_str()) {
                return Err(CompileError::Spec(format!(
                    "model parameter `{p}` is not bound by any argument"
                )));
            }
        }

        let mut slots = Vec::with_capacity(self.rets.len());
        for r in &self.rets {
            match r {
                RetSpec::Scalar { name, .. } => slots.push(RetSlot::ScalarTo(name.clone())),
                RetSpec::InPlace { param } => {
                    let id = heaplet_of_param.get(param.as_str()).copied().ok_or_else(|| {
                        CompileError::Spec(format!(
                            "in-place return references `{param}`, which is not an array or cell argument"
                        ))
                    })?;
                    slots.push(RetSlot::InHeaplet(id));
                }
            }
        }

        // Inline-table bounds are structural facts about the model.
        for t in &model.tables {
            hyps.push(crate::goal::HypEntry::shared(Hyp::EqWord(
                Expr::ArrayLen {
                    elem: t.elem,
                    arr: Expr::Var(format!("table:{}", t.name)).boxed(),
                },
                Expr::Lit(Value::Word(t.len() as u64)),
            )));
        }

        Ok(StmtGoal {
            prog: model.body.clone(),
            locals,
            heap,
            hyps,
            monad: self.monad,
            post: Post { slots },
            defs: crate::goal::DefChain::new(),
        })
    }

    fn ensure_param(&self, model: &Model, param: &str) -> Result<(), CompileError> {
        if model.params.iter().any(|p| p == param) {
            Ok(())
        } else {
            Err(CompileError::Spec(format!(
                "`{param}` is not a parameter of model `{}`",
                model.name
            )))
        }
    }
}

/// Where an output region lives in a concretized call.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionLayout {
    /// The model parameter whose data is in the region.
    pub param: Ident,
    /// Region base address.
    pub base: u64,
    /// Element representation (`None` for cells).
    pub elem: Option<ElemKind>,
}

/// A concretized call: memory image, argument words, and the layout needed
/// to read results back.
#[derive(Debug)]
pub struct ConcreteCall {
    /// Initial memory.
    pub mem: Memory,
    /// Argument words, in Bedrock2 argument order.
    pub args: Vec<u64>,
    /// Layouts of pointer arguments.
    pub regions: Vec<RegionLayout>,
}

/// Builds the initial machine state for calling the compiled function on
/// concrete model-parameter values (`values` in `model.params` order).
///
/// # Errors
///
/// Returns a message when a value's shape does not match its `ArgSpec`.
pub fn concretize(spec: &FnSpec, params: &[Ident], values: &[Value]) -> Result<ConcreteCall, String> {
    let lookup = |param: &str| -> Result<&Value, String> {
        params
            .iter()
            .position(|p| p == param)
            .and_then(|i| values.get(i))
            .ok_or_else(|| format!("no value for parameter `{param}`"))
    };
    let mut mem = Memory::new();
    let mut args = Vec::with_capacity(spec.args.len());
    let mut regions = Vec::new();
    for a in &spec.args {
        match a {
            ArgSpec::Scalar { param, .. } => {
                let v = lookup(param)?;
                args.push(
                    v.to_scalar_word()
                        .ok_or_else(|| format!("`{param}` is not scalar"))?,
                );
            }
            ArgSpec::ArrayPtr { param, elem, .. } => {
                let v = lookup(param)?;
                let bytes = v
                    .to_layout_bytes()
                    .ok_or_else(|| format!("`{param}` is not a list"))?;
                let base = mem.alloc(bytes);
                regions.push(RegionLayout { param: param.clone(), base, elem: Some(*elem) });
                args.push(base);
            }
            ArgSpec::LenOf { param, .. } => {
                let v = lookup(param)?;
                args.push(v.list_len().ok_or_else(|| format!("`{param}` is not a list"))? as u64);
            }
            ArgSpec::CellPtr { param, .. } => {
                let v = lookup(param)?;
                let Value::Cell(w) = v else {
                    return Err(format!("`{param}` is not a cell"));
                };
                let base = mem.alloc(w.to_le_bytes().to_vec());
                regions.push(RegionLayout { param: param.clone(), base, elem: None });
                args.push(base);
            }
        }
    }
    Ok(ConcreteCall { mem, args, regions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_lang::dsl::*;

    fn upstr_spec() -> FnSpec {
        FnSpec::new(
            "upstr",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        )
    }

    fn upstr_model() -> Model {
        Model::new(
            "upstr",
            ["s"],
            let_n("s", array_map_b("b", byte_and(var("b"), byte_lit(0xdf)), var("s")), var("s")),
        )
    }

    #[test]
    fn initial_goal_builds_precondition() {
        let goal = upstr_spec().initial_goal(&upstr_model()).unwrap();
        // "s" is a pointer local; "len" is bound to `length s`.
        assert!(goal.locals.get("s").unwrap().ptr().is_some());
        let (term, kind) = goal.locals.get("len").unwrap().scalar_term().unwrap();
        assert_eq!(kind, ScalarKind::Word);
        assert_eq!(term, &array_len_b(var("s")));
        assert_eq!(goal.heap.len(), 1);
        assert_eq!(goal.post.slots.len(), 1);
        assert!(matches!(goal.post.slots[0], RetSlot::InHeaplet(_)));
    }

    #[test]
    fn spec_rejects_unbound_params() {
        let spec = FnSpec::new("f", vec![], vec![]);
        let model = Model::new("f", ["x"], var("x"));
        assert!(matches!(spec.initial_goal(&model), Err(CompileError::Spec(_))));
    }

    #[test]
    fn spec_rejects_double_binding() {
        let spec = FnSpec::new(
            "f",
            vec![
                ArgSpec::Scalar { name: "a".into(), param: "x".into(), kind: ScalarKind::Word },
                ArgSpec::Scalar { name: "b".into(), param: "x".into(), kind: ScalarKind::Word },
            ],
            vec![],
        );
        let model = Model::new("f", ["x"], var("x"));
        assert!(matches!(spec.initial_goal(&model), Err(CompileError::Spec(_))));
    }

    #[test]
    fn spec_rejects_inplace_of_scalar() {
        let spec = FnSpec::new(
            "f",
            vec![ArgSpec::Scalar { name: "a".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::InPlace { param: "x".into() }],
        );
        let model = Model::new("f", ["x"], var("x"));
        assert!(matches!(spec.initial_goal(&model), Err(CompileError::Spec(_))));
    }

    #[test]
    fn concretize_lays_out_arrays_and_lens() {
        let spec = upstr_spec();
        let call = concretize(&spec, &["s".into()], &[Value::byte_list(*b"abc")]).unwrap();
        assert_eq!(call.args.len(), 2);
        assert_eq!(call.args[1], 3); // LenOf
        assert_eq!(call.regions.len(), 1);
        assert_eq!(call.mem.region(call.args[0]).unwrap(), b"abc");
    }

    #[test]
    fn concretize_cells() {
        let spec = FnSpec::new(
            "g",
            vec![ArgSpec::CellPtr { name: "c".into(), param: "c".into() }],
            vec![RetSpec::InPlace { param: "c".into() }],
        );
        let call = concretize(&spec, &["c".into()], &[Value::Cell(0x42)]).unwrap();
        assert_eq!(call.mem.region(call.args[0]).unwrap()[0], 0x42);
        assert!(concretize(&spec, &["c".into()], &[Value::Word(1)]).is_err());
    }
}
