//! Resource limits for the proof-search engine.
//!
//! The engine is *extensible*: statement lemmas, expression lemmas and
//! side-condition solvers are user-supplied trait objects. A production
//! deployment cannot trust them to terminate, so every compilation run is
//! metered against an [`EngineLimits`] budget. Exceeding any budget aborts
//! the current request with a typed
//! [`CompileError::ResourceExhausted`](crate::CompileError::ResourceExhausted)
//! carrying the partial derivation path — never a stack overflow or a hung
//! process.

use std::fmt;

/// Budgets for one compilation run.
///
/// All limits are inclusive ceilings: the run fails when it *would exceed*
/// a limit. The defaults are far above anything the §4.2 suite needs (the
/// largest suite derivation applies fewer than 500 lemmas at depth < 40)
/// while still aborting a runaway extension in well under a second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineLimits {
    /// Maximum number of lemma applications (statement + expression).
    pub max_lemma_applications: usize,
    /// Maximum recursion depth of the statement/expression judgments.
    /// Bounds the stack: a self-recursive lemma that makes no progress hits
    /// this long before the thread's guard page.
    pub max_recursion_depth: usize,
    /// Maximum number of fresh names ([`Compiler::fresh_var`] /
    /// [`Compiler::fresh_ghost`](crate::Compiler::fresh_ghost) calls).
    ///
    /// [`Compiler::fresh_var`]: crate::Compiler::fresh_var
    pub max_fresh_names: usize,
    /// Maximum number of solver invocations (one *step* = one registered
    /// solver attempting one side condition).
    pub solver_step_budget: usize,
    /// Optional wall-clock deadline for one compilation run, in
    /// milliseconds from the moment the `Compiler` is created. `None`
    /// (the default) means no deadline.
    ///
    /// Unlike the structural budgets above, this one is *nondeterministic*:
    /// the same request may succeed on an idle machine and miss its
    /// deadline on a loaded one. It exists for the service layer — a
    /// request that carries `deadline_ms` must be answered in-band within
    /// that budget, with a typed
    /// [`ResourceExhausted`](crate::CompileError::ResourceExhausted) of
    /// kind [`ResourceKind::WallClock`] rather than a hung batch. Because
    /// the outcome is timing-dependent, the deadline is deliberately *not*
    /// part of the artifact-store fingerprint (see
    /// `rupicola_service::fingerprint`).
    pub max_wall_ms: Option<u64>,
}

impl Default for EngineLimits {
    fn default() -> Self {
        EngineLimits {
            max_lemma_applications: 100_000,
            max_recursion_depth: 256,
            max_fresh_names: 65_536,
            solver_step_budget: 1_000_000,
            max_wall_ms: None,
        }
    }
}

impl EngineLimits {
    /// A deliberately tight budget for tests and fuzzing: small enough that
    /// a non-productive extension fails fast, large enough for every suite
    /// program.
    pub fn tight() -> Self {
        EngineLimits {
            max_lemma_applications: 2_000,
            max_recursion_depth: 64,
            max_fresh_names: 1_024,
            solver_step_budget: 20_000,
            max_wall_ms: None,
        }
    }

    /// This budget with a wall-clock deadline of `ms` milliseconds.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.max_wall_ms = Some(ms);
        self
    }
}

/// Which budget of an [`EngineLimits`] was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// [`EngineLimits::max_lemma_applications`].
    LemmaApplications,
    /// [`EngineLimits::max_recursion_depth`].
    RecursionDepth,
    /// [`EngineLimits::max_fresh_names`].
    FreshNames,
    /// [`EngineLimits::solver_step_budget`].
    SolverSteps,
    /// [`EngineLimits::max_wall_ms`] — the run's wall-clock deadline
    /// passed while the derivation was still in progress.
    WallClock,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::LemmaApplications => "lemma applications",
            ResourceKind::RecursionDepth => "recursion depth",
            ResourceKind::FreshNames => "fresh names",
            ResourceKind::SolverSteps => "solver steps",
            ResourceKind::WallClock => "wall-clock",
        })
    }
}

/// Typed panic payload thrown by `fresh_var`/`fresh_ghost` when the fresh
/// name budget is exhausted. `fresh_var` returns a plain `String` (changing
/// it to `Result` would break every extension lemma), so exhaustion unwinds
/// instead; the engine's `catch_unwind` around `try_apply` downcasts this
/// payload back into a structured `ResourceExhausted` error.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FreshNamesExhausted {
    pub limit: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_dominate_tight() {
        let d = EngineLimits::default();
        let t = EngineLimits::tight();
        assert!(d.max_lemma_applications > t.max_lemma_applications);
        assert!(d.max_recursion_depth > t.max_recursion_depth);
        assert!(d.max_fresh_names > t.max_fresh_names);
        assert!(d.solver_step_budget > t.solver_step_budget);
    }

    #[test]
    fn resource_kinds_render() {
        assert_eq!(ResourceKind::RecursionDepth.to_string(), "recursion depth");
        assert_eq!(ResourceKind::SolverSteps.to_string(), "solver steps");
        assert_eq!(ResourceKind::WallClock.to_string(), "wall-clock");
    }

    #[test]
    fn deadline_builder_sets_only_the_wall_budget() {
        let d = EngineLimits::default();
        let with = d.with_deadline_ms(250);
        assert_eq!(with.max_wall_ms, Some(250));
        assert_eq!(EngineLimits { max_wall_ms: None, ..with }, d);
        assert_eq!(d.max_wall_ms, None, "no deadline by default");
    }
}
