//! The trusted checker: witness re-validation plus translation validation.
//!
//! In Coq, the kernel checks the proof term each compilation produces. Our
//! substitution (see `DESIGN.md`) keeps the same architecture — untrusted,
//! extensible search produces a witness; a small trusted component validates
//! it — with three layers of validation:
//!
//! 1. **Structural**: every derivation node cites a registered lemma and
//!    every recorded side condition is re-solved by a registered solver.
//! 2. **Differential**: the functional model and the generated Bedrock2
//!    function are executed on generated test vectors; return words, final
//!    memory regions, event traces and writer output must agree. Programs
//!    that consume nondeterminism (the nondet monad, uninitialized stack
//!    allocations) are executed under *two* different poisons/oracles, which
//!    both checks the refinement and catches dependence on unspecified
//!    contents.
//! 3. **Invariants**: the loop invariants inferred by §3.4.2's heuristic are
//!    evaluated *at every loop head* of the real execution, via the
//!    interpreter's loop hook: the checker recomputes the closed-form
//!    partial-execution term for the current iteration count and compares
//!    it against actual locals and memory.

use crate::engine::CompiledFunction;
use crate::fnspec::{concretize, ArgSpec, FnSpec, RegionLayout, RetSpec, TraceSpec};
use crate::goal::{Hyp, MonadCtx};
use crate::invariant::{LoopInvariant, LoopInvariantKind};
use rupicola_bedrock::interp::Locals;
use rupicola_bedrock::{
    BExpr, ExecState, ExternalHandler, Interpreter, LoopHook, Memory, Program, TraceEvent,
};
use rupicola_lang::eval::{eval, eval_model, Env, Oracle, World};
use rupicola_lang::{
    ElemKind, Event, Expr, ExternRegistry, Ident, Model, MonadKind, PrimOp, Value,
};
use rupicola_sep::ScalarKind;
use std::collections::VecDeque;
use std::fmt;

/// Configuration of a checking run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Number of test vectors per poison.
    pub vectors: usize,
    /// RNG seed for vector generation.
    pub seed: u64,
    /// Initial interpreter fuel per run. A run that exhausts it is retried
    /// with doubled fuel (*escalation*) until it fits or [`max_fuel`] is
    /// reached.
    ///
    /// [`max_fuel`]: CheckConfig::max_fuel
    pub fuel: u64,
    /// Fuel ceiling of the escalation. Exhausting *this* is reported as
    /// [`CheckError::Divergence`]: the code does not terminate within any
    /// budget the deployment is willing to pay, as opposed to merely
    /// needing more than the initial [`fuel`](CheckConfig::fuel).
    pub max_fuel: u64,
    /// Whether to validate inferred loop invariants at loop heads.
    pub check_invariants: bool,
    /// Extern operations / effect handlers the model uses.
    pub externs: ExternRegistry,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            vectors: 16,
            seed: 0xC0FF_EE00,
            fuel: 1 << 20,
            max_fuel: 1 << 30,
            check_invariants: true,
            externs: ExternRegistry::new(),
        }
    }
}

/// Summary of a successful check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Vectors executed (per poison).
    pub vectors_run: usize,
    /// Vectors skipped because the model's precondition excluded them
    /// (source evaluation was undefined).
    pub vectors_skipped: usize,
    /// Side conditions re-solved during structural validation.
    pub side_conds_rechecked: usize,
    /// Loop-head invariant evaluations performed.
    pub invariant_checks: usize,
    /// Whether the two-poison nondeterminism discipline was exercised.
    pub poison_pair: bool,
    /// Fuel-escalation retries performed (runs that exhausted the current
    /// fuel and were re-executed with doubled fuel).
    pub fuel_escalations: usize,
    /// The largest fuel actually consumed by any single target run (from
    /// the interpreter's fuel accounting).
    pub max_fuel_used: u64,
}

/// A validation failure: the witness does not certify the program.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// A derivation node cites a lemma absent from the databases.
    UnknownLemma(String),
    /// A recorded side condition is not re-solvable.
    SideCondition {
        /// The condition.
        cond: String,
        /// The lemma that recorded it.
        lemma: String,
    },
    /// The compiled function diverged from the model.
    Mismatch {
        /// The offending vector.
        vector: String,
        /// What differed.
        detail: String,
    },
    /// The compiled function got stuck (OOB access, fuel, …).
    TargetStuck {
        /// The offending vector.
        vector: String,
        /// The interpreter error.
        error: String,
    },
    /// A loop invariant failed at a loop head.
    InvariantViolated {
        /// The offending vector.
        vector: String,
        /// What the hook observed.
        detail: String,
    },
    /// Too few vectors were runnable (the generator could not satisfy the
    /// model's precondition).
    InsufficientCoverage {
        /// Vectors that ran.
        ran: usize,
        /// Vectors attempted.
        attempted: usize,
    },
    /// The compiled function exhausted the *escalated* fuel ceiling
    /// ([`CheckConfig::max_fuel`]) — it diverges for practical purposes,
    /// as opposed to [`CheckError::TargetStuck`] on a genuine stuck state
    /// or a run that merely needed more than the initial fuel (which is
    /// retried transparently).
    Divergence {
        /// The offending vector.
        vector: String,
        /// The ceiling that was exhausted.
        fuel_cap: u64,
    },
    /// The witness's integrity counters disagree with its tree: records
    /// were dropped, children truncated, or counters forged after
    /// construction.
    WitnessCorrupted {
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownLemma(l) => write!(f, "derivation cites unknown lemma `{l}`"),
            CheckError::SideCondition { cond, lemma } => {
                write!(f, "side condition `{cond}` of `{lemma}` does not re-solve")
            }
            CheckError::Mismatch { vector, detail } => {
                write!(f, "output mismatch on input {vector}: {detail}")
            }
            CheckError::TargetStuck { vector, error } => {
                write!(f, "compiled code stuck on input {vector}: {error}")
            }
            CheckError::InvariantViolated { vector, detail } => {
                write!(f, "loop invariant violated on input {vector}: {detail}")
            }
            CheckError::InsufficientCoverage { ran, attempted } => {
                write!(f, "only {ran}/{attempted} vectors satisfied the model's precondition")
            }
            CheckError::Divergence { vector, fuel_cap } => {
                write!(
                    f,
                    "compiled code on input {vector} still out of fuel at the escalation \
                     ceiling ({fuel_cap}): divergent"
                )
            }
            CheckError::WitnessCorrupted { detail } => {
                write!(f, "witness integrity violation: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Checks a compiled function against the default configuration.
///
/// # Errors
///
/// See [`CheckError`].
pub fn check(
    cf: &CompiledFunction,
    dbs: &crate::lemma::HintDbs,
) -> Result<CheckReport, CheckError> {
    check_with(cf, dbs, &CheckConfig::default())
}

/// Checks a compiled function.
///
/// # Errors
///
/// See [`CheckError`].
pub fn check_with(
    cf: &CompiledFunction,
    dbs: &crate::lemma::HintDbs,
    config: &CheckConfig,
) -> Result<CheckReport, CheckError> {
    let mut report = CheckReport::default();

    // Layer 1: structural validation of the witness. First the integrity
    // counters — recompute both summaries from the tree; a mismatch means
    // records were dropped or children truncated after construction.
    let node_count = cf.derivation.root.size();
    if node_count != cf.derivation.node_count {
        return Err(CheckError::WitnessCorrupted {
            detail: format!(
                "tree has {node_count} node(s) but the witness records {}",
                cf.derivation.node_count
            ),
        });
    }
    let mut sc_count = 0;
    cf.derivation.root.walk(&mut |n| sc_count += n.side_conds.len());
    if sc_count != cf.derivation.side_cond_count {
        return Err(CheckError::WitnessCorrupted {
            detail: format!(
                "tree records {sc_count} side condition(s) but the witness counts {}",
                cf.derivation.side_cond_count
            ),
        });
    }

    // Then per-node validation: every lemma registered, every side
    // condition re-solved. Solvers are untrusted extensions: a panicking
    // solver counts as "does not re-solve", not as a checker crash.
    let mut structural: Result<(), CheckError> = Ok(());
    cf.derivation.root.walk(&mut |node| {
        if structural.is_err() {
            return;
        }
        if !dbs.knows_lemma(&node.lemma) {
            structural = Err(CheckError::UnknownLemma(node.lemma.to_string()));
            return;
        }
        for sc in &node.side_conds {
            let solved = dbs.solvers().iter().any(|s| {
                crate::engine::catch_quiet(|| s.solve(&sc.cond, &sc.hyps)).unwrap_or(false)
            });
            if !solved {
                structural = Err(CheckError::SideCondition {
                    cond: sc.cond.to_string(),
                    lemma: node.lemma.to_string(),
                });
                return;
            }
            report.side_conds_rechecked += 1;
        }
    });
    structural?;

    // Layer 2 + 3: differential execution with invariant hooks.
    let uses_nondet = matches!(cf.spec.monad, MonadCtx::Monadic(MonadKind::Nondet))
        || function_has_stackalloc(&cf.function.body);
    let poisons: &[u8] = if uses_nondet { &[0xAA, 0x55] } else { &[0xAA] };
    report.poison_pair = poisons.len() == 2;

    let vectors = generate_vectors(&cf.spec, &cf.model, config);
    let mut invariants = Vec::new();
    cf.derivation.root.walk(&mut |n| {
        if let Some(inv) = &n.invariant {
            invariants.push(inv.clone());
        }
    });

    let mut program = Program::new();
    program.insert(cf.function.clone());
    for callee in &cf.linked {
        program.insert(callee.clone());
    }
    let interp = Interpreter::new(&program);

    let mut ran = 0;
    for vector in &vectors {
        let vector_desc = describe_vector(&cf.model.params, vector);
        if !hints_hold(&cf.spec, &cf.model, vector, config) {
            report.vectors_skipped += 1;
            continue;
        }
        let mut this_ran = false;
        for &poison in poisons {
            // Source run.
            let input_words: Vec<u64> = (0..64).map(|i| splitmix(config.seed ^ (i + 1))).collect();
            let mut world = World::with_input(input_words.clone())
                .with_oracle(PoisonOracle { byte: poison });
            world.externs = config.externs.clone();
            let src = eval_model(&cf.model, vector, &mut world);
            let Ok(src_value) = src else {
                // Precondition excluded this input.
                report.vectors_skipped += 1;
                break;
            };
            this_ran = true;

            // Target run, with bounded fuel escalation: a run that
            // exhausts the current fuel is re-executed from scratch with
            // doubled fuel, distinguishing "needs more fuel" (retried
            // transparently) from "diverges" (still starving at the cap).
            let mut fuel = config.fuel.clamp(1, config.max_fuel);
            let (rets, state, regions, hook_checks) = loop {
                let call = concretize(&cf.spec, &cf.model.params, vector).map_err(|e| {
                    CheckError::Mismatch { vector: vector_desc.clone(), detail: e }
                })?;
                let mut state = ExecState::new(call.mem).with_stack_poison(poison);
                let mut ext = CheckerExternals {
                    input: input_words.iter().copied().collect(),
                    externs: config.externs.clone(),
                };
                let mut hook = InvariantHook {
                    invariants: &invariants,
                    model: &cf.model,
                    params: &cf.model.params,
                    values: vector,
                    externs: &config.externs,
                    checks: 0,
                };
                let rets = if config.check_invariants {
                    interp.call_with_hook(
                        &cf.function.name,
                        &call.args,
                        &mut state,
                        &mut ext,
                        fuel,
                        &mut hook,
                    )
                } else {
                    interp.call(&cf.function.name, &call.args, &mut state, &mut ext, fuel)
                };
                report.max_fuel_used = report.max_fuel_used.max(state.fuel_used);
                match rets {
                    Err(rupicola_bedrock::ExecError::OutOfFuel) if fuel < config.max_fuel => {
                        report.fuel_escalations += 1;
                        fuel = fuel.saturating_mul(2).min(config.max_fuel);
                    }
                    Err(rupicola_bedrock::ExecError::OutOfFuel) => {
                        return Err(CheckError::Divergence {
                            vector: vector_desc.clone(),
                            fuel_cap: config.max_fuel,
                        });
                    }
                    other => break (other, state, call.regions, hook.checks),
                }
            };
            report.invariant_checks += hook_checks;
            let rets = rets.map_err(|e| match e {
                rupicola_bedrock::ExecError::HookFailure(m) => CheckError::InvariantViolated {
                    vector: vector_desc.clone(),
                    detail: m,
                },
                other => CheckError::TargetStuck {
                    vector: vector_desc.clone(),
                    error: other.to_string(),
                },
            })?;

            compare_outputs(cf, &src_value, &rets, &state, &regions, vector, &vector_desc)?;
            compare_traces(&cf.spec, &world, &state, &vector_desc)?;
        }
        if this_ran {
            ran += 1;
        }
    }
    report.vectors_run = ran;
    if ran == 0 || ran * 4 < vectors.len() {
        return Err(CheckError::InsufficientCoverage { ran, attempted: vectors.len() });
    }
    Ok(report)
}

/// One concretized differential-test input: the same machine state the
/// checker's layer-3 differential would start the compiled function in.
#[derive(Debug)]
pub struct DifferentialInput {
    /// Argument words, in Bedrock2 argument order.
    pub args: Vec<u64>,
    /// Initial memory (argument regions laid out and filled).
    pub mem: Memory,
    /// Human-readable description of the underlying model vector.
    pub desc: String,
}

/// Concretizes the checker's test vectors for `cf` into interpreter-ready
/// inputs, skipping vectors outside the spec's precondition (its hint
/// hypotheses). The optimization validator and the equivalence battery use
/// these to differential-test two Bedrock2 bodies on exactly the inputs
/// the certificate was checked on.
pub fn differential_inputs(cf: &CompiledFunction, config: &CheckConfig) -> Vec<DifferentialInput> {
    let vectors = generate_vectors(&cf.spec, &cf.model, config);
    let mut out = Vec::new();
    for vector in &vectors {
        if !hints_hold(&cf.spec, &cf.model, vector, config) {
            continue;
        }
        let Ok(call) = concretize(&cf.spec, &cf.model.params, vector) else {
            continue;
        };
        out.push(DifferentialInput {
            args: call.args,
            mem: call.mem,
            desc: describe_vector(&cf.model.params, vector),
        });
    }
    out
}

fn function_has_stackalloc(cmd: &rupicola_bedrock::Cmd) -> bool {
    use rupicola_bedrock::Cmd;
    match cmd {
        Cmd::StackAlloc { .. } => true,
        Cmd::Seq(a, b) => function_has_stackalloc(a) || function_has_stackalloc(b),
        Cmd::If { then_, else_, .. } => {
            function_has_stackalloc(then_) || function_has_stackalloc(else_)
        }
        Cmd::While { body, .. } => function_has_stackalloc(body),
        _ => false,
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Oracle returning a fixed byte pattern; `nondet_word` always picks the
/// least element, matching the compiled code's canonical choice.
#[derive(Debug, Clone, Copy)]
struct PoisonOracle {
    byte: u8,
}

impl Oracle for PoisonOracle {
    fn nondet_byte(&mut self) -> u8 {
        self.byte
    }
    fn nondet_word(&mut self, _bound: u64) -> u64 {
        0
    }
}

struct CheckerExternals {
    input: VecDeque<u64>,
    externs: ExternRegistry,
}

impl ExternalHandler for CheckerExternals {
    fn interact(
        &mut self,
        action: &str,
        args: &[u64],
        _mem: &mut Memory,
    ) -> Result<Vec<u64>, String> {
        match action {
            "io_read" => {
                let w = self.input.pop_front().ok_or("io input exhausted")?;
                Ok(vec![w])
            }
            "io_write" | "writer_tell" => Ok(vec![]),
            other => {
                let handler = self
                    .externs
                    .effect(other)
                    .ok_or_else(|| format!("no effect handler for `{other}`"))?
                    .clone();
                let vals: Vec<Value> = args.iter().map(|w| Value::Word(*w)).collect();
                let (_, rets) = handler(&vals).map_err(|e| e.to_string())?;
                Ok(rets)
            }
        }
    }
}

fn describe_vector(params: &[Ident], values: &[Value]) -> String {
    params
        .iter()
        .zip(values)
        .map(|(p, v)| format!("{p} := {v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Evaluates the spec's hint hypotheses on a vector. Hints double as the
/// function's `requires` clause: a vector on which a hint is false is
/// outside the precondition and is skipped. Hints mentioning terms that are
/// not evaluable from the parameters alone are ignored here (they were
/// still re-solved structurally).
fn hints_hold(spec: &FnSpec, model: &Model, vector: &[Value], config: &CheckConfig) -> bool {
    let mut env = Env::new();
    for (p, v) in model.params.iter().zip(vector) {
        env.insert(p.clone(), v.clone());
    }
    let mut world = World { externs: config.externs.clone(), ..World::default() };
    for hint in &spec.hints {
        let (a, b, test): (&Expr, &Expr, fn(u64, u64) -> bool) = match hint {
            Hyp::EqWord(a, b) => (a, b, |x, y| x == y),
            Hyp::LtU(a, b) => (a, b, |x, y| x < y),
            Hyp::LeU(a, b) => (a, b, |x, y| x <= y),
        };
        let va = eval(a, &env, &model.tables, &mut world).ok().and_then(|v| v.to_scalar_word());
        let vb = eval(b, &env, &model.tables, &mut world).ok().and_then(|v| v.to_scalar_word());
        if let (Some(x), Some(y)) = (va, vb) {
            if !test(x, y) {
                return false;
            }
        }
    }
    true
}

fn compare_outputs(
    cf: &CompiledFunction,
    src_value: &Value,
    rets: &[u64],
    state: &ExecState,
    regions: &[RegionLayout],
    vector: &[Value],
    vector_desc: &str,
) -> Result<(), CheckError> {
    let components = flatten_value(src_value);
    if components.len() != cf.spec.rets.len() {
        return Err(CheckError::Mismatch {
            vector: vector_desc.to_string(),
            detail: format!(
                "model produced {} result component(s), spec declares {}",
                components.len(),
                cf.spec.rets.len()
            ),
        });
    }
    let mut ret_iter = rets.iter();
    for (spec, comp) in cf.spec.rets.iter().zip(&components) {
        match spec {
            RetSpec::Scalar { name, kind } => {
                let got = *ret_iter.next().ok_or_else(|| CheckError::Mismatch {
                    vector: vector_desc.to_string(),
                    detail: "too few return values".into(),
                })?;
                let want = comp.to_scalar_word().ok_or_else(|| CheckError::Mismatch {
                    vector: vector_desc.to_string(),
                    detail: format!("model result component for `{name}` is not scalar"),
                })?;
                let want = mask_for_kind(*kind, want);
                if got != want {
                    return Err(CheckError::Mismatch {
                        vector: vector_desc.to_string(),
                        detail: format!("return `{name}`: model {want:#x}, compiled {got:#x}"),
                    });
                }
            }
            RetSpec::InPlace { param } => {
                let layout = regions.iter().find(|r| &r.param == param).ok_or_else(|| {
                    CheckError::Mismatch {
                        vector: vector_desc.to_string(),
                        detail: format!("no region layout for `{param}`"),
                    }
                })?;
                let bytes = state.mem.region(layout.base).ok_or_else(|| CheckError::Mismatch {
                    vector: vector_desc.to_string(),
                    detail: format!("region of `{param}` vanished"),
                })?;
                let got = match layout.elem {
                    Some(elem) => Value::from_layout_bytes(elem, bytes),
                    None => bytes
                        .get(..8)
                        .and_then(|b| <[u8; 8]>::try_from(b).ok())
                        .map(|b| Value::Cell(u64::from_le_bytes(b))),
                };
                let input_len = vector
                    .get(cf.model.params.iter().position(|p| p == param).unwrap_or(usize::MAX))
                    .and_then(Value::list_len);
                if let (Some(want_len), Some(got_len)) = (input_len, comp.list_len()) {
                    if want_len != got_len {
                        return Err(CheckError::Mismatch {
                            vector: vector_desc.to_string(),
                            detail: format!(
                                "in-place result for `{param}` changed length: {want_len} → {got_len}"
                            ),
                        });
                    }
                }
                if got.as_ref() != Some(comp) {
                    return Err(CheckError::Mismatch {
                        vector: vector_desc.to_string(),
                        detail: format!(
                            "in-place result for `{param}`: model {comp}, compiled {}",
                            got.map_or_else(|| "<undecodable>".to_string(), |v| v.to_string())
                        ),
                    });
                }
            }
        }
    }
    // Input regions that are not declared as outputs carry the implicit
    // `array p s` ensures clause: the compiled code must leave them
    // byte-for-byte unchanged.
    for layout in regions {
        let declared_output = cf
            .spec
            .rets
            .iter()
            .any(|r| matches!(r, RetSpec::InPlace { param } if *param == layout.param));
        if declared_output {
            continue;
        }
        let original = cf
            .model
            .params
            .iter()
            .position(|p| *p == layout.param)
            .and_then(|i| vector.get(i))
            .and_then(Value::to_layout_bytes);
        let got = state.mem.region(layout.base);
        if let (Some(want), Some(got)) = (original, got) {
            if want.as_slice() != got {
                return Err(CheckError::Mismatch {
                    vector: vector_desc.to_string(),
                    detail: format!(
                        "`{}` is not an output but its memory changed (spec ensures `array p {}` unchanged)",
                        layout.param, layout.param
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Flattens a pair-structured result value, mirroring
/// [`crate::goal::flatten_result`] on terms.
fn flatten_value(v: &Value) -> Vec<Value> {
    match v {
        Value::Pair(a, b) => {
            let mut out = flatten_value(a);
            out.extend(flatten_value(b));
            out
        }
        other => vec![other.clone()],
    }
}

fn mask_for_kind(kind: ScalarKind, w: u64) -> u64 {
    match kind {
        ScalarKind::Byte => w & 0xff,
        ScalarKind::Bool => w & 1,
        _ => w,
    }
}

fn compare_traces(
    spec: &FnSpec,
    world: &World,
    state: &ExecState,
    vector_desc: &str,
) -> Result<(), CheckError> {
    let (writer_events, other_events): (Vec<&TraceEvent>, Vec<&TraceEvent>) = state
        .trace
        .iter()
        .partition(|e| e.action == "writer_tell");
    let writer_got: Vec<u64> = writer_events.iter().filter_map(|e| e.args.first().copied()).collect();
    if writer_got != world.writer {
        return Err(CheckError::Mismatch {
            vector: vector_desc.to_string(),
            detail: format!(
                "writer output: model {:?}, compiled {:?}",
                world.writer, writer_got
            ),
        });
    }
    match spec.trace {
        TraceSpec::Unchanged => {
            if !other_events.is_empty() {
                return Err(CheckError::Mismatch {
                    vector: vector_desc.to_string(),
                    detail: format!(
                        "spec says tr' = tr but compiled code performed {} interaction(s)",
                        other_events.len()
                    ),
                });
            }
        }
        TraceSpec::MirrorsSource => {
            let expected: Vec<TraceEvent> = world.events.iter().map(event_to_trace).collect();
            let got: Vec<TraceEvent> = other_events.into_iter().cloned().collect();
            if expected != got {
                return Err(CheckError::Mismatch {
                    vector: vector_desc.to_string(),
                    detail: format!("trace: model {expected:?}, compiled {got:?}"),
                });
            }
        }
    }
    Ok(())
}

fn event_to_trace(e: &Event) -> TraceEvent {
    match e {
        Event::Read(w) => TraceEvent { action: "io_read".into(), args: vec![], rets: vec![*w] },
        Event::Write(w) => TraceEvent { action: "io_write".into(), args: vec![*w], rets: vec![] },
        Event::Ext { tag, args, rets } => TraceEvent {
            action: tag.clone(),
            args: args.clone(),
            rets: rets.clone(),
        },
    }
}

/// Bounds on a parameter's list length implied by the spec hints
/// (`length s = n`, `k ≤ length s`, `length s < m`).
fn hinted_len_bounds(spec: &FnSpec, param: &str) -> (usize, Option<usize>) {
    let mut lo = 0usize;
    let mut exact = None;
    for h in &spec.hints {
        let (a, b, kind) = match h {
            Hyp::EqWord(a, b) => (a, b, 0),
            Hyp::LeU(a, b) => (a, b, 1),
            Hyp::LtU(a, b) => (a, b, 2),
        };
        let is_len = |e: &Expr| {
            matches!(e, Expr::ArrayLen { arr, .. } if matches!(arr.as_ref(), Expr::Var(v) if v == param))
        };
        let lit = |e: &Expr| match e {
            Expr::Lit(v) => v.to_scalar_word(),
            _ => None,
        };
        match kind {
            0 if is_len(a) => {
                if let Some(n) = lit(b) {
                    exact = Some(n as usize);
                }
            }
            1 if is_len(b) => {
                if let Some(n) = lit(a) {
                    lo = lo.max(n as usize);
                }
            }
            _ => {}
        }
    }
    (lo, exact)
}

/// Extracts relational length hints of the form
/// `len A = len B >> k` / `len A = len B * k` (either literal-operand
/// order for the product), returned as `(a_param, b_param, transform)`
/// where `transform` maps B's length to A's required length. The codec
/// programs (`hex_enc`, `hex_dec`) relate their two buffers this way, and
/// without honoring the relation almost every generated vector would be
/// skipped by `hints_hold`, starving coverage.
/// One relational length hint: `(a_param, b_param, transform, k)` — A's
/// required length is `transform(len B, k)`.
type LenHint = (String, String, fn(usize, u64) -> usize, u64);

fn relational_len_hints(spec: &FnSpec) -> Vec<LenHint> {
    let len_param = |e: &Expr| match e {
        Expr::ArrayLen { arr, .. } => match arr.as_ref() {
            Expr::Var(v) => Some(v.clone()),
            _ => None,
        },
        _ => None,
    };
    let lit = |e: &Expr| match e {
        Expr::Lit(v) => v.to_scalar_word(),
        _ => None,
    };
    let mut out: Vec<LenHint> = Vec::new();
    for h in &spec.hints {
        let Hyp::EqWord(a, b) = h else { continue };
        let Some(a_param) = len_param(a) else { continue };
        let Expr::Prim { op, args } = b else { continue };
        if args.len() != 2 {
            continue;
        }
        match op {
            PrimOp::WShr => {
                if let (Some(b_param), Some(k)) = (len_param(&args[0]), lit(&args[1])) {
                    out.push((a_param, b_param, |n, k| n >> (k & 63), k));
                }
            }
            PrimOp::WMul => {
                let (p, k) = (len_param(&args[0]), lit(&args[1]));
                let (p, k) = if p.is_some() { (p, k) } else { (len_param(&args[1]), lit(&args[0])) };
                if let (Some(b_param), Some(k)) = (p, k) {
                    out.push((a_param, b_param, |n, k| n * (k as usize), k));
                }
            }
            _ => {}
        }
    }
    out
}

/// Generates input vectors covering size edge cases and random contents,
/// steering list sizes by any length hints so that preconditions do not
/// starve coverage.
fn generate_vectors(spec: &FnSpec, model: &Model, config: &CheckConfig) -> Vec<Vec<Value>> {
    const SIZES: [usize; 8] = [0, 1, 2, 3, 7, 8, 13, 32];
    let relational = relational_len_hints(spec);
    let mut out = Vec::with_capacity(config.vectors);
    let mut state = config.seed | 1;
    let mut next = move || {
        state = splitmix(state);
        state
    };
    for v in 0..config.vectors {
        let base_size = SIZES[v % SIZES.len()];
        // Decide every array's size up front so relational hints can tie
        // one buffer's length to another's before contents are drawn.
        let mut sizes: std::collections::HashMap<&str, usize> = spec
            .args
            .iter()
            .filter_map(|a| match a {
                ArgSpec::ArrayPtr { param, .. } => {
                    let (lo, exact) = hinted_len_bounds(spec, param);
                    Some((param.as_str(), exact.unwrap_or_else(|| base_size.max(lo))))
                }
                _ => None,
            })
            .collect();
        for (a_param, b_param, transform, k) in &relational {
            if let Some(&b_len) = sizes.get(b_param.as_str()) {
                if let Some(slot) = sizes.get_mut(a_param.as_str()) {
                    *slot = transform(b_len, *k);
                }
            }
        }
        let mut vector = Vec::with_capacity(model.params.len());
        for p in &model.params {
            let arg = spec.args.iter().find(|a| match a {
                ArgSpec::Scalar { param, .. }
                | ArgSpec::ArrayPtr { param, .. }
                | ArgSpec::CellPtr { param, .. } => param == p,
                ArgSpec::LenOf { .. } => false,
            });
            let size = match arg {
                Some(ArgSpec::ArrayPtr { param, .. }) => {
                    sizes.get(param.as_str()).copied().unwrap_or(base_size)
                }
                _ => base_size,
            };
            let value = match arg {
                Some(ArgSpec::ArrayPtr { elem: ElemKind::Byte, .. }) => {
                    Value::byte_list((0..size).map(|_| (next() & 0xff) as u8))
                }
                Some(ArgSpec::ArrayPtr { elem: ElemKind::Word, .. }) => {
                    Value::word_list((0..size).map(|_| next()))
                }
                Some(ArgSpec::CellPtr { .. }) => Value::Cell(next()),
                Some(ArgSpec::Scalar { kind, .. }) => match kind {
                    // Words are biased toward plausible index values so that
                    // hints acting as preconditions (e.g. `i < length s`)
                    // keep enough vectors alive.
                    ScalarKind::Word => Value::Word(match v % 4 {
                        0 => 0,
                        1 => 1,
                        _ => next() % (2 * size as u64 + 2),
                    }),
                    ScalarKind::Byte => Value::Byte((next() & 0xff) as u8),
                    ScalarKind::Bool => Value::Bool(next() & 1 == 1),
                    ScalarKind::Nat => Value::Nat(next() & 0xffff),
                    ScalarKind::Unit => Value::Unit,
                },
                _ => Value::Unit,
            };
            vector.push(value);
        }
        out.push(vector);
    }
    out
}

/// The loop-head invariant checker.
struct InvariantHook<'a> {
    invariants: &'a [LoopInvariant],
    model: &'a Model,
    params: &'a [Ident],
    values: &'a [Value],
    externs: &'a ExternRegistry,
    checks: usize,
}

impl InvariantHook<'_> {
    fn base_env(&self, inv: &LoopInvariant, world: &mut World) -> Result<Env, String> {
        let mut env = Env::new();
        for (p, v) in self.params.iter().zip(self.values) {
            env.insert(p.clone(), v.clone());
        }
        for (name, def) in &inv.bindings {
            let v = eval(def, &env, &self.model.tables, world)
                .map_err(|e| format!("binding `{name}`: {e}"))?;
            env.insert(name.clone(), v);
        }
        Ok(env)
    }
}

impl LoopHook for InvariantHook<'_> {
    fn at_loop_head(
        &mut self,
        _function: &str,
        cond: &BExpr,
        locals: &Locals,
        mem: &Memory,
    ) -> Result<(), String> {
        for inv in self.invariants {
            // Each invariant belongs to one loop: the one whose condition
            // tests its counter.
            if !cond.vars().iter().any(|v| v == &inv.index_local) {
                continue;
            }
            let Some(&i) = locals.get(&inv.index_local) else { continue };
            let mut world = World { externs: self.externs.clone(), ..World::default() };
            let env = self.base_env(inv, &mut world)?;
            self.checks += 1;
            match &inv.kind {
                LoopInvariantKind::ArrayMapInPlace { ptr_local, elem, x, f, arr } => {
                    let arr_val = eval(arr, &env, &self.model.tables, &mut world)
                        .map_err(|e| format!("invariant array term: {e}"))?;
                    let len = arr_val.list_len().ok_or("invariant array term is not a list")?;
                    if (i as usize) > len {
                        return Err(format!("loop counter {i} exceeds length {len}"));
                    }
                    let mut expected = arr_val.clone();
                    let mut env2 = env.clone();
                    for k in 0..i as usize {
                        let xv = expected
                            .list_get(k)
                            .ok_or_else(|| format!("invariant element {k} out of range"))?;
                        env2.insert(x.clone(), xv);
                        let fx = eval(f, &env2, &self.model.tables, &mut world)
                            .map_err(|e| format!("invariant map body: {e}"))?;
                        expected = put_elem(expected, k, &fx)?;
                    }
                    let base = *locals
                        .get(ptr_local)
                        .ok_or_else(|| format!("no local `{ptr_local}`"))?;
                    let got = mem.region(base).ok_or("array region missing at loop head")?;
                    let want = expected.to_layout_bytes().ok_or("no layout")?;
                    if got != want.as_slice() {
                        return Err(format!(
                            "iteration {i}: memory is {got:?}, invariant predicts map f (first {i} l) ++ skip {i} l = {want:?} ({elem})"
                        ));
                    }
                }
                LoopInvariantKind::ArrayFoldScalar { acc_local, acc, x, f, init, arr, .. } => {
                    let arr_val = eval(arr, &env, &self.model.tables, &mut world)
                        .map_err(|e| format!("invariant array term: {e}"))?;
                    let len = arr_val.list_len().ok_or("invariant array term is not a list")?;
                    if (i as usize) > len {
                        return Err(format!("loop counter {i} exceeds length {len}"));
                    }
                    let mut accv = eval(init, &env, &self.model.tables, &mut world)
                        .map_err(|e| format!("invariant init: {e}"))?;
                    let mut env2 = env.clone();
                    for k in 0..i as usize {
                        env2.insert(acc.clone(), accv);
                        let xv = arr_val
                            .list_get(k)
                            .ok_or_else(|| format!("invariant element {k} out of range"))?;
                        env2.insert(x.clone(), xv);
                        accv = eval(f, &env2, &self.model.tables, &mut world)
                            .map_err(|e| format!("invariant fold body: {e}"))?;
                    }
                    check_scalar_local(locals, acc_local, &accv, i)?;
                }
                LoopInvariantKind::RangeFoldArrayPut { ptr_local, elem, i: iv, acc, f, init, from } => {
                    let lo = eval(from, &env, &self.model.tables, &mut world)
                        .ok()
                        .and_then(|v| v.to_scalar_word())
                        .ok_or("invariant `from` term not scalar")?;
                    let mut expected = eval(init, &env, &self.model.tables, &mut world)
                        .map_err(|e| format!("invariant init: {e}"))?;
                    let mut env2 = env.clone();
                    let mut k = lo;
                    while k < i {
                        env2.insert(iv.clone(), Value::Word(k));
                        env2.insert(acc.clone(), expected);
                        expected = eval(f, &env2, &self.model.tables, &mut world)
                            .map_err(|e| format!("invariant put body: {e}"))?;
                        k += 1;
                    }
                    let base = *locals
                        .get(ptr_local)
                        .ok_or_else(|| format!("no local `{ptr_local}`"))?;
                    let got = mem.region(base).ok_or("array region missing at loop head")?;
                    let want = expected.to_layout_bytes().ok_or("no layout")?;
                    if got != want.as_slice() {
                        return Err(format!(
                            "iteration {i}: memory is {got:?}, invariant predicts fold_range ({lo}) {i} put = {want:?} ({elem})"
                        ));
                    }
                }
                LoopInvariantKind::RangeFoldScalar { acc_local, i: iv, acc, f, init, from } => {
                    let lo = eval(from, &env, &self.model.tables, &mut world)
                        .ok()
                        .and_then(|v| v.to_scalar_word())
                        .ok_or("invariant `from` term not scalar")?;
                    let mut accv = eval(init, &env, &self.model.tables, &mut world)
                        .map_err(|e| format!("invariant init: {e}"))?;
                    let mut env2 = env.clone();
                    let mut k = lo;
                    while k < i {
                        env2.insert(iv.clone(), Value::Word(k));
                        env2.insert(acc.clone(), accv);
                        accv = eval(f, &env2, &self.model.tables, &mut world)
                            .map_err(|e| format!("invariant fold body: {e}"))?;
                        k += 1;
                    }
                    check_scalar_local(locals, acc_local, &accv, i)?;
                }
            }
        }
        Ok(())
    }
}

fn check_scalar_local(locals: &Locals, name: &str, want: &Value, i: u64) -> Result<(), String> {
    let got = *locals.get(name).ok_or_else(|| format!("no local `{name}`"))?;
    let want_w = want
        .to_scalar_word()
        .ok_or_else(|| format!("invariant accumulator for `{name}` is not scalar"))?;
    if got != want_w {
        return Err(format!(
            "iteration {i}: local `{name}` is {got:#x}, invariant predicts {want_w:#x}"
        ));
    }
    Ok(())
}

fn put_elem(v: Value, idx: usize, x: &Value) -> Result<Value, String> {
    match (v, x) {
        (Value::ByteList(mut b), Value::Byte(e)) => {
            b[idx] = *e;
            Ok(Value::ByteList(b))
        }
        (Value::WordList(mut w), Value::Word(e)) => {
            w[idx] = *e;
            Ok(Value::WordList(w))
        }
        _ => Err("invariant map body produced wrong element kind".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::{Derivation, DerivationNode};
    use crate::engine::CompiledFunction;
    use crate::fnspec::{ArgSpec, RetSpec};
    use crate::lemma::HintDbs;
    use rupicola_bedrock::{BFunction, Cmd};
    use rupicola_lang::dsl::*;

    /// A hand-built "compiled function" with correct identity behaviour
    /// passes the checker with an empty-lemma derivation.
    fn identity_compiled() -> CompiledFunction {
        let model = Model::new("id", ["s"], var("s"));
        let spec = FnSpec::new(
            "id",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        CompiledFunction {
            function: BFunction::new("id", ["s", "len"], Vec::<String>::new(), Cmd::Skip),
            derivation: Derivation::new(DerivationNode::leaf("done", "s")),
            model,
            spec,
            linked: Vec::new(),
            optimized: None,
            stats: Default::default(),
        }
    }

    #[test]
    fn correct_identity_passes() {
        let report = check(&identity_compiled(), &HintDbs::new()).unwrap();
        assert!(report.vectors_run > 0);
        assert_eq!(report.vectors_skipped, 0);
    }

    #[test]
    fn wrong_code_is_caught() {
        // "id" that zeroes the first byte — differential testing must object.
        let mut cf = identity_compiled();
        cf.function.body = Cmd::if_(
            rupicola_bedrock::BExpr::var("len"),
            Cmd::store(
                rupicola_bedrock::AccessSize::One,
                rupicola_bedrock::BExpr::var("s"),
                rupicola_bedrock::BExpr::lit(0),
            ),
            Cmd::Skip,
        );
        let err = check(&cf, &HintDbs::new()).unwrap_err();
        assert!(matches!(err, CheckError::Mismatch { .. }), "got {err:?}");
    }

    #[test]
    fn oob_code_is_caught() {
        let mut cf = identity_compiled();
        // Unconditional store past the end (faults even on empty arrays).
        cf.function.body = Cmd::store(
            rupicola_bedrock::AccessSize::One,
            rupicola_bedrock::BExpr::op(
                rupicola_bedrock::BinOp::Add,
                rupicola_bedrock::BExpr::var("s"),
                rupicola_bedrock::BExpr::var("len"),
            ),
            rupicola_bedrock::BExpr::lit(0),
        );
        let err = check(&cf, &HintDbs::new()).unwrap_err();
        assert!(matches!(err, CheckError::TargetStuck { .. }), "got {err:?}");
    }

    #[test]
    fn unknown_lemma_is_rejected() {
        let mut cf = identity_compiled();
        cf.derivation = Derivation::new(DerivationNode::leaf("not_a_lemma", "s"));
        let err = check(&cf, &HintDbs::new()).unwrap_err();
        assert_eq!(err, CheckError::UnknownLemma("not_a_lemma".into()));
    }

    #[test]
    fn unsatisfiable_hint_starves_coverage() {
        // Hints are `requires` clauses; one that excludes (almost) every
        // input leaves the checker without evidence and must be rejected.
        let mut cf = identity_compiled();
        cf.spec = cf
            .spec
            .with_hint(crate::goal::Hyp::LtU(array_len_b(var("s")), word_lit(0)));
        let err = check(&cf, &HintDbs::new()).unwrap_err();
        assert!(matches!(err, CheckError::InsufficientCoverage { .. }), "got {err:?}");
    }

    #[test]
    fn unresolvable_side_condition_is_rejected() {
        let mut cf = identity_compiled();
        let mut node = DerivationNode::leaf("done", "s");
        node.side_conds.push(crate::derive::SideCondRecord {
            cond: crate::goal::SideCond::Lt(word_lit(5), word_lit(3)),
            solver: "lia".into(),
            hyps: Vec::new().into(),
        });
        cf.derivation = Derivation::new(node);
        let err = check(&cf, &HintDbs::new()).unwrap_err();
        assert!(matches!(err, CheckError::SideCondition { .. }), "got {err:?}");
    }

    #[test]
    fn trace_unchanged_rejects_interactions() {
        let mut cf = identity_compiled();
        cf.function.body = Cmd::Interact {
            rets: vec![],
            action: "io_write".into(),
            args: vec![rupicola_bedrock::BExpr::lit(1)],
        };
        let err = check(&cf, &HintDbs::new()).unwrap_err();
        assert!(matches!(err, CheckError::Mismatch { .. }), "got {err:?}");
    }
}
