//! Unfolding hints for user-defined operations (§3.2).
//!
//! The paper's `upstr` derivation plugs in "an unfolding hint that allows
//! Rupicola to inline the function `toupper'`". Here, a user registers a
//! pure extern operation (semantics in `rupicola-lang`'s
//! [`rupicola_lang::ExternRegistry`]) and an [`UnfoldExpr`] lemma giving
//! its definition in core syntax; the compiler inlines the definition at
//! every use.

use rupicola_core::derive::DerivationNode;
use rupicola_core::{AppliedExpr, CompileError, Compiler, Dispatch, ExprLemma, HeadKey, StmtGoal};
use rupicola_lang::Expr;
use std::fmt;
use std::sync::Arc;

/// Expression-level unfolding: occurrences of `Extern { tag, args }` are
/// replaced by `unfold(args)` and compilation continues on the result.
#[derive(Clone)]
pub struct UnfoldExpr {
    tag: String,
    unfold: rupicola_lang::UnfoldFn,
}

impl fmt::Debug for UnfoldExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnfoldExpr").field("tag", &self.tag).finish()
    }
}

impl UnfoldExpr {
    /// Creates an unfolding hint for the operation `tag`.
    pub fn new<F>(tag: impl Into<String>, unfold: F) -> Self
    where
        F: Fn(&[Expr]) -> Expr + Send + Sync + 'static,
    {
        UnfoldExpr { tag: tag.into(), unfold: Arc::new(unfold) }
    }
}

impl ExprLemma for UnfoldExpr {
    fn name(&self) -> &'static str {
        "expr_unfold"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Extern])
    }

    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let Expr::Extern { tag, args } = term else { return None };
        if tag != &self.tag {
            return None;
        }
        let unfolded = (self.unfold)(args);
        Some(match cx.compile_expr(&unfolded, goal) {
            Ok((expr, child)) => Ok(AppliedExpr {
                expr,
                node: DerivationNode::leaf(self.name(), format!("{tag} ≔ {unfolded}"))
                    .with_child(child),
            }),
            Err(e) => Err(e),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_dbs;
    use rupicola_core::check::{check_with, CheckConfig};
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::{Model, Value};
    use rupicola_sep::ScalarKind;

    #[test]
    fn user_extension_unfolds_and_validates() {
        // A user-defined `clamp255 x = if x < 255 then x else 255`, defined
        // branchlessly for compilation.
        let model = Model::new(
            "clamped_inc",
            ["x"],
            let_n(
                "y",
                extern_op("clamp255", vec![word_add(var("x"), word_lit(1))]),
                var("y"),
            ),
        );
        let spec = FnSpec::new(
            "clamped_inc",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let mut dbs = standard_dbs();
        // Branchless: lt = (x < 255); x*lt + 255*(1-lt).
        dbs.register_expr(UnfoldExpr::new("clamp255", |args| {
            let x = args[0].clone();
            let lt = word_ltu(x.clone(), word_lit(255));
            word_add(
                word_mul(x, word_of_bool(lt.clone())),
                word_mul(word_lit(255), word_sub(word_lit(1), word_of_bool(lt))),
            )
        }));
        let out = compile(&model, &spec, &dbs).unwrap();
        let mut config = CheckConfig::default();
        config.externs.register_fn("clamp255", 1, |args| {
            let x = args[0].as_word().unwrap_or(0);
            Ok(Value::Word(x.min(255)))
        });
        check_with(&out, &dbs, &config).unwrap();
    }

    #[test]
    fn wrong_unfolding_is_caught_by_the_checker() {
        // The unfolding is *not* equivalent to the registered semantics:
        // differential validation must reject the derivation.
        let model = Model::new(
            "bad_clamp",
            ["x"],
            let_n("y", extern_op("clampX", vec![var("x")]), var("y")),
        );
        let spec = FnSpec::new(
            "bad_clamp",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let mut dbs = standard_dbs();
        dbs.register_expr(UnfoldExpr::new("clampX", |args| args[0].clone())); // identity: wrong
        let out = compile(&model, &spec, &dbs).unwrap();
        let mut config = CheckConfig::default();
        config.externs.register_fn("clampX", 1, |args| {
            let x = args[0].as_word().unwrap_or(0);
            Ok(Value::Word(x.min(7)))
        });
        let err = check_with(&out, &dbs, &config).unwrap_err();
        assert!(
            matches!(err, rupicola_core::check::CheckError::Mismatch { .. }),
            "got {err:?}"
        );
    }
}
