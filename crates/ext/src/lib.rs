//! The Rupicola extension library: "compiler submodules".
//!
//! Rupicola's core "is restricted, out of the box, to a minimal set of
//! constructs" (§1); everything users actually compile with comes from
//! extensions like the ones in this crate. Each module is one extension in
//! the sense of Table 1 — a handful of lemmas plus their side conditions —
//! and is deliberately kept in its own file so the incremental-effort
//! measurements of the Table 1 harness are per-extension:
//!
//! | module | extension | paper |
//! |---|---|---|
//! | [`let_bind`] | named scalar bindings (`let/n`) | §3.4.1 |
//! | [`conditionals`] | scalar conditionals with predicate inference | §3.4.2 |
//! | [`arith`] | the relational expression compiler | §4.1.3 |
//! | [`arrays`] | `ListArray` get/put/map/fold | §3.2 |
//! | [`loops`] | ranged folds, with and without early exit | §3.4.2 |
//! | [`inline_tables`] | `InlineTable.get` for bytes and words | §4.1.2 |
//! | [`cells`] | mutable cells: get, put, iadd | Table 1 |
//! | [`stack_alloc`] | stack allocation of initialized objects | §4.1.2 |
//! | [`nondet`] | nondet monad: alloc, peek | Table 1 |
//! | [`io`] | io monad: read, write | Table 1 |
//! | [`writer`] | writer monad: tell | §4.1.1 |
//! | [`free`] | generic free-monad commands | §3 |
//! | [`calls`] | external calls to linked verified Bedrock2 | §3.2 |
//! | [`copy`] | the `copy` annotation (copy instead of mutate) | §3.4.1 |
//! | [`intrinsics`] | direct mappings to special instructions | §3 |
//! | [`unfold`] | user-extension unfolding hints | §3.2 |
//!
//! [`standard_dbs`] assembles the full standard compiler; users add their
//! own lemmas on top ("plugging in domain- or program-specific compilation
//! hints", §1).

pub mod arith;
pub mod arrays;
pub mod calls;
pub mod cells;
pub mod conditionals;
pub mod copy;
pub mod free;
pub mod helpers;
pub mod inline_tables;
pub mod intrinsics;
pub mod io;
pub mod let_bind;
pub mod loops;
pub mod nondet;
pub mod stack_alloc;
pub mod unfold;
pub mod writer;

use rupicola_core::HintDbs;

/// Builds the standard hint databases: every extension in this crate, in
/// the canonical order (specialized `let` forms before the generic scalar
/// `let`, which must come last among statement lemmas).
pub fn standard_dbs() -> HintDbs {
    let mut dbs = HintDbs::new();
    // Statement lemmas. Order matters: lemmas matching specific `let`
    // right-hand sides run before the generic scalar binding.
    dbs.register_stmt(io::MonadBindRet);
    dbs.register_stmt(conditionals::CompileScalarIf);
    dbs.register_stmt(cells::CompileCellCasPair);
    dbs.register_stmt(cells::CompileCellCas);
    dbs.register_stmt(cells::CompileCellIncr);
    dbs.register_stmt(cells::CompileCellPut);
    dbs.register_stmt(arrays::CompileArrayPut);
    dbs.register_stmt(arrays::CompileArrayMap);
    dbs.register_stmt(arrays::CompileArrayFold);
    dbs.register_stmt(arrays::CompileRangeFoldArrayPut);
    dbs.register_stmt(loops::CompileRangeFold);
    dbs.register_stmt(loops::CompileRangeFoldBreak);
    dbs.register_stmt(loops::CompileRangeFoldM);
    dbs.register_stmt(stack_alloc::CompileStackInit);
    dbs.register_stmt(nondet::CompileNondetAlloc);
    dbs.register_stmt(nondet::CompileNondetPeek);
    dbs.register_stmt(io::CompileIoRead);
    dbs.register_stmt(io::CompileIoWrite);
    dbs.register_stmt(writer::CompileWriterTell);
    dbs.register_stmt(free::CompileFreeOp);
    dbs.register_stmt(copy::CompileCopyScalar);
    dbs.register_stmt(copy::CompileCopyArrayStack);
    dbs.register_stmt(let_bind::CompileLetPair);
    dbs.register_stmt(let_bind::CompileLetScalar);
    // Expression lemmas.
    dbs.register_expr(arith::ExprLocal);
    dbs.register_expr(arith::ExprProj);
    dbs.register_expr(arith::ExprLit);
    dbs.register_expr(arith::ExprPrim);
    dbs.register_expr(arrays::ExprArrayGet);
    dbs.register_expr(inline_tables::ExprTableGet);
    dbs.register_expr(cells::ExprCellGet);
    dbs
}

/// Source text of each extension module, for the Table 1 effort
/// measurements (lines of lemma code per extension).
pub fn extension_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("let_bind", include_str!("let_bind.rs")),
        ("conditionals", include_str!("conditionals.rs")),
        ("arith", include_str!("arith.rs")),
        ("arrays", include_str!("arrays.rs")),
        ("loops", include_str!("loops.rs")),
        ("inline_tables", include_str!("inline_tables.rs")),
        ("intrinsics", include_str!("intrinsics.rs")),
        ("cells", include_str!("cells.rs")),
        ("calls", include_str!("calls.rs")),
        ("copy", include_str!("copy.rs")),
        ("stack_alloc", include_str!("stack_alloc.rs")),
        ("nondet", include_str!("nondet.rs")),
        ("io", include_str!("io.rs")),
        ("writer", include_str!("writer.rs")),
        ("free", include_str!("free.rs")),
        ("unfold", include_str!("unfold.rs")),
    ]
}
