//! The nondeterminism monad (Table 1: `alloc`, `peek`).
//!
//! A nondeterministic computation denotes a *set* of results; compiled code
//! must produce *some* member ("the value is now constrained by the
//! computation `ma`", §3.4.1). `alloc` produces a buffer of unspecified
//! bytes and compiles to an uninitialized stack allocation; `peek` picks an
//! unspecified word below a bound and compiles to the canonical least
//! member. The trusted checker validates the refinement by running the
//! source against oracles matching the compiled choices — under two
//! different stack poisons, so code whose *result* depends on unspecified
//! bytes is caught.

use rupicola_core::derive::DerivationNode;
use rupicola_core::{
    Applied,
    CompileError,
    Compiler,
    Dispatch,
    HeadKey,
    Hyp,
    SideCond,
    StmtGoal,
    StmtLemma,
};
use rupicola_bedrock::Cmd;
use rupicola_lang::{ElemKind, Expr, MonadKind, Value};
use rupicola_sep::{Heaplet, HeapletKind, ScalarKind, SymValue};

/// `let/n! buf := nondet.bytes n in k` — an uninitialized stack buffer of
/// compile-time-constant size.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileNondetAlloc;

impl StmtLemma for CompileNondetAlloc {
    fn name(&self) -> &'static str {
        "compile_nondet_alloc"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad: MonadKind::Nondet, name, ma, body } = &goal.prog else {
            return None;
        };
        if !goal.monad.admits(MonadKind::Nondet) {
            return None;
        }
        let Expr::NondetBytes { len } = ma.as_ref() else { return None };
        let Expr::Lit(Value::Word(n)) = len.as_ref() else { return None };
        Some(self.apply(goal, cx, name, *n, body))
    }
}

impl CompileNondetAlloc {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        n: u64,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let node = DerivationNode::leaf(
            self.name(),
            format!("let/n! {name} := nondet.bytes({n})"),
        );
        let mut k_goal = goal.clone();
        let id = k_goal.heap.add(Heaplet {
            kind: HeapletKind::Array { elem: ElemKind::Byte },
            content: Expr::Var(name.to_string()),
            len: Some(Expr::ArrayLen {
                elem: ElemKind::Byte,
                arr: Expr::Var(name.to_string()).boxed(),
            }),
            ptr_name: format!("&{name}"),
        });
        k_goal.locals.set(name.to_string(), SymValue::Ptr(id));
        k_goal.push_hyp(Hyp::EqWord(
            Expr::ArrayLen {
                elem: ElemKind::Byte,
                arr: Expr::Var(name.to_string()).boxed(),
            },
            Expr::Lit(Value::Word(n)),
        ));
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        let node = node.with_child(k_node);
        Ok(Applied {
            cmd: Cmd::StackAlloc {
                var: name.to_string(),
                nbytes: n,
                body: Box::new(k_cmd),
            },
            node,
        })
    }
}

/// `let/n! w := nondet.word(< bound) in k` — the compiled code commits to
/// the least member, `0`, which is in the set provided `bound ≠ 0` (a side
/// condition).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileNondetPeek;

impl StmtLemma for CompileNondetPeek {
    fn name(&self) -> &'static str {
        "compile_nondet_peek"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad: MonadKind::Nondet, name, ma, body } = &goal.prog else {
            return None;
        };
        if !goal.monad.admits(MonadKind::Nondet) {
            return None;
        }
        let Expr::NondetWord { bound } = ma.as_ref() else { return None };
        Some(self.apply(goal, cx, name, bound, body))
    }
}

impl CompileNondetPeek {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        bound: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(
            self.name(),
            format!("let/n! {name} := nondet.word(< {bound})"),
        );
        let sc = cx.solve(self.name(), SideCond::NonZero(bound.clone()), &goal.hyps)?;
        node.side_conds.push(sc);
        let mut k_goal = goal.clone();
        k_goal
            .locals
            .set(name.to_string(), SymValue::Scalar(ScalarKind::Word, Expr::Var(name.to_string())));
        // Only the set membership is known downstream — the value itself
        // is unspecified at the source level.
        k_goal.push_hyp(Hyp::LtU(Expr::Var(name.to_string()), bound.clone()));
        k_goal.defs.push((name.to_string(), Expr::NondetWord { bound: bound.clone().boxed() }));
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([Cmd::set(name.to_string(), rupicola_bedrock::BExpr::lit(0)), k_cmd]),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_core::MonadCtx;
    use rupicola_lang::dsl::*;
    use rupicola_lang::{Model, MonadKind};
    use rupicola_sep::ScalarKind;

    #[test]
    fn alloc_then_write_then_read_is_deterministic() {
        // The §4.1.2 pattern: allocate unspecified bytes, overwrite, read
        // back — "provably deterministic (independent of initial bytes)".
        let model = Model::new(
            "scratchpad",
            ["x"],
            bind(
                MonadKind::Nondet,
                "buf",
                nondet_bytes(word_lit(8)),
                let_n(
                    "buf",
                    array_put_b(var("buf"), word_lit(0), byte_of_word(var("x"))),
                    let_n(
                        "b",
                        array_get_b(var("buf"), word_lit(0)),
                        ret(MonadKind::Nondet, word_of_byte(var("b"))),
                    ),
                ),
            ),
        );
        let spec = FnSpec::new(
            "scratchpad",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Nondet));
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        let report = check(&out, &dbs).unwrap();
        assert!(report.poison_pair, "nondet programs run under two poisons");
    }

    #[test]
    fn reading_uninitialized_bytes_is_caught() {
        // A model whose *result* is the unspecified byte: compiled code
        // returns the poison, which differs between runs only on the
        // target side if the source oracle is not aligned — and the
        // checker aligns them, so this passes only because the source
        // result is the same oracle byte. Mutating the compiled code to
        // ignore the buffer is what the checker would catch; here we check
        // the aligned case validates.
        let model = Model::new(
            "leak",
            Vec::<String>::new(),
            bind(
                MonadKind::Nondet,
                "buf",
                nondet_bytes(word_lit(1)),
                let_n(
                    "b",
                    array_get_b(var("buf"), word_lit(0)),
                    ret(MonadKind::Nondet, word_of_byte(var("b"))),
                ),
            ),
        );
        let spec = FnSpec::new(
            "leak",
            vec![],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Nondet));
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn peek_commits_to_least_member() {
        let model = Model::new(
            "pick",
            ["n"],
            bind(
                MonadKind::Nondet,
                "w",
                nondet_word(word_add(var("n"), word_lit(1))),
                ret(MonadKind::Nondet, var("w")),
            ),
        );
        let spec = FnSpec::new(
            "pick",
            vec![ArgSpec::Scalar { name: "n".into(), param: "n".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Nondet))
        .with_hint(rupicola_core::Hyp::LtU(var("n"), word_lit(u64::MAX)));
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn nondet_outside_nondet_monad_is_rejected() {
        let model = Model::new(
            "wrong",
            Vec::<String>::new(),
            bind(
                MonadKind::Nondet,
                "w",
                nondet_word(word_lit(4)),
                ret(MonadKind::Nondet, var("w")),
            ),
        );
        let spec = FnSpec::new(
            "wrong",
            vec![],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        ); // monad left Pure
        let dbs = standard_dbs();
        assert!(compile(&model, &spec, &dbs).is_err());
    }
}
