//! The generic free monad: arbitrary environment commands.
//!
//! A free-monad command `op tag args` compiles to a Bedrock2 `interact`
//! with the same tag; the environment (at validation time, the checker's
//! external handler wrapping the model's effect registry) interprets it.
//! This is the most general extensional effect: io, randomness, device
//! access, … anything the environment can answer with a word.

use rupicola_core::derive::DerivationNode;
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, StmtGoal, StmtLemma};
use rupicola_bedrock::Cmd;
use rupicola_lang::{Expr, MonadKind};
use rupicola_sep::{ScalarKind, SymValue};

/// `let/n! x := op tag (args…) in k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileFreeOp;

impl StmtLemma for CompileFreeOp {
    fn name(&self) -> &'static str {
        "compile_free_op"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad: MonadKind::Free, name, ma, body } = &goal.prog else {
            return None;
        };
        if !goal.monad.admits(MonadKind::Free) {
            return None;
        }
        let Expr::FreeOp { tag, args } = ma.as_ref() else { return None };
        Some(self.apply(goal, cx, name, tag, args, body))
    }
}

impl CompileFreeOp {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        tag: &str,
        args: &[Expr],
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node =
            DerivationNode::leaf(self.name(), format!("let/n! {name} := {tag}(…)"));
        let mut arg_es = Vec::with_capacity(args.len());
        for a in args {
            let (e, c) = cx.compile_expr(a, goal)?;
            arg_es.push(e);
            node.children.push(c);
        }
        let mut k_goal = goal.clone();
        k_goal.locals.set(
            name.to_string(),
            SymValue::Scalar(ScalarKind::Word, Expr::Var(name.to_string())),
        );
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([
                Cmd::Interact {
                    rets: vec![name.to_string()],
                    action: tag.to_string(),
                    args: arg_es,
                },
                k_cmd,
            ]),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::{check_with, CheckConfig};
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec, TraceSpec};
    use rupicola_core::MonadCtx;
    use rupicola_lang::dsl::*;
    use rupicola_lang::{Model, MonadKind, Value};
    use rupicola_sep::ScalarKind;

    #[test]
    fn free_commands_become_interactions() {
        // Two "sensor" reads summed; the handler doubles its argument and
        // reports the result word on the trace.
        let model = Model::new(
            "sense2",
            ["x"],
            bind(
                MonadKind::Free,
                "a",
                free_op("sensor", vec![var("x")]),
                bind(
                    MonadKind::Free,
                    "b",
                    free_op("sensor", vec![var("a")]),
                    ret(MonadKind::Free, word_add(var("a"), var("b"))),
                ),
            ),
        );
        let spec = FnSpec::new(
            "sense2",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Free))
        .with_trace(TraceSpec::MirrorsSource);
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        let mut config = CheckConfig::default();
        config.externs.register_effect("sensor", |args| {
            let w = args[0].as_word().unwrap_or(0).wrapping_mul(2);
            Ok((Value::Word(w), vec![w]))
        });
        check_with(&out, &dbs, &config).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert_eq!(c.matches("sensor").count(), 2, "{c}");
    }
}
