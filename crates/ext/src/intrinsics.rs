//! Intrinsics: source-level operations mapped directly to special target
//! instructions (§3 lists "intrinsics" among the supported low-level
//! features).
//!
//! An [`IntrinsicLemma`] binds a user-registered pure operation to a single
//! Bedrock2 operator — e.g. `mulhuu` to [`BinOp::MulHuu`], the high half of
//! the unsigned product, which has no composition of ordinary source
//! primitives. The operation's semantics (used by evaluation and by the
//! checker) is registered separately in the
//! [`rupicola_lang::ExternRegistry`]; the differential layer of the checker
//! then validates that the intrinsic's semantics and the instruction agree.

use rupicola_core::derive::DerivationNode;
use rupicola_core::{AppliedExpr, CompileError, Compiler, Dispatch, ExprLemma, HeadKey, StmtGoal};
use rupicola_bedrock::{BExpr, BinOp};
use rupicola_lang::{EvalError, Expr, ExternRegistry, Value};

/// Maps `Extern { tag, [a, b] }` to a single Bedrock2 binary operator.
#[derive(Debug, Clone)]
pub struct IntrinsicLemma {
    tag: String,
    op: BinOp,
}

impl IntrinsicLemma {
    /// Creates an intrinsic lemma for the operation `tag`.
    pub fn new(tag: impl Into<String>, op: BinOp) -> Self {
        IntrinsicLemma { tag: tag.into(), op }
    }
}

impl ExprLemma for IntrinsicLemma {
    fn name(&self) -> &'static str {
        "expr_intrinsic"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Extern])
    }

    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let Expr::Extern { tag, args } = term else { return None };
        if tag != &self.tag || args.len() != 2 {
            return None;
        }
        Some(self.apply(term, args, goal, cx))
    }
}

impl IntrinsicLemma {
    fn apply(
        &self,
        term: &Expr,
        args: &[Expr],
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Result<AppliedExpr, CompileError> {
        let mut node = DerivationNode::leaf(
            "expr_intrinsic",
            format!("{term} ↝ {:?}", self.op),
        );
        let (a, c0) = cx.compile_expr(&args[0], goal)?;
        let (b, c1) = cx.compile_expr(&args[1], goal)?;
        node.children.push(c0);
        node.children.push(c1);
        Ok(AppliedExpr { expr: BExpr::op(self.op, a, b), node })
    }
}

/// Registers the standard intrinsic *semantics* in an extern registry:
/// `mulhuu` (high 64 bits of the unsigned product). Pair with
/// [`standard_intrinsic_lemmas`] on the compilation side.
pub fn register_standard_intrinsics(reg: &mut ExternRegistry) {
    reg.register_fn("mulhuu", 2, |args| {
        let a = args[0].as_word().ok_or(EvalError::TypeMismatch {
            expected: "word",
            found: args[0].kind(),
            context: "mulhuu",
        })?;
        let b = args[1].as_word().ok_or(EvalError::TypeMismatch {
            expected: "word",
            found: args[1].kind(),
            context: "mulhuu",
        })?;
        Ok(Value::Word(((u128::from(a) * u128::from(b)) >> 64) as u64))
    });
}

/// The standard intrinsic lemmas matching
/// [`register_standard_intrinsics`].
pub fn standard_intrinsic_lemmas() -> Vec<IntrinsicLemma> {
    vec![IntrinsicLemma::new("mulhuu", BinOp::MulHuu)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_dbs;
    use rupicola_core::check::{check_with, CheckConfig};
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::Model;
    use rupicola_sep::ScalarKind;

    #[test]
    fn mulhuu_compiles_to_the_instruction_and_validates() {
        // 128-bit product splitting: hi = mulhuu(x, y), lo = x * y.
        let model = Model::new(
            "wide_mul_hi",
            ["x", "y"],
            let_n(
                "hi",
                extern_op("mulhuu", vec![var("x"), var("y")]),
                let_n(
                    "mix",
                    word_xor(var("hi"), word_mul(var("x"), var("y"))),
                    var("mix"),
                ),
            ),
        );
        let spec = FnSpec::new(
            "wide_mul_hi",
            vec![
                ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
                ArgSpec::Scalar { name: "y".into(), param: "y".into(), kind: ScalarKind::Word },
            ],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let mut dbs = standard_dbs();
        for lemma in standard_intrinsic_lemmas() {
            dbs.register_expr(lemma);
        }
        let out = compile(&model, &spec, &dbs).unwrap();
        let mut config = CheckConfig::default();
        register_standard_intrinsics(&mut config.externs);
        check_with(&out, &dbs, &config).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("__int128"), "{c}");
    }

    #[test]
    fn intrinsic_semantics_matches_the_instruction_exhaustively_on_edges() {
        let mut reg = ExternRegistry::new();
        register_standard_intrinsics(&mut reg);
        let op = reg.op("mulhuu").unwrap();
        for a in [0u64, 1, u64::MAX, 1 << 63, 0x1234_5678_9abc_def0] {
            for b in [0u64, 1, u64::MAX, 3] {
                let want = BinOp::MulHuu.eval(a, b);
                let got = (op.eval)(&[Value::Word(a), Value::Word(b)]).unwrap();
                assert_eq!(got, Value::Word(want), "{a} × {b}");
            }
        }
    }
}
