//! Inline tables (§4.1.2): `const` arrays local to a Bedrock2 function.
//!
//! "The Gallina API … is exactly the same as that for arrays, except that
//! only one operation (get) is available. Crucially, the API does not
//! impede reasoning about the code: simply unfolding the definition of
//! `InlineTable.get` reveals that it is just the function `nth` on lists."
//! The lemma supports both byte and full-word element reads (the paper
//! notes word reads took "hundreds of lines" in Coq, mostly Bedrock2
//! plumbing; here the width generalization is the same few lines).

use crate::helpers::access_size;
use rupicola_core::derive::DerivationNode;
use rupicola_core::{
    AppliedExpr,
    CompileError,
    Compiler,
    Dispatch,
    ExprLemma,
    HeadKey,
    SideCond,
    StmtGoal,
};
use rupicola_bedrock::{BExpr, BinOp};
use rupicola_lang::{ElemKind, Expr, Value};

/// `EXPR (InlineTable.get t i)` — a load from the function-local constant
/// table at byte offset `i · width`, guarded by `i < length t` (a constant
/// bound, so byte-kinded indices discharge it by interval reasoning).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprTableGet;

impl ExprLemma for ExprTableGet {
    fn name(&self) -> &'static str {
        "expr_table_get"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::TableGet])
    }

    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let Expr::TableGet { table, idx } = term else { return None };
        let def = cx.model.table(table)?.clone();
        Some(self.apply(goal, cx, &def, idx, term))
    }
}

impl ExprTableGet {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        def: &rupicola_lang::TableDef,
        idx: &Expr,
        term: &Expr,
    ) -> Result<AppliedExpr, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), cx.focus_term(term));
        let len = def.len() as u64;
        let sc = cx.solve(
            self.name(),
            SideCond::Lt(idx.clone(), Expr::Lit(Value::Word(len))),
            &goal.hyps,
        )?;
        node.side_conds.push(sc);
        let (idx_e, child) = cx.compile_expr(idx, goal)?;
        node.children.push(child);
        let offset = match def.elem {
            ElemKind::Byte => idx_e,
            ElemKind::Word => BExpr::op(BinOp::Mul, idx_e, BExpr::lit(8)),
        };
        Ok(AppliedExpr {
            expr: BExpr::table(access_size(def.elem), def.name.clone(), offset),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::{ElemKind, Model, TableDef};
    use rupicola_sep::ScalarKind;

    #[test]
    fn byte_table_lookup_in_map() {
        // The fasta pattern: s[i] := table[s[i]] with a 256-entry table.
        let table: Vec<u8> = (0..=255u8).map(|b| b.wrapping_add(1)).collect();
        let model = Model::new(
            "tbl_map",
            ["s"],
            let_n(
                "s",
                array_map_b("b", table_get("t", word_of_byte(var("b"))), var("s")),
                var("s"),
            ),
        )
        .with_table(TableDef::bytes("t", table));
        let spec = FnSpec::new(
            "tbl_map",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("static const uint8_t t[256]"), "{c}");
    }

    #[test]
    fn word_table_lookup() {
        // Full 32/64-bit reads from tables (the crc32 pattern).
        let words: Vec<u64> = (0..256).map(|i| i * 0x0101).collect();
        let model = Model::new(
            "wtbl",
            ["x"],
            let_n(
                "y",
                table_get("t", word_and(var("x"), word_lit(0xff))),
                var("y"),
            ),
        )
        .with_table(TableDef::words("t", words));
        let spec = FnSpec::new(
            "wtbl",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn unbounded_index_fails_the_bound() {
        let model = Model::new(
            "bad",
            ["x"],
            let_n("y", table_get("t", var("x")), var("y")),
        )
        .with_table(TableDef::bytes("t", [1, 2, 3]));
        let spec = FnSpec::new(
            "bad",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let err = compile(&model, &spec, &dbs).unwrap_err();
        assert!(matches!(err, rupicola_core::CompileError::SideCondition { .. }));
    }
}
