//! External function calls: linking against separately verified Bedrock2.
//!
//! Bedrock2 supports "linking against separately compiled (or handwritten)
//! verified fragments" (§3.2); Rupicola's feature list includes "external
//! function calls" (§3). A [`CallLemma`] maps a source-level operation
//! (`Extern { tag, … }`) to a `call` of a user-supplied Bedrock2 function:
//! the callee is registered with the compiler ([`rupicola_core::Compiler::link`])
//! and ships with the compiled artifact, and the checker validates the
//! *pair* — the source operation's semantics against the linked program —
//! differentially.

use rupicola_core::derive::DerivationNode;
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, StmtGoal, StmtLemma};
use rupicola_bedrock::{BFunction, Cmd};
use rupicola_lang::Expr;
use rupicola_sep::{ScalarKind, SymValue};
use std::fmt;

/// Compiles `let/n x := op(args…) in k` to `x = callee(args…)` for a
/// word-valued operation backed by a verified Bedrock2 callee.
#[derive(Clone)]
pub struct CallLemma {
    tag: String,
    callee: BFunction,
}

impl fmt::Debug for CallLemma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CallLemma")
            .field("tag", &self.tag)
            .field("callee", &self.callee.name)
            .finish()
    }
}

impl CallLemma {
    /// Creates a call lemma binding the source operation `tag` to `callee`.
    ///
    /// The callee must take word arguments (one per operation argument)
    /// and return exactly one word.
    pub fn new(tag: impl Into<String>, callee: BFunction) -> Self {
        CallLemma { tag: tag.into(), callee }
    }
}

impl StmtLemma for CallLemma {
    fn name(&self) -> &'static str {
        "compile_extern_call"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::Extern { tag, args } = value.as_ref() else { return None };
        if tag != &self.tag {
            return None;
        }
        if args.len() != self.callee.args.len() || self.callee.rets.len() != 1 {
            return Some(Err(CompileError::Spec(format!(
                "call lemma for `{tag}`: callee `{}` has arity {}→{}, operation has {} argument(s)",
                self.callee.name,
                self.callee.args.len(),
                self.callee.rets.len(),
                args.len(),
            ))));
        }
        Some(self.apply(goal, cx, name, args, body))
    }
}

impl CallLemma {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        args: &[Expr],
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(
            self.name(),
            format!("let/n {name} := {}(…) ↝ call {}", self.tag, self.callee.name),
        );
        let mut arg_es = Vec::with_capacity(args.len());
        for a in args {
            let (e, c) = cx.compile_expr(a, goal)?;
            arg_es.push(e);
            node.children.push(c);
        }
        cx.link(self.callee.clone());
        let mut g = goal.clone();
        g.locals.set(
            name.to_string(),
            SymValue::Scalar(ScalarKind::Word, Expr::Var(name.to_string())),
        );
        g.push_hyp(rupicola_core::Hyp::EqWord(
            Expr::Var(name.to_string()),
            Expr::Extern { tag: self.tag.clone(), args: args.to_vec() },
        ));
        if !args.iter().any(Expr::is_monadic) {
            g.defs.push((
                name.to_string(),
                Expr::Extern { tag: self.tag.clone(), args: args.to_vec() },
            ));
        }
        g.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&g)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([
                Cmd::Call {
                    rets: vec![name.to_string()],
                    func: self.callee.name.clone(),
                    args: arg_es,
                },
                k_cmd,
            ]),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_dbs;
    use rupicola_core::check::{check_with, CheckConfig};
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_bedrock::{BExpr, BinOp};
    use rupicola_lang::dsl::*;
    use rupicola_lang::{Model, Value};

    /// A separately "verified" Bedrock2 fragment: fused multiply-add.
    fn muladd_callee() -> BFunction {
        BFunction::new(
            "muladd",
            ["a", "b", "c"],
            ["r"],
            Cmd::set(
                "r",
                BExpr::op(
                    BinOp::Add,
                    BExpr::op(BinOp::Mul, BExpr::var("a"), BExpr::var("b")),
                    BExpr::var("c"),
                ),
            ),
        )
    }

    fn spec() -> FnSpec {
        FnSpec::new(
            "axpy",
            vec![
                ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
                ArgSpec::Scalar { name: "y".into(), param: "y".into(), kind: ScalarKind::Word },
            ],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
    }

    #[test]
    fn extern_calls_link_and_validate() {
        // axpy x y := let r := muladd(3, x, y) in r + 1
        let model = Model::new(
            "axpy",
            ["x", "y"],
            let_n(
                "r",
                extern_op("muladd", vec![word_lit(3), var("x"), var("y")]),
                word_add(var("r"), word_lit(1)),
            ),
        );
        let mut dbs = standard_dbs();
        dbs.register_stmt_front(CallLemma::new("muladd", muladd_callee()));
        let out = compile(&model, &spec(), &dbs).unwrap();
        assert_eq!(out.linked.len(), 1);
        let mut config = CheckConfig::default();
        config.externs.register_fn("muladd", 3, |args| {
            let (a, b, c) = (
                args[0].as_word().unwrap_or(0),
                args[1].as_word().unwrap_or(0),
                args[2].as_word().unwrap_or(0),
            );
            Ok(Value::Word(a.wrapping_mul(b).wrapping_add(c)))
        });
        check_with(&out, &dbs, &config).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("muladd("), "{c}");
    }

    #[test]
    fn wrong_callee_is_caught() {
        // The callee computes a*b - c instead of a*b + c.
        let mut bad = muladd_callee();
        bad.body = Cmd::set(
            "r",
            BExpr::op(
                BinOp::Sub,
                BExpr::op(BinOp::Mul, BExpr::var("a"), BExpr::var("b")),
                BExpr::var("c"),
            ),
        );
        let model = Model::new(
            "axpy",
            ["x", "y"],
            let_n(
                "r",
                extern_op("muladd", vec![word_lit(3), var("x"), var("y")]),
                var("r"),
            ),
        );
        let mut dbs = standard_dbs();
        dbs.register_stmt_front(CallLemma::new("muladd", bad));
        let out = compile(&model, &spec(), &dbs).unwrap();
        let mut config = CheckConfig::default();
        config.externs.register_fn("muladd", 3, |args| {
            let (a, b, c) = (
                args[0].as_word().unwrap_or(0),
                args[1].as_word().unwrap_or(0),
                args[2].as_word().unwrap_or(0),
            );
            Ok(Value::Word(a.wrapping_mul(b).wrapping_add(c)))
        });
        let err = check_with(&out, &dbs, &config).unwrap_err();
        assert!(matches!(err, rupicola_core::check::CheckError::Mismatch { .. }), "{err:?}");
    }

    #[test]
    fn arity_mismatch_is_a_spec_error() {
        let model = Model::new(
            "oops",
            ["x"],
            let_n("r", extern_op("muladd", vec![var("x")]), var("r")),
        );
        let spec = FnSpec::new(
            "oops",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let mut dbs = standard_dbs();
        dbs.register_stmt_front(CallLemma::new("muladd", muladd_callee()));
        let err = compile(&model, &spec, &dbs).unwrap_err();
        assert!(matches!(err, CompileError::Spec(_)), "{err:?}");
    }
}
