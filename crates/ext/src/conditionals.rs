//! Scalar conditionals, with the predicate inference of §3.4.2.
//!
//! A conditional at a binding (`let/n r := if t then a else b in k`) is a
//! forward control-flow join. Instead of merging strongest postconditions
//! into a disjunction — "incomprehensible to later compilation steps" — the
//! lemma runs the inference heuristic: identify the target from the
//! binding's name, classify it as scalar or pointer, abstract the
//! corresponding slot, and instantiate the template with the source term
//! itself.

use crate::helpers::{is_plain_scalar_value, kind_of, rebind_scalar};
use rupicola_core::derive::DerivationNode;
use rupicola_core::invariant::{InvariantTemplate, TargetClass};
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, Hyp, StmtGoal, StmtLemma};
use rupicola_bedrock::Cmd;
use rupicola_lang::{Expr, PrimOp};

/// `let/n r := if t then a else b in k`, with `a` and `b` scalar
/// expressions of the same kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileScalarIf;

/// Hypotheses learnt from a comparison condition, per branch.
fn branch_hyps(cond: &Expr) -> (Vec<Hyp>, Vec<Hyp>) {
    if let Expr::Prim { op, args } = cond {
        let (a, b) = (&args[0], &args[1]);
        match op {
            PrimOp::WLtU | PrimOp::BLtU | PrimOp::NLt => {
                return (
                    vec![Hyp::LtU(a.clone(), b.clone())],
                    vec![Hyp::LeU(b.clone(), a.clone())],
                )
            }
            PrimOp::WEq | PrimOp::BEq | PrimOp::NEq => {
                return (vec![Hyp::EqWord(a.clone(), b.clone())], vec![])
            }
            _ => {}
        }
    }
    (vec![], vec![])
}

impl StmtLemma for CompileScalarIf {
    fn name(&self) -> &'static str {
        "compile_if_scalar"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::If { cond, then_, else_ } = value.as_ref() else { return None };
        if !is_plain_scalar_value(then_) || !is_plain_scalar_value(else_) {
            return None;
        }
        // Step 1–2 of the heuristic: the single target is the binder; it
        // must classify as a scalar for this lemma.
        let template = InvariantTemplate::infer(std::slice::from_ref(name), goal);
        let kind = match &template.targets[0].1 {
            TargetClass::NewScalar => kind_of(cx.model, goal, then_)?,
            TargetClass::Scalar(k) => *k,
            TargetClass::Pointer(_) => return None,
        };
        let kt = kind_of(cx.model, goal, then_)?;
        let ke = kind_of(cx.model, goal, else_)?;
        if kt != ke {
            return None;
        }
        Some(self.apply(goal, cx, name, kind, cond, then_, else_, value, body, &template))
    }
}

impl CompileScalarIf {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        kind: rupicola_sep::ScalarKind,
        cond: &Expr,
        then_: &Expr,
        else_: &Expr,
        value: &Expr,
        body: &Expr,
        template: &InvariantTemplate,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(
            self.name(),
            format!("let/n {name} := {value}   [template: {template}]"),
        );
        let (cond_e, c0) = cx.compile_expr(cond, goal)?;
        node.children.push(c0);
        let (then_hyps, else_hyps) = branch_hyps(cond);
        let mut then_goal = goal.clone();
        then_goal.extend_hyps(then_hyps);
        let mut else_goal = goal.clone();
        else_goal.extend_hyps(else_hyps);
        let (then_e, c1) = cx.compile_expr(then_, &then_goal)?;
        let (else_e, c2) = cx.compile_expr(else_, &else_goal)?;
        node.children.push(c1);
        node.children.push(c2);
        // Step 4: the template is instantiated with the source program
        // itself — the continuation knows `name = if t then a else b`.
        let k_goal = rebind_scalar(cx, goal, &name.to_string(), kind, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        let cmd = Cmd::seq([
            Cmd::if_(
                cond_e,
                Cmd::set(name.to_string(), then_e),
                Cmd::set(name.to_string(), else_e),
            ),
            k_cmd,
        ]);
        Ok(Applied { cmd, node })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::Model;
    use rupicola_sep::ScalarKind;

    fn word_spec(name: &str, params: &[&str]) -> FnSpec {
        FnSpec::new(
            name,
            params
                .iter()
                .map(|p| ArgSpec::Scalar {
                    name: (*p).to_string(),
                    param: (*p).to_string(),
                    kind: ScalarKind::Word,
                })
                .collect(),
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
    }

    #[test]
    fn min_compiles_with_branch_assignment() {
        // let m := if x < y then x else y in m
        let model = Model::new(
            "min",
            ["x", "y"],
            let_n("m", ite(word_ltu(var("x"), var("y")), var("x"), var("y")), var("m")),
        );
        let dbs = standard_dbs();
        let out = compile(&model, &word_spec("min", &["x", "y"]), &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("if ("), "{c}");
        assert!(c.contains("} else {"), "{c}");
    }

    #[test]
    fn conditional_in_map_body_falls_to_branchless_or_fails() {
        // Map bodies are compiled by the expression judgment, which has no
        // conditional: an `if` inside a map body is a residual goal guiding
        // the user to a branchless rewrite (the paper's toupper' is plugged
        // in as a rewrite for exactly this reason).
        let model = Model::new(
            "upstr_branchy",
            ["s"],
            let_n(
                "s",
                array_map_b(
                    "b",
                    ite(
                        byte_ltu(byte_sub(var("b"), byte_lit(b'a')), byte_lit(26)),
                        byte_and(var("b"), byte_lit(0x5f)),
                        var("b"),
                    ),
                    var("s"),
                ),
                var("s"),
            ),
        );
        let spec = FnSpec::new(
            "upstr_branchy",
            vec![
                ArgSpec::ArrayPtr {
                    name: "s".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
                ArgSpec::LenOf {
                    name: "len".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        let dbs = standard_dbs();
        let err = compile(&model, &spec, &dbs).unwrap_err();
        assert!(
            matches!(err, rupicola_core::CompileError::ResidualGoal { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn branch_hypotheses_discharge_bounds() {
        // let b := if i < len s then s[i] else 0 — the then-branch's load
        // is justified by the condition itself.
        let model = Model::new(
            "get_or_zero",
            ["s", "i"],
            let_n(
                "b",
                ite(
                    word_ltu(var("i"), array_len_b(var("s"))),
                    word_of_byte(array_get_b(var("s"), var("i"))),
                    word_lit(0),
                ),
                var("b"),
            ),
        );
        let spec = FnSpec::new(
            "get_or_zero",
            vec![
                ArgSpec::ArrayPtr {
                    name: "s".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
                ArgSpec::LenOf {
                    name: "len".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
                ArgSpec::Scalar { name: "i".into(), param: "i".into(), kind: ScalarKind::Word },
            ],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }
}
