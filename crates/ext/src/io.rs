//! The io monad (Table 1: `read`, `write`) and the generic monadic-bind
//! simplification.
//!
//! I/O maps to Bedrock2 `interact` commands: the environment supplies the
//! word for `io_read`, and `io_write` hands a word to the environment;
//! both land on the event trace, which the spec's `TraceSpec::MirrorsSource`
//! compares against the source program's effect log.
//!
//! [`MonadBindRet`] is the rule that makes pure lemmas monad-generic: "when
//! compiling a pure binding in a monadic computation (`bind (return a) k`),
//! the shape of the simplified term (`let x := a in k x`) allows us to
//! apply any lemma that supports `a`" (§3.4.1).

use rupicola_core::derive::DerivationNode;
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, StmtGoal, StmtLemma};
use rupicola_bedrock::Cmd;
use rupicola_lang::{Expr, MonadKind};
use rupicola_sep::{ScalarKind, SymValue};

/// `bind (return a) k` ↦ `let x := a in k x`: one lemma makes the whole
/// pure fragment available inside every monad.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonadBindRet;

impl StmtLemma for MonadBindRet {
    fn name(&self) -> &'static str {
        "monad_bind_ret"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad, name, ma, body } = &goal.prog else { return None };
        if !goal.monad.admits(*monad) {
            return None;
        }
        let Expr::Ret { monad: m2, value } = ma.as_ref() else { return None };
        if m2 != monad {
            return None;
        }
        let mut g = goal.clone();
        g.prog = Expr::Let {
            name: name.clone(),
            value: value.clone(),
            body: body.clone(),
        };
        Some(match cx.compile_stmt(&g) {
            Ok((cmd, child)) => Ok(Applied {
                cmd,
                node: DerivationNode::leaf(self.name(), format!("bind (ret {value}) …"))
                    .with_child(child),
            }),
            Err(e) => Err(e),
        })
    }
}

/// `let/n! x := io.read() in k` — an `interact` whose response word binds
/// `x`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileIoRead;

impl StmtLemma for CompileIoRead {
    fn name(&self) -> &'static str {
        "compile_io_read"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad: MonadKind::Io, name, ma, body } = &goal.prog else {
            return None;
        };
        if !goal.monad.admits(MonadKind::Io) || ma.as_ref() != &Expr::IoRead {
            return None;
        }
        let mut k_goal = goal.clone();
        k_goal.locals.set(
            name.clone(),
            SymValue::Scalar(ScalarKind::Word, Expr::Var(name.clone())),
        );
        k_goal.prog = body.as_ref().clone();
        Some(match cx.compile_stmt(&k_goal) {
            Ok((k_cmd, k_node)) => Ok(Applied {
                cmd: Cmd::seq([
                    Cmd::Interact {
                        rets: vec![name.clone()],
                        action: "io_read".into(),
                        args: vec![],
                    },
                    k_cmd,
                ]),
                node: DerivationNode::leaf(self.name(), format!("let/n! {name} := io.read()"))
                    .with_child(k_node),
            }),
            Err(e) => Err(e),
        })
    }
}

/// `let/n! _ := io.write(e) in k` — an `interact` handing `e` to the
/// environment.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileIoWrite;

impl StmtLemma for CompileIoWrite {
    fn name(&self) -> &'static str {
        "compile_io_write"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad: MonadKind::Io, name: _, ma, body } = &goal.prog else {
            return None;
        };
        if !goal.monad.admits(MonadKind::Io) {
            return None;
        }
        let Expr::IoWrite(e) = ma.as_ref() else { return None };
        Some(self.apply(goal, cx, e, body))
    }
}

impl CompileIoWrite {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        e: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), format!("io.write({e})"));
        let (e_c, c0) = cx.compile_expr(e, goal)?;
        node.children.push(c0);
        let mut k_goal = goal.clone();
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([
                Cmd::Interact { rets: vec![], action: "io_write".into(), args: vec![e_c] },
                k_cmd,
            ]),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec, TraceSpec};
    use rupicola_core::MonadCtx;
    use rupicola_lang::dsl::*;
    use rupicola_lang::{Model, MonadKind};
    use rupicola_sep::ScalarKind;

    #[test]
    fn echo_plus_one_reads_and_writes() {
        // let x := read() in let _ := write(x + 1) in ret x
        let model = Model::new(
            "echo1",
            Vec::<String>::new(),
            bind(
                MonadKind::Io,
                "x",
                io_read(),
                bind(
                    MonadKind::Io,
                    "_",
                    io_write(word_add(var("x"), word_lit(1))),
                    ret(MonadKind::Io, var("x")),
                ),
            ),
        );
        let spec = FnSpec::new(
            "echo1",
            vec![],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Io))
        .with_trace(TraceSpec::MirrorsSource);
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("io_read"), "{c}");
        assert!(c.contains("io_write"), "{c}");
    }

    #[test]
    fn pure_bindings_inside_io_use_pure_lemmas() {
        // bind (ret (x * 2)) k inside io — the MonadBindRet rule.
        let model = Model::new(
            "twice_io",
            ["x"],
            bind(
                MonadKind::Io,
                "y",
                ret(MonadKind::Io, word_mul(var("x"), word_lit(2))),
                bind(
                    MonadKind::Io,
                    "_",
                    io_write(var("y")),
                    ret(MonadKind::Io, var("y")),
                ),
            ),
        );
        let spec = FnSpec::new(
            "twice_io",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Io))
        .with_trace(TraceSpec::MirrorsSource);
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn io_in_pure_spec_is_rejected() {
        let model = Model::new(
            "sneaky",
            Vec::<String>::new(),
            bind(MonadKind::Io, "x", io_read(), ret(MonadKind::Io, var("x"))),
        );
        let spec = FnSpec::new(
            "sneaky",
            vec![],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        ); // Pure monad: io lemmas must not fire.
        let dbs = standard_dbs();
        assert!(compile(&model, &spec, &dbs).is_err());
    }
}
