//! Ranged folds: numeric loops, with and without early exit (§3, §3.4.2).
//!
//! `fold_range from to (fun i acc => f) init` is the compilation image of
//! `Nat.iter`-style loops; its invariant is the closed-form "state after
//! `n` iterations" term of §3.4.2. The early-exit variant compiles folds
//! whose body returns a `(continue?, acc')` pair with literal continuation
//! flags, yielding the `while (c && i < n)` shape of handwritten search
//! loops.

use crate::helpers::{kind_of, loop_body_goal, loop_counter_local, rebind_scalar};
use rupicola_core::derive::DerivationNode;
use rupicola_core::invariant::{LoopInvariant, LoopInvariantKind};
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, Hyp, StmtGoal, StmtLemma};
use rupicola_bedrock::{BExpr, BinOp, Cmd};
use rupicola_lang::{Expr, Value};
use rupicola_sep::ScalarKind;

/// `let/n a := fold_range from to (fun i acc => f) init in k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileRangeFold;

impl StmtLemma for CompileRangeFold {
    fn name(&self) -> &'static str {
        "compile_range_fold"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::RangeFold { i, acc, f, init, from, to } = value.as_ref() else {
            return None;
        };
        let acc_kind = kind_of(cx.model, goal, init)?;
        Some(self.apply(goal, cx, name, i, acc, f, init, from, to, acc_kind, value, body))
    }
}

impl CompileRangeFold {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        i: &str,
        acc: &str,
        f: &Expr,
        init: &Expr,
        from: &Expr,
        to: &Expr,
        acc_kind: ScalarKind,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let (init_e, c0) = cx.compile_expr(init, goal)?;
        let (from_e, c1) = cx.compile_expr(from, goal)?;
        let (to_e, c2) = cx.compile_expr(to, goal)?;
        node.children.push(c0);
        node.children.push(c1);
        node.children.push(c2);

        let i_var = loop_counter_local(cx, goal, &i.to_string());
        let body_goal = {
            let mut g = loop_body_goal(
                cx,
                goal,
                &[
                    (i.to_string(), i_var.clone(), ScalarKind::Word),
                    (acc.to_string(), name.to_string(), acc_kind),
                ],
                vec![
                    Hyp::LeU(from.clone(), Expr::Var(i.to_string())),
                    Hyp::LtU(Expr::Var(i.to_string()), to.clone()),
                ],
            );
            g.prog = f.clone();
            g
        };
        let (f_e, c_f) = cx.compile_expr(f, &body_goal)?;
        node.children.push(c_f);

        node.invariant = Some(LoopInvariant {
            index_local: i_var.clone(),
            bindings: goal.binding_defs(),
            kind: LoopInvariantKind::RangeFoldScalar {
                acc_local: name.to_string(),
                i: i.to_string(),
                acc: acc.to_string(),
                f: f.clone(),
                init: init.clone(),
                from: from.clone(),
            },
        });

        let k_goal = rebind_scalar(cx, goal, &name.to_string(), acc_kind, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);

        let cmd = Cmd::seq([
            Cmd::set(name.to_string(), init_e),
            Cmd::set(&i_var, from_e),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var(&i_var), to_e),
                Cmd::seq([
                    Cmd::set(name.to_string(), f_e),
                    Cmd::set(&i_var, BExpr::op(BinOp::Add, BExpr::var(&i_var), BExpr::lit(1))),
                ]),
            ),
            k_cmd,
        ]);
        Ok(Applied { cmd, node })
    }
}

/// `let/n a := fold_range_break from to (fun i acc => if c then (true, t)
/// else (false, e)) init in k` — a loop with early exit. The continuation
/// flags must be literals (one branch continues, the other breaks).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileRangeFoldBreak;

impl StmtLemma for CompileRangeFoldBreak {
    fn name(&self) -> &'static str {
        "compile_range_fold_break"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::RangeFoldBreak { i, acc, f, init, from, to } = value.as_ref() else {
            return None;
        };
        // Match `if c then (flag₁, t) else (flag₂, e)` with literal flags.
        let Expr::If { cond, then_, else_ } = f.as_ref() else { return None };
        let (Expr::Pair(tf, tv), Expr::Pair(ef, ev)) = (then_.as_ref(), else_.as_ref()) else {
            return None;
        };
        let flag = |e: &Expr| match e {
            Expr::Lit(Value::Bool(b)) => Some(*b),
            _ => None,
        };
        let (cont_then, cont_else) = (flag(tf)?, flag(ef)?);
        if cont_then == cont_else {
            return None; // never breaks (use fold_range) or never loops
        }
        let acc_kind = kind_of(cx.model, goal, init)?;
        Some(self.apply(
            goal, cx, name, i, acc, cond, tv, ev, cont_then, init, from, to, acc_kind, value,
            body,
        ))
    }
}

impl CompileRangeFoldBreak {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        i: &str,
        acc: &str,
        cond: &Expr,
        then_v: &Expr,
        else_v: &Expr,
        cont_then: bool,
        init: &Expr,
        from: &Expr,
        to: &Expr,
        acc_kind: ScalarKind,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let (init_e, c0) = cx.compile_expr(init, goal)?;
        let (from_e, c1) = cx.compile_expr(from, goal)?;
        let (to_e, c2) = cx.compile_expr(to, goal)?;
        node.children.push(c0);
        node.children.push(c1);
        node.children.push(c2);

        let i_var = loop_counter_local(cx, goal, &i.to_string());
        let c_var = cx.fresh_var("_cont");
        let body_goal = {
            let mut g = loop_body_goal(
                cx,
                goal,
                &[
                    (i.to_string(), i_var.clone(), ScalarKind::Word),
                    (acc.to_string(), name.to_string(), acc_kind),
                ],
                vec![
                    Hyp::LeU(from.clone(), Expr::Var(i.to_string())),
                    Hyp::LtU(Expr::Var(i.to_string()), to.clone()),
                ],
            );
            g.prog = cond.clone();
            g
        };
        let (cond_e, c3) = cx.compile_expr(cond, &body_goal)?;
        let (then_e, c4) = cx.compile_expr(then_v, &body_goal)?;
        let (else_e, c5) = cx.compile_expr(else_v, &body_goal)?;
        node.children.push(c3);
        node.children.push(c4);
        node.children.push(c5);

        let k_goal = rebind_scalar(cx, goal, &name.to_string(), acc_kind, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);

        // The branch that continues advances the counter; the other clears
        // the flag (and still commits its accumulator, matching the
        // source's "update then stop" semantics).
        let continue_cmd = |acc_e: BExpr| {
            Cmd::seq([
                Cmd::set(name.to_string(), acc_e),
                Cmd::set(&i_var, BExpr::op(BinOp::Add, BExpr::var(&i_var), BExpr::lit(1))),
            ])
        };
        let break_cmd = |acc_e: BExpr| {
            Cmd::seq([
                Cmd::set(name.to_string(), acc_e),
                Cmd::set(&c_var, BExpr::lit(0)),
            ])
        };
        let (then_cmd, else_cmd) = if cont_then {
            (continue_cmd(then_e), break_cmd(else_e))
        } else {
            (break_cmd(then_e), continue_cmd(else_e))
        };
        let cmd = Cmd::seq([
            Cmd::set(name.to_string(), init_e),
            Cmd::set(&i_var, from_e),
            Cmd::set(&c_var, BExpr::lit(1)),
            Cmd::while_(
                BExpr::op(
                    BinOp::And,
                    BExpr::var(&c_var),
                    BExpr::op(BinOp::LtU, BExpr::var(&i_var), to_e),
                ),
                Cmd::if_(cond_e, then_cmd, else_cmd),
            ),
            k_cmd,
        ]);
        Ok(Applied { cmd, node })
    }
}

/// `let/n! a := fold_range[m] from to (fun i acc => f) init in k` — a
/// *monadic* loop: the body is a computation in the ambient monad, so
/// iterations may read, write, tell, or call the environment. The body is
/// compiled through the *statement* judgment (its binds become interacts
/// and assignments) with a postcondition slot steering its return value
/// into the accumulator local — the composition of the loop lemmas with
/// the monad lemmas that §3.4.1's lift discipline makes possible.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileRangeFoldM;

impl StmtLemma for CompileRangeFoldM {
    fn name(&self) -> &'static str {
        "compile_range_fold_monadic"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad, name, ma, body } = &goal.prog else { return None };
        if !goal.monad.admits(*monad) {
            return None;
        }
        let Expr::RangeFoldM { monad: m2, i, acc, f, init, from, to } = ma.as_ref() else {
            return None;
        };
        if m2 != monad {
            return None;
        }
        let acc_kind = kind_of(cx.model, goal, init)?;
        Some(self.apply(goal, cx, name, i, acc, f, init, from, to, acc_kind, body))
    }
}

impl CompileRangeFoldM {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        i: &str,
        acc: &str,
        f: &Expr,
        init: &Expr,
        from: &Expr,
        to: &Expr,
        acc_kind: ScalarKind,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(
            self.name(),
            format!("let/n! {name} := fold_range[m] (fun {i} {acc} => …)"),
        );
        let (init_e, c0) = cx.compile_expr(init, goal)?;
        let (from_e, c1) = cx.compile_expr(from, goal)?;
        let (to_e, c2) = cx.compile_expr(to, goal)?;
        node.children.push(c0);
        node.children.push(c1);
        node.children.push(c2);

        let i_var = loop_counter_local(cx, goal, &i.to_string());
        // The body is a full statement goal: its monadic binds compile with
        // the ordinary monad lemmas; its final `ret` lands in the
        // accumulator local via the postcondition slot.
        let body_goal = {
            let mut g = loop_body_goal(
                cx,
                goal,
                &[
                    (i.to_string(), i_var.clone(), ScalarKind::Word),
                    (acc.to_string(), name.to_string(), acc_kind),
                ],
                vec![
                    Hyp::LeU(from.clone(), Expr::Var(i.to_string())),
                    Hyp::LtU(Expr::Var(i.to_string()), to.clone()),
                ],
            );
            g.prog = f.clone();
            g.post = rupicola_core::Post {
                slots: vec![rupicola_core::RetSlot::ScalarTo(name.to_string())],
            };
            g
        };
        let (body_cmd, c_body) = cx.compile_stmt(&body_goal)?;
        node.children.push(c_body);

        let mut k_goal = goal.clone();
        if crate::helpers::state_mentions(cx, &k_goal, name) {
            let ghost = cx.fresh_ghost(name);
            k_goal.shadow(name, &ghost);
            k_goal.defs.push((ghost, Expr::Var(name.to_string())));
        }
        k_goal.locals.set(
            name.to_string(),
            rupicola_sep::SymValue::Scalar(acc_kind, Expr::Var(name.to_string())),
        );
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);

        let cmd = Cmd::seq([
            Cmd::set(name.to_string(), init_e),
            Cmd::set(&i_var, from_e),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var(&i_var), to_e),
                Cmd::seq([
                    body_cmd,
                    Cmd::set(&i_var, BExpr::op(BinOp::Add, BExpr::var(&i_var), BExpr::lit(1))),
                ]),
            ),
            k_cmd,
        ]);
        Ok(Applied { cmd, node })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::{ElemKind, Model};
    use rupicola_sep::ScalarKind;

    #[test]
    fn triangular_sum_with_invariant() {
        // let t := fold_range 0 n (fun i acc => acc + i) 0 in t
        let model = Model::new(
            "tri",
            ["n"],
            let_n(
                "t",
                range_fold("i", "acc", word_add(var("acc"), var("i")), word_lit(0), word_lit(0), var("n")),
                var("t"),
            ),
        );
        let spec = FnSpec::new(
            "tri",
            vec![ArgSpec::Scalar { name: "n".into(), param: "n".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        let report = check(&out, &dbs).unwrap();
        assert!(report.invariant_checks > 0);
    }

    #[test]
    fn range_fold_reads_arrays_by_index() {
        // Sum of bytes by index: fold_range 0 (len s) (fun i acc =>
        // acc + s[i]) 0 — the get's bound comes from the loop hypothesis.
        let model = Model::new(
            "sum",
            ["s"],
            let_n(
                "t",
                range_fold(
                    "i",
                    "acc",
                    word_add(var("acc"), word_of_byte(array_get_b(var("s"), var("i")))),
                    word_lit(0),
                    word_lit(0),
                    array_len_b(var("s")),
                ),
                var("t"),
            ),
        );
        let spec = FnSpec::new(
            "sum",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn monadic_loop_writes_each_prefix_sum() {
        // let acc := fold_range[io] 0 n (fun i acc =>
        //     let s := acc + read() in let _ := write(s) in ret s) 0
        use rupicola_core::fnspec::TraceSpec;
        use rupicola_core::MonadCtx;
        use rupicola_lang::MonadKind;
        let body = bind(
            MonadKind::Io,
            "x",
            io_read(),
            bind(
                MonadKind::Io,
                "s",
                ret(MonadKind::Io, word_add(var("acc"), var("x"))),
                bind(
                    MonadKind::Io,
                    "_",
                    io_write(var("s")),
                    ret(MonadKind::Io, var("s")),
                ),
            ),
        );
        let model = Model::new(
            "prefix_sums",
            ["n"],
            bind(
                MonadKind::Io,
                "acc",
                range_fold_m(MonadKind::Io, "i", "acc", body, word_lit(0), word_lit(0), var("n")),
                ret(MonadKind::Io, var("acc")),
            ),
        );
        let spec = FnSpec::new(
            "prefix_sums",
            vec![ArgSpec::Scalar { name: "n".into(), param: "n".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Io))
        .with_trace(TraceSpec::MirrorsSource)
        // Keep loop trip counts within the checker's io input supply.
        .with_hint(rupicola_core::Hyp::LtU(var("n"), word_lit(33)));
        let dbs = standard_dbs();
        let out = rupicola_core::compile(&model, &spec, &dbs).unwrap();
        rupicola_core::check::check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("while"), "{c}");
        assert!(c.contains("io_read"), "{c}");
        assert!(c.contains("io_write"), "{c}");
    }

    #[test]
    fn monadic_loop_with_writer_logging() {
        use rupicola_core::fnspec::TraceSpec;
        use rupicola_core::MonadCtx;
        use rupicola_lang::MonadKind;
        // Log i*i at each iteration, accumulate the sum of squares.
        let body = bind(
            MonadKind::Writer,
            "sq",
            ret(MonadKind::Writer, word_mul(var("i"), var("i"))),
            bind(
                MonadKind::Writer,
                "_",
                writer_tell(var("sq")),
                ret(MonadKind::Writer, word_add(var("acc"), var("sq"))),
            ),
        );
        let model = Model::new(
            "sum_squares_logged",
            ["n"],
            bind(
                MonadKind::Writer,
                "acc",
                range_fold_m(MonadKind::Writer, "i", "acc", body, word_lit(0), word_lit(0), var("n")),
                ret(MonadKind::Writer, var("acc")),
            ),
        );
        let spec = FnSpec::new(
            "sum_squares_logged",
            vec![ArgSpec::Scalar { name: "n".into(), param: "n".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Writer))
        .with_trace(TraceSpec::MirrorsSource);
        let dbs = standard_dbs();
        let out = rupicola_core::compile(&model, &spec, &dbs).unwrap();
        rupicola_core::check::check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("writer_tell"), "{c}");
    }

    #[test]
    fn find_first_breaks_early() {
        // Find the index of the first zero byte, or len if none:
        // fold_range_break 0 len (fun i acc => if s[i] == 0 then (false, i)
        // else (true, acc)) len.
        let model = Model::new(
            "memchr0",
            ["s"],
            let_n(
                "r",
                range_fold_break(
                    "i",
                    "acc",
                    ite(
                        byte_eq(array_get_b(var("s"), var("i")), byte_lit(0)),
                        pair(bool_lit(false), var("i")),
                        pair(bool_lit(true), var("acc")),
                    ),
                    array_len_b(var("s")),
                    word_lit(0),
                    array_len_b(var("s")),
                ),
                var("r"),
            ),
        );
        let spec = FnSpec::new(
            "memchr0",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("while"), "{c}");
    }
}
