//! The generic named scalar binding: `let/n x := e in k`.
//!
//! "Rupicola expects input programs to be sequences of let-bindings, one
//! per desired assignment in the target language" (§3.4.1). This lemma
//! turns one scalar binding into one Bedrock2 assignment; the binder's
//! *name* becomes the local's name, which is how the user controls the
//! generated code. It deliberately matches only the plain-scalar fragment
//! — every other right-hand side (iteration, mutation, conditionals,
//! allocation, monadic operations) has its own, more specific lemma that
//! registers earlier in the database.

use crate::helpers::{is_plain_scalar_value, kind_of, rebind_scalar};
use rupicola_core::derive::DerivationNode;
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, StmtGoal, StmtLemma};
use rupicola_bedrock::Cmd;
use rupicola_lang::Expr;

/// `let/n x := e in k` where `e` is a Bedrock2-expressible scalar.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileLetScalar;

impl StmtLemma for CompileLetScalar {
    fn name(&self) -> &'static str {
        "compile_let_scalar"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        if !is_plain_scalar_value(value) {
            return None;
        }
        // Extern operations are word-valued by convention (wrap in a cast
        // to bind at another kind); everything else must infer.
        let kind = match kind_of(cx.model, goal, value) {
            Some(k) => k,
            None if matches!(value.as_ref(), Expr::Extern { .. }) => {
                rupicola_sep::ScalarKind::Word
            }
            None => return None,
        };
        Some(self.apply(goal, cx, name, kind, value, body))
    }
}

impl CompileLetScalar {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        kind: rupicola_sep::ScalarKind,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let (e, value_node) = cx.compile_expr(value, goal)?;
        let k_goal = rebind_scalar(cx, goal, &name.to_string(), kind, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        let node = DerivationNode::leaf(self.name(), cx.focus_let(name, value))
            .with_child(value_node)
            .with_child(k_node);
        Ok(Applied {
            cmd: Cmd::seq([Cmd::set(name.to_string(), e), k_cmd]),
            node,
        })
    }
}

/// `let/n p := (a, b) in k` — a pair of scalars binds *two* locals,
/// `p_fst` and `p_snd`; the continuation reaches the components through
/// `fst p` / `snd p`, which the expression compiler resolves to those
/// locals.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileLetPair;

impl StmtLemma for CompileLetPair {
    fn name(&self) -> &'static str {
        "compile_let_pair"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::Pair(a, b) = value.as_ref() else { return None };
        if !is_plain_scalar_value(a) || !is_plain_scalar_value(b) {
            return None;
        }
        let ka = kind_of(cx.model, goal, a)?;
        let kb = kind_of(cx.model, goal, b)?;
        Some(self.apply(goal, cx, name, ka, kb, a, b, body))
    }
}

impl CompileLetPair {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        ka: rupicola_sep::ScalarKind,
        kb: rupicola_sep::ScalarKind,
        a: &Expr,
        b: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node =
            DerivationNode::leaf(self.name(), format!("let/n {name} := ({a}, {b})"));
        let (ea, c0) = cx.compile_expr(a, goal)?;
        let (eb, c1) = cx.compile_expr(b, goal)?;
        node.children.push(c0);
        node.children.push(c1);
        let (fst_local, snd_local) = (format!("{name}_fst"), format!("{name}_snd"));
        let mut g = goal.clone();
        let me = Expr::Var(name.to_string());
        g.locals.set(
            fst_local.clone(),
            rupicola_sep::SymValue::Scalar(ka, Expr::Fst(me.clone().boxed())),
        );
        g.locals.set(
            snd_local.clone(),
            rupicola_sep::SymValue::Scalar(kb, Expr::Snd(me.clone().boxed())),
        );
        g.push_hyp(rupicola_core::Hyp::EqWord(Expr::Fst(me.clone().boxed()), a.clone()));
        g.push_hyp(rupicola_core::Hyp::EqWord(Expr::Snd(me.boxed()), b.clone()));
        g.defs.push((name.to_string(), Expr::Pair(a.clone().boxed(), b.clone().boxed())));
        g.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&g)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([Cmd::set(fst_local, ea), Cmd::set(snd_local, eb), k_cmd]),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_core::{check::check, compile};
    use rupicola_bedrock::{BExpr, BinOp, Cmd};
    use rupicola_lang::dsl::*;
    use rupicola_lang::Model;
    use rupicola_sep::ScalarKind;

    fn scalar_spec(name: &str, params: &[&str]) -> FnSpec {
        FnSpec::new(
            name,
            params
                .iter()
                .map(|p| ArgSpec::Scalar {
                    name: (*p).to_string(),
                    param: (*p).to_string(),
                    kind: ScalarKind::Word,
                })
                .collect(),
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
    }

    #[test]
    fn straightline_lets_become_assignments() {
        // let a := x + 1 in let b := a * 2 in b
        let model = Model::new(
            "f",
            ["x"],
            let_n(
                "a",
                word_add(var("x"), word_lit(1)),
                let_n("b", word_mul(var("a"), word_lit(2)), var("b")),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(&model, &scalar_spec("f", &["x"]), &dbs).unwrap();
        assert_eq!(out.function.body.statement_count(), 3); // a, b, out
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn rebinding_the_same_name_works() {
        // let x := x + 1 in let x := x + 1 in x
        let model = Model::new(
            "inc2",
            ["x"],
            let_n(
                "x",
                word_add(var("x"), word_lit(1)),
                let_n("x", word_add(var("x"), word_lit(1)), var("x")),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(&model, &scalar_spec("inc2", &["x"]), &dbs).unwrap();
        check(&out, &dbs).unwrap();
        // Both assignments target the same local.
        match &out.function.body {
            Cmd::Seq(first, _) => assert_eq!(
                **first,
                Cmd::set("x", BExpr::op(BinOp::Add, BExpr::var("x"), BExpr::lit(1)))
            ),
            other => panic!("unexpected body: {other:?}"),
        }
    }

    #[test]
    fn pair_bindings_project_to_two_locals() {
        // let p := (x + 1, x * 2) in fst p + snd p
        let model = Model::new(
            "pairy",
            ["x"],
            let_n(
                "p",
                pair(word_add(var("x"), word_lit(1)), word_mul(var("x"), word_lit(2))),
                word_add(fst(var("p")), snd(var("p"))),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(&model, &scalar_spec("pairy", &["x"]), &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("p_fst"), "{c}");
        assert!(c.contains("p_snd"), "{c}");
    }

    #[test]
    fn array_get_value_binds() {
        // let b := s[i] in word_of_byte b — via the expression judgment.
        let model = Model::new(
            "nth",
            ["s", "i"],
            let_n(
                "b",
                array_get_b(var("s"), var("i")),
                word_of_byte(var("b")),
            ),
        );
        let spec = FnSpec::new(
            "nth",
            vec![
                ArgSpec::ArrayPtr {
                    name: "s".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
                ArgSpec::LenOf {
                    name: "len".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
                ArgSpec::Scalar { name: "i".into(), param: "i".into(), kind: ScalarKind::Word },
            ],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_hint(rupicola_core::Hyp::LtU(var("i"), array_len_b(var("s"))));
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }
}
