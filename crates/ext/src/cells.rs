//! Mutable cells (Table 1: `get`, `put`, `iadd`).
//!
//! A cell is a single-word object behind a pointer; at the source level it
//! is the pure `Value::Cell` with `get`/`put` as pure operations. The
//! Table 1 measurements count exactly these lemmas: a load, a store, and
//! the fused in-place increment.

use crate::helpers::state_mentions;
use rupicola_core::derive::DerivationNode;
use rupicola_core::{
    Applied,
    AppliedExpr,
    CompileError,
    Compiler,
    Dispatch,
    ExprLemma,
    HeadKey,
    StmtGoal,
    StmtLemma,
};
use rupicola_bedrock::{AccessSize, BExpr, BinOp, Cmd};
use rupicola_lang::{Expr, PrimOp};
use rupicola_sep::SymValue;

/// `EXPR (get c)` — a word load through the cell's pointer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprCellGet;

impl ExprLemma for ExprCellGet {
    fn name(&self) -> &'static str {
        "expr_cell_get"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::CellGet])
    }

    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let Expr::CellGet(cell) = term else { return None };
        let id = goal.heap.find_by_content(cell)?;
        let ptr = goal.locals.find_ptr(id)?.to_string();
        Some(Ok(AppliedExpr {
            expr: BExpr::load(AccessSize::Eight, BExpr::var(ptr)),
            node: DerivationNode::leaf(self.name(), cx.focus_term(term)),
        }))
    }
}

/// Rebinds a cell name after an in-place mutation (shared by put/iadd).
fn rebind_cell(
    cx: &mut Compiler<'_>,
    goal: &StmtGoal,
    name: &str,
    id: rupicola_sep::HeapletId,
    value: &Expr,
    body: &Expr,
) -> StmtGoal {
    let mut g = goal.clone();
    if state_mentions(cx, &g, name) {
        let ghost = cx.fresh_ghost(name);
        g.shadow(name, &ghost);
        g.defs.push((ghost, Expr::Var(name.to_string())));
    }
    if !value.is_monadic() {
        g.defs.push((name.to_string(), value.clone()));
    }
    if let Some(h) = g.heap.get_mut(id) {
        h.content = Expr::Var(name.to_string());
    }
    g.locals.set(name.to_string(), SymValue::Ptr(id));
    g.prog = body.clone();
    g
}

/// `let/n c := put c v in k` — a store through the cell's pointer.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileCellPut;

impl StmtLemma for CompileCellPut {
    fn name(&self) -> &'static str {
        "compile_cell_put"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::CellPut { cell, val } = value.as_ref() else { return None };
        if cell.as_ref() != &Expr::Var(name.clone()) {
            return None;
        }
        let id = goal.heap.find_by_content(cell)?;
        let ptr = goal.locals.find_ptr(id)?.to_string();
        Some(self.apply(goal, cx, name, id, &ptr, val, value, body))
    }
}

impl CompileCellPut {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        val: &Expr,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let (val_e, c0) = cx.compile_expr(val, goal)?;
        node.children.push(c0);
        let k_goal = rebind_cell(cx, goal, name, id, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([Cmd::store(AccessSize::Eight, BExpr::var(ptr), val_e), k_cmd]),
            node,
        })
    }
}

/// `let/n c := put c (get c + e) in k` — the fused in-place increment
/// (`iadd` in Table 1), emitting `*p = *p + e` without re-deriving the
/// load through the generic put lemma.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileCellIncr;

impl StmtLemma for CompileCellIncr {
    fn name(&self) -> &'static str {
        "compile_cell_iadd"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::CellPut { cell, val } = value.as_ref() else { return None };
        if cell.as_ref() != &Expr::Var(name.clone()) {
            return None;
        }
        let Expr::Prim { op: PrimOp::WAdd, args } = val.as_ref() else { return None };
        let Expr::CellGet(inner) = &args[0] else { return None };
        if inner != cell {
            return None;
        }
        let id = goal.heap.find_by_content(cell)?;
        let ptr = goal.locals.find_ptr(id)?.to_string();
        Some(self.apply(goal, cx, name, id, &ptr, &args[1], value, body))
    }
}

impl CompileCellIncr {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        delta: &Expr,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let (delta_e, c0) = cx.compile_expr(delta, goal)?;
        node.children.push(c0);
        let k_goal = rebind_cell(cx, goal, name, id, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        let load = BExpr::load(AccessSize::Eight, BExpr::var(ptr));
        Ok(Applied {
            cmd: Cmd::seq([
                Cmd::store(
                    AccessSize::Eight,
                    BExpr::var(ptr),
                    BExpr::op(BinOp::Add, load, delta_e),
                ),
                k_cmd,
            ]),
            node,
        })
    }
}

/// The compare-and-swap shape of §3.4.2:
/// `let/n c := if t then put c v else c in k` — a conditional *pointer*
/// target. The invariant-inference heuristic classifies the binder as a
/// pointer (its binding is to a heaplet), so the template abstracts over
/// the heaplet's contents rather than a local, and the forward edge is
/// instantiated with the source conditional itself — never with a
/// disjunction of postconditions.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileCellCas;

impl StmtLemma for CompileCellCas {
    fn name(&self) -> &'static str {
        "compile_cell_cas"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::If { cond, then_, else_ } = value.as_ref() else { return None };
        // One branch mutates the cell in place, the other leaves it.
        let self_var = Expr::Var(name.clone());
        let (put_val, put_in_then) = match (then_.as_ref(), else_.as_ref()) {
            (Expr::CellPut { cell, val }, e) if cell.as_ref() == &self_var && e == &self_var => {
                (val.as_ref(), true)
            }
            (t, Expr::CellPut { cell, val }) if cell.as_ref() == &self_var && t == &self_var => {
                (val.as_ref(), false)
            }
            _ => return None,
        };
        // Step 2 of the heuristic: the target must classify as a pointer.
        use rupicola_core::invariant::{InvariantTemplate, TargetClass};
        let template = InvariantTemplate::infer(std::slice::from_ref(name), goal);
        let TargetClass::Pointer(id) = template.targets[0].1 else { return None };
        let ptr = goal.locals.find_ptr(id)?.to_string();
        Some(self.apply(goal, cx, name, id, &ptr, cond, put_val, put_in_then, value, body, &template))
    }
}

impl CompileCellCas {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        cond: &Expr,
        put_val: &Expr,
        put_in_then: bool,
        value: &Expr,
        body: &Expr,
        template: &rupicola_core::invariant::InvariantTemplate,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(
            self.name(),
            format!("let/n {name} := {value}   [template: {template}]"),
        );
        let (cond_e, c0) = cx.compile_expr(cond, goal)?;
        let (val_e, c1) = cx.compile_expr(put_val, goal)?;
        node.children.push(c0);
        node.children.push(c1);
        let k_goal = rebind_cell(cx, goal, name, id, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        let store = Cmd::store(AccessSize::Eight, BExpr::var(ptr), val_e);
        let cond_e = if put_in_then {
            cond_e
        } else {
            BExpr::op(BinOp::Eq, cond_e, BExpr::lit(0))
        };
        Ok(Applied {
            cmd: Cmd::seq([Cmd::if_(cond_e, store, Cmd::Skip), k_cmd]),
            node,
        })
    }
}

/// The paper's *two-target* compare-and-swap (§3.4.2's running example):
///
/// ```text
/// let r, c := (if t then (true, put c x) else (false, c)) in k
/// ```
///
/// The inference heuristic identifies two targets from the binding — the
/// flag (a scalar that is not yet bound: `NewScalar`) and the cell (a
/// pointer) — abstracts the scalar's local slot and the pointer's heaplet
/// content, and instantiates the template with the source conditional.
/// The continuation sees `fst p` as a fresh local and the heaplet holding
/// `snd p` — never the disjunction `(t ∧ cell p (put c x)) ∨ (¬t ∧ cell p c)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileCellCasPair;

impl StmtLemma for CompileCellCasPair {
    fn name(&self) -> &'static str {
        "compile_cell_cas_pair"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::If { cond, then_, else_ } = value.as_ref() else { return None };
        let (Expr::Pair(r1, m1), Expr::Pair(r2, m2)) = (then_.as_ref(), else_.as_ref()) else {
            return None;
        };
        // Exactly one memory component mutates a cell; the other leaves it.
        let (cell_var, put_val, put_in_then) = match (m1.as_ref(), m2.as_ref()) {
            (Expr::CellPut { cell, val }, other) if other == cell.as_ref() => {
                (cell.as_ref().clone(), val.as_ref().clone(), true)
            }
            (other, Expr::CellPut { cell, val }) if other == cell.as_ref() => {
                (cell.as_ref().clone(), val.as_ref().clone(), false)
            }
            _ => return None,
        };
        let id = goal.heap.find_by_content(&cell_var)?;
        let ptr = goal.locals.find_ptr(id)?.to_string();
        let kr = crate::helpers::kind_of(cx.model, goal, r1)?;
        if crate::helpers::kind_of(cx.model, goal, r2)? != kr {
            return None;
        }
        Some(self.apply(
            goal, cx, name, id, &ptr, cond, r1, r2, &put_val, put_in_then, kr, value, body,
        ))
    }
}

impl CompileCellCasPair {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        cond: &Expr,
        r1: &Expr,
        r2: &Expr,
        put_val: &Expr,
        put_in_then: bool,
        kr: rupicola_sep::ScalarKind,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        use rupicola_core::invariant::InvariantTemplate;
        let template = InvariantTemplate::infer(&[format!("{name}_fst"), ptr.to_string()], goal);
        let mut node = DerivationNode::leaf(
            self.name(),
            format!("let/n {name} := {value}   [template: {template}]"),
        );
        let (cond_e, c0) = cx.compile_expr(cond, goal)?;
        let (r1_e, c1) = cx.compile_expr(r1, goal)?;
        let (r2_e, c2) = cx.compile_expr(r2, goal)?;
        let (val_e, c3) = cx.compile_expr(put_val, goal)?;
        node.children.extend([c0, c1, c2, c3]);

        let flag_local = format!("{name}_fst");
        let mut g = goal.clone();
        let me = Expr::Var(name.to_string());
        g.locals.set(
            flag_local.clone(),
            SymValue::Scalar(kr, Expr::Fst(me.clone().boxed())),
        );
        if let Some(h) = g.heap.get_mut(id) {
            h.content = Expr::Snd(me.boxed());
        }
        g.defs.push((name.to_string(), value.clone()));
        g.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&g)?;
        node.children.push(k_node);

        let store = Cmd::store(AccessSize::Eight, BExpr::var(ptr), val_e);
        let (then_cmd, else_cmd) = if put_in_then {
            (
                Cmd::seq([Cmd::set(flag_local.clone(), r1_e), store]),
                Cmd::set(flag_local, r2_e),
            )
        } else {
            (
                Cmd::set(flag_local.clone(), r1_e),
                Cmd::seq([Cmd::set(flag_local, r2_e), store]),
            )
        };
        Ok(Applied {
            cmd: Cmd::seq([Cmd::if_(cond_e, then_cmd, else_cmd), k_cmd]),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::Model;
    use rupicola_sep::ScalarKind;

    fn cell_spec(name: &str, rets: Vec<RetSpec>) -> FnSpec {
        FnSpec::new(
            name,
            vec![ArgSpec::CellPtr { name: "c".into(), param: "c".into() }],
            rets,
        )
    }

    #[test]
    fn cell_get_compiles_to_load() {
        let model = Model::new("read", ["c"], let_n("x", cell_get(var("c")), var("x")));
        let dbs = standard_dbs();
        let out = compile(
            &model,
            &cell_spec("read", vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }]),
            &dbs,
        )
        .unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn cell_put_stores_in_place() {
        // let c := put c 42 in c
        let model = Model::new(
            "write",
            ["c"],
            let_n("c", cell_put(var("c"), word_lit(42)), var("c")),
        );
        let dbs = standard_dbs();
        let out = compile(
            &model,
            &cell_spec("write", vec![RetSpec::InPlace { param: "c".into() }]),
            &dbs,
        )
        .unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn cell_iadd_fuses_load_and_store() {
        // let c := put c (get c + 5) in c — the Table 1 iadd extension.
        let model = Model::new(
            "bump",
            ["c"],
            let_n(
                "c",
                cell_put(var("c"), word_add(cell_get(var("c")), word_lit(5))),
                var("c"),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(
            &model,
            &cell_spec("bump", vec![RetSpec::InPlace { param: "c".into() }]),
            &dbs,
        )
        .unwrap();
        assert_eq!(out.derivation.root.lemma, "compile_cell_iadd");
        check(&out, &dbs).unwrap();
        // Exactly one statement: the fused store.
        assert_eq!(out.function.body.statement_count(), 1);
    }

    #[test]
    fn cas_compiles_to_conditional_store() {
        // The paper's compare-and-swap: write x when t, else leave c.
        let model = Model::new(
            "cas",
            ["c", "t", "x"],
            let_n(
                "c",
                ite(
                    word_eq(var("t"), word_lit(1)),
                    cell_put(var("c"), var("x")),
                    var("c"),
                ),
                var("c"),
            ),
        );
        let spec = FnSpec::new(
            "cas",
            vec![
                ArgSpec::CellPtr { name: "c".into(), param: "c".into() },
                ArgSpec::Scalar { name: "t".into(), param: "t".into(), kind: ScalarKind::Word },
                ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
            ],
            vec![RetSpec::InPlace { param: "c".into() }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        assert_eq!(out.derivation.root.lemma, "compile_cell_cas");
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("if ("), "{c}");
    }

    #[test]
    fn cas_with_put_in_else_branch() {
        // let c := if t == 0 then c else put c x — the mirrored shape.
        let model = Model::new(
            "cas2",
            ["c", "t", "x"],
            let_n(
                "c",
                ite(
                    word_eq(var("t"), word_lit(0)),
                    var("c"),
                    cell_put(var("c"), var("x")),
                ),
                var("c"),
            ),
        );
        let spec = FnSpec::new(
            "cas2",
            vec![
                ArgSpec::CellPtr { name: "c".into(), param: "c".into() },
                ArgSpec::Scalar { name: "t".into(), param: "t".into(), kind: ScalarKind::Word },
                ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
            ],
            vec![RetSpec::InPlace { param: "c".into() }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn cas_pair_matches_the_paper_example() {
        // let p := (if t == 1 then (1, put c x) else (0, c)) in
        //   (fst p, snd p)
        // — returns both the "did we write?" flag and the (possibly
        // mutated) cell.
        let model = Model::new(
            "cas_pair",
            ["c", "t", "x"],
            let_n(
                "p",
                ite(
                    word_eq(var("t"), word_lit(1)),
                    pair(word_lit(1), cell_put(var("c"), var("x"))),
                    pair(word_lit(0), var("c")),
                ),
                pair(fst(var("p")), snd(var("p"))),
            ),
        );
        let spec = FnSpec::new(
            "cas_pair",
            vec![
                ArgSpec::CellPtr { name: "c".into(), param: "c".into() },
                ArgSpec::Scalar { name: "t".into(), param: "t".into(), kind: ScalarKind::Word },
                ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
            ],
            vec![
                RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word },
                RetSpec::InPlace { param: "c".into() },
            ],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        assert_eq!(out.derivation.root.lemma, "compile_cell_cas_pair");
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("if ("), "{c}");
        assert!(c.contains("p_fst"), "{c}");
    }

    #[test]
    fn chained_cell_updates() {
        // let c := put c (get c + 1) in let c := put c (get c + 2) in c
        let model = Model::new(
            "bump2",
            ["c"],
            let_n(
                "c",
                cell_put(var("c"), word_add(cell_get(var("c")), word_lit(1))),
                let_n(
                    "c",
                    cell_put(var("c"), word_add(cell_get(var("c")), word_lit(2))),
                    var("c"),
                ),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(
            &model,
            &cell_spec("bump2", vec![RetSpec::InPlace { param: "c".into() }]),
            &dbs,
        )
        .unwrap();
        check(&out, &dbs).unwrap();
    }
}
