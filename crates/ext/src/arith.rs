//! The relational expression compiler (§4.1.3).
//!
//! Rupicola is "really two relational compilers rolled into one: one
//! targeting Bedrock2's statements and one targeting its expressions". The
//! expression side started as a reflective verified compiler and was
//! rewritten relationally because extending the reflective one "required
//! modifications in increasingly complex tactics"; relationally, each
//! construct is one small lemma. These lemmas cover "machine words, bytes,
//! Booleans, integers, two representations of natural numbers, and
//! expressions with casts between different types":
//!
//! - [`ExprLocal`] — a term that a live Bedrock2 local already denotes
//!   compiles to that local (modulo the equational hypotheses);
//! - [`ExprLit`] — scalar literals;
//! - [`ExprPrim`] — primitive operations, with the representation glue
//!   (bytes are stored zero-extended, so byte arithmetic re-masks; booleans
//!   are 0/1; naturals carry no-overflow side conditions).

use crate::helpers::kind_of;
use rupicola_core::derive::DerivationNode;
use rupicola_core::{
    AppliedExpr,
    CompileError,
    Compiler,
    Dispatch,
    ExprLemma,
    HeadKey,
    SideCond,
    StmtGoal,
};
use rupicola_bedrock::{BExpr, BinOp};
use rupicola_lang::{Expr, PrimOp};

/// Compiles a term already held by a Bedrock2 local.
///
/// The search is up to the goal's equational hypotheses: after an in-place
/// map rebinds `s`, the local `len` is bound to `length s'0` while the term
/// to compile is `length s`; the recorded equation `length s = length s'0`
/// bridges the two.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprLocal;

impl ExprLemma for ExprLocal {
    fn name(&self) -> &'static str {
        "expr_local"
    }

    // Deliberately inherits `Dispatch::Wildcard`: the equational-hypothesis
    // chase can resolve a term of *any* head shape to a bound local, so no
    // head-key bound is sound for this lemma.

    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        if cx.fast_path() {
            self.chase_borrowed(term, goal, cx)
        } else {
            self.chase_cloning(term, goal)
        }
    }
}

impl ExprLocal {
    /// Optimized chase: terms equal to `term` under the equational
    /// hypotheses, breadth first, bounded. The frontier holds *borrowed*
    /// terms — `term` itself, then sides of `EqWord` hypotheses — so the
    /// common case (hit or miss with no chase) allocates nothing.
    fn chase_borrowed(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let mut candidates: Vec<&Expr> = vec![term];
        let mut i = 0;
        while i < candidates.len() && candidates.len() < 16 {
            let cur = candidates[i];
            if let Some((local, _)) = goal.locals.find_scalar(cur) {
                return Some(Ok(AppliedExpr {
                    expr: BExpr::var(local),
                    node: DerivationNode::leaf(self.name(), cx.focus_mapsto(term, local)),
                }));
            }
            // A chase that lands on a literal (e.g. a stack buffer's
            // recorded length) compiles to that literal.
            if i > 0 {
                if let Expr::Lit(v) = cur {
                    if let Some(w) = v.to_scalar_word() {
                        return Some(Ok(AppliedExpr {
                            expr: BExpr::lit(w),
                            node: DerivationNode::leaf(self.name(), cx.focus_mapsto_word(term, w)),
                        }));
                    }
                }
            }
            for h in &goal.hyps {
                if let rupicola_core::Hyp::EqWord(a, b) = &h.hyp {
                    if a == cur && !candidates.contains(&b) {
                        candidates.push(b);
                    }
                    if b == cur && !candidates.contains(&a) {
                        candidates.push(a);
                    }
                }
            }
            i += 1;
        }
        None
    }

    /// Reference chase: the seed's implementation, kept for the `Linear`
    /// configuration. Same traversal in the same order, but the frontier
    /// owns copied terms — `deep_clone`, because that is what `clone()`
    /// was when subterms were `Box<Expr>`, so the reference configuration
    /// keeps the seed's allocation behavior as well as its answers. The
    /// equivalence battery relies on this being the seed engine's exact
    /// behavior.
    fn chase_cloning(
        &self,
        term: &Expr,
        goal: &StmtGoal,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let mut candidates = vec![term.deep_clone()];
        let mut i = 0;
        while i < candidates.len() && candidates.len() < 16 {
            let cur = candidates[i].clone();
            if let Some((local, _)) = goal.locals.find_scalar(&cur) {
                return Some(Ok(AppliedExpr {
                    expr: BExpr::var(local),
                    node: DerivationNode::leaf(self.name(), format!("{term} ↦ {local}")),
                }));
            }
            if i > 0 {
                if let Expr::Lit(v) = &cur {
                    if let Some(w) = v.to_scalar_word() {
                        return Some(Ok(AppliedExpr {
                            expr: BExpr::lit(w),
                            node: DerivationNode::leaf(self.name(), format!("{term} ↦ {w}")),
                        }));
                    }
                }
            }
            for h in &goal.hyps {
                if let rupicola_core::Hyp::EqWord(a, b) = &h.hyp {
                    if a == &cur && !candidates.contains(b) {
                        candidates.push(b.deep_clone());
                    }
                    if b == &cur && !candidates.contains(a) {
                        candidates.push(a.deep_clone());
                    }
                }
            }
            i += 1;
        }
        None
    }
}

/// Reduces projections of literal pairs: `fst (a, b) ↝ a`, `snd (a, b) ↝ b`
/// (bound pairs are resolved by [`ExprLocal`] through the pair-binding
/// lemma's locals instead).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprProj;

impl ExprLemma for ExprProj {
    fn name(&self) -> &'static str {
        "expr_proj"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Fst, HeadKey::Snd])
    }

    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let inner = match term {
            Expr::Fst(e) | Expr::Snd(e) => e.as_ref(),
            _ => return None,
        };
        let Expr::Pair(a, b) = inner else { return None };
        let picked = if matches!(term, Expr::Fst(_)) { a } else { b };
        Some(match cx.compile_expr(picked, goal) {
            Ok((expr, child)) => Ok(AppliedExpr {
                expr,
                node: DerivationNode::leaf(self.name(), cx.focus_term(term)).with_child(child),
            }),
            Err(e) => Err(e),
        })
    }
}

/// Compiles scalar literals.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprLit;

impl ExprLemma for ExprLit {
    fn name(&self) -> &'static str {
        "expr_lit"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Lit])
    }

    fn try_apply(
        &self,
        term: &Expr,
        _goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let Expr::Lit(v) = term else { return None };
        let w = v.to_scalar_word()?;
        Some(Ok(AppliedExpr {
            expr: BExpr::lit(w),
            node: DerivationNode::leaf(self.name(), cx.focus_term(term)),
        }))
    }
}

/// Compiles primitive scalar operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprPrim;

/// Pops the two operands of a binary primitive.
///
/// # Errors
///
/// [`CompileError::Internal`] when fewer than two operands were compiled —
/// an arity bug in the model construction, surfaced as a typed error
/// rather than a panic so one bad model cannot take down the pipeline.
fn pop2(v: &mut Vec<BExpr>, op: PrimOp, term: &Expr) -> Result<(BExpr, BExpr), CompileError> {
    match (v.pop(), v.pop()) {
        (Some(b), Some(a)) => Ok((a, b)),
        _ => Err(CompileError::Internal(format!(
            "expr_prim: `{op:?}` needs two operands in `{term}`"
        ))),
    }
}

/// Pops the operand of a unary primitive; see [`pop2`] for the error
/// contract.
fn pop1(v: &mut Vec<BExpr>, op: PrimOp, term: &Expr) -> Result<BExpr, CompileError> {
    v.pop().ok_or_else(|| {
        CompileError::Internal(format!("expr_prim: `{op:?}` needs one operand in `{term}`"))
    })
}

const BYTE_MASK: u64 = 0xff;
/// Naturals are compiled only when operands provably fit half the word, so
/// that addition cannot wrap; multiplication requires a quarter word.
const NAT_ADD_BOUND: u64 = (1 << 63) - 1;
const NAT_MUL_BOUND: u64 = (1 << 32) - 1;

impl ExprLemma for ExprPrim {
    fn name(&self) -> &'static str {
        "expr_prim"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Prim])
    }

    #[allow(clippy::too_many_lines)]
    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let Expr::Prim { op, args } = term else { return None };
        Some(self.compile(*op, args, term, goal, cx))
    }
}

impl ExprPrim {
    fn compile(
        &self,
        op: PrimOp,
        args: &[Expr],
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Result<AppliedExpr, CompileError> {
        use PrimOp::*;
        let mut node = DerivationNode::leaf(self.name(), cx.focus_term(term));
        let mut compiled = Vec::with_capacity(args.len());
        for a in args {
            let (e, child) = cx.compile_expr(a, goal)?;
            compiled.push(e);
            node.children.push(child);
        }
        let mask_byte = |e: BExpr| BExpr::op(BinOp::And, e, BExpr::lit(BYTE_MASK));
        let bin = |bop: BinOp, mut v: Vec<BExpr>| -> Result<BExpr, CompileError> {
            let (a, b) = pop2(&mut v, op, term)?;
            Ok(BExpr::op(bop, a, b))
        };
        let una = |mut v: Vec<BExpr>| -> Result<BExpr, CompileError> { pop1(&mut v, op, term) };
        let expr = match op {
            // Words map one-to-one.
            WAdd => bin(BinOp::Add, compiled)?,
            WSub => bin(BinOp::Sub, compiled)?,
            WMul => bin(BinOp::Mul, compiled)?,
            WAnd => bin(BinOp::And, compiled)?,
            WOr => bin(BinOp::Or, compiled)?,
            WXor => bin(BinOp::Xor, compiled)?,
            WShl => bin(BinOp::Slu, compiled)?,
            WShr => bin(BinOp::Sru, compiled)?,
            WSar => bin(BinOp::Srs, compiled)?,
            WLtU => bin(BinOp::LtU, compiled)?,
            WLtS => bin(BinOp::LtS, compiled)?,
            WEq => bin(BinOp::Eq, compiled)?,
            // Division differs at zero (source is partial, RISC-V total):
            // a side condition rules the divergence out.
            WDivU | WRemU => {
                let divisor = args.get(1).cloned().ok_or_else(|| {
                    CompileError::Internal(format!("expr_prim: `{op:?}` missing divisor in `{term}`"))
                })?;
                let sc = cx.solve(self.name(), SideCond::NonZero(divisor), &goal.hyps)?;
                node.side_conds.push(sc);
                bin(if op == WDivU { BinOp::DivU } else { BinOp::RemU }, compiled)?
            }
            // Bytes live zero-extended in locals; arithmetic that can carry
            // out of 8 bits re-masks.
            BAdd => mask_byte(bin(BinOp::Add, compiled)?),
            BSub => mask_byte(bin(BinOp::Sub, compiled)?),
            BAnd => bin(BinOp::And, compiled)?,
            BOr => bin(BinOp::Or, compiled)?,
            BXor => bin(BinOp::Xor, compiled)?,
            BShl => {
                let (a, b) = pop2(&mut compiled, op, term)?;
                mask_byte(BExpr::op(BinOp::Slu, a, BExpr::op(BinOp::And, b, BExpr::lit(7))))
            }
            BShr => {
                let (a, b) = pop2(&mut compiled, op, term)?;
                BExpr::op(BinOp::Sru, a, BExpr::op(BinOp::And, b, BExpr::lit(7)))
            }
            BLtU => bin(BinOp::LtU, compiled)?,
            BEq => bin(BinOp::Eq, compiled)?,
            // Booleans are 0/1.
            Not => BExpr::op(BinOp::Xor, una(compiled)?, BExpr::lit(1)),
            BoolAnd => bin(BinOp::And, compiled)?,
            BoolOr => bin(BinOp::Or, compiled)?,
            BoolEq => bin(BinOp::Eq, compiled)?,
            // Naturals: addition/subtraction/multiplication compile to word
            // operations under no-overflow side conditions.
            NAdd => {
                for a in args {
                    let sc = cx.solve(
                        self.name(),
                        SideCond::Le(a.clone(), Expr::Lit(rupicola_lang::Value::Nat(NAT_ADD_BOUND))),
                        &goal.hyps,
                    )?;
                    node.side_conds.push(sc);
                }
                bin(BinOp::Add, compiled)?
            }
            NSub => {
                // Truncated subtraction: (a - b) * (b ≤ a), branchless.
                for a in args {
                    let sc = cx.solve(
                        self.name(),
                        SideCond::Le(a.clone(), Expr::Lit(rupicola_lang::Value::Nat(NAT_ADD_BOUND))),
                        &goal.hyps,
                    )?;
                    node.side_conds.push(sc);
                }
                let (a, b) = pop2(&mut compiled, op, term)?;
                BExpr::op(
                    BinOp::Mul,
                    BExpr::op(BinOp::Sub, a.clone(), b.clone()),
                    BExpr::op(BinOp::LtU, b, BExpr::op(BinOp::Add, a, BExpr::lit(1))),
                )
            }
            NMul => {
                for a in args {
                    let sc = cx.solve(
                        self.name(),
                        SideCond::Le(a.clone(), Expr::Lit(rupicola_lang::Value::Nat(NAT_MUL_BOUND))),
                        &goal.hyps,
                    )?;
                    node.side_conds.push(sc);
                }
                bin(BinOp::Mul, compiled)?
            }
            NLt => bin(BinOp::LtU, compiled)?,
            NEq => bin(BinOp::Eq, compiled)?,
            // Casts: zero-extended representations make most casts free.
            WordOfByte | WordOfNat | NatOfWord | WordOfBool => una(compiled)?,
            ByteOfWord => mask_byte(una(compiled)?),
        };
        // Sanity: the result kind must be inferable (tests rely on models
        // being kind-correct before compilation).
        let _ = kind_of(cx.model, goal, term);
        Ok(AppliedExpr { expr, node })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_core::{Hyp, MonadCtx, Post};
    use rupicola_lang::dsl::*;
    use rupicola_lang::Model;
    use rupicola_sep::{ScalarKind, SymHeap, SymLocals, SymValue};

    fn goal_with(locals: &[(&str, ScalarKind, Expr)]) -> StmtGoal {
        let mut l = SymLocals::new();
        for (n, k, t) in locals {
            l.set((*n).to_string(), SymValue::Scalar(*k, t.clone()));
        }
        StmtGoal {
            prog: word_lit(0),
            locals: l,
            heap: SymHeap::new(),
            hyps: vec![],
            monad: MonadCtx::Pure,
            post: Post::default(),
            defs: Default::default(),
        }
    }

    fn compile(term: &Expr, goal: &StmtGoal) -> Result<BExpr, CompileError> {
        let model = Model::new("t", Vec::<String>::new(), word_lit(0));
        let dbs = crate::standard_dbs();
        let mut cx = Compiler::new(&model, &dbs);
        cx.compile_expr(term, goal).map(|(e, _)| e)
    }

    #[test]
    fn locals_compile_to_vars() {
        let goal = goal_with(&[("x", ScalarKind::Word, var("x"))]);
        assert_eq!(compile(&var("x"), &goal).unwrap(), BExpr::var("x"));
    }

    #[test]
    fn local_lookup_chases_equations() {
        let mut goal = goal_with(&[("len", ScalarKind::Word, array_len_b(var("s'0")))]);
        goal.push_hyp(Hyp::EqWord(array_len_b(var("s")), array_len_b(var("s'0"))));
        assert_eq!(compile(&array_len_b(var("s")), &goal).unwrap(), BExpr::var("len"));
    }

    #[test]
    fn word_ops_map_directly() {
        let goal = goal_with(&[("x", ScalarKind::Word, var("x"))]);
        let e = compile(&word_add(var("x"), word_lit(3)), &goal).unwrap();
        assert_eq!(e, BExpr::op(BinOp::Add, BExpr::var("x"), BExpr::lit(3)));
    }

    #[test]
    fn byte_add_remasks() {
        let goal = goal_with(&[("b", ScalarKind::Byte, var("b"))]);
        let e = compile(&byte_add(var("b"), byte_lit(1)), &goal).unwrap();
        assert_eq!(
            e,
            BExpr::op(
                BinOp::And,
                BExpr::op(BinOp::Add, BExpr::var("b"), BExpr::lit(1)),
                BExpr::lit(0xff)
            )
        );
    }

    #[test]
    fn byte_and_needs_no_mask() {
        let goal = goal_with(&[("b", ScalarKind::Byte, var("b"))]);
        let e = compile(&byte_and(var("b"), byte_lit(0xdf)), &goal).unwrap();
        assert_eq!(e, BExpr::op(BinOp::And, BExpr::var("b"), BExpr::lit(0xdf)));
    }

    #[test]
    fn bool_not_is_xor_one() {
        let goal = goal_with(&[("c", ScalarKind::Bool, var("c"))]);
        let e = compile(&not(var("c")), &goal).unwrap();
        assert_eq!(e, BExpr::op(BinOp::Xor, BExpr::var("c"), BExpr::lit(1)));
    }

    #[test]
    fn casts_are_free_or_masked() {
        let goal = goal_with(&[
            ("b", ScalarKind::Byte, var("b")),
            ("w", ScalarKind::Word, var("w")),
        ]);
        assert_eq!(compile(&word_of_byte(var("b")), &goal).unwrap(), BExpr::var("b"));
        assert_eq!(
            compile(&byte_of_word(var("w")), &goal).unwrap(),
            BExpr::op(BinOp::And, BExpr::var("w"), BExpr::lit(0xff))
        );
    }

    #[test]
    fn division_requires_nonzero() {
        let goal = goal_with(&[("x", ScalarKind::Word, var("x"))]);
        // Dividing by a variable with no hypotheses fails.
        let err = compile(&word_divu(var("x"), var("x")), &goal).unwrap_err();
        assert!(matches!(err, CompileError::SideCondition { .. }));
        // Dividing by a nonzero literal succeeds.
        assert!(compile(&word_divu(var("x"), word_lit(2)), &goal).is_ok());
    }

    #[test]
    fn nat_sub_is_branchless_truncated() {
        let goal = goal_with(&[("n", ScalarKind::Nat, nat_of_word(var("n")))]);
        // Bounded literals satisfy the no-overflow side conditions.
        let e = compile(&nat_sub(nat_lit(5), nat_lit(9)), &goal).unwrap();
        // Shape: (5 - 9) * (9 < 5 + 1).
        match e {
            BExpr::Op(BinOp::Mul, _, _) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unknown_term_is_residual() {
        let goal = goal_with(&[]);
        let err = compile(&var("mystery"), &goal).unwrap_err();
        assert!(matches!(err, CompileError::ResidualGoal { .. }));
    }
}
