//! Stack allocation of initialized objects (§4.1.2).
//!
//! "For programs that immediately initialize their stack-allocated objects,
//! we added a special identity function `stack`. When Rupicola sees
//! `let x := stack (term) in …`, it generates a stack allocation in
//! Bedrock2 and resumes compilation with the plain program
//! `let x := term in …`." The uninitialized variant (unspecified initial
//! contents, modelled with the nondeterminism monad) lives in
//! [`crate::nondet`].

use rupicola_core::derive::DerivationNode;
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, Hyp, StmtGoal, StmtLemma};
use rupicola_bedrock::{AccessSize, BExpr, Cmd};
use rupicola_lang::{ElemKind, Expr, Value};
use rupicola_sep::{Heaplet, HeapletKind, SymValue};

/// `let/n x := stack (lit-array) in k` — a lexically scoped stack buffer,
/// initialized element by element.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStackInit;

impl StmtLemma for CompileStackInit {
    fn name(&self) -> &'static str {
        "compile_stack_init"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::Stack(init) = value.as_ref() else { return None };
        // The allocation size must be a compile-time constant, so the
        // lemma matches literal initializers.
        let Expr::Lit(v) = init.as_ref() else { return None };
        let elem = match v {
            Value::ByteList(_) => ElemKind::Byte,
            Value::WordList(_) => ElemKind::Word,
            _ => return None,
        };
        Some(self.apply(goal, cx, name, elem, v.clone(), init, body))
    }
}

impl CompileStackInit {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        elem: ElemKind,
        init: Value,
        init_term: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let node = DerivationNode::leaf(
            self.name(),
            format!("let/n {name} := stack({init_term})"),
        );
        let n = init.list_len().unwrap_or(0) as u64;
        let nbytes = n * elem.width();
        // Initialization stores.
        let mut stores = Vec::with_capacity(n as usize);
        for i in 0..n {
            let w = init
                .list_get(i as usize)
                .and_then(|e| e.to_scalar_word())
                .ok_or_else(|| CompileError::Internal("stack literal element".into()))?;
            let addr = BExpr::op(
                rupicola_bedrock::BinOp::Add,
                BExpr::var(name),
                BExpr::lit(i * elem.width()),
            );
            stores.push(Cmd::store(
                match elem {
                    ElemKind::Byte => AccessSize::One,
                    ElemKind::Word => AccessSize::Eight,
                },
                addr,
                BExpr::lit(w),
            ));
        }
        // Continuation with the new heaplet in scope.
        let mut k_goal = goal.clone();
        let id = k_goal.heap.add(Heaplet {
            kind: HeapletKind::Array { elem },
            content: Expr::Var(name.to_string()),
            len: Some(Expr::ArrayLen {
                elem,
                arr: Expr::Var(name.to_string()).boxed(),
            }),
            ptr_name: format!("&{name}"),
        });
        k_goal.locals.set(name.to_string(), SymValue::Ptr(id));
        k_goal.push_hyp(Hyp::EqWord(
            Expr::ArrayLen { elem, arr: Expr::Var(name.to_string()).boxed() },
            Expr::Lit(Value::Word(n)),
        ));
        k_goal.defs.push((name.to_string(), init_term.clone()));
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        let node = node.with_child(k_node);
        let mut inner = stores;
        inner.push(k_cmd);
        Ok(Applied {
            cmd: Cmd::StackAlloc {
                var: name.to_string(),
                nbytes,
                body: Box::new(Cmd::seq(inner)),
            },
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::{Expr, Model, Value};
    use rupicola_sep::ScalarKind;

    #[test]
    fn stack_buffer_is_allocated_and_readable() {
        // let t := stack [10; 20; 30] in let b := t[x] in word_of_byte b
        let model = Model::new(
            "scratch",
            ["x"],
            let_n(
                "t",
                stack(Expr::Lit(Value::byte_list([10, 20, 30]))),
                let_n(
                    "b",
                    array_get_b(var("t"), word_and(var("x"), word_lit(1))),
                    word_of_byte(var("b")),
                ),
            ),
        );
        let spec = FnSpec::new(
            "scratch",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("t_buf[3]"), "{c}");
    }

    #[test]
    fn stack_word_buffer() {
        let model = Model::new(
            "wscratch",
            Vec::<String>::new(),
            let_n(
                "t",
                stack(Expr::Lit(Value::word_list([7, 8]))),
                let_n("w", array_get_w(var("t"), word_lit(1)), var("w")),
            ),
        );
        let spec = FnSpec::new(
            "wscratch",
            vec![],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn non_literal_stack_is_residual() {
        // Stack allocation needs a compile-time size; a dynamic init is a
        // residual goal (the user should copy explicitly or extend).
        let model = Model::new(
            "dyn",
            ["s"],
            let_n("t", stack(var("s")), var("t")),
        );
        let spec = FnSpec::new(
            "dyn",
            vec![
                ArgSpec::ArrayPtr {
                    name: "s".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
                ArgSpec::LenOf {
                    name: "len".into(),
                    param: "s".into(),
                    elem: rupicola_lang::ElemKind::Byte,
                },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        let dbs = standard_dbs();
        let err = compile(&model, &spec, &dbs).unwrap_err();
        assert!(matches!(err, rupicola_core::CompileError::ResidualGoal { .. }));
    }
}
