//! The writer monad (§4.1.1).
//!
//! The paper measures adding writer support at about an hour and a half,
//! "mapping writes to I/O trace operations at the Bedrock2 level" — which
//! is exactly what this lemma does: `tell w` becomes an `interact
//! "writer_tell" (w)` event, and the checker compares the collected
//! `writer_tell` events against the source's accumulated output, per the
//! writer lift law (see `rupicola-monads`).

use rupicola_core::derive::DerivationNode;
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, StmtGoal, StmtLemma};
use rupicola_bedrock::Cmd;
use rupicola_lang::{Expr, MonadKind};

/// `let/n! _ := writer.tell(e) in k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileWriterTell;

impl StmtLemma for CompileWriterTell {
    fn name(&self) -> &'static str {
        "compile_writer_tell"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Bind])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Bind { monad: MonadKind::Writer, name: _, ma, body } = &goal.prog else {
            return None;
        };
        if !goal.monad.admits(MonadKind::Writer) {
            return None;
        }
        let Expr::WriterTell(e) = ma.as_ref() else { return None };
        Some(self.apply(goal, cx, e, body))
    }
}

impl CompileWriterTell {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        e: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), format!("writer.tell({e})"));
        let (e_c, c0) = cx.compile_expr(e, goal)?;
        node.children.push(c0);
        let mut k_goal = goal.clone();
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([
                Cmd::Interact { rets: vec![], action: "writer_tell".into(), args: vec![e_c] },
                k_cmd,
            ]),
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec, TraceSpec};
    use rupicola_core::MonadCtx;
    use rupicola_lang::dsl::*;
    use rupicola_lang::{Model, MonadKind};
    use rupicola_sep::ScalarKind;

    #[test]
    fn tell_twice_accumulates_in_order() {
        // The paper's example shape: a small writer program (§4.1.1).
        let model = Model::new(
            "tell2",
            ["x"],
            bind(
                MonadKind::Writer,
                "_",
                writer_tell(var("x")),
                bind(
                    MonadKind::Writer,
                    "_",
                    writer_tell(word_add(var("x"), word_lit(1))),
                    ret(MonadKind::Writer, word_lit(0)),
                ),
            ),
        );
        let spec = FnSpec::new(
            "tell2",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Writer))
        .with_trace(TraceSpec::MirrorsSource);
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert_eq!(c.matches("writer_tell").count(), 2, "{c}");
    }

    #[test]
    fn writer_with_pure_bindings() {
        // let y := x*x (pure, via MonadBindRet) in tell y; ret y.
        let model = Model::new(
            "square_tell",
            ["x"],
            bind(
                MonadKind::Writer,
                "y",
                ret(MonadKind::Writer, word_mul(var("x"), var("x"))),
                bind(
                    MonadKind::Writer,
                    "_",
                    writer_tell(var("y")),
                    ret(MonadKind::Writer, var("y")),
                ),
            ),
        );
        let spec = FnSpec::new(
            "square_tell",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        )
        .with_monad(MonadCtx::Monadic(MonadKind::Writer))
        .with_trace(TraceSpec::MirrorsSource);
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }
}
