//! Shared plumbing for extension lemmas: kind resolution, heaplet lookup,
//! and the ghost-renaming discipline for `let/n` rebinding.

use rupicola_core::{Compiler, Hyp, StmtGoal};
use rupicola_lang::{ElemKind, Expr, Ident, Model};
use rupicola_sep::{HeapletId, ScalarKind, SymValue};

/// Resolves the scalar kind of a source term under a goal's locals,
/// additionally resolving inline-table reads through the model.
pub fn kind_of(model: &Model, goal: &StmtGoal, term: &Expr) -> Option<ScalarKind> {
    if let Expr::TableGet { table, .. } = term {
        return model.table(table).map(|t| match t.elem {
            ElemKind::Byte => ScalarKind::Byte,
            ElemKind::Word => ScalarKind::Word,
        });
    }
    // A source variable's kind comes from the local *bound to that source
    // term* (usually, but not necessarily, the local of the same name).
    let lookup = |n: &str| {
        goal.locals
            .find_scalar(&Expr::Var(n.to_string()))
            .map(|(_, k)| k)
    };
    rupicola_sep::scalar_kind(term, &lookup)
}

/// Whether a term is in the "plain scalar value" fragment the generic
/// `let/n` lemma commits to (everything a Bedrock2 *expression* can
/// compute, as opposed to values needing statements: loops, conditionals,
/// mutation, allocation, monadic operations).
pub fn is_plain_scalar_value(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Var(_)
            | Expr::Lit(_)
            | Expr::Prim { .. }
            | Expr::Extern { .. }
            | Expr::ArrayGet { .. }
            | Expr::TableGet { .. }
            | Expr::CellGet(_)
            | Expr::ArrayLen { .. }
    )
}

/// Finds the heaplet whose content is syntactically `term`, together with
/// the Bedrock2 local holding its pointer.
pub fn heaplet_and_ptr(goal: &StmtGoal, term: &Expr) -> Option<(HeapletId, String)> {
    let id = goal.heap.find_by_content(term)?;
    let ptr = goal.locals.find_ptr(id)?.to_string();
    Some((id, ptr))
}

/// Whether any piece of the symbolic state mentions the source name.
///
/// Two implementations, selected by [`Compiler::fast_path`]: the optimized
/// engine uses the allocation-free [`Expr::mentions`] walk; the reference
/// (`Linear`) configuration keeps the seed's `free_vars()`-based scan so
/// the baseline the speed harness and equivalence battery measure against
/// is the seed engine, not a half-optimized hybrid. Both return the same
/// answer on every input (`mentions` is `free_vars().contains` fused into
/// one binder-aware traversal).
pub fn state_mentions(cx: &Compiler<'_>, goal: &StmtGoal, name: &str) -> bool {
    if goal.locals.get(name).is_some() {
        return true;
    }
    let fast = cx.fast_path();
    let as_var = |e: &Expr| {
        if fast {
            e.mentions(name)
        } else {
            e.free_vars().iter().any(|v| v == name)
        }
    };
    for (_, v) in goal.locals.iter() {
        if let SymValue::Scalar(_, t) = v {
            if as_var(t) {
                return true;
            }
        }
    }
    for (_, h) in goal.heap.iter() {
        if as_var(&h.content) || h.len.as_ref().is_some_and(&as_var) {
            return true;
        }
    }
    false
}

/// Rebinds `name` to a scalar: performs the ghost renaming on the symbolic
/// state if `name` is already mentioned, binds the Bedrock2 local `name` to
/// the source variable `name`, records the defining equation as a
/// hypothesis, and focuses the goal on `body`.
///
/// Returns the continuation goal. The caller compiles the bound value *in
/// the original goal* (renaming does not change any runtime value).
pub fn rebind_scalar(
    cx: &mut Compiler<'_>,
    goal: &StmtGoal,
    name: &Ident,
    kind: ScalarKind,
    value: &Expr,
    body: &Expr,
) -> StmtGoal {
    let mut g = cx.clone_goal(goal);
    let mut shadowed_value = cx.clone_term(value);
    if state_mentions(cx, &g, name) {
        let ghost = cx.fresh_ghost(name);
        g.shadow(name, &ghost);
        shadowed_value = rupicola_sep::subst(value, name, &Expr::Var(ghost.clone()));
        // Chain semantics: the ghost saves the old value of `name` before
        // the rebinding overwrites it.
        g.defs.push((ghost, Expr::Var(name.clone())));
    }
    g.locals
        .set(name.clone(), SymValue::Scalar(kind, Expr::Var(name.clone())));
    g.push_hyp(Hyp::EqWord(Expr::Var(name.clone()), shadowed_value));
    if !value.is_monadic() {
        g.defs.push((name.clone(), cx.clone_term(value)));
    }
    g.prog = cx.clone_term(body);
    g
}

/// Rebinds `name` to the (mutated-in-place) heaplet `id`: ghost-renames the
/// old state, points the heaplet's content and length at `name`, records
/// the length-preservation fact, and focuses the goal on `body`.
///
/// `new_len_of_old` must be `true` for transformations that preserve length
/// (map, put) — the structural property of §3.4.2.
pub fn rebind_pointer(
    cx: &mut Compiler<'_>,
    goal: &StmtGoal,
    name: &Ident,
    id: HeapletId,
    elem: ElemKind,
    value: &Expr,
    body: &Expr,
) -> StmtGoal {
    let mut g = cx.clone_goal(goal);
    if state_mentions(cx, &g, name) {
        let ghost = cx.fresh_ghost(name);
        g.shadow(name, &ghost);
        g.defs.push((ghost, Expr::Var(name.clone())));
    }
    if !value.is_monadic() {
        g.defs.push((name.clone(), cx.clone_term(value)));
    }
    let old_len = g.heap.get(id).and_then(|h| h.len.clone());
    let new_len = Expr::ArrayLen { elem, arr: Expr::Var(name.clone()).boxed() };
    if let Some(h) = g.heap.get_mut(id) {
        h.content = Expr::Var(name.clone());
        h.len = Some(new_len.clone());
    }
    if let Some(old) = old_len {
        if old != new_len {
            g.push_hyp(Hyp::EqWord(new_len, old));
        }
    }
    g.locals.set(name.clone(), SymValue::Ptr(id));
    g.prog = cx.clone_term(body);
    g
}

/// Picks a Bedrock2 local name for an iteration binder: the source name if
/// it is not already a live local (names guide code generation, §3.4.1),
/// otherwise a fresh one.
pub fn binder_local(cx: &mut Compiler<'_>, goal: &StmtGoal, binder: &Ident) -> String {
    if goal.locals.get(binder).is_none() {
        binder.clone()
    } else {
        cx.fresh_var(&format!("_{binder}"))
    }
}

/// Picks the Bedrock2 local for a loop *counter* binder: like
/// [`binder_local`], but additionally unique across every loop emitted so
/// far in this run. Two sequential loops routinely reuse the same source
/// binder (`fun i => …` twice); the trusted checker matches loop-head
/// invariants by counter local, so reusing the local would make one
/// loop's invariant fire at the other's head.
pub fn loop_counter_local(cx: &mut Compiler<'_>, goal: &StmtGoal, binder: &Ident) -> String {
    let mut cand = binder_local(cx, goal, binder);
    while !cx.claim_loop_local(&cand) {
        cand = cx.fresh_var(&format!("_{binder}"));
    }
    cand
}

/// The Bedrock2 access size for an element kind.
pub fn access_size(elem: ElemKind) -> rupicola_bedrock::AccessSize {
    match elem {
        ElemKind::Byte => rupicola_bedrock::AccessSize::One,
        ElemKind::Word => rupicola_bedrock::AccessSize::Eight,
    }
}

/// Prepares the goal used to compile a loop body: ghost-renames any state
/// that mentions the loop binders (they get fresh meanings inside the
/// loop), installs the binder locals, and adds the loop hypotheses.
pub fn loop_body_goal(
    cx: &mut Compiler<'_>,
    goal: &StmtGoal,
    binders: &[(Ident, String, ScalarKind)],
    extra_hyps: Vec<Hyp>,
) -> StmtGoal {
    let mut g = cx.clone_goal(goal);
    for (src, _, _) in binders {
        if state_mentions(cx, &g, src) {
            let ghost = cx.fresh_ghost(src);
            g.shadow(src, &ghost);
        }
    }
    for (src, local, kind) in binders {
        g.locals
            .set(local.clone(), SymValue::Scalar(*kind, Expr::Var(src.clone())));
    }
    g.extend_hyps(extra_hyps);
    g
}

/// The scalar kind of an element kind.
pub fn elem_scalar_kind(elem: ElemKind) -> ScalarKind {
    match elem {
        ElemKind::Byte => ScalarKind::Byte,
        ElemKind::Word => ScalarKind::Word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_core::{HintDbs, MonadCtx, Post};
    use rupicola_lang::dsl::*;
    use rupicola_sep::{Heaplet, HeapletKind, SymHeap, SymLocals};

    fn base_goal() -> StmtGoal {
        let mut heap = SymHeap::new();
        let id = heap.add(Heaplet {
            kind: HeapletKind::Array { elem: ElemKind::Byte },
            content: var("s"),
            len: Some(array_len_b(var("s"))),
            ptr_name: "s".into(),
        });
        let mut locals = SymLocals::new();
        locals.set("s", SymValue::Ptr(id));
        locals.set(
            "len",
            SymValue::Scalar(ScalarKind::Word, array_len_b(var("s"))),
        );
        StmtGoal {
            prog: var("s"),
            locals,
            heap,
            hyps: vec![],
            monad: MonadCtx::Pure,
            post: Post::default(),
            defs: Default::default(),
        }
    }

    #[test]
    fn kind_of_resolves_through_locals_and_tables() {
        let model = Model::new("m", ["s"], var("s"))
            .with_table(rupicola_lang::TableDef::bytes("t", [1, 2]));
        let goal = base_goal();
        assert_eq!(
            kind_of(&model, &goal, &var("len")),
            None, // "len" is a Bedrock2 local, not a source variable
        );
        assert_eq!(
            kind_of(&model, &goal, &array_len_b(var("s"))),
            Some(ScalarKind::Word)
        );
        assert_eq!(
            kind_of(&model, &goal, &table_get("t", word_lit(0))),
            Some(ScalarKind::Byte)
        );
    }

    #[test]
    fn rebind_scalar_shadows_and_records_equation() {
        let model = Model::new("m", ["x"], var("x"));
        let dbs = HintDbs::new();
        let mut cx = Compiler::new(&model, &dbs);
        let mut goal = base_goal();
        goal.locals
            .set("acc", SymValue::Scalar(ScalarKind::Word, var("acc")));
        let g2 = rebind_scalar(
            &mut cx,
            &goal,
            &"acc".to_string(),
            ScalarKind::Word,
            &word_add(var("acc"), word_lit(1)),
            &var("acc"),
        );
        // The new binding denotes Var("acc"); the equation relates it to
        // the ghost-renamed old value.
        let (term, _) = g2.locals.get("acc").unwrap().scalar_term().unwrap();
        assert_eq!(term, &var("acc"));
        let eq = g2.hyps.iter().find_map(|h| match &h.hyp {
            Hyp::EqWord(Expr::Var(v), rhs) if v == "acc" => Some(rhs.clone()),
            _ => None,
        });
        let rhs = eq.expect("defining equation recorded");
        // The rhs references the ghost, not the re-bound name.
        assert!(rhs.free_vars().iter().all(|v| v != "acc"));
        assert_eq!(g2.prog, var("acc"));
    }

    #[test]
    fn rebind_pointer_updates_content_and_records_length() {
        let model = Model::new("m", ["s"], var("s"));
        let dbs = HintDbs::new();
        let mut cx = Compiler::new(&model, &dbs);
        let goal = base_goal();
        let (id, _) = heaplet_and_ptr(&goal, &var("s")).unwrap();
        let value = array_map_b("b", var("b"), var("s"));
        let g2 = rebind_pointer(&mut cx, &goal, &"s".to_string(), id, ElemKind::Byte, &value, &var("s"));
        let h = g2.heap.get(id).unwrap();
        assert_eq!(h.content, var("s"));
        // Length-preservation hypothesis: length (new s) = length (ghost).
        assert!(g2.hyps.iter().any(|h| matches!(&h.hyp, Hyp::EqWord(a, b)
            if *a == array_len_b(var("s")) && *b != array_len_b(var("s")))));
        // And the "len" local's term was ghost-renamed consistently.
        let (len_term, _) = g2.locals.get("len").unwrap().scalar_term().unwrap();
        assert_ne!(len_term, &array_len_b(var("s")));
        // The defs chain saves the ghost then records the new definition.
        let defs = g2.binding_defs();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].1, var("s"));
        assert_eq!(defs[1].0, "s");
    }

    #[test]
    fn binder_local_prefers_source_name() {
        let model = Model::new("m", ["s"], var("s"));
        let dbs = HintDbs::new();
        let mut cx = Compiler::new(&model, &dbs);
        let goal = base_goal();
        assert_eq!(binder_local(&mut cx, &goal, &"b".to_string()), "b");
        let fresh = binder_local(&mut cx, &goal, &"len".to_string());
        assert_ne!(fresh, "len");
    }

    #[test]
    fn plain_scalar_fragment() {
        assert!(is_plain_scalar_value(&word_add(var("a"), var("b"))));
        assert!(is_plain_scalar_value(&array_get_b(var("s"), var("i"))));
        assert!(!is_plain_scalar_value(&ite(var("c"), var("a"), var("b"))));
        assert!(!is_plain_scalar_value(&array_map_b("b", var("b"), var("s"))));
        assert!(!is_plain_scalar_value(&stack(var("x"))));
    }
}
