//! The `copy` annotation (§3.4.1): "to indicate that a let-binding should
//! result in a copy instead of a mutation, a user might wrap the value
//! being bound in a call to a copy function of type `∀α. α → α`".
//!
//! Two lemmas:
//!
//! - [`CompileCopyScalar`] — on scalars, `copy` is operationally inert and
//!   reduces to the ordinary binding;
//! - [`CompileCopyArrayStack`] — on arrays whose length is known to the
//!   solver as a constant (e.g. stack buffers, or inputs with a length
//!   hint), the copy becomes a fresh stack allocation plus an element-wise
//!   copy loop; the original array's heaplet is untouched, so both names
//!   remain usable afterwards.

use crate::helpers::{access_size, heaplet_and_ptr, is_plain_scalar_value, kind_of, rebind_scalar};
use rupicola_core::derive::DerivationNode;
use rupicola_core::solver::{linearize, rewrite};
use rupicola_core::{Applied, CompileError, Compiler, Dispatch, HeadKey, Hyp, StmtGoal, StmtLemma};
use rupicola_bedrock::{BExpr, BinOp, Cmd};
use rupicola_lang::{ElemKind, Expr, Value};
use rupicola_sep::{Heaplet, HeapletKind, SymValue};

/// `let/n x := copy e in k` for scalar `e`: identical to the plain binding.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileCopyScalar;

impl StmtLemma for CompileCopyScalar {
    fn name(&self) -> &'static str {
        "compile_copy_scalar"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::Copy(inner) = value.as_ref() else { return None };
        if !is_plain_scalar_value(inner) {
            return None;
        }
        let kind = kind_of(cx.model, goal, inner)?;
        Some(self.apply(goal, cx, name, kind, inner, body))
    }
}

impl CompileCopyScalar {
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        kind: rupicola_sep::ScalarKind,
        inner: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let (e, c0) = cx.compile_expr(inner, goal)?;
        let k_goal = rebind_scalar(cx, goal, &name.to_string(), kind, inner, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        let node = DerivationNode::leaf(self.name(), format!("let/n {name} := copy({inner})"))
            .with_child(c0)
            .with_child(k_node);
        Ok(Applied { cmd: Cmd::seq([Cmd::set(name.to_string(), e), k_cmd]), node })
    }
}

/// Extracts a constant length for an array term from the equational
/// hypotheses (stack allocations record `length t = n`; callers may supply
/// the same fact as a spec hint).
fn constant_len(goal: &StmtGoal, elem: ElemKind, arr: &Expr) -> Option<u64> {
    let len_term = Expr::ArrayLen { elem, arr: arr.clone().boxed() };
    let reduced = rewrite(&len_term, &goal.hyps, 8);
    let lin = linearize(&reduced);
    lin.as_constant().and_then(|c| u64::try_from(c).ok())
}

/// `let/n t := copy s in k` for an array `s` of solver-known constant
/// length: a stack allocation plus a copy loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileCopyArrayStack;

impl StmtLemma for CompileCopyArrayStack {
    fn name(&self) -> &'static str {
        "compile_copy_array_stack"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::Copy(inner) = value.as_ref() else { return None };
        let (id, src_ptr) = heaplet_and_ptr(goal, inner)?;
        let HeapletKind::Array { elem } = goal.heap.get(id)?.kind.clone() else { return None };
        let n = constant_len(goal, elem, inner)?;
        Some(self.apply(goal, cx, name, elem, n, &src_ptr, inner, body))
    }
}

impl CompileCopyArrayStack {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        elem: ElemKind,
        n: u64,
        src_ptr: &str,
        inner: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let node = DerivationNode::leaf(
            self.name(),
            format!("let/n {name} := copy({inner})   [{n} × {elem}]"),
        );
        let mut k_goal = goal.clone();
        let id = k_goal.heap.add(Heaplet {
            kind: HeapletKind::Array { elem },
            content: Expr::Var(name.to_string()),
            len: Some(Expr::ArrayLen { elem, arr: Expr::Var(name.to_string()).boxed() }),
            ptr_name: format!("&{name}"),
        });
        k_goal.locals.set(name.to_string(), SymValue::Ptr(id));
        k_goal.push_hyp(Hyp::EqWord(
            Expr::ArrayLen { elem, arr: Expr::Var(name.to_string()).boxed() },
            Expr::Lit(Value::Word(n)),
        ));
        k_goal.defs.push((name.to_string(), inner.clone()));
        k_goal.prog = body.clone();
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        let node = node.with_child(k_node);

        let width = elem.width();
        let i = cx.fresh_var("_c");
        let src_addr = BExpr::op(
            BinOp::Add,
            BExpr::var(src_ptr),
            BExpr::op(BinOp::Mul, BExpr::var(&i), BExpr::lit(width)),
        );
        let dst_addr = BExpr::op(
            BinOp::Add,
            BExpr::var(name),
            BExpr::op(BinOp::Mul, BExpr::var(&i), BExpr::lit(width)),
        );
        let copy_loop = Cmd::seq([
            Cmd::set(&i, BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var(&i), BExpr::lit(n)),
                Cmd::seq([
                    Cmd::store(
                        access_size(elem),
                        dst_addr,
                        BExpr::load(access_size(elem), src_addr),
                    ),
                    Cmd::set(&i, BExpr::op(BinOp::Add, BExpr::var(&i), BExpr::lit(1))),
                ]),
            ),
        ]);
        Ok(Applied {
            cmd: Cmd::StackAlloc {
                var: name.to_string(),
                nbytes: n * width,
                body: Box::new(Cmd::seq([copy_loop, k_cmd])),
            },
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_core::Hyp;
    use rupicola_lang::dsl::*;
    use rupicola_lang::{ElemKind, Model, Value};
    use rupicola_sep::ScalarKind;

    #[test]
    fn scalar_copy_is_inert() {
        let model = Model::new(
            "cp",
            ["x"],
            let_n("y", copy(word_add(var("x"), word_lit(1))), var("y")),
        );
        let spec = FnSpec::new(
            "cp",
            vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
            vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn array_copy_preserves_the_original() {
        // let t := copy s in let t := map f t in (t written back over s? no:
        // s is returned unchanged, t is scratch — the copy protects s).
        let model = Model::new(
            "protect",
            ["s"],
            let_n(
                "t",
                copy(var("s")),
                let_n(
                    "t",
                    array_map_b("b", byte_xor(var("b"), byte_lit(0xff)), var("t")),
                    let_n(
                        "r",
                        array_fold_b(
                            "acc",
                            "b",
                            word_add(var("acc"), word_of_byte(var("b"))),
                            word_lit(0),
                            var("t"),
                        ),
                        pair(var("r"), var("s")),
                    ),
                ),
            ),
        );
        let spec = FnSpec::new(
            "protect",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![
                RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word },
                RetSpec::InPlace { param: "s".into() },
            ],
        )
        // The copy needs a compile-time size: pin the length by hint.
        .with_hint(Hyp::EqWord(
            array_len_b(var("s")),
            rupicola_lang::Expr::Lit(Value::Word(8)),
        ));
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("t_buf[8]"), "{c}");
    }

    #[test]
    fn array_copy_without_known_length_is_residual() {
        let model = Model::new(
            "cpdyn",
            ["s"],
            let_n("t", copy(var("s")), var("t")),
        );
        let spec = FnSpec::new(
            "cpdyn",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        let dbs = standard_dbs();
        assert!(compile(&model, &spec, &dbs).is_err());
    }
}
