//! `ListArray`: flat arrays backed by contiguous memory (§3.2).
//!
//! At the source level these are plain lists; the `ListArray` module
//! "reexposes list operations but tells Rupicola to use a contiguous
//! array" (§3.4.1). Four pieces:
//!
//! - [`ExprArrayGet`] — `ListArray.get` as a bounds-checked load;
//! - [`CompileArrayPut`] — `let/n s := ListArray.put s i v` as an in-place
//!   store (mutation is signalled by rebinding the same name);
//! - [`CompileArrayMap`] — `let/n s := ListArray.map f s` as an in-place
//!   `for` loop, with the §3.4.2 loop invariant
//!   `map f (first n l) ++ skip n l` recorded for runtime checking;
//! - [`CompileArrayFold`] — `let/n a := fold_left f s init` as a read-only
//!   loop accumulating in a scalar local.

use crate::helpers::{
    access_size, binder_local, elem_scalar_kind, heaplet_and_ptr, kind_of, loop_body_goal,
    loop_counter_local,
    rebind_pointer, rebind_scalar,
};
use rupicola_core::derive::DerivationNode;
use rupicola_core::invariant::{LoopInvariant, LoopInvariantKind};
use rupicola_core::{
    Applied,
    AppliedExpr,
    CompileError,
    Compiler,
    Dispatch,
    ExprLemma,
    HeadKey,
    Hyp,
    SideCond,
    StmtGoal,
    StmtLemma,
};
use rupicola_bedrock::{BExpr, BinOp, Cmd};
use rupicola_lang::{ElemKind, Expr, Model};
use rupicola_sep::ScalarKind;

/// Builds `ptr + idx * width` (eliding the multiplication for bytes).
fn elem_addr(ptr: &str, idx: BExpr, elem: ElemKind) -> BExpr {
    let offset = match elem {
        ElemKind::Byte => idx,
        ElemKind::Word => BExpr::op(BinOp::Mul, idx, BExpr::lit(8)),
    };
    BExpr::op(BinOp::Add, BExpr::var(ptr), offset)
}

/// Resolves the scalar kind of a loop-body term where the binders have
/// known kinds.
fn kind_with(
    model: &Model,
    goal: &StmtGoal,
    binders: &[(&str, ScalarKind)],
    term: &Expr,
) -> Option<ScalarKind> {
    if let Expr::TableGet { table, .. } = term {
        return model.table(table).map(|t| elem_scalar_kind(t.elem));
    }
    let lookup = |n: &str| {
        binders
            .iter()
            .find(|(b, _)| *b == n)
            .map(|(_, k)| *k)
            .or_else(|| {
                goal.locals
                    .find_scalar(&Expr::Var(n.to_string()))
                    .map(|(_, k)| k)
            })
    };
    rupicola_sep::scalar_kind(term, &lookup)
}

/// `EXPR (ListArray.get a i)` — a load at `p + i·width`, guarded by the
/// bounds side condition `i < length a`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprArrayGet;

impl ExprLemma for ExprArrayGet {
    fn name(&self) -> &'static str {
        "expr_array_get"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::ArrayGet])
    }

    fn try_apply(
        &self,
        term: &Expr,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<AppliedExpr, CompileError>> {
        let Expr::ArrayGet { elem, arr, idx } = term else { return None };
        let (id, ptr) = heaplet_and_ptr(goal, arr)?;
        Some(self.apply(goal, cx, *elem, id, &ptr, idx, term))
    }
}

impl ExprArrayGet {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        elem: ElemKind,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        idx: &Expr,
        term: &Expr,
    ) -> Result<AppliedExpr, CompileError> {
        let len = goal
            .heap
            .get(id)
            .and_then(|h| h.len.clone())
            .ok_or_else(|| CompileError::Internal("array heaplet without length".into()))?;
        let mut node = DerivationNode::leaf(self.name(), cx.focus_term(term));
        let sc = cx.solve(self.name(), SideCond::Lt(idx.clone(), len), &goal.hyps)?;
        node.side_conds.push(sc);
        let (idx_e, child) = cx.compile_expr(idx, goal)?;
        node.children.push(child);
        Ok(AppliedExpr {
            expr: BExpr::load(access_size(elem), elem_addr(ptr, idx_e, elem)),
            node,
        })
    }
}

/// `let/n s := ListArray.put s i v in k` — an in-place store.
///
/// Mutation is intensional: the lemma only fires when the binder rebinds
/// the array it modifies (`arr = Var name`); other shapes fall through and
/// surface a residual goal suggesting an explicit `copy`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileArrayPut;

impl StmtLemma for CompileArrayPut {
    fn name(&self) -> &'static str {
        "compile_array_put"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::ArrayPut { elem, arr, idx, val } = value.as_ref() else { return None };
        if arr.as_ref() != &Expr::Var(name.clone()) {
            return None;
        }
        let (id, ptr) = heaplet_and_ptr(goal, arr)?;
        Some(self.apply(goal, cx, name, *elem, id, &ptr, idx, val, value, body))
    }
}

impl CompileArrayPut {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        elem: ElemKind,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        idx: &Expr,
        val: &Expr,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let len = goal
            .heap
            .get(id)
            .and_then(|h| h.len.clone())
            .ok_or_else(|| CompileError::Internal("array heaplet without length".into()))?;
        let mut node =
            DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let sc = cx.solve(self.name(), SideCond::Lt(idx.clone(), len), &goal.hyps)?;
        node.side_conds.push(sc);
        let (idx_e, c1) = cx.compile_expr(idx, goal)?;
        let (val_e, c2) = cx.compile_expr(val, goal)?;
        node.children.push(c1);
        node.children.push(c2);
        let k_goal = rebind_pointer(cx, goal, &name.to_string(), id, elem, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);
        Ok(Applied {
            cmd: Cmd::seq([
                Cmd::store(access_size(elem), elem_addr(ptr, idx_e, elem), val_e),
                k_cmd,
            ]),
            node,
        })
    }
}

/// `let/n s := ListArray.map (fun x => f) s in k` — the in-place map-to-loop
/// lemma of §3.2 ("this sort of translation is a common pattern, so
/// Rupicola's standard library has built-in support for it").
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileArrayMap;

impl StmtLemma for CompileArrayMap {
    fn name(&self) -> &'static str {
        "compile_array_map"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::ArrayMap { elem, x, f, arr } = value.as_ref() else { return None };
        if arr.as_ref() != &Expr::Var(name.clone()) {
            return None;
        }
        let (id, ptr) = heaplet_and_ptr(goal, arr)?;
        // The body must be a scalar of the element kind.
        let fk = kind_with(cx.model, goal, &[(x, elem_scalar_kind(*elem))], f)?;
        if fk != elem_scalar_kind(*elem) {
            return None;
        }
        Some(self.apply(goal, cx, name, *elem, x, f, id, &ptr, value, body))
    }
}

impl CompileArrayMap {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        elem: ElemKind,
        x: &str,
        f: &Expr,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let len_term = goal
            .heap
            .get(id)
            .and_then(|h| h.len.clone())
            .ok_or_else(|| CompileError::Internal("array heaplet without length".into()))?;
        let mut node =
            DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let (len_e, c_len) = cx.compile_expr(&len_term, goal)?;
        node.children.push(c_len);

        let i_var = cx.fresh_var("_i");
        let x_var = binder_local(cx, goal, &x.to_string());
        let body_goal = loop_body_goal(
            cx,
            goal,
            &[
                (i_var.clone(), i_var.clone(), ScalarKind::Word),
                (x.to_string(), x_var.clone(), elem_scalar_kind(elem)),
            ],
            vec![Hyp::LtU(Expr::Var(i_var.clone()), len_term.clone())],
        );
        let (f_e, c_f) = cx.compile_expr(f, &body_goal)?;
        node.children.push(c_f);

        node.invariant = Some(LoopInvariant {
            index_local: i_var.clone(),
            bindings: goal.binding_defs(),
            kind: LoopInvariantKind::ArrayMapInPlace {
                ptr_local: ptr.to_string(),
                elem,
                x: x.to_string(),
                f: f.clone(),
                arr: Expr::Var(name.to_string()),
            },
        });

        let k_goal = rebind_pointer(cx, goal, &name.to_string(), id, elem, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);

        let addr = elem_addr(ptr, BExpr::var(&i_var), elem);
        let loop_body = Cmd::seq([
            Cmd::set(x_var, BExpr::load(access_size(elem), addr.clone())),
            Cmd::store(access_size(elem), addr, f_e),
            Cmd::set(&i_var, BExpr::op(BinOp::Add, BExpr::var(&i_var), BExpr::lit(1))),
        ]);
        let cmd = Cmd::seq([
            Cmd::set(&i_var, BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var(&i_var), len_e),
                loop_body,
            ),
            k_cmd,
        ]);
        Ok(Applied { cmd, node })
    }
}

/// `let/n a := List.fold_left (fun acc x => f) s init in k` — a read-only
/// loop accumulating in the scalar local named by the binder.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileArrayFold;

impl StmtLemma for CompileArrayFold {
    fn name(&self) -> &'static str {
        "compile_array_fold"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::ArrayFold { elem, acc, x, f, init, arr } = value.as_ref() else {
            return None;
        };
        let (id, ptr) = heaplet_and_ptr(goal, arr)?;
        let acc_kind = kind_of(cx.model, goal, init)?;
        let fk = kind_with(
            cx.model,
            goal,
            &[(acc, acc_kind), (x, elem_scalar_kind(*elem))],
            f,
        )?;
        if fk != acc_kind {
            return None;
        }
        Some(self.apply(
            goal, cx, name, *elem, acc, x, f, init, acc_kind, id, &ptr, value, body,
        ))
    }
}

impl CompileArrayFold {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        elem: ElemKind,
        acc: &str,
        x: &str,
        f: &Expr,
        init: &Expr,
        acc_kind: ScalarKind,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let len_term = goal
            .heap
            .get(id)
            .and_then(|h| h.len.clone())
            .ok_or_else(|| CompileError::Internal("array heaplet without length".into()))?;
        let mut node =
            DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let (init_e, c_init) = cx.compile_expr(init, goal)?;
        let (len_e, c_len) = cx.compile_expr(&len_term, goal)?;
        node.children.push(c_init);
        node.children.push(c_len);

        let i_var = cx.fresh_var("_i");
        let x_var = binder_local(cx, goal, &x.to_string());
        // The accumulator lives in the local that will hold the result.
        let body_goal = {
            let mut g = loop_body_goal(
                cx,
                goal,
                &[
                    (i_var.clone(), i_var.clone(), ScalarKind::Word),
                    (x.to_string(), x_var.clone(), elem_scalar_kind(elem)),
                    (acc.to_string(), name.to_string(), acc_kind),
                ],
                vec![Hyp::LtU(Expr::Var(i_var.clone()), len_term.clone())],
            );
            g.prog = f.clone();
            g
        };
        let (f_e, c_f) = cx.compile_expr(f, &body_goal)?;
        node.children.push(c_f);

        node.invariant = Some(LoopInvariant {
            index_local: i_var.clone(),
            bindings: goal.binding_defs(),
            kind: LoopInvariantKind::ArrayFoldScalar {
                acc_local: name.to_string(),
                elem,
                acc: acc.to_string(),
                x: x.to_string(),
                f: f.clone(),
                init: init.clone(),
                arr: goal
                    .heap
                    .get(id)
                    .map(|h| h.content.clone())
                    .unwrap_or_else(|| Expr::Var(name.to_string())),
            },
        });

        let k_goal = rebind_scalar(cx, goal, &name.to_string(), acc_kind, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);

        let addr = elem_addr(ptr, BExpr::var(&i_var), elem);
        let cmd = Cmd::seq([
            Cmd::set(name.to_string(), init_e),
            Cmd::set(&i_var, BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var(&i_var), len_e),
                Cmd::seq([
                    Cmd::set(x_var, BExpr::load(access_size(elem), addr)),
                    Cmd::set(name.to_string(), f_e),
                    Cmd::set(&i_var, BExpr::op(BinOp::Add, BExpr::var(&i_var), BExpr::lit(1))),
                ]),
            ),
            k_cmd,
        ]);
        Ok(Applied { cmd, node })
    }
}

/// `let/n a := fold_range from to (fun i a => ListArray.put a idx v) a in k`
/// — a ranged loop whose accumulator is the *array itself*, mutated in
/// place at a computed index each iteration. This is the scatter/combine
/// shape (`dst[i] = f(src[i], …)`) that `ListArray.map` cannot express
/// because its body only sees the current element.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileRangeFoldArrayPut;

impl StmtLemma for CompileRangeFoldArrayPut {
    fn name(&self) -> &'static str {
        "compile_range_fold_array_put"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::Heads(&[HeadKey::Let])
    }

    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::RangeFold { i, acc, f, init, from, to } = value.as_ref() else {
            return None;
        };
        // The accumulator is the array being rebound: init must be the
        // binder's own name (in-place discipline) and the body one `put`
        // on the accumulator.
        if init.as_ref() != &Expr::Var(name.clone()) {
            return None;
        }
        let Expr::ArrayPut { elem, arr, idx, val } = f.as_ref() else { return None };
        if arr.as_ref() != &Expr::Var(acc.clone()) {
            return None;
        }
        let (id, ptr) = heaplet_and_ptr(goal, init)?;
        Some(self.apply(goal, cx, name, i, acc, *elem, id, &ptr, idx, val, from, to, value, body))
    }
}

impl CompileRangeFoldArrayPut {
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
        name: &str,
        i: &str,
        acc: &str,
        elem: ElemKind,
        id: rupicola_sep::HeapletId,
        ptr: &str,
        idx: &Expr,
        val: &Expr,
        from: &Expr,
        to: &Expr,
        value: &Expr,
        body: &Expr,
    ) -> Result<Applied, CompileError> {
        let mut node = DerivationNode::leaf(self.name(), cx.focus_let(name, value));
        let (from_e, c0) = cx.compile_expr(from, goal)?;
        let (to_e, c1) = cx.compile_expr(to, goal)?;
        node.children.push(c0);
        node.children.push(c1);

        let i_var = loop_counter_local(cx, goal, &i.to_string());
        // Body context: ghost-rename the binders, then re-point the
        // heaplet's content at the accumulator binder and carry the
        // length-preservation equation.
        let mut body_goal = goal.clone();
        for b in [i, acc] {
            if crate::helpers::state_mentions(cx, &body_goal, b) {
                let ghost = cx.fresh_ghost(b);
                body_goal.shadow(b, &ghost);
            }
        }
        let old_len = body_goal.heap.get(id).and_then(|h| h.len.clone());
        let acc_len = Expr::ArrayLen { elem, arr: Expr::Var(acc.to_string()).boxed() };
        if let Some(h) = body_goal.heap.get_mut(id) {
            h.content = Expr::Var(acc.to_string());
            h.len = Some(acc_len.clone());
        }
        if let Some(old) = old_len {
            if old != acc_len {
                body_goal.push_hyp(Hyp::EqWord(acc_len.clone(), old));
            }
        }
        body_goal.locals.set(
            i_var.clone(),
            rupicola_sep::SymValue::Scalar(ScalarKind::Word, Expr::Var(i.to_string())),
        );
        body_goal.push_hyp(Hyp::LeU(from.clone(), Expr::Var(i.to_string())));
        body_goal.push_hyp(Hyp::LtU(Expr::Var(i.to_string()), to.clone()));

        let sc = cx.solve(
            self.name(),
            SideCond::Lt(idx.clone(), acc_len),
            &body_goal.hyps,
        )?;
        node.side_conds.push(sc);
        let (idx_e, c2) = cx.compile_expr(idx, &body_goal)?;
        let (val_e, c3) = cx.compile_expr(val, &body_goal)?;
        node.children.push(c2);
        node.children.push(c3);

        node.invariant = Some(LoopInvariant {
            index_local: i_var.clone(),
            bindings: goal.binding_defs(),
            kind: LoopInvariantKind::RangeFoldArrayPut {
                ptr_local: ptr.to_string(),
                elem,
                i: i.to_string(),
                acc: acc.to_string(),
                f: Expr::ArrayPut {
                    elem,
                    arr: Expr::Var(acc.to_string()).boxed(),
                    idx: idx.clone().boxed(),
                    val: val.clone().boxed(),
                },
                init: goal
                    .heap
                    .get(id)
                    .map(|h| h.content.clone())
                    .unwrap_or_else(|| Expr::Var(name.to_string())),
                from: from.clone(),
            },
        });

        let k_goal = rebind_pointer(cx, goal, &name.to_string(), id, elem, value, body);
        let (k_cmd, k_node) = cx.compile_stmt(&k_goal)?;
        node.children.push(k_node);

        let cmd = Cmd::seq([
            Cmd::set(&i_var, from_e),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var(&i_var), to_e),
                Cmd::seq([
                    Cmd::store(access_size(elem), elem_addr(ptr, idx_e, elem), val_e),
                    Cmd::set(&i_var, BExpr::op(BinOp::Add, BExpr::var(&i_var), BExpr::lit(1))),
                ]),
            ),
            k_cmd,
        ]);
        Ok(Applied { cmd, node })
    }
}

#[cfg(test)]
mod tests {
    use crate::standard_dbs;
    use rupicola_core::check::check;
    use rupicola_core::compile;
    use rupicola_core::fnspec::{ArgSpec, FnSpec, RetSpec};
    use rupicola_lang::dsl::*;
    use rupicola_lang::{ElemKind, Model};
    use rupicola_sep::ScalarKind;

    fn byte_array_spec(name: &str, rets: Vec<RetSpec>) -> FnSpec {
        FnSpec::new(
            name,
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            rets,
        )
    }

    #[test]
    fn upstr_map_compiles_and_checks() {
        // The paper's §3.2 example: toupper' b = if (b - 'a') < 26 then
        // b & 0x5f else b, mapped in place.
        let toupper = ite(
            byte_ltu(byte_sub(var("b"), byte_lit(b'a')), byte_lit(26)),
            byte_and(var("b"), byte_lit(0x5f)),
            var("b"),
        );
        // As a branchless byte expression (conditional expressions inside
        // map bodies compile through the mask trick below).
        let mask = byte_and(
            var("b"),
            byte_or(
                byte_lit(0xdf),
                // ... keep the simple arithmetic version instead:
                byte_lit(0),
            ),
        );
        let _ = (toupper, mask);
        let model = Model::new(
            "upper_and",
            ["s"],
            let_n(
                "s",
                array_map_b("b", byte_and(var("b"), byte_lit(0xdf)), var("s")),
                var("s"),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(
            &model,
            &byte_array_spec("upper_and", vec![RetSpec::InPlace { param: "s".into() }]),
            &dbs,
        )
        .unwrap();
        let report = check(&out, &dbs).unwrap();
        assert!(report.invariant_checks > 0, "invariants were exercised");
        // One while loop over the bytes.
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("while"), "{c}");
    }

    #[test]
    fn double_map_composes() {
        // let s := map f s in let s := map g s in s
        let model = Model::new(
            "mask2",
            ["s"],
            let_n(
                "s",
                array_map_b("b", byte_or(var("b"), byte_lit(0x01)), var("s")),
                let_n(
                    "s",
                    array_map_b("b", byte_xor(var("b"), byte_lit(0xff)), var("s")),
                    var("s"),
                ),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(
            &model,
            &byte_array_spec("mask2", vec![RetSpec::InPlace { param: "s".into() }]),
            &dbs,
        )
        .unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn fold_accumulates_scalar() {
        // let h := fold (fun acc b => acc*31 + b) s 7 in h
        let model = Model::new(
            "hash31",
            ["s"],
            let_n(
                "h",
                array_fold_b(
                    "acc",
                    "b",
                    word_add(word_mul(var("acc"), word_lit(31)), word_of_byte(var("b"))),
                    word_lit(7),
                    var("s"),
                ),
                var("h"),
            ),
        );
        let dbs = standard_dbs();
        let out = compile(
            &model,
            &byte_array_spec(
                "hash31",
                vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
            ),
            &dbs,
        )
        .unwrap();
        let report = check(&out, &dbs).unwrap();
        assert!(report.invariant_checks > 0);
    }

    #[test]
    fn put_mutates_in_place() {
        // let s := put s 0 42 in s  (requires a nonempty array)
        let model = Model::new(
            "set0",
            ["s"],
            let_n(
                "s",
                array_put_b(var("s"), word_lit(0), byte_lit(42)),
                var("s"),
            ),
        );
        let dbs = standard_dbs();
        let spec = byte_array_spec("set0", vec![RetSpec::InPlace { param: "s".into() }])
            .with_hint(rupicola_core::Hyp::LtU(word_lit(0), array_len_b(var("s"))));
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn put_without_bound_fails_side_condition() {
        let model = Model::new(
            "set9",
            ["s"],
            let_n(
                "s",
                array_put_b(var("s"), word_lit(9), byte_lit(1)),
                var("s"),
            ),
        );
        let dbs = standard_dbs();
        let err = compile(
            &model,
            &byte_array_spec("set9", vec![RetSpec::InPlace { param: "s".into() }]),
            &dbs,
        )
        .unwrap_err();
        assert!(matches!(err, rupicola_core::CompileError::SideCondition { .. }));
    }

    #[test]
    fn map_then_get_uses_length_equation() {
        // let s := map f s in let b := s[0] in (word_of_byte b, s) — the
        // get's bound needs length (map f s) = length s, and the mutated
        // array must be declared an output (the footprint rule rejects
        // mutating memory the spec claims unchanged).
        let model = Model::new(
            "first_after",
            ["s"],
            let_n(
                "s",
                array_map_b("b", byte_add(var("b"), byte_lit(1)), var("s")),
                let_n(
                    "b",
                    array_get_b(var("s"), word_lit(0)),
                    pair(word_of_byte(var("b")), var("s")),
                ),
            ),
        );
        let dbs = standard_dbs();
        let spec = byte_array_spec(
            "first_after",
            vec![
                RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word },
                RetSpec::InPlace { param: "s".into() },
            ],
        )
        .with_hint(rupicola_core::Hyp::LtU(word_lit(0), array_len_b(var("s"))));
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
    }

    #[test]
    fn word_arrays_use_eight_byte_access() {
        let model = Model::new(
            "winc",
            ["s"],
            let_n(
                "s",
                array_map_w("w", word_add(var("w"), word_lit(1)), var("s")),
                var("s"),
            ),
        );
        let spec = FnSpec::new(
            "winc",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Word },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Word },
            ],
            vec![RetSpec::InPlace { param: "s".into() }],
        );
        let dbs = standard_dbs();
        let out = compile(&model, &spec, &dbs).unwrap();
        check(&out, &dbs).unwrap();
        let c = rupicola_bedrock::cprint::function_to_c(&out.function);
        assert!(c.contains("uint64_t"), "{c}");
    }
}
