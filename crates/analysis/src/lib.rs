//! Derivation-blind static analysis of generated Bedrock2 code.
//!
//! The compiler's trust story (paper §3, §4.3) is: untrusted lemmas
//! propose, a small trusted checker re-validates the derivation witness.
//! This crate adds an *independent* second line of defense in the style of
//! translation validation: a CFG + worklist dataflow framework over
//! [`rupicola_bedrock::cfg`] and lint passes that inspect the generated
//! code directly, never reading the derivation —
//!
//! - [`assign`]: definite assignment (no use-before-def, returns assigned);
//! - [`live`]: liveness and dead-store detection;
//! - [`interval`]: interval analysis with symbolic array-length bounds,
//!   cross-checking every memory access against the separation-logic
//!   footprint exported from the certificate, plus inline-table bounds
//!   and alignment;
//! - [`loopcheck`]: loop progress (a monotone counter against a
//!   loop-invariant bound);
//! - [`certcheck`]: certificate internal consistency (witness counters,
//!   ABI, table bytes, cited lemmas);
//! - [`lemma_lint`]: hint-database hygiene (duplicate, shadowed,
//!   unreachable lemmas; redundant solvers).
//!
//! Nothing here is trusted: a finding is a report, and the analyses are
//! deliberately conservative (they may warn about code the checker proves
//! fine, never the reverse direction — clean code that faults). The
//! soundness direction is exercised by a property test in the workspace
//! root: programs that pass the lints clean do not fault in the Bedrock2
//! interpreter on fuzzed inputs.

#![forbid(unsafe_code)]

pub mod assign;
pub mod certcheck;
pub mod ct;
pub mod dataflow;
pub mod facts;
pub mod interval;
pub mod lemma_lint;
pub mod live;
pub mod loopcheck;

use rupicola_core::fnspec::FnSpec;
use rupicola_core::lemma::HintDbs;
use rupicola_core::{CompileError, CompiledFunction, EngineLimits};
use rupicola_lang::Model;
use std::fmt;

pub use ct::SecrecyPolicy;
pub use facts::{dead_store_sites, expr_range, finite_upper_bound, removal_safe};
pub use interval::{AbsVal, Bound, MemEnv, Range, RegionInfo, SizeInfo};
pub use lemma_lint::ProbeSuite;

/// Which lint produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Definite assignment.
    Assign,
    /// Liveness / dead stores.
    Liveness,
    /// Footprint memory safety.
    MemSafety,
    /// Inline-table bounds.
    TableBounds,
    /// Loop progress.
    LoopProgress,
    /// Certificate cross-checking.
    CertCheck,
    /// Lemma-library hygiene.
    LemmaLint,
    /// Secret-independence (constant-time).
    Ct,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pass::Assign => "assign",
            Pass::Liveness => "liveness",
            Pass::MemSafety => "mem",
            Pass::TableBounds => "table",
            Pass::LoopProgress => "loop",
            Pass::CertCheck => "cert",
            Pass::LemmaLint => "lemma",
            Pass::Ct => "ct",
        };
        write!(f, "{s}")
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not a safety violation.
    Warning,
    /// A property the certified pipeline promises is violated (or cannot
    /// be independently re-proven).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What a finding is about.
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    /// A local may be read before any assignment.
    UseBeforeDef {
        /// The local.
        var: String,
    },
    /// A returned local is not assigned on every path.
    MissingReturn {
        /// The local.
        var: String,
    },
    /// An assignment whose value is never read (and whose removal is
    /// observationally safe).
    DeadStore {
        /// The local.
        var: String,
    },
    /// A memory access provably outside its region.
    OutOfFootprint,
    /// A memory access that cannot be proven inside the footprint.
    UnprovenAccess,
    /// A multi-byte access at an offset not provably aligned.
    Misaligned,
    /// An access through a pointer whose stack allocation scope ended.
    StackScopeEscape,
    /// An inline-table read not provably inside the table.
    TableOutOfBounds {
        /// The table.
        table: String,
    },
    /// An inline-table read from an undeclared table.
    UnknownTable {
        /// The table.
        table: String,
    },
    /// A loop with no evident progress argument.
    LoopNoProgress,
    /// A certificate whose parts disagree with each other.
    CertMismatch,
    /// A derivation citing a lemma absent from the databases.
    UnknownLemma {
        /// The lemma.
        lemma: String,
    },
    /// Two registered lemmas (or solvers) share a name.
    DuplicateLemma {
        /// The name.
        lemma: String,
    },
    /// A lemma that always loses the ordered race to an earlier one.
    ShadowedLemma {
        /// The lemma.
        lemma: String,
    },
    /// A lemma unreachable for the probed goal corpus.
    UnreachableLemma {
        /// The lemma.
        lemma: String,
    },
    /// A solver whose corpus discharges are all covered by earlier ones.
    RedundantSolver {
        /// The solver.
        solver: String,
    },
    /// A branch or loop condition that may depend on a secret.
    SecretBranch,
    /// A memory address (load, store, or table index) that may depend on
    /// a secret.
    SecretAddress,
    /// A variable-latency operation (`div`/`mod`) with a possibly-secret
    /// operand.
    SecretVariableLatency,
}

impl FindingKind {
    /// The severity policy: violations of promised properties are errors,
    /// hygiene and style are warnings.
    pub fn severity(&self) -> Severity {
        match self {
            FindingKind::UseBeforeDef { .. }
            | FindingKind::MissingReturn { .. }
            | FindingKind::OutOfFootprint
            | FindingKind::UnprovenAccess
            | FindingKind::StackScopeEscape
            | FindingKind::TableOutOfBounds { .. }
            | FindingKind::UnknownTable { .. }
            | FindingKind::LoopNoProgress
            | FindingKind::CertMismatch
            | FindingKind::UnknownLemma { .. }
            | FindingKind::DuplicateLemma { .. }
            | FindingKind::SecretBranch
            | FindingKind::SecretAddress
            | FindingKind::SecretVariableLatency => Severity::Error,
            FindingKind::DeadStore { .. }
            | FindingKind::Misaligned
            | FindingKind::ShadowedLemma { .. }
            | FindingKind::UnreachableLemma { .. }
            | FindingKind::RedundantSolver { .. } => Severity::Warning,
        }
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The pass that produced it.
    pub pass: Pass,
    /// What it is about.
    pub kind: FindingKind,
    /// The function (or `"(library)"` for lemma lints).
    pub function: String,
    /// For dead stores: the assignment-site ordinal, compatible with
    /// [`rupicola_bedrock::cfg::remove_set_sites`].
    pub site: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The finding's severity (derived from its kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity(),
            self.pass,
            self.function,
            self.message
        )
    }
}

/// The outcome of analyzing one compiled function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in pass order.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity() == Severity::Error)
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity() == Severity::Error)
    }

    /// The warning findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity() == Severity::Warning)
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "clean");
        }
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

/// Analyzes a compilation certificate: all code passes plus certificate
/// cross-checking. Pass `dbs` to also verify cited lemmas exist.
pub fn analyze_with_dbs(cf: &CompiledFunction, dbs: Option<&HintDbs>) -> AnalysisReport {
    let mut findings = certcheck::run(cf, dbs);
    let env = match cf.initial_goal() {
        Ok(goal) => MemEnv::from_goal(&goal),
        // Already reported as a certificate mismatch; code passes still
        // run, with an empty footprint.
        Err(_) => MemEnv::default(),
    };
    findings.extend(run_code_passes(&cf.function, &env));
    AnalysisReport { findings }
}

/// [`analyze_with_dbs`] without the database-dependent checks.
pub fn analyze(cf: &CompiledFunction) -> AnalysisReport {
    analyze_with_dbs(cf, None)
}

/// Runs the code-only passes over one function under an explicit memory
/// environment (used directly by tests on hand-written programs).
pub fn run_code_passes(f: &rupicola_bedrock::BFunction, env: &MemEnv) -> Vec<Finding> {
    let mut findings = assign::run(f);
    findings.extend(live::run(f));
    findings.extend(interval::run(f, env));
    findings.extend(loopcheck::run(f));
    findings
}

/// Options for the analyzing compile entry point.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Engine resource budgets.
    pub limits: EngineLimits,
    /// Run the static-analysis layer after certification and fail on
    /// analysis errors.
    pub analyze: bool,
    /// When set, also run the secret-independence analysis under this
    /// policy and fail on constant-time findings (which are always
    /// errors). Runs regardless of `analyze`.
    pub ct_policy: Option<SecrecyPolicy>,
}

/// Why an analyzing compilation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The relational compilation itself failed.
    Compile(CompileError),
    /// Compilation succeeded, but the static-analysis layer found errors.
    /// Carries the full report (warnings included) for context.
    Analysis(AnalysisReport),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "{e}"),
            PipelineError::Analysis(report) => {
                writeln!(f, "static analysis rejected the generated code:")?;
                write!(f, "{report}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

/// Compiles a model and, when [`CompileOptions::analyze`] is set, runs the
/// static-analysis layer over the result, failing on analysis errors —
/// the opt-in hardened pipeline.
///
/// # Errors
///
/// [`PipelineError::Compile`] if relational compilation fails;
/// [`PipelineError::Analysis`] if the generated code or certificate does
/// not independently re-verify.
pub fn compile(
    model: &Model,
    spec: &FnSpec,
    dbs: &HintDbs,
    opts: &CompileOptions,
) -> Result<CompiledFunction, PipelineError> {
    let cf = rupicola_core::compile_with_limits(model, spec, dbs, opts.limits)?;
    let mut report =
        if opts.analyze { analyze_with_dbs(&cf, Some(dbs)) } else { AnalysisReport::default() };
    if let Some(policy) = &opts.ct_policy {
        report.findings.extend(ct::run(&cf, policy));
    }
    if report.has_errors() {
        return Err(PipelineError::Analysis(report));
    }
    Ok(cf)
}
