//! Certificate cross-checking.
//!
//! A [`CompiledFunction`] bundles code, derivation witness, model, and
//! spec. The trusted checker validates the derivation against the code;
//! this pass validates the *bundle's internal consistency* without
//! replaying the derivation, so a corrupted or forged certificate is
//! caught even by a consumer that never runs the checker:
//!
//! - the witness summary counters must match a recount of the tree (a
//!   truncated or pruned witness carries stale counters);
//! - the function's ABI (argument and return lists) must match the spec
//!   it claims to implement;
//! - the spec must still produce an initial goal against the bundled model
//!   (a re-pointed return slot or renamed parameter fails here);
//! - every inline table must be byte-identical to the layout of the
//!   model-level table it was derived from;
//! - optionally, every lemma cited by the derivation must exist in the
//!   hint databases the certificate will be re-validated against.

use crate::{Finding, FindingKind, Pass};
use rupicola_core::derive::Derivation;
use rupicola_core::lemma::HintDbs;
use rupicola_core::CompiledFunction;
use std::collections::BTreeSet;

fn finding(cf: &CompiledFunction, kind: FindingKind, message: String) -> Finding {
    Finding { pass: Pass::CertCheck, kind, function: cf.function.name.clone(), site: None, message }
}

/// Runs the pass. `dbs` enables the cited-lemma existence check.
pub fn run(cf: &CompiledFunction, dbs: Option<&HintDbs>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Witness integrity: recount the tree.
    let recount = Derivation::new(cf.derivation.root.clone());
    if recount.node_count != cf.derivation.node_count
        || recount.side_cond_count != cf.derivation.side_cond_count
    {
        findings.push(finding(
            cf,
            FindingKind::CertMismatch,
            format!(
                "derivation summary counters are stale: recorded {} nodes / {} side \
                 conditions, recounted {} / {}",
                cf.derivation.node_count,
                cf.derivation.side_cond_count,
                recount.node_count,
                recount.side_cond_count
            ),
        ));
    }

    // ABI: the function must expose exactly the spec's interface.
    if cf.function.args != cf.spec.arg_names() {
        findings.push(finding(
            cf,
            FindingKind::CertMismatch,
            format!(
                "function arguments {:?} do not match the spec's {:?}",
                cf.function.args,
                cf.spec.arg_names()
            ),
        ));
    }
    if cf.function.rets != cf.spec.ret_names() {
        findings.push(finding(
            cf,
            FindingKind::CertMismatch,
            format!(
                "function returns {:?} do not match the spec's scalar returns {:?}",
                cf.function.rets,
                cf.spec.ret_names()
            ),
        ));
    }

    // The spec must still be consistent with the bundled model.
    if let Err(e) = cf.initial_goal() {
        findings.push(finding(
            cf,
            FindingKind::CertMismatch,
            format!("spec and model no longer produce an initial goal: {e}"),
        ));
    }

    // Inline tables must be the model tables, byte for byte.
    for t in &cf.model.tables {
        match (t.data.to_layout_bytes(), cf.function.table(&t.name)) {
            (Some(expected), Some(actual)) => {
                if expected != actual.data {
                    findings.push(finding(
                        cf,
                        FindingKind::CertMismatch,
                        format!(
                            "inline table `{}` differs from the model table's layout bytes",
                            t.name
                        ),
                    ));
                }
            }
            (Some(_), None) => {
                findings.push(finding(
                    cf,
                    FindingKind::CertMismatch,
                    format!("model table `{}` is missing from the function", t.name),
                ));
            }
            (None, _) => {
                findings.push(finding(
                    cf,
                    FindingKind::CertMismatch,
                    format!("model table `{}` has no byte layout", t.name),
                ));
            }
        }
    }
    let model_tables: BTreeSet<&str> = cf.model.tables.iter().map(|t| t.name.as_str()).collect();
    for t in &cf.function.tables {
        if !model_tables.contains(t.name.as_str()) {
            findings.push(finding(
                cf,
                FindingKind::CertMismatch,
                format!("function carries table `{}` with no model counterpart", t.name),
            ));
        }
    }

    // Cited lemmas must exist where the certificate claims to be
    // re-checkable.
    if let Some(dbs) = dbs {
        let mut cited = BTreeSet::new();
        cf.derivation.root.walk(&mut |n| {
            cited.insert(n.lemma.clone());
        });
        for lemma in cited {
            if !dbs.knows_lemma(&lemma) {
                findings.push(finding(
                    cf,
                    FindingKind::UnknownLemma { lemma: lemma.to_string() },
                    format!("derivation cites lemma `{lemma}` not present in the hint databases"),
                ));
            }
        }
    }

    findings
}
