//! Definite assignment: every read of a local must be dominated by a write.
//!
//! Bedrock2 locals are untyped words with no implicit zero-initialization
//! (the interpreter traps on [`UndefinedVariable`]); this forward
//! must-analysis proves the trap unreachable. The state is the set of
//! locals assigned on *every* path (intersection at joins), with a
//! distinguished unreached element so the intersection does not degrade
//! along not-yet-visited back edges.
//!
//! [`UndefinedVariable`]: rupicola_bedrock::interp::ExecError::UndefinedVariable

use crate::dataflow::{forward_solve, ForwardAnalysis, Lattice};
use crate::{Finding, FindingKind, Pass};
use rupicola_bedrock::cfg::{Cfg, Stmt};
use rupicola_bedrock::{BExpr, BFunction};
use std::collections::BTreeSet;

/// `None` = unreached; `Some(s)` = locals definitely assigned.
#[derive(Clone, Debug, PartialEq)]
struct Assigned(Option<BTreeSet<String>>);

impl Lattice for Assigned {
    fn join_with(&mut self, other: &Self) -> bool {
        match (&mut self.0, &other.0) {
            (_, None) => false,
            (s @ None, Some(_)) => {
                *s = other.0.clone();
                true
            }
            (Some(a), Some(b)) => {
                let before = a.len();
                a.retain(|v| b.contains(v));
                a.len() != before
            }
        }
    }
}

struct DefiniteAssignment {
    entry: BTreeSet<String>,
}

impl ForwardAnalysis for DefiniteAssignment {
    type State = Assigned;

    fn boundary(&self) -> Assigned {
        Assigned(Some(self.entry.clone()))
    }

    fn bottom(&self) -> Assigned {
        Assigned(None)
    }

    fn transfer(&self, stmt: &Stmt, state: &mut Assigned) {
        let Some(set) = &mut state.0 else { return };
        match stmt {
            Stmt::Set { var, .. } | Stmt::AllocEnter { var, .. } => {
                set.insert(var.clone());
            }
            Stmt::Unset(v) | Stmt::AllocExit { var: v, .. } => {
                set.remove(v);
            }
            Stmt::Call { rets, .. } | Stmt::Interact { rets, .. } => {
                set.extend(rets.iter().cloned());
            }
            Stmt::Store(..) => {}
        }
    }
}

fn check_expr(
    expr: &BExpr,
    assigned: &Assigned,
    function: &str,
    where_: &str,
    findings: &mut Vec<Finding>,
) {
    let Some(set) = &assigned.0 else { return };
    for v in expr.vars() {
        if !set.contains(&v) {
            findings.push(Finding {
                pass: Pass::Assign,
                kind: FindingKind::UseBeforeDef { var: v.clone() },
                function: function.to_string(),
                site: None,
                message: format!("local `{v}` may be read before assignment in {where_}"),
            });
        }
    }
}

/// Runs the pass over one function.
pub fn run(f: &BFunction) -> Vec<Finding> {
    let cfg = Cfg::build(&f.body);
    let analysis = DefiniteAssignment { entry: f.args.iter().cloned().collect() };
    let sol = forward_solve(&cfg, &analysis);
    let mut findings = Vec::new();

    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut state = sol.ins[b].clone();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Set { var, expr, .. } => {
                    check_expr(expr, &state, &f.name, &format!("`{var} = …`"), &mut findings);
                }
                Stmt::Store(_, addr, val) => {
                    check_expr(addr, &state, &f.name, "a store address", &mut findings);
                    check_expr(val, &state, &f.name, "a stored value", &mut findings);
                }
                Stmt::Call { args, .. } | Stmt::Interact { args, .. } => {
                    for a in args {
                        check_expr(a, &state, &f.name, "a call argument", &mut findings);
                    }
                }
                Stmt::Unset(_) | Stmt::AllocEnter { .. } | Stmt::AllocExit { .. } => {}
            }
            analysis.transfer(stmt, &mut state);
        }
        if let rupicola_bedrock::cfg::Terminator::Branch { cond, .. } = &block.term {
            check_expr(cond, &state, &f.name, "a branch condition", &mut findings);
        }
    }

    // Returned locals must be assigned on every path reaching the exit.
    // An unreached exit (e.g. `while (1)`) is the loop lint's report.
    if let Some(set) = &sol.outs[cfg.exit].0 {
        for r in &f.rets {
            if !set.contains(r) {
                findings.push(Finding {
                    pass: Pass::Assign,
                    kind: FindingKind::MissingReturn { var: r.clone() },
                    function: f.name.clone(),
                    site: None,
                    message: format!(
                        "returned local `{r}` is not assigned on every path to the exit"
                    ),
                });
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_bedrock::ast::{BinOp, Cmd};

    #[test]
    fn straightline_clean() {
        let f = BFunction::new(
            "f",
            ["a"],
            ["out"],
            Cmd::seq([
                Cmd::set("x", BExpr::op(BinOp::Add, BExpr::var("a"), BExpr::lit(1))),
                Cmd::set("out", BExpr::var("x")),
            ]),
        );
        assert!(run(&f).is_empty());
    }

    #[test]
    fn read_before_write_flagged() {
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            ["out"],
            Cmd::set("out", BExpr::var("x")),
        );
        let findings = run(&f);
        assert!(findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::UseBeforeDef { var } if var == "x")));
    }

    #[test]
    fn one_armed_assignment_flagged() {
        // x assigned only in the then-branch, read after the join.
        let f = BFunction::new(
            "f",
            ["c"],
            ["out"],
            Cmd::seq([
                Cmd::if_(BExpr::var("c"), Cmd::set("x", BExpr::lit(1)), Cmd::Skip),
                Cmd::set("out", BExpr::var("x")),
            ]),
        );
        let findings = run(&f);
        assert!(findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::UseBeforeDef { var } if var == "x")));
    }

    #[test]
    fn both_arms_assignment_clean() {
        let f = BFunction::new(
            "f",
            ["c"],
            ["out"],
            Cmd::seq([
                Cmd::if_(
                    BExpr::var("c"),
                    Cmd::set("x", BExpr::lit(1)),
                    Cmd::set("x", BExpr::lit(2)),
                ),
                Cmd::set("out", BExpr::var("x")),
            ]),
        );
        assert!(run(&f).is_empty());
    }

    #[test]
    fn missing_return_flagged() {
        let f = BFunction::new("f", Vec::<String>::new(), ["out"], Cmd::Skip);
        let findings = run(&f);
        assert!(findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::MissingReturn { var } if var == "out")));
    }

    #[test]
    fn loop_counter_defined_before_loop_clean() {
        let f = BFunction::new(
            "f",
            ["n"],
            ["i"],
            Cmd::seq([
                Cmd::set("i", BExpr::lit(0)),
                Cmd::while_(
                    BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                    Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                ),
            ]),
        );
        assert!(run(&f).is_empty());
    }
}
