//! Interval-based memory-access analysis with symbolic length bounds.
//!
//! This pass re-proves, from the generated code alone, the property the
//! derivation certifies: every `Load`/`Store` lands inside the
//! separation-logic footprint of the function's precondition, and every
//! inline-table read stays inside its table. It never consults the
//! derivation — it is the derivation-blind second line of defense.
//!
//! # The domain
//!
//! Abstract values are [`AbsVal`]: an unsigned interval ([`Range`]) or a
//! pointer into a footprint region with an interval byte offset. Array
//! extents are symbolic (the element count `L` is a runtime value), so
//! plain constant intervals cannot prove `s[i]` in bounds; upper bounds
//! are therefore three-valued ([`Bound`]):
//!
//! - `Fin(k)` — a constant;
//! - `Sym {region, scale, shift, delta}` — the value is at most
//!   `scale·⌊L ≫ shift⌋ + delta`, where `L` is the element count of
//!   `region`. The representation invariants `delta ≤ 0` and
//!   `scale ≤ elem_bytes·2^shift` make the bound itself at most the
//!   region's byte size, so the arithmetic never wraps in any execution
//!   satisfying the precondition;
//! - `Inf` — unbounded.
//!
//! A guard `i < len` refines `i`'s bound to `Sym{…, delta: -1}` on the
//! taken edge; the access `load1(s + i)` then has end offset
//! `Sym{…, delta: -1} + 1`, i.e. `delta + size ≤ 0` — in bounds for every
//! length. The same mechanism proves `s + 2·i + 1` in bounds under
//! `i < len ≫ 1` (scale/shift) and `s + i + 3` under `i < len − 3` with a
//! `4 ≤ len` hypothesis (delta).

use crate::dataflow::{forward_solve, ForwardAnalysis, Lattice};
use crate::{Finding, FindingKind, Pass};
use rupicola_bedrock::cfg::{Cfg, Stmt, Terminator};
use rupicola_bedrock::{AccessSize, BExpr, BFunction, BinOp, Cmd};
use rupicola_core::goal::{Hyp, HypRef, StmtGoal};
use rupicola_lang::{Expr, ExprRef, Value};
use rupicola_sep::{RegionSize, SymValue};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Upper bound of a [`Range`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// A constant bound.
    Fin(u64),
    /// `scale·⌊L ≫ shift⌋ + delta` where `L` is the element count of
    /// `region`. Invariants: `delta ≤ 0`, `scale ≤ elem_bytes·2^shift`.
    Sym {
        /// The region whose element count bounds the value.
        region: usize,
        /// Multiplier on the (shifted) count.
        scale: u64,
        /// Right shift applied to the count before scaling.
        shift: u32,
        /// Additive slack (non-positive).
        delta: i64,
    },
    /// No known bound.
    Inf,
}

/// An unsigned interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: Bound,
}

impl Range {
    /// The full range `[0, ∞]`.
    pub fn full() -> Range {
        Range { lo: 0, hi: Bound::Inf }
    }

    /// The singleton `[k, k]`.
    pub fn exact(k: u64) -> Range {
        Range { lo: k, hi: Bound::Fin(k) }
    }

    /// The constant interval `[lo, hi]`.
    pub fn of(lo: u64, hi: u64) -> Range {
        Range { lo, hi: Bound::Fin(hi) }
    }

    /// The constant, if the range is a singleton.
    pub fn as_exact(&self) -> Option<u64> {
        match self.hi {
            Bound::Fin(h) if h == self.lo => Some(h),
            _ => None,
        }
    }
}

/// An abstract value.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// Anything.
    Top,
    /// A number in the given range.
    Num(Range),
    /// A pointer `off` bytes past the base of a footprint region.
    Ptr {
        /// Index into the region table.
        region: usize,
        /// Byte offset range.
        off: Range,
    },
}

/// Extent of a footprint region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeInfo {
    /// Exactly this many bytes (cells, scratch, stack allocations).
    Fixed(u64),
    /// `elem_bytes · L` bytes for a runtime element count `L ≥ min_count`
    /// (arrays whose length is a precondition variable; `min_count` comes
    /// from spec hypotheses such as `4 ≤ len s`).
    Sym {
        /// Hypothesis-derived lower bound on the element count.
        min_count: u64,
    },
}

/// One region of the precondition footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionInfo {
    /// Reporting name (the heaplet's pointer name).
    pub name: String,
    /// Bytes per element (1 for byte arrays/scratch, 8 for word arrays).
    pub elem_bytes: u64,
    /// The extent.
    pub size: SizeInfo,
}

impl RegionInfo {
    /// A guaranteed lower bound on the region's byte size.
    fn min_bytes(&self) -> u64 {
        match self.size {
            SizeInfo::Fixed(n) => n,
            SizeInfo::Sym { min_count } => self.elem_bytes.saturating_mul(min_count),
        }
    }
}

/// The memory environment a function is analyzed under: the footprint
/// regions and the abstract values of the ABI locals at entry.
///
/// [`MemEnv::from_goal`] derives this from a compilation certificate's
/// initial goal; tests construct it by hand for seeded-negative programs.
#[derive(Debug, Clone, Default)]
pub struct MemEnv {
    /// Footprint regions, in heap order.
    pub regions: Vec<RegionInfo>,
    /// Entry-state bindings for function arguments.
    pub entry: Vec<(String, AbsVal)>,
    /// Pairs of regions whose element counts are provably equal, derived
    /// from `EqWord` spec hypotheses such as `len s = len t`. An index
    /// bounded by one region's count then proves accesses into the other —
    /// the paper's "incidental property" pattern (§3.4.2) at lint level.
    pub count_equal: Vec<(usize, usize)>,
}

fn lit_u64(e: &Expr) -> Option<u64> {
    match e {
        Expr::Lit(Value::Word(w)) => Some(*w),
        Expr::Lit(Value::Nat(n)) => Some(*n),
        Expr::Lit(Value::Byte(b)) => Some(u64::from(*b)),
        _ => None,
    }
}

/// Hypothesis-derived constant bounds on source terms, indexed by the
/// *interned id* of the constrained term.
///
/// Built once per goal from its hypothesis snapshot: every hypothesis
/// relating a term to a literal contributes a fact keyed by the term's
/// [`ExprRef`] id (interning the term is how structurally equal facts from
/// different hypotheses land on one key). Queries then cost one intern
/// probe plus a hash lookup instead of a scan over every hypothesis per
/// queried local — the analysis-side leg of the interned-representation
/// refactor (ids are process-local, so the index never outlives the run;
/// see `rupicola-lang::intern`).
struct FactIndex {
    bounds: std::collections::HashMap<u64, (u64, Option<u64>)>,
    /// Keeps the interned keys alive so ids stay stable for the index's
    /// lifetime (a dropped-and-reinterned term may get a fresh id).
    _keys: Vec<ExprRef>,
}

impl FactIndex {
    fn from_hyps(hyps: &[HypRef]) -> FactIndex {
        let mut bounds: std::collections::HashMap<u64, (u64, Option<u64>)> =
            std::collections::HashMap::new();
        let mut keys = Vec::new();
        // `lo` raises the lower bound, `hi` lowers the upper bound (the
        // same merge rules the pre-index scan applied hypothesis by
        // hypothesis).
        let mut add = |term: &Expr, keys: &mut Vec<ExprRef>, lo: Option<u64>, hi: Option<u64>| {
            let key = ExprRef::new(term.clone());
            let entry = bounds.entry(key.id()).or_insert((0, None));
            if let Some(k) = lo {
                entry.0 = entry.0.max(k);
            }
            if let Some(k) = hi {
                entry.1 = Some(entry.1.map_or(k, |h| h.min(k)));
            }
            keys.push(key);
        };
        for h in hyps {
            match &h.hyp {
                Hyp::LeU(a, b) => {
                    if let Some(k) = lit_u64(a) {
                        add(b, &mut keys, Some(k), None);
                    }
                    if let Some(k) = lit_u64(b) {
                        add(a, &mut keys, None, Some(k));
                    }
                }
                Hyp::LtU(a, b) => {
                    if let Some(k) = lit_u64(a) {
                        add(b, &mut keys, Some(k.saturating_add(1)), None);
                    }
                    if let Some(k) = lit_u64(b) {
                        add(a, &mut keys, None, Some(k.saturating_sub(1)));
                    }
                }
                Hyp::EqWord(a, b) => {
                    for (t, u) in [(a, b), (b, a)] {
                        if let Some(k) = lit_u64(u) {
                            add(t, &mut keys, Some(k), Some(k));
                        }
                    }
                }
            }
        }
        FactIndex { bounds, _keys: keys }
    }

    /// Constant bounds `(lo, hi)` on `term`, as recorded by the indexed
    /// hypotheses (the same merge rules the pre-index scan applied).
    fn range(&self, term: &Expr) -> (u64, Option<u64>) {
        let key = ExprRef::new(term.clone());
        self.bounds.get(&key.id()).copied().unwrap_or((0, None))
    }
}

impl MemEnv {
    /// Builds the environment from a certificate's initial compilation
    /// goal: the heap's [footprint](rupicola_sep::SymHeap::footprint)
    /// becomes the region table, pointer locals become region bases, and a
    /// local bound to a region's element-count term becomes a symbolic
    /// length with hypothesis-derived `min_count`.
    pub fn from_goal(goal: &StmtGoal) -> MemEnv {
        let facts = FactIndex::from_hyps(&goal.hyps);
        let fp = goal.heap.footprint();
        let mut regions = Vec::new();
        let mut counts: Vec<Option<Expr>> = Vec::new();
        let mut index_of = BTreeMap::new();
        for (i, r) in fp.iter().enumerate() {
            index_of.insert(r.id, i);
            match &r.size {
                RegionSize::Elems { elem, count } => {
                    let (min_count, _) = facts.range(count);
                    regions.push(RegionInfo {
                        name: r.ptr_name.clone(),
                        elem_bytes: elem.width(),
                        size: SizeInfo::Sym { min_count },
                    });
                    counts.push(Some(count.clone()));
                }
                RegionSize::Bytes(n) => {
                    regions.push(RegionInfo {
                        name: r.ptr_name.clone(),
                        elem_bytes: 1,
                        size: SizeInfo::Fixed(*n),
                    });
                    counts.push(None);
                }
            }
        }
        let mut entry = Vec::new();
        for (name, v) in goal.locals.iter() {
            match v {
                SymValue::Ptr(id) => {
                    if let Some(&region) = index_of.get(id) {
                        entry.push((
                            name.to_string(),
                            AbsVal::Ptr { region, off: Range::exact(0) },
                        ));
                    }
                }
                SymValue::Scalar(_, term) => {
                    if let Some(region) =
                        counts.iter().position(|c| c.as_ref() == Some(term))
                    {
                        // A length local: bounded above by the count itself.
                        let lo = match regions[region].size {
                            SizeInfo::Sym { min_count } => min_count,
                            SizeInfo::Fixed(_) => 0,
                        };
                        entry.push((
                            name.to_string(),
                            AbsVal::Num(Range {
                                lo,
                                hi: Bound::Sym { region, scale: 1, shift: 0, delta: 0 },
                            }),
                        ));
                    } else if let Some(k) = lit_u64(term) {
                        entry.push((name.to_string(), AbsVal::Num(Range::exact(k))));
                    } else {
                        let (lo, hi) = facts.range(term);
                        if lo > 0 || hi.is_some() {
                            let hi = hi.map_or(Bound::Inf, Bound::Fin);
                            entry.push((name.to_string(), AbsVal::Num(Range { lo, hi })));
                        }
                    }
                }
            }
        }
        let mut count_equal = Vec::new();
        for h in &goal.hyps {
            if let Hyp::EqWord(a, b) = &h.hyp {
                let find = |t: &Expr| counts.iter().position(|c| c.as_ref() == Some(t));
                if let (Some(i), Some(j)) = (find(a), find(b)) {
                    if i != j {
                        count_equal.push((i, j));
                    }
                }
            }
        }
        MemEnv { regions, entry, count_equal }
    }
}

// ---------------------------------------------------------------------------
// Bound and range arithmetic
// ---------------------------------------------------------------------------

/// Least value the symbolic bound can take, given region minimum counts.
fn sym_min_val(region: usize, scale: u64, shift: u32, delta: i64, regions: &[RegionInfo]) -> u64 {
    let min_count = match regions.get(region).map(|r| r.size) {
        Some(SizeInfo::Sym { min_count }) => min_count,
        _ => 0,
    };
    let base = scale.saturating_mul(min_count >> shift);
    if delta >= 0 {
        base.saturating_add(delta as u64)
    } else {
        base.saturating_sub(delta.unsigned_abs())
    }
}

fn bound_join(a: Bound, b: Bound, regions: &[RegionInfo]) -> Bound {
    use Bound::*;
    match (a, b) {
        (Fin(x), Fin(y)) => Fin(x.max(y)),
        (
            Sym { region: r1, scale: s1, shift: h1, delta: d1 },
            Sym { region: r2, scale: s2, shift: h2, delta: d2 },
        ) if r1 == r2 && s1 == s2 && h1 == h2 => {
            Sym { region: r1, scale: s1, shift: h1, delta: d1.max(d2) }
        }
        (Fin(k), s @ Sym { region, scale, shift, delta })
        | (s @ Sym { region, scale, shift, delta }, Fin(k)) => {
            // The symbolic bound covers the constant iff the constant is at
            // most the bound's guaranteed minimum value.
            if k <= sym_min_val(region, scale, shift, delta, regions) {
                s
            } else {
                Inf
            }
        }
        _ => Inf,
    }
}

fn range_join(a: Range, b: Range, regions: &[RegionInfo]) -> Range {
    Range { lo: a.lo.min(b.lo), hi: bound_join(a.hi, b.hi, regions) }
}

fn val_join(a: &AbsVal, b: &AbsVal, regions: &[RegionInfo]) -> AbsVal {
    match (a, b) {
        (AbsVal::Num(x), AbsVal::Num(y)) => AbsVal::Num(range_join(*x, *y, regions)),
        (AbsVal::Ptr { region: r1, off: o1 }, AbsVal::Ptr { region: r2, off: o2 })
            if r1 == r2 =>
        {
            AbsVal::Ptr { region: *r1, off: range_join(*o1, *o2, regions) }
        }
        _ => AbsVal::Top,
    }
}

fn range_add(a: Range, b: Range) -> Range {
    let Some(lo) = a.lo.checked_add(b.lo) else { return Range::full() };
    let hi = match (a.hi, b.hi) {
        (Bound::Fin(x), Bound::Fin(y)) => x.checked_add(y).map_or(Bound::Inf, Bound::Fin),
        (Bound::Sym { region, scale, shift, delta }, Bound::Fin(k))
        | (Bound::Fin(k), Bound::Sym { region, scale, shift, delta }) => {
            match i64::try_from(k).ok().and_then(|k| delta.checked_add(k)) {
                // `delta ≤ 0` keeps the bound below the region size; a
                // positive slack would let it wrap.
                Some(d) if d <= 0 => Bound::Sym { region, scale, shift, delta: d },
                _ => Bound::Inf,
            }
        }
        _ => Bound::Inf,
    };
    Range { lo, hi }
}

fn range_sub(a: Range, b: Range) -> Range {
    let Some(k) = b.as_exact() else { return Range::full() };
    if a.lo < k {
        // The subtraction may wrap below zero.
        return Range::full();
    }
    let hi = match a.hi {
        Bound::Fin(h) => Bound::Fin(h - k),
        Bound::Sym { region, scale, shift, delta } => {
            match i64::try_from(k).ok().and_then(|k| delta.checked_sub(k)) {
                Some(d) => Bound::Sym { region, scale, shift, delta: d },
                None => Bound::Inf,
            }
        }
        Bound::Inf => Bound::Inf,
    };
    Range { lo: a.lo - k, hi }
}

fn range_mul(a: Range, b: Range, regions: &[RegionInfo]) -> Range {
    let (r, c) = match (a.as_exact(), b.as_exact()) {
        (_, Some(c)) => (a, c),
        (Some(c), _) => (b, c),
        (None, None) => {
            let hi = match (a.hi, b.hi) {
                (Bound::Fin(x), Bound::Fin(y)) => {
                    x.checked_mul(y).map_or(Bound::Inf, Bound::Fin)
                }
                _ => Bound::Inf,
            };
            let lo = a.lo.checked_mul(b.lo);
            return match lo {
                Some(lo) => Range { lo, hi },
                None => Range::full(),
            };
        }
    };
    if c == 0 {
        return Range::exact(0);
    }
    let Some(lo) = r.lo.checked_mul(c) else { return Range::full() };
    let hi = match r.hi {
        Bound::Fin(h) => h.checked_mul(c).map_or(Bound::Inf, Bound::Fin),
        Bound::Sym { region, scale, shift, delta } => {
            let eb = regions.get(region).map_or(0, |r| r.elem_bytes);
            let scaled = scale.checked_mul(c);
            let d = i64::try_from(c).ok().and_then(|c| delta.checked_mul(c));
            match (scaled, d) {
                // `c·value ≤ c·scale·⌊L≫shift⌋ + c·delta` stays wrap-free
                // while the new scale keeps the bound under the region's
                // byte size.
                (Some(s), Some(d)) if eb.checked_shl(shift).is_some_and(|m| s <= m) => {
                    Bound::Sym { region, scale: s, shift, delta: d }
                }
                _ => Bound::Inf,
            }
        }
        Bound::Inf => Bound::Inf,
    };
    Range { lo, hi }
}

/// Smallest all-ones mask covering `m`.
fn bit_mask(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        u64::MAX >> m.leading_zeros()
    }
}

fn range_bitop(op: BinOp, a: Range, b: Range) -> Range {
    match op {
        BinOp::And => {
            // x & y ≤ min(x, y): any finite operand bound caps the result.
            let hi = match (a.hi, b.hi) {
                (Bound::Fin(x), Bound::Fin(y)) => Bound::Fin(x.min(y)),
                (Bound::Fin(x), _) => Bound::Fin(x),
                (_, Bound::Fin(y)) => Bound::Fin(y),
                (x, Bound::Inf) => x,
                (_, y) => y,
            };
            Range { lo: 0, hi }
        }
        BinOp::Or => match (a.hi, b.hi) {
            (Bound::Fin(x), Bound::Fin(y)) => {
                Range { lo: a.lo.max(b.lo), hi: Bound::Fin(bit_mask(x | y)) }
            }
            _ => Range { lo: a.lo.max(b.lo), hi: Bound::Inf },
        },
        _ => match (a.hi, b.hi) {
            // Xor.
            (Bound::Fin(x), Bound::Fin(y)) => Range { lo: 0, hi: Bound::Fin(bit_mask(x | y)) },
            _ => Range::full(),
        },
    }
}

fn range_shl(a: Range, b: Range, regions: &[RegionInfo]) -> Range {
    // `x << k` (shift counts are mod 64) is exactly `x · 2^(k mod 64)` on
    // wrapping 64-bit words, so the multiply transfer applies — including
    // its symbolic-bound scaling, which a shift-specific transfer would
    // lose: `i·2 → i≪1` strength reduction must not cost the in-bounds
    // proof.
    match b.as_exact() {
        Some(k) => range_mul(a, Range::exact(1u64 << (k & 63)), regions),
        None => Range::full(),
    }
}

fn range_shr(a: Range, b: Range) -> Range {
    match b.as_exact() {
        Some(k) => {
            let k = (k & 63) as u32;
            let hi = match a.hi {
                Bound::Fin(h) => Bound::Fin(h >> k),
                // `(⌊L≫shift⌋) ≫ k = ⌊L ≫ (shift+k)⌋` when the bound is the
                // raw shifted count (scale 1, no slack).
                Bound::Sym { region, scale: 1, shift, delta: 0 } => {
                    Bound::Sym { region, scale: 1, shift: shift + k, delta: 0 }
                }
                // Shifting right never increases the value, so the old
                // bound remains valid.
                other => other,
            };
            Range { lo: a.lo >> k, hi }
        }
        // Result is at most the dividend.
        None => Range { lo: 0, hi: a.hi },
    }
}

fn range_div(a: Range, b: Range) -> Range {
    match b.as_exact() {
        // RISC-V: division by zero returns all-ones.
        Some(0) => Range::exact(u64::MAX),
        Some(k) => {
            let hi = match a.hi {
                Bound::Fin(h) => Bound::Fin(h / k),
                // quotient ≤ dividend for k ≥ 1.
                other => other,
            };
            Range { lo: a.lo / k, hi }
        }
        None => {
            if b.lo >= 1 {
                Range { lo: 0, hi: a.hi }
            } else {
                Range::full()
            }
        }
    }
}

fn range_rem(a: Range, b: Range) -> Range {
    // rem ≤ dividend always (rem by zero returns the dividend).
    let hi = match (a.hi, b.hi) {
        (Bound::Fin(h), Bound::Fin(k)) if k > 0 => Bound::Fin(h.min(k - 1)),
        (h, Bound::Fin(k)) if k > 0 && b.lo > 0 => match h {
            Bound::Fin(x) => Bound::Fin(x.min(k - 1)),
            _ => Bound::Fin(k - 1),
        },
        (h, _) => h,
    };
    Range { lo: 0, hi }
}

// ---------------------------------------------------------------------------
// The dataflow state
// ---------------------------------------------------------------------------

/// Flow state: abstract values per local, plus which stack regions have
/// been freed on some path (accessing those is a scope escape).
#[derive(Clone, Debug)]
pub struct MemState {
    reachable: bool,
    vars: BTreeMap<String, AbsVal>,
    dead: BTreeSet<usize>,
    /// Shared region table; carried in the state so the lattice join has
    /// the context needed to compare symbolic bounds.
    regions: Rc<Vec<RegionInfo>>,
}

impl MemState {
    fn get(&self, v: &str) -> AbsVal {
        self.vars.get(v).cloned().unwrap_or(AbsVal::Top)
    }
}

impl PartialEq for MemState {
    fn eq(&self, other: &Self) -> bool {
        self.reachable == other.reachable && self.vars == other.vars && self.dead == other.dead
    }
}

impl Lattice for MemState {
    fn join_with(&mut self, other: &Self) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        let keys: Vec<String> = self.vars.keys().cloned().collect();
        for k in keys {
            let joined = match other.vars.get(&k) {
                Some(ov) => val_join(&self.vars[&k], ov, &self.regions),
                None => AbsVal::Top,
            };
            if joined == AbsVal::Top {
                self.vars.remove(&k);
                changed = true;
            } else if self.vars[&k] != joined {
                self.vars.insert(k, joined);
                changed = true;
            }
        }
        for d in &other.dead {
            changed |= self.dead.insert(*d);
        }
        changed
    }

    fn widen_with(&mut self, other: &Self) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = other.clone();
            return true;
        }
        let before = self.vars.clone();
        let mut changed = self.join_with(other);
        // Any binding still moving after repeated joins gets pushed to its
        // extreme so the ascending chain stabilizes.
        for (k, was) in &before {
            if let Some(now) = self.vars.get(k) {
                if now != was {
                    let widened = match now {
                        AbsVal::Num(_) => AbsVal::Num(Range::full()),
                        AbsVal::Ptr { region, .. } => {
                            AbsVal::Ptr { region: *region, off: Range::full() }
                        }
                        AbsVal::Top => AbsVal::Top,
                    };
                    self.vars.insert(k.clone(), widened);
                    changed = true;
                }
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// The analysis
// ---------------------------------------------------------------------------

struct MemAnalysis<'a> {
    function: &'a BFunction,
    regions: Rc<Vec<RegionInfo>>,
    entry: &'a [(String, AbsVal)],
    /// Region index of each syntactic `stackalloc` site.
    alloc_region_base: usize,
    /// Canonical representative per region under the hypothesis-derived
    /// equal-count relation ([`MemEnv::count_equal`]); identity when no
    /// equalities are known.
    count_class: Vec<usize>,
}

enum Access<'e> {
    Region(AccessSize, &'e BExpr, bool),
    Table(AccessSize, &'e str, &'e BExpr),
}

impl<'a> MemAnalysis<'a> {
    /// Whether two regions have provably equal element counts.
    fn same_count(&self, a: usize, b: usize) -> bool {
        a == b
            || (self.count_class.get(a) == self.count_class.get(b)
                && self.count_class.get(a).is_some())
    }

    fn eval(
        &self,
        expr: &BExpr,
        state: &MemState,
        sink: &mut Option<&mut Vec<Finding>>,
    ) -> AbsVal {
        match expr {
            BExpr::Lit(w) => AbsVal::Num(Range::exact(*w)),
            BExpr::Var(v) => state.get(v),
            BExpr::Load(size, addr) => {
                let a = self.eval(addr, state, sink);
                if let Some(findings) = sink.as_deref_mut() {
                    self.check_access(Access::Region(*size, addr, false), &a, state, findings);
                }
                load_result(*size)
            }
            BExpr::InlineTable { size, table, index } => {
                let i = self.eval(index, state, sink);
                if let Some(findings) = sink.as_deref_mut() {
                    self.check_access(Access::Table(*size, table, index), &i, state, findings);
                }
                load_result(*size)
            }
            BExpr::Op(op, a, b) => {
                let va = self.eval(a, state, sink);
                let vb = self.eval(b, state, sink);
                self.apply(*op, va, vb)
            }
        }
    }

    fn apply(&self, op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        let num = |v: &AbsVal| match v {
            Num(r) => Some(*r),
            Top => Some(Range::full()),
            Ptr { .. } => None,
        };
        // Pointer arithmetic: offsets move within the region.
        match (&a, &b, op) {
            (Ptr { region, off }, _, BinOp::Add) => {
                return match num(&b) {
                    Some(nb) => Ptr { region: *region, off: range_add(*off, nb) },
                    None => Top,
                }
            }
            (_, Ptr { region, off }, BinOp::Add) => {
                return match num(&a) {
                    Some(na) => Ptr { region: *region, off: range_add(*off, na) },
                    None => Top,
                }
            }
            (Ptr { region, off }, _, BinOp::Sub) => {
                return match num(&b) {
                    Some(nb) => Ptr { region: *region, off: range_sub(*off, nb) },
                    None => Top,
                }
            }
            _ => {}
        }
        let (Some(ra), Some(rb)) = (num(&a), num(&b)) else { return Top };
        let r = match op {
            BinOp::Add => range_add(ra, rb),
            BinOp::Sub => range_sub(ra, rb),
            BinOp::Mul => range_mul(ra, rb, &self.regions),
            BinOp::MulHuu => Range::full(),
            BinOp::DivU => range_div(ra, rb),
            BinOp::RemU => range_rem(ra, rb),
            BinOp::And | BinOp::Or | BinOp::Xor => range_bitop(op, ra, rb),
            BinOp::Slu => range_shl(ra, rb, &self.regions),
            BinOp::Sru => range_shr(ra, rb),
            BinOp::Srs => match ra.hi {
                // Non-negative as a signed value: behaves like a logical
                // shift.
                Bound::Fin(h) if h < 1 << 63 => range_shr(ra, rb),
                _ => Range::full(),
            },
            BinOp::LtU | BinOp::LtS | BinOp::Eq => Range::of(0, 1),
        };
        Num(r)
    }

    fn check_access(
        &self,
        access: Access<'_>,
        val: &AbsVal,
        state: &MemState,
        findings: &mut Vec<Finding>,
    ) {
        match access {
            Access::Region(size, addr_expr, is_store) => {
                let what = if is_store { "store" } else { "load" };
                let sz = size.bytes();
                let AbsVal::Ptr { region, off } = val else {
                    findings.push(self.finding(
                        FindingKind::UnprovenAccess,
                        format!(
                            "{what}{sz} address `{}` is not provably a pointer into the \
                             precondition footprint",
                            rupicola_bedrock::cprint::expr_to_c(addr_expr)
                        ),
                    ));
                    return;
                };
                let Some(info) = self.regions.get(*region) else {
                    findings.push(self.finding(
                        FindingKind::UnprovenAccess,
                        format!("{what}{sz} targets an unknown region"),
                    ));
                    return;
                };
                if state.dead.contains(region) {
                    findings.push(self.finding(
                        FindingKind::StackScopeEscape,
                        format!(
                            "{what}{sz} into `{}` after its stack allocation scope ended",
                            info.name
                        ),
                    ));
                    return;
                }
                let ok = match (info.size, off.hi) {
                    (SizeInfo::Fixed(n), Bound::Fin(k)) => k.checked_add(sz).is_some_and(|e| e <= n),
                    (SizeInfo::Fixed(_), _) => false,
                    (SizeInfo::Sym { .. }, Bound::Fin(k)) => {
                        // Provable from the hypothesis-derived minimum size
                        // alone.
                        k.checked_add(sz).is_some_and(|e| e <= info.min_bytes())
                    }
                    (SizeInfo::Sym { .. }, Bound::Sym { region: br, scale, shift, delta }) => {
                        // The bound may live in a *different* region whose
                        // element count is hypothesis-equal (`len s = len t`)
                        // — then `scale·⌊L_br≫shift⌋ = scale·⌊L≫shift⌋` and
                        // the same in-bounds argument applies, provided the
                        // element widths agree so the byte extents match.
                        let same_extent = br == *region
                            || (self.same_count(br, *region)
                                && self.regions.get(br).map(|r| r.elem_bytes)
                                    == Some(info.elem_bytes));
                        same_extent
                            && info.elem_bytes.checked_shl(shift).is_some_and(|m| scale <= m)
                            && i64::try_from(sz)
                                .ok()
                                .and_then(|s| delta.checked_add(s))
                                .is_some_and(|end| end <= 0)
                    }
                    (SizeInfo::Sym { .. }, Bound::Inf) => false,
                };
                if !ok {
                    let kind = match (info.size, off.hi) {
                        (SizeInfo::Fixed(_), Bound::Fin(_)) => FindingKind::OutOfFootprint,
                        _ => FindingKind::UnprovenAccess,
                    };
                    let certain = matches!(kind, FindingKind::OutOfFootprint);
                    findings.push(self.finding(
                        kind,
                        format!(
                            "{what}{sz} at `{}` {} region `{}` ({})",
                            rupicola_bedrock::cprint::expr_to_c(addr_expr),
                            if certain { "lands outside" } else { "cannot be proven inside" },
                            info.name,
                            describe_extent(info),
                        ),
                    ));
                    // Fall through: an out-of-bounds access can also be
                    // misaligned, and both findings are useful.
                }
                if sz > 1 && !expr_multiple_of(addr_expr, sz, state) {
                    findings.push(self.finding(
                        FindingKind::Misaligned,
                        format!(
                            "{what}{sz} at `{}` is not provably {sz}-byte aligned",
                            rupicola_bedrock::cprint::expr_to_c(addr_expr)
                        ),
                    ));
                }
            }
            Access::Table(size, table, idx_expr) => {
                let sz = size.bytes();
                let Some(t) = self.function.table(table) else {
                    findings.push(self.finding(
                        FindingKind::UnknownTable { table: table.to_string() },
                        format!("inline-table load from undeclared table `{table}`"),
                    ));
                    return;
                };
                let len = t.data.len() as u64;
                let ok = match val {
                    AbsVal::Num(r) => match r.hi {
                        Bound::Fin(k) => k.checked_add(sz).is_some_and(|e| e <= len),
                        _ => false,
                    },
                    _ => false,
                };
                if !ok {
                    findings.push(self.finding(
                        FindingKind::TableOutOfBounds { table: table.to_string() },
                        format!(
                            "table{sz} read of `{table}` ({len} bytes) at offset `{}` is not \
                             provably in bounds",
                            rupicola_bedrock::cprint::expr_to_c(idx_expr)
                        ),
                    ));
                    return;
                }
                if sz > 1 && !expr_multiple_of(idx_expr, sz, state) {
                    findings.push(self.finding(
                        FindingKind::Misaligned,
                        format!(
                            "table{sz} offset `{}` into `{table}` is not provably a multiple \
                             of {sz}",
                            rupicola_bedrock::cprint::expr_to_c(idx_expr)
                        ),
                    ));
                }
            }
        }
    }

    fn finding(&self, kind: FindingKind, message: String) -> Finding {
        let pass = match kind {
            FindingKind::TableOutOfBounds { .. } | FindingKind::UnknownTable { .. } => {
                Pass::TableBounds
            }
            _ => Pass::MemSafety,
        };
        Finding { pass, kind, function: self.function.name.clone(), site: None, message }
    }

    fn transfer_with(
        &self,
        stmt: &Stmt,
        state: &mut MemState,
        sink: &mut Option<&mut Vec<Finding>>,
    ) {
        if !state.reachable {
            return;
        }
        match stmt {
            Stmt::Set { var, expr, .. } => {
                let v = self.eval(expr, state, sink);
                if v == AbsVal::Top {
                    state.vars.remove(var);
                } else {
                    state.vars.insert(var.clone(), v);
                }
            }
            Stmt::Unset(v) => {
                state.vars.remove(v);
            }
            Stmt::Store(size, addr, val) => {
                let a = self.eval(addr, state, sink);
                let _ = self.eval(val, state, sink);
                if let Some(findings) = sink.as_deref_mut() {
                    self.check_access(Access::Region(*size, addr, true), &a, state, findings);
                }
            }
            Stmt::Call { rets, args, .. } | Stmt::Interact { rets, args, .. } => {
                for a in args {
                    let _ = self.eval(a, state, sink);
                }
                for r in rets {
                    state.vars.remove(r);
                }
            }
            Stmt::AllocEnter { var, site, .. } => {
                let region = self.alloc_region_base + site;
                state.dead.remove(&region);
                state
                    .vars
                    .insert(var.clone(), AbsVal::Ptr { region, off: Range::exact(0) });
            }
            Stmt::AllocExit { site, .. } => {
                state.dead.insert(self.alloc_region_base + site);
            }
        }
    }

    /// Edge refinement from a branch condition.
    fn refine_state(&self, cond: &BExpr, taken: bool, state: &mut MemState) {
        if !state.reachable {
            return;
        }
        let eval_num = |e: &BExpr, st: &MemState| -> Option<Range> {
            match self.eval(e, st, &mut None) {
                AbsVal::Num(r) => Some(r),
                AbsVal::Top => Some(Range::full()),
                AbsVal::Ptr { .. } => None,
            }
        };
        let refine_num = |state: &mut MemState, v: &str, f: &dyn Fn(Range) -> Option<Range>| {
            let cur = match state.get(v) {
                AbsVal::Num(r) => r,
                AbsVal::Top => Range::full(),
                AbsVal::Ptr { .. } => return true,
            };
            match f(cur) {
                Some(r) => {
                    state.vars.insert(v.to_string(), AbsVal::Num(r));
                    true
                }
                // Contradictory refinement: the edge is infeasible.
                None => {
                    state.reachable = false;
                    false
                }
            }
        };
        match cond {
            BExpr::Var(v) => {
                if taken {
                    refine_num(state, v, &|r| {
                        Some(Range { lo: r.lo.max(1), hi: r.hi })
                    });
                } else {
                    refine_num(state, v, &|r| {
                        if r.lo > 0 {
                            None
                        } else {
                            Some(Range::exact(0))
                        }
                    });
                }
            }
            BExpr::Op(BinOp::LtU, a, b) => {
                if let BExpr::Var(v) = &**a {
                    let rb = eval_num(b, state);
                    if let Some(rb) = rb {
                        if taken {
                            // v < b: the bound's predecessor caps v.
                            refine_num(state, v, &|r| {
                                let hi = match rb.hi {
                                    Bound::Fin(0) => return None,
                                    Bound::Fin(k) => {
                                        let k = k - 1;
                                        if k < r.lo {
                                            return None;
                                        }
                                        match r.hi {
                                            Bound::Fin(h) => Bound::Fin(h.min(k)),
                                            _ => Bound::Fin(k),
                                        }
                                    }
                                    Bound::Sym { region, scale, shift, delta } => {
                                        match delta.checked_sub(1) {
                                            Some(d) => Bound::Sym { region, scale, shift, delta: d },
                                            None => r.hi,
                                        }
                                    }
                                    Bound::Inf => r.hi,
                                };
                                Some(Range { lo: r.lo, hi })
                            });
                        } else {
                            // !(v < b): v ≥ b ≥ b.lo.
                            refine_num(state, v, &|r| {
                                Some(Range { lo: r.lo.max(rb.lo), hi: r.hi })
                            });
                        }
                    }
                }
                if let BExpr::Var(v) = &**b {
                    let ra = eval_num(a, state);
                    if let Some(ra) = ra {
                        if taken {
                            // a < v: v ≥ a.lo + 1.
                            refine_num(state, v, &|r| {
                                Some(Range { lo: r.lo.max(ra.lo.saturating_add(1)), hi: r.hi })
                            });
                        } else {
                            // !(a < v): v ≤ a.
                            refine_num(state, v, &|r| {
                                let hi = match (r.hi, ra.hi) {
                                    (Bound::Fin(h), Bound::Fin(k)) => Bound::Fin(h.min(k)),
                                    (_, Bound::Inf) => r.hi,
                                    (_, k) => k,
                                };
                                Some(Range { lo: r.lo, hi })
                            });
                        }
                    }
                }
            }
            BExpr::Op(BinOp::Eq, a, b) if taken => {
                for (v, other) in [(&**a, &**b), (&**b, &**a)] {
                    if let BExpr::Var(v) = v {
                        if let Some(ro) = eval_num(other, state) {
                            refine_num(state, v, &|r| {
                                let hi = match (r.hi, ro.hi) {
                                    (Bound::Fin(h), Bound::Fin(k)) => Bound::Fin(h.min(k)),
                                    (_, Bound::Inf) => r.hi,
                                    (_, k) => k,
                                };
                                Some(Range { lo: r.lo.max(ro.lo), hi })
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

fn load_result(size: AccessSize) -> AbsVal {
    match size {
        AccessSize::Eight => AbsVal::Num(Range::full()),
        s => AbsVal::Num(Range::of(0, (1u64 << (8 * s.bytes())) - 1)),
    }
}

fn describe_extent(info: &RegionInfo) -> String {
    match info.size {
        SizeInfo::Fixed(n) => format!("{n} bytes"),
        SizeInfo::Sym { min_count } => format!(
            "{}·L bytes, L ≥ {min_count}",
            info.elem_bytes
        ),
    }
}

/// Syntactic divisibility: is `e` provably a multiple of `k`?
///
/// Region base pointers count as aligned (the allocator's contract); exact
/// abstract values are checked numerically.
fn expr_multiple_of(e: &BExpr, k: u64, state: &MemState) -> bool {
    if k <= 1 {
        return true;
    }
    match e {
        BExpr::Lit(l) => l % k == 0,
        BExpr::Var(v) => match state.get(v) {
            AbsVal::Ptr { off, .. } => off.as_exact().is_some_and(|o| o % k == 0),
            AbsVal::Num(r) => r.as_exact().is_some_and(|m| m % k == 0),
            AbsVal::Top => false,
        },
        BExpr::Op(BinOp::Add | BinOp::Sub, a, b) => {
            expr_multiple_of(a, k, state) && expr_multiple_of(b, k, state)
        }
        BExpr::Op(BinOp::Mul, a, b) => {
            matches!(&**a, BExpr::Lit(l) if l % k == 0)
                || matches!(&**b, BExpr::Lit(l) if l % k == 0)
                || (expr_multiple_of(a, k, state) || expr_multiple_of(b, k, state))
        }
        BExpr::Op(BinOp::Slu, a, b) => match &**b {
            BExpr::Lit(s) if *s < 64 => {
                (1u64 << s).is_multiple_of(k) || expr_multiple_of(a, k, state)
            }
            _ => false,
        },
        _ => false,
    }
}

impl<'a> ForwardAnalysis for MemAnalysis<'a> {
    type State = MemState;

    fn boundary(&self) -> MemState {
        MemState {
            reachable: true,
            vars: self.entry.iter().cloned().collect(),
            dead: BTreeSet::new(),
            regions: Rc::clone(&self.regions),
        }
    }

    fn bottom(&self) -> MemState {
        MemState {
            reachable: false,
            vars: BTreeMap::new(),
            dead: BTreeSet::new(),
            regions: Rc::clone(&self.regions),
        }
    }

    fn transfer(&self, stmt: &Stmt, state: &mut MemState) {
        self.transfer_with(stmt, state, &mut None);
    }

    fn refine(&self, cond: &BExpr, taken: bool, state: &mut MemState) {
        self.refine_state(cond, taken, state);
    }
}

fn count_alloc_sites(cmd: &Cmd) -> usize {
    match cmd {
        Cmd::StackAlloc { body, .. } => 1 + count_alloc_sites(body),
        Cmd::Seq(a, b) => count_alloc_sites(a) + count_alloc_sites(b),
        Cmd::If { then_, else_, .. } => count_alloc_sites(then_) + count_alloc_sites(else_),
        Cmd::While { body, .. } => count_alloc_sites(body),
        _ => 0,
    }
}

fn alloc_regions(cmd: &Cmd, out: &mut Vec<RegionInfo>) {
    match cmd {
        Cmd::StackAlloc { var, nbytes, body } => {
            out.push(RegionInfo {
                name: format!("stack:{var}"),
                elem_bytes: 1,
                size: SizeInfo::Fixed(*nbytes),
            });
            alloc_regions(body, out);
        }
        Cmd::Seq(a, b) => {
            alloc_regions(a, out);
            alloc_regions(b, out);
        }
        Cmd::If { then_, else_, .. } => {
            alloc_regions(then_, out);
            alloc_regions(else_, out);
        }
        Cmd::While { body, .. } => alloc_regions(body, out),
        _ => {}
    }
}

/// Runs the memory-safety and inline-table lints over one function.
pub fn run(f: &BFunction, env: &MemEnv) -> Vec<Finding> {
    debug_assert_eq!(count_alloc_sites(&f.body), {
        let mut v = Vec::new();
        alloc_regions(&f.body, &mut v);
        v.len()
    });
    let mut all_regions = env.regions.clone();
    let alloc_region_base = all_regions.len();
    alloc_regions(&f.body, &mut all_regions);

    // Close the equal-count pairs into classes (tiny union-find by
    // repeated relabeling — region tables have a handful of entries).
    let mut count_class: Vec<usize> = (0..all_regions.len()).collect();
    for &(a, b) in &env.count_equal {
        if a < count_class.len() && b < count_class.len() {
            let (ca, cb) = (count_class[a], count_class[b]);
            if ca != cb {
                for c in &mut count_class {
                    if *c == cb {
                        *c = ca;
                    }
                }
            }
        }
    }

    let analysis = MemAnalysis {
        function: f,
        regions: Rc::new(all_regions),
        entry: &env.entry,
        alloc_region_base,
        count_class,
    };
    let cfg = Cfg::build(&f.body);
    let sol = forward_solve(&cfg, &analysis);

    // Emission pass: re-walk each block from its fixpoint entry state; every
    // syntactic access site is visited exactly once.
    let mut findings = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut state = sol.ins[b].clone();
        if !state.reachable {
            continue;
        }
        for stmt in &block.stmts {
            let mut sink = Some(&mut findings);
            analysis.transfer_with(stmt, &mut state, &mut sink);
        }
        if let Terminator::Branch { cond, .. } = &block.term {
            let mut sink = Some(&mut findings);
            let _ = analysis.eval(cond, &state, &mut sink);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_bedrock::ast::{AccessSize, BinOp, Cmd};

    fn byte_array_env(ptr: &str, len_var: &str, min_count: u64) -> MemEnv {
        MemEnv {
            regions: vec![RegionInfo {
                name: format!("&{ptr}"),
                elem_bytes: 1,
                size: SizeInfo::Sym { min_count },
            }],
            entry: vec![
                (ptr.to_string(), AbsVal::Ptr { region: 0, off: Range::exact(0) }),
                (
                    len_var.to_string(),
                    AbsVal::Num(Range {
                        lo: min_count,
                        hi: Bound::Sym { region: 0, scale: 1, shift: 0, delta: 0 },
                    }),
                ),
            ],
            count_equal: Vec::new(),
        }
    }

    /// `i = 0; while (i < len) { a = load1(s + i); b = load1(t + i); i++ }`
    /// with `len` the count of `s` — `t[i]` needs the equal-count fact.
    fn two_array_loop() -> BFunction {
        BFunction::new(
            "f",
            ["s", "t", "len"],
            Vec::<String>::new(),
            Cmd::seq([
                Cmd::set("i", BExpr::lit(0)),
                Cmd::while_(
                    BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("len")),
                    Cmd::seq([
                        Cmd::set(
                            "a",
                            BExpr::load(
                                AccessSize::One,
                                BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i")),
                            ),
                        ),
                        Cmd::set(
                            "b",
                            BExpr::load(
                                AccessSize::One,
                                BExpr::op(BinOp::Add, BExpr::var("t"), BExpr::var("i")),
                            ),
                        ),
                        Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                    ]),
                ),
            ]),
        )
    }

    fn two_array_env(count_equal: Vec<(usize, usize)>) -> MemEnv {
        let region = |name: &str| RegionInfo {
            name: name.to_string(),
            elem_bytes: 1,
            size: SizeInfo::Sym { min_count: 0 },
        };
        MemEnv {
            regions: vec![region("&s"), region("&t")],
            entry: vec![
                ("s".to_string(), AbsVal::Ptr { region: 0, off: Range::exact(0) }),
                ("t".to_string(), AbsVal::Ptr { region: 1, off: Range::exact(0) }),
                (
                    "len".to_string(),
                    AbsVal::Num(Range {
                        lo: 0,
                        hi: Bound::Sym { region: 0, scale: 1, shift: 0, delta: 0 },
                    }),
                ),
            ],
            count_equal,
        }
    }

    #[test]
    fn equal_count_hypothesis_proves_the_second_array() {
        // Without the equality, t[i] is unprovable…
        let findings = run(&two_array_loop(), &two_array_env(Vec::new()));
        assert!(
            findings.iter().any(|f| matches!(f.kind, FindingKind::UnprovenAccess)),
            "findings: {findings:?}"
        );
        // …with it, the loop is clean.
        let findings = run(&two_array_loop(), &two_array_env(vec![(0, 1)]));
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    /// `i = 0; while (i < len) { b = load1(s + i); i = i + 1 }`
    fn counted_byte_loop() -> BFunction {
        BFunction::new(
            "f",
            ["s", "len"],
            Vec::<String>::new(),
            Cmd::seq([
                Cmd::set("i", BExpr::lit(0)),
                Cmd::while_(
                    BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("len")),
                    Cmd::seq([
                        Cmd::set(
                            "b",
                            BExpr::load(
                                AccessSize::One,
                                BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i")),
                            ),
                        ),
                        Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                    ]),
                ),
            ]),
        )
    }

    #[test]
    fn guarded_loop_access_is_clean() {
        let findings = run(&counted_byte_loop(), &byte_array_env("s", "len", 0));
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn load_at_len_flagged() {
        // load1(s + len): one past the end.
        let f = BFunction::new(
            "f",
            ["s", "len"],
            Vec::<String>::new(),
            Cmd::set(
                "x",
                BExpr::load(
                    AccessSize::One,
                    BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("len")),
                ),
            ),
        );
        let findings = run(&f, &byte_array_env("s", "len", 0));
        assert!(
            findings.iter().any(|f| matches!(f.kind, FindingKind::UnprovenAccess)),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn literal_address_flagged() {
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::set("x", BExpr::load(AccessSize::Eight, BExpr::lit(0x1000))),
        );
        let findings = run(&f, &MemEnv::default());
        assert!(findings.iter().any(|f| matches!(f.kind, FindingKind::UnprovenAccess)));
    }

    #[test]
    fn halved_count_with_scaled_index_is_clean() {
        // n = len >> 1; i = 0; while (i < n) { load1(s + 2*i + 1); i++ }
        let f = BFunction::new(
            "f",
            ["s", "len"],
            Vec::<String>::new(),
            Cmd::seq([
                Cmd::set("n", BExpr::op(BinOp::Sru, BExpr::var("len"), BExpr::lit(1))),
                Cmd::set("i", BExpr::lit(0)),
                Cmd::while_(
                    BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                    Cmd::seq([
                        Cmd::set(
                            "x",
                            BExpr::load(
                                AccessSize::One,
                                BExpr::op(
                                    BinOp::Add,
                                    BExpr::var("s"),
                                    BExpr::op(
                                        BinOp::Add,
                                        BExpr::op(BinOp::Mul, BExpr::lit(2), BExpr::var("i")),
                                        BExpr::lit(1),
                                    ),
                                ),
                            ),
                        ),
                        Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                    ]),
                ),
            ]),
        );
        let findings = run(&f, &byte_array_env("s", "len", 0));
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn shortened_count_with_lookahead_is_clean() {
        // Requires the `4 ≤ len` hypothesis: n = len - 3; while (i < n)
        // { load1(s + i + 3); i++ }.
        let f = BFunction::new(
            "f",
            ["s", "len"],
            Vec::<String>::new(),
            Cmd::seq([
                Cmd::set("n", BExpr::op(BinOp::Sub, BExpr::var("len"), BExpr::lit(3))),
                Cmd::set("i", BExpr::lit(0)),
                Cmd::while_(
                    BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                    Cmd::seq([
                        Cmd::set(
                            "x",
                            BExpr::load(
                                AccessSize::One,
                                BExpr::op(
                                    BinOp::Add,
                                    BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i")),
                                    BExpr::lit(3),
                                ),
                            ),
                        ),
                        Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                    ]),
                ),
            ]),
        );
        let clean = run(&f, &byte_array_env("s", "len", 4));
        assert!(clean.is_empty(), "unexpected findings: {clean:?}");
        // Without the hypothesis, `len - 3` may wrap: must NOT be clean.
        let unhinted = run(&f, &byte_array_env("s", "len", 0));
        assert!(!unhinted.is_empty());
    }

    #[test]
    fn table_oob_literal_flagged() {
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::set("x", BExpr::table(AccessSize::One, "T", BExpr::lit(3))),
        )
        .with_table(rupicola_bedrock::BTable { name: "T".into(), data: vec![1, 2, 3] });
        let findings = run(&f, &MemEnv::default());
        assert!(findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::TableOutOfBounds { table } if table == "T")));
    }

    #[test]
    fn table_masked_index_is_clean() {
        // load1(T[x & 255]) on a 256-byte table.
        let f = BFunction::new(
            "f",
            ["x"],
            Vec::<String>::new(),
            Cmd::set(
                "y",
                BExpr::table(
                    AccessSize::One,
                    "T",
                    BExpr::op(BinOp::And, BExpr::var("x"), BExpr::lit(255)),
                ),
            ),
        )
        .with_table(rupicola_bedrock::BTable { name: "T".into(), data: vec![0; 256] });
        assert!(run(&f, &MemEnv::default()).is_empty());
    }

    #[test]
    fn unknown_table_flagged() {
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::set("x", BExpr::table(AccessSize::One, "NOPE", BExpr::lit(0))),
        );
        let findings = run(&f, &MemEnv::default());
        assert!(findings.iter().any(|f| matches!(&f.kind, FindingKind::UnknownTable { .. })));
    }

    #[test]
    fn stackalloc_in_bounds_clean_and_oob_flagged() {
        let ok = BFunction::new(
            "f",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::StackAlloc {
                var: "p".into(),
                nbytes: 16,
                body: Box::new(Cmd::store(
                    AccessSize::Eight,
                    BExpr::op(BinOp::Add, BExpr::var("p"), BExpr::lit(8)),
                    BExpr::lit(0),
                )),
            },
        );
        assert!(run(&ok, &MemEnv::default()).is_empty());

        let bad = BFunction::new(
            "f",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::StackAlloc {
                var: "p".into(),
                nbytes: 16,
                body: Box::new(Cmd::store(
                    AccessSize::Eight,
                    BExpr::op(BinOp::Add, BExpr::var("p"), BExpr::lit(9)),
                    BExpr::lit(0),
                )),
            },
        );
        let findings = run(&bad, &MemEnv::default());
        assert!(findings.iter().any(|f| matches!(f.kind, FindingKind::OutOfFootprint)));
        // offset 9 with an 8-byte store is also misaligned.
        assert!(findings.iter().any(|f| matches!(f.kind, FindingKind::Misaligned)));
    }

    #[test]
    fn stack_scope_escape_flagged() {
        // q escapes the stackalloc scope; the later load is a scope escape.
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            Vec::<String>::new(),
            Cmd::seq([
                Cmd::StackAlloc {
                    var: "p".into(),
                    nbytes: 8,
                    body: Box::new(Cmd::set("q", BExpr::var("p"))),
                },
                Cmd::set("x", BExpr::load(AccessSize::One, BExpr::var("q"))),
            ]),
        );
        let findings = run(&f, &MemEnv::default());
        assert!(
            findings.iter().any(|f| matches!(f.kind, FindingKind::StackScopeEscape)),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn unguarded_index_flagged() {
        // load1(s + i) where i is the raw length (no guard).
        let f = BFunction::new(
            "f",
            ["s", "len"],
            Vec::<String>::new(),
            Cmd::set(
                "x",
                BExpr::load(
                    AccessSize::One,
                    BExpr::op(
                        BinOp::Add,
                        BExpr::var("s"),
                        BExpr::op(BinOp::Mul, BExpr::var("len"), BExpr::lit(2)),
                    ),
                ),
            ),
        );
        let findings = run(&f, &byte_array_env("s", "len", 0));
        assert!(!findings.is_empty());
    }
}
