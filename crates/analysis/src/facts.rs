//! Fact export API: analysis results as consumable data, not just lints.
//!
//! The lint passes report human-readable [`Finding`]s; the optimization
//! pass manager in `rupicola-opt` needs the *facts underneath* — which
//! assignment sites are dead, whether a right-hand side can be deleted
//! without deleting a trap, what value range an expression is confined to.
//! This module re-derives those facts from the same analyses the lints run
//! (liveness over the site-tagged CFG, the interval domain), so a pass and
//! the lint that later re-audits its output can never disagree about what
//! the analysis said.

use crate::interval::{Bound, Range};
use crate::{live, FindingKind};
use rupicola_bedrock::ast::{AccessSize, BExpr, BFunction, BinOp};
use std::collections::BTreeSet;

/// Assignment sites (ordinals compatible with
/// [`rupicola_bedrock::cfg::remove_set_sites`]) that are dead stores *and*
/// removal-safe: the target is never read afterwards and the right-hand
/// side reads no memory, so deleting the statement preserves behavior
/// trap-for-trap. Exactly the sites the liveness lint would report.
pub fn dead_store_sites(f: &BFunction) -> BTreeSet<usize> {
    live::run(f)
        .into_iter()
        .filter(|finding| matches!(finding.kind, FindingKind::DeadStore { .. }))
        .filter_map(|finding| finding.site)
        .collect()
}

/// Whether deleting a `Set` with this right-hand side is observationally
/// safe — re-exported from the liveness pass so rewriters share the lint's
/// exact criterion (no `Load`, no inline table: a deleted read could also
/// delete a trap).
pub use crate::live::removal_safe;

fn width_range(size: AccessSize) -> Range {
    match size.bytes() {
        1 => Range::of(0, 0xFF),
        2 => Range::of(0, 0xFFFF),
        4 => Range::of(0, 0xFFFF_FFFF),
        _ => Range::full(),
    }
}

fn fin(r: &Range) -> Option<u64> {
    match &r.hi {
        Bound::Fin(h) => Some(*h),
        _ => None,
    }
}

/// The smallest all-ones mask (`2^k − 1`) covering `v`.
fn next_mask(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::MAX >> v.leading_zeros()
    }
}

fn op_range(op: BinOp, ra: &Range, rb: &Range) -> Range {
    let (la, ha) = (ra.lo, fin(ra));
    let (lb, hb) = (rb.lo, fin(rb));
    match op {
        BinOp::Add => match (ha, hb, la.checked_add(lb)) {
            (Some(ha), Some(hb), Some(lo)) => match ha.checked_add(hb) {
                Some(hi) => Range::of(lo, hi),
                None => Range::full(),
            },
            _ => Range::full(),
        },
        BinOp::Sub => match hb {
            // No wrap anywhere in [la − hb, ha − lb] iff la ≥ hb.
            Some(hb) if la >= hb => match ha {
                Some(ha) => Range::of(la - hb, ha - lb),
                None => Range { lo: la - hb, hi: Bound::Inf },
            },
            _ => Range::full(),
        },
        BinOp::Mul => match (ha, hb, la.checked_mul(lb)) {
            (Some(ha), Some(hb), Some(lo)) => match ha.checked_mul(hb) {
                Some(hi) => Range::of(lo, hi),
                None => Range::full(),
            },
            _ => Range::full(),
        },
        BinOp::MulHuu => Range::full(),
        BinOp::DivU => match (ha, hb) {
            // Division by zero yields all-ones, so a divisor that can be
            // zero forces the full range.
            (Some(ha), Some(hb)) if lb >= 1 => Range::of(la / hb, ha / lb),
            _ => Range::full(),
        },
        BinOp::RemU => {
            // rem(a, 0) = a and rem(a, b) < b for b > 0; both cases stay
            // ≤ a, so the dividend's high bound always holds.
            let hi = match (ha, hb) {
                (Some(ha), Some(hb)) if lb >= 1 => Some(ha.min(hb - 1)),
                (_, Some(hb)) if lb >= 1 => Some(hb - 1),
                (Some(ha), _) => Some(ha),
                _ => None,
            };
            match hi {
                Some(hi) => Range::of(0, hi),
                None => Range::full(),
            }
        }
        BinOp::And => match (ha, hb) {
            (Some(ha), Some(hb)) => Range::of(0, ha.min(hb)),
            (Some(ha), None) => Range::of(0, ha),
            (None, Some(hb)) => Range::of(0, hb),
            _ => Range::full(),
        },
        BinOp::Or => match (ha, hb) {
            // x ≤ M and y ≤ M for an all-ones M implies x|y ≤ M.
            (Some(ha), Some(hb)) => Range { lo: la.max(lb), hi: Bound::Fin(next_mask(ha.max(hb))) },
            _ => Range::full(),
        },
        BinOp::Xor => match (ha, hb) {
            (Some(ha), Some(hb)) => Range::of(0, next_mask(ha.max(hb))),
            _ => Range::full(),
        },
        BinOp::Sru => match rb.as_exact() {
            Some(k) => {
                let k = (k & 63) as u32;
                match ha {
                    Some(ha) => Range::of(la >> k, ha >> k),
                    None => Range { lo: 0, hi: Bound::Inf },
                }
            }
            None => Range::full(),
        },
        BinOp::Slu => match (rb.as_exact(), ha) {
            // Only when no bit of the high bound shifts out.
            (Some(k), Some(ha)) if k < 64 && (k == 0 || u64::from(ha.leading_zeros()) >= k) => {
                Range::of(la << k, ha << k)
            }
            _ => Range::full(),
        },
        BinOp::Srs => match (rb.as_exact(), ha) {
            // With the sign bit provably clear this is a logical shift.
            (Some(k), Some(ha)) if ha < 1 << 63 => {
                let k = (k & 63) as u32;
                Range::of(la >> k, ha >> k)
            }
            _ => Range::full(),
        },
        BinOp::LtS | BinOp::LtU | BinOp::Eq => Range::of(0, 1),
    }
}

/// A conservative value range for `e`, derived bottom-up with the interval
/// domain's [`Range`]: literals are exact, memory reads are bounded by
/// their access width, variables are unconstrained. Sound for any locals
/// state — the range holds whenever every subexpression evaluates without
/// trapping — which is what a peephole needs to prove a mask or remainder
/// redundant.
pub fn expr_range(e: &BExpr) -> Range {
    match e {
        BExpr::Lit(w) => Range::exact(*w),
        BExpr::Var(_) => Range::full(),
        BExpr::Load(size, _) => width_range(*size),
        BExpr::InlineTable { size, .. } => width_range(*size),
        BExpr::Op(op, a, b) => op_range(*op, &expr_range(a), &expr_range(b)),
    }
}

/// The finite upper bound of `r`, if it has one.
pub fn finite_upper_bound(r: &Range) -> Option<u64> {
    fin(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_bedrock::ast::Cmd;

    fn b(op: BinOp, a: BExpr, bb: BExpr) -> BExpr {
        BExpr::op(op, a, bb)
    }

    #[test]
    fn dead_sites_match_the_lint() {
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            ["x"],
            Cmd::seq([Cmd::set("x", BExpr::lit(1)), Cmd::set("x", BExpr::lit(2))]),
        );
        assert_eq!(dead_store_sites(&f), BTreeSet::from([0]));
    }

    #[test]
    fn load_result_is_width_bounded() {
        let e = BExpr::load(AccessSize::One, BExpr::var("p"));
        assert_eq!(finite_upper_bound(&expr_range(&e)), Some(0xFF));
    }

    #[test]
    fn masked_byte_stays_under_mask() {
        // (load1(p) ^ acc) & 255 ∈ [0, 255]
        let e = b(
            BinOp::And,
            b(
                BinOp::Xor,
                BExpr::load(AccessSize::One, BExpr::var("p")),
                BExpr::var("acc"),
            ),
            BExpr::lit(255),
        );
        assert_eq!(finite_upper_bound(&expr_range(&e)), Some(255));
    }

    #[test]
    fn scaled_index_is_bounded() {
        // ((x & 255) * 8) ∈ [0, 2040]
        let e = b(
            BinOp::Mul,
            b(BinOp::And, BExpr::var("x"), BExpr::lit(255)),
            BExpr::lit(8),
        );
        assert_eq!(finite_upper_bound(&expr_range(&e)), Some(2040));
    }

    #[test]
    fn shifts_track_bounds() {
        let byte = BExpr::load(AccessSize::One, BExpr::var("p"));
        let left = b(BinOp::Slu, byte.clone(), BExpr::lit(8));
        assert_eq!(finite_upper_bound(&expr_range(&left)), Some(0xFF00));
        let right = b(BinOp::Sru, byte, BExpr::lit(4));
        assert_eq!(finite_upper_bound(&expr_range(&right)), Some(0xF));
    }

    #[test]
    fn remu_by_positive_literal_is_bounded() {
        let e = b(BinOp::RemU, BExpr::var("x"), BExpr::lit(10));
        assert_eq!(finite_upper_bound(&expr_range(&e)), Some(9));
        // remainder by a possibly-zero divisor keeps the dividend bound
        let e = b(
            BinOp::RemU,
            b(BinOp::And, BExpr::var("x"), BExpr::lit(7)),
            BExpr::var("y"),
        );
        assert_eq!(finite_upper_bound(&expr_range(&e)), Some(7));
    }

    #[test]
    fn comparisons_are_boolean() {
        let e = b(BinOp::LtU, BExpr::var("x"), BExpr::var("y"));
        assert_eq!(finite_upper_bound(&expr_range(&e)), Some(1));
    }

    #[test]
    fn wrapping_ops_fall_back_to_full() {
        let e = b(BinOp::Sub, BExpr::var("x"), BExpr::lit(97));
        assert_eq!(finite_upper_bound(&expr_range(&e)), None);
    }
}
