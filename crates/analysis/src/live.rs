//! Liveness and dead-store detection.
//!
//! A backward union (may) analysis: a local is live at a point if some path
//! from there reads it before overwriting it. A `Set` whose target is dead
//! immediately afterwards is a *dead store* — computed work the function
//! never observes. Relational compilation should never emit one (every
//! emitted statement is justified by a lemma that consumed source), so a
//! dead store in certified output indicates a lemma emitting vestigial
//! code.
//!
//! Only stores whose right-hand side is free of memory reads (`Load`,
//! inline tables) are reported: those are the ones that can be deleted
//! without also deleting a potential trap, which keeps the findings
//! actionable and lets the property-based soundness test remove every
//! flagged site and re-run the program expecting identical behavior.

use crate::dataflow::{backward_solve, BackwardAnalysis, Lattice};
use crate::{Finding, FindingKind, Pass};
use rupicola_bedrock::cfg::{Cfg, Stmt};
use rupicola_bedrock::{BExpr, BFunction};
use std::collections::BTreeSet;

#[derive(Clone, Debug, PartialEq)]
struct Live(BTreeSet<String>);

impl Lattice for Live {
    fn join_with(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().cloned());
        self.0.len() != before
    }
}

struct Liveness {
    rets: BTreeSet<String>,
}

fn add_uses(expr: &BExpr, live: &mut BTreeSet<String>) {
    live.extend(expr.vars());
}

impl BackwardAnalysis for Liveness {
    type State = Live;

    fn boundary(&self) -> Live {
        Live(self.rets.clone())
    }

    fn bottom(&self) -> Live {
        Live(BTreeSet::new())
    }

    fn transfer(&self, stmt: &Stmt, state: &mut Live) {
        let live = &mut state.0;
        match stmt {
            Stmt::Set { var, expr, .. } => {
                live.remove(var);
                add_uses(expr, live);
            }
            Stmt::Unset(v) => {
                live.remove(v);
            }
            Stmt::Store(_, addr, val) => {
                add_uses(addr, live);
                add_uses(val, live);
            }
            Stmt::Call { rets, args, .. } | Stmt::Interact { rets, args, .. } => {
                for r in rets {
                    live.remove(r);
                }
                for a in args {
                    add_uses(a, live);
                }
            }
            Stmt::AllocEnter { var, .. } => {
                live.remove(var);
            }
            // The scope end consumes the base pointer (the region is
            // popped by address).
            Stmt::AllocExit { var, .. } => {
                live.insert(var.clone());
            }
        }
    }

    fn cond_use(&self, cond: &BExpr, state: &mut Live) {
        add_uses(cond, &mut state.0);
    }
}

/// Whether deleting `Set(_, expr)` is observationally safe: the RHS must
/// not touch memory (a deleted `Load` could also delete a trap). Public
/// so rewriters (dead-store elimination in `rupicola-opt`) share the
/// lint's exact criterion; see also [`crate::facts`].
pub fn removal_safe(expr: &BExpr) -> bool {
    match expr {
        BExpr::Lit(_) | BExpr::Var(_) => true,
        BExpr::Load(..) | BExpr::InlineTable { .. } => false,
        BExpr::Op(_, a, b) => removal_safe(a) && removal_safe(b),
    }
}

/// Runs the pass over one function. Findings carry the assignment `site`
/// ordinal, compatible with [`rupicola_bedrock::cfg::remove_set_sites`].
pub fn run(f: &BFunction) -> Vec<Finding> {
    let cfg = Cfg::build(&f.body);
    let analysis = Liveness { rets: f.rets.iter().cloned().collect() };
    let sol = backward_solve(&cfg, &analysis);
    let mut findings = Vec::new();

    for (b, block) in cfg.blocks.iter().enumerate() {
        // Walk the block backwards from its end state; at each `Set`, the
        // current state is exactly the liveness after that statement.
        let mut state = sol.outs[b].clone();
        for stmt in block.stmts.iter().rev() {
            if let Stmt::Set { var, expr, site } = stmt {
                if !state.0.contains(var) && removal_safe(expr) {
                    findings.push(Finding {
                        pass: Pass::Liveness,
                        kind: FindingKind::DeadStore { var: var.clone() },
                        function: f.name.clone(),
                        site: Some(*site),
                        message: format!(
                            "`{var}` is assigned here but never read afterwards (dead store)"
                        ),
                    });
                }
            }
            analysis.transfer(stmt, &mut state);
        }
    }

    findings.sort_by_key(|f| f.site);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_bedrock::ast::{AccessSize, BinOp, Cmd};

    #[test]
    fn overwritten_store_flagged_with_site() {
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            ["x"],
            Cmd::seq([Cmd::set("x", BExpr::lit(1)), Cmd::set("x", BExpr::lit(2))]),
        );
        let findings = run(&f);
        assert_eq!(findings.len(), 1);
        assert!(matches!(&findings[0].kind, FindingKind::DeadStore { var } if var == "x"));
        assert_eq!(findings[0].site, Some(0));
    }

    #[test]
    fn value_read_later_not_flagged() {
        let f = BFunction::new(
            "f",
            Vec::<String>::new(),
            ["y"],
            Cmd::seq([
                Cmd::set("x", BExpr::lit(1)),
                Cmd::set("y", BExpr::op(BinOp::Add, BExpr::var("x"), BExpr::lit(1))),
            ]),
        );
        assert!(run(&f).is_empty());
    }

    #[test]
    fn loop_carried_value_not_flagged() {
        // `i` is read by the guard and the body on the next iteration.
        let f = BFunction::new(
            "f",
            ["n"],
            ["i"],
            Cmd::seq([
                Cmd::set("i", BExpr::lit(0)),
                Cmd::while_(
                    BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                    Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                ),
            ]),
        );
        assert!(run(&f).is_empty());
    }

    #[test]
    fn load_rhs_not_reported_even_if_dead() {
        let f = BFunction::new(
            "f",
            ["p"],
            Vec::<String>::new(),
            Cmd::set("x", BExpr::load(AccessSize::One, BExpr::var("p"))),
        );
        // Dead, but deleting it would delete a potential trap: not flagged.
        assert!(run(&f).is_empty());
    }

    #[test]
    fn store_address_keeps_value_live() {
        let f = BFunction::new(
            "f",
            ["p"],
            Vec::<String>::new(),
            Cmd::seq([
                Cmd::set("v", BExpr::lit(7)),
                Cmd::store(AccessSize::One, BExpr::var("p"), BExpr::var("v")),
            ]),
        );
        assert!(run(&f).is_empty());
    }
}
