//! Loop-progress lint.
//!
//! Bedrock2 loops only have meaning when they terminate (the interpreter is
//! fuel-indexed); relational compilation emits loops from bounded folds, so
//! every certified loop should exhibit an evident progress argument. This
//! lint re-derives one syntactically: some guard variable must be a
//! *counter* — updated by a constant step in one direction on every path
//! through the body — moving toward a bound built from loop-invariant
//! terms. Loops with no such counter (a guard nobody advances, a counter
//! stepped both ways, a bound the body itself moves) are flagged.
//!
//! Accepted shapes:
//!
//! - `while (v < B) { …; v = v + k; … }` with `k ≥ 1`, every path updating
//!   `v` upward, and no variable of `B` assigned in the body;
//! - `while (B < v) { …; v = v - 1; … }` symmetrically (downward steps
//!   must be exactly 1, or the counter could wrap past the bound);
//! - `while (v) { …; v = v - 1; … }` (countdown to zero; step must be
//!   exactly 1 so zero cannot be skipped).

use crate::{Finding, FindingKind, Pass};
use rupicola_bedrock::ast::{BExpr, BFunction, BinOp, Cmd};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Direction {
    Up,
    Down,
}

/// The constant-step update shape `v = v + k` / `v = v - k`, if `expr`
/// matches it for variable `v`.
fn step_of(v: &str, expr: &BExpr) -> Option<(Direction, u64)> {
    match expr {
        BExpr::Op(BinOp::Add, a, b) => match (&**a, &**b) {
            (BExpr::Var(x), BExpr::Lit(k)) | (BExpr::Lit(k), BExpr::Var(x))
                if x == v && *k >= 1 =>
            {
                Some((Direction::Up, *k))
            }
            _ => None,
        },
        BExpr::Op(BinOp::Sub, a, b) => match (&**a, &**b) {
            (BExpr::Var(x), BExpr::Lit(k)) if x == v && *k >= 1 => Some((Direction::Down, *k)),
            _ => None,
        },
        _ => None,
    }
}

/// Whether every path through `body` assigns `v` (loops may iterate zero
/// times, so nested `While` bodies don't count).
fn always_updates(body: &Cmd, v: &str) -> bool {
    match body {
        Cmd::Set(x, _) => x == v,
        Cmd::Call { rets, .. } | Cmd::Interact { rets, .. } => rets.iter().any(|r| r == v),
        Cmd::Seq(a, b) => always_updates(a, v) || always_updates(b, v),
        Cmd::If { then_, else_, .. } => always_updates(then_, v) && always_updates(else_, v),
        Cmd::StackAlloc { body, .. } => always_updates(body, v),
        Cmd::Skip | Cmd::Unset(_) | Cmd::Store(..) | Cmd::While { .. } => false,
    }
}

/// All `Set(v, e)` right-hand sides for `v` anywhere in `body`.
fn sets_of<'c>(body: &'c Cmd, v: &str, out: &mut Vec<&'c BExpr>) {
    match body {
        Cmd::Set(x, e) if x == v => out.push(e),
        Cmd::Seq(a, b) => {
            sets_of(a, v, out);
            sets_of(b, v, out);
        }
        Cmd::If { then_, else_, .. } => {
            sets_of(then_, v, out);
            sets_of(else_, v, out);
        }
        Cmd::While { body, .. } | Cmd::StackAlloc { body, .. } => sets_of(body, v, out),
        _ => {}
    }
}

/// Whether `v` is a monotone counter in `body`: assigned on every path,
/// every assignment a constant step in direction `dir`, and never a target
/// of a call/interact.
fn monotone_counter(body: &Cmd, v: &str, dir: Direction) -> bool {
    if !always_updates(body, v) {
        return false;
    }
    if body.assigned_vars().contains(&v.to_string()) {
        let mut rhss = Vec::new();
        sets_of(body, v, &mut rhss);
        if rhss.is_empty() {
            // Assigned only through calls: direction unknown.
            return false;
        }
        // Downward steps must be exactly 1: `v - k` for `k > 1` can wrap
        // past the bound (e.g. `while (0 < v) { v -= 2 }` from `v = 1`).
        rhss.iter()
            .all(|e| step_of(v, e).is_some_and(|(d, k)| d == dir && (d == Direction::Up || k == 1)))
    } else {
        false
    }
}

/// Whether all variables of `bound` are loop-invariant (not assigned in
/// `body`).
fn invariant_in(bound: &BExpr, body: &Cmd) -> bool {
    let assigned = body.assigned_vars();
    bound.vars().iter().all(|v| !assigned.contains(v))
}

fn loop_ok(cond: &BExpr, body: &Cmd) -> bool {
    match cond {
        BExpr::Op(BinOp::LtU, a, b) => {
            let up = matches!(&**a, BExpr::Var(v)
                if monotone_counter(body, v, Direction::Up) && invariant_in(b, body));
            let down = matches!(&**b, BExpr::Var(v)
                if monotone_counter(body, v, Direction::Down) && invariant_in(a, body));
            up || down
        }
        BExpr::Var(v) => {
            // Countdown: every update must be `v = v - 1` so the guard's
            // zero cannot be stepped over.
            let mut rhss = Vec::new();
            sets_of(body, v, &mut rhss);
            always_updates(body, v)
                && !rhss.is_empty()
                && rhss
                    .iter()
                    .all(|e| step_of(v, e) == Some((Direction::Down, 1)))
        }
        _ => false,
    }
}

fn walk(cmd: &Cmd, fname: &str, findings: &mut Vec<Finding>) {
    match cmd {
        Cmd::While { cond, body } => {
            if !loop_ok(cond, body) {
                findings.push(Finding {
                    pass: Pass::LoopProgress,
                    kind: FindingKind::LoopNoProgress,
                    function: fname.to_string(),
                    site: None,
                    message: format!(
                        "loop guard `{}` has no evident progress argument: no guard variable \
                         is stepped by a constant toward a loop-invariant bound on every \
                         iteration",
                        rupicola_bedrock::cprint::expr_to_c(cond)
                    ),
                });
            }
            walk(body, fname, findings);
        }
        Cmd::Seq(a, b) => {
            walk(a, fname, findings);
            walk(b, fname, findings);
        }
        Cmd::If { then_, else_, .. } => {
            walk(then_, fname, findings);
            walk(else_, fname, findings);
        }
        Cmd::StackAlloc { body, .. } => walk(body, fname, findings),
        _ => {}
    }
}

/// Runs the pass over one function.
pub fn run(f: &BFunction) -> Vec<Finding> {
    let mut findings = Vec::new();
    walk(&f.body, &f.name, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func(body: Cmd) -> BFunction {
        BFunction::new("f", ["n"], Vec::<String>::new(), body)
    }

    fn incr(v: &str, k: u64) -> Cmd {
        Cmd::set(v, BExpr::op(BinOp::Add, BExpr::var(v), BExpr::lit(k)))
    }

    #[test]
    fn counted_up_loop_clean() {
        let f = func(Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                incr("i", 1),
            ),
        ]));
        assert!(run(&f).is_empty());
    }

    #[test]
    fn countdown_guard_clean() {
        let f = func(Cmd::seq([
            Cmd::set("v", BExpr::var("n")),
            Cmd::while_(
                BExpr::var("v"),
                Cmd::set("v", BExpr::op(BinOp::Sub, BExpr::var("v"), BExpr::lit(1))),
            ),
        ]));
        assert!(run(&f).is_empty());
    }

    #[test]
    fn infinite_loop_flagged() {
        let f = func(Cmd::while_(BExpr::lit(1), Cmd::Skip));
        let findings = run(&f);
        assert!(findings.iter().any(|f| matches!(f.kind, FindingKind::LoopNoProgress)));
    }

    #[test]
    fn counter_never_updated_flagged() {
        let f = func(Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                Cmd::set("x", BExpr::var("i")),
            ),
        ]));
        assert!(!run(&f).is_empty());
    }

    #[test]
    fn non_monotone_counter_flagged() {
        // i stepped up in one branch, down in the other.
        let f = func(Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                Cmd::if_(
                    BExpr::var("i"),
                    incr("i", 1),
                    Cmd::set("i", BExpr::op(BinOp::Sub, BExpr::var("i"), BExpr::lit(1))),
                ),
            ),
        ]));
        assert!(!run(&f).is_empty());
    }

    #[test]
    fn bound_moved_by_body_flagged() {
        let f = func(Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::set("m", BExpr::var("n")),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("m")),
                Cmd::seq([incr("i", 1), incr("m", 1)]),
            ),
        ]));
        assert!(!run(&f).is_empty());
    }

    #[test]
    fn one_armed_update_flagged() {
        // i only advances when the branch is taken: not on every path.
        let f = func(Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("n")),
                Cmd::if_(BExpr::var("i"), incr("i", 1), Cmd::Skip),
            ),
        ]));
        assert!(!run(&f).is_empty());
    }

    #[test]
    fn eq_guard_flagged() {
        // The shape a swapped-comparison fault produces.
        let f = func(Cmd::seq([
            Cmd::set("i", BExpr::lit(0)),
            Cmd::while_(
                BExpr::op(BinOp::Eq, BExpr::var("i"), BExpr::var("n")),
                incr("i", 1),
            ),
        ]));
        assert!(!run(&f).is_empty());
    }
}
