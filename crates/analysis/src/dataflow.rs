//! A generic worklist dataflow solver over [`Cfg`]s.
//!
//! Analyses plug in a lattice (the abstract state) and transfer functions;
//! the solver iterates to a fixpoint in reverse postorder (forward) or
//! postorder (backward), switching from join to widening once a block has
//! been revisited often enough to suggest an unstable ascending chain.

use rupicola_bedrock::cfg::{BlockId, Cfg, Stmt, Terminator};
use rupicola_bedrock::BExpr;

/// Number of joins into a block before the solver starts widening. The
/// interval domain's symbolic bounds stabilize in two or three visits on
/// all benchmark programs; widening is a termination backstop for
/// adversarial inputs, not the common path.
const WIDEN_AFTER: usize = 5;

/// An abstract-state lattice.
///
/// `join_with`/`widen_with` merge another state into `self` and report
/// whether `self` changed; the solver uses the report to drive the
/// worklist. The bottom element (provided by the analysis, not the trait)
/// must be an identity for join: it encodes "no path reaches here yet".
pub trait Lattice: Clone {
    /// Least upper bound; returns `true` iff `self` changed.
    fn join_with(&mut self, other: &Self) -> bool;

    /// Widening; must over-approximate join and guarantee stabilization on
    /// infinite-ascending-chain domains. Defaults to join (correct for
    /// finite domains).
    fn widen_with(&mut self, other: &Self) -> bool {
        self.join_with(other)
    }
}

/// A forward dataflow analysis.
pub trait ForwardAnalysis {
    /// The abstract state.
    type State: Lattice;

    /// The state at the function entry.
    fn boundary(&self) -> Self::State;

    /// The bottom element (unreached).
    fn bottom(&self) -> Self::State;

    /// Transfers one statement.
    fn transfer(&self, stmt: &Stmt, state: &mut Self::State);

    /// Refines the state along a branch edge, knowing `cond` evaluated to
    /// nonzero (`taken`) or zero (`!taken`). Default: no refinement.
    fn refine(&self, _cond: &BExpr, _taken: bool, _state: &mut Self::State) {}
}

/// Per-block states computed by a solver.
pub struct Solution<S> {
    /// State at each block's entry (forward) / the live state at each
    /// block's entry (backward).
    pub ins: Vec<S>,
    /// State after each block's statements (forward: before the
    /// terminator; backward: the state flowing in from the block's end,
    /// terminator uses already applied).
    pub outs: Vec<S>,
}

/// Runs a forward analysis to fixpoint and returns per-block entry/exit
/// states.
pub fn forward_solve<A: ForwardAnalysis>(cfg: &Cfg, a: &A) -> Solution<A::State> {
    let n = cfg.blocks.len();
    let mut ins: Vec<A::State> = (0..n).map(|_| a.bottom()).collect();
    ins[cfg.entry] = a.boundary();
    let mut joins = vec![0usize; n];

    let rpo = cfg.reverse_postorder();
    let mut queue: Vec<BlockId> = rpo.clone();
    let mut queued = vec![false; n];
    for &b in &queue {
        queued[b] = true;
    }
    // Process in RPO by repeatedly draining a pending set in RPO order.
    while !queue.is_empty() {
        let mut next: Vec<BlockId> = Vec::new();
        for &b in &queue {
            queued[b] = false;
        }
        for &b in &queue {
            let mut state = ins[b].clone();
            for stmt in &cfg.blocks[b].stmts {
                a.transfer(stmt, &mut state);
            }
            let edges: Vec<(BlockId, Option<(&BExpr, bool)>)> = match &cfg.blocks[b].term {
                Terminator::Jump(t) => vec![(*t, None)],
                Terminator::Branch { cond, then_, else_ } => {
                    vec![(*then_, Some((cond, true))), (*else_, Some((cond, false)))]
                }
                Terminator::Return => vec![],
            };
            for (succ, refine) in edges {
                let mut edge_state = state.clone();
                if let Some((cond, taken)) = refine {
                    a.refine(cond, taken, &mut edge_state);
                }
                let changed = if joins[succ] >= WIDEN_AFTER {
                    ins[succ].widen_with(&edge_state)
                } else {
                    ins[succ].join_with(&edge_state)
                };
                if changed {
                    joins[succ] += 1;
                    if !queued[succ] {
                        queued[succ] = true;
                        next.push(succ);
                    }
                }
            }
        }
        // Keep RPO order for the next sweep: it minimizes iterations on
        // reducible graphs (which is all `Cmd` lowerings).
        next.sort_by_key(|b| rpo.iter().position(|x| x == b).unwrap_or(usize::MAX));
        queue = next;
    }

    let outs = (0..n)
        .map(|b| {
            let mut state = ins[b].clone();
            for stmt in &cfg.blocks[b].stmts {
                a.transfer(stmt, &mut state);
            }
            state
        })
        .collect();
    Solution { ins, outs }
}

/// A backward dataflow analysis (e.g. liveness).
pub trait BackwardAnalysis {
    /// The abstract state.
    type State: Lattice;

    /// The state at the function exit.
    fn boundary(&self) -> Self::State;

    /// The bottom element.
    fn bottom(&self) -> Self::State;

    /// Transfers one statement *backwards* (state is the post-state, becomes
    /// the pre-state).
    fn transfer(&self, stmt: &Stmt, state: &mut Self::State);

    /// Accounts for a terminator condition's uses (applied at block end).
    fn cond_use(&self, _cond: &BExpr, _state: &mut Self::State) {}
}

/// Runs a backward analysis to fixpoint.
///
/// `outs[b]` is the state just after `b`'s last statement (successor needs
/// joined, terminator-condition uses applied); `ins[b]` is the state at
/// `b`'s entry.
pub fn backward_solve<A: BackwardAnalysis>(cfg: &Cfg, a: &A) -> Solution<A::State> {
    let n = cfg.blocks.len();
    let mut ins: Vec<A::State> = (0..n).map(|_| a.bottom()).collect();
    let mut joins = vec![0usize; n];

    let mut po = cfg.reverse_postorder();
    po.reverse();

    let block_out = |a: &A, ins: &[A::State], b: BlockId| -> A::State {
        let mut state = match &cfg.blocks[b].term {
            Terminator::Return => a.boundary(),
            Terminator::Jump(t) => ins[*t].clone(),
            Terminator::Branch { then_, else_, .. } => {
                let mut s = ins[*then_].clone();
                s.join_with(&ins[*else_]);
                s
            }
        };
        if let Terminator::Branch { cond, .. } = &cfg.blocks[b].term {
            a.cond_use(cond, &mut state);
        }
        state
    };

    let mut changed = true;
    let mut sweeps = 0usize;
    while changed {
        changed = false;
        sweeps += 1;
        for &b in &po {
            let mut state = block_out(a, &ins, b);
            for stmt in cfg.blocks[b].stmts.iter().rev() {
                a.transfer(stmt, &mut state);
            }
            let c = if joins[b] >= WIDEN_AFTER && sweeps > WIDEN_AFTER {
                ins[b].widen_with(&state)
            } else {
                ins[b].join_with(&state)
            };
            if c {
                joins[b] += 1;
                changed = true;
            }
        }
    }

    let outs = (0..n).map(|b| block_out(a, &ins, b)).collect();
    Solution { ins, outs }
}
