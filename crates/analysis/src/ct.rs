//! Secret-independence (constant-time) analysis.
//!
//! A taint dataflow over the same CFG + worklist framework as the other
//! lints, checking the three constant-time sins on a two-point
//! `Public ⊑ Secret` lattice:
//!
//! - **secret-dependent control flow** — a branch or loop condition whose
//!   value depends on a secret ([`FindingKind::SecretBranch`]);
//! - **secret-dependent memory addresses** — a load, store, or
//!   inline-table index computed from a secret
//!   ([`FindingKind::SecretAddress`]);
//! - **secret operands to variable-latency operations** — `div`/`mod`,
//!   whose timing varies with operand values on most hardware
//!   ([`FindingKind::SecretVariableLatency`]).
//!
//! What counts as secret is declared per program by a [`SecrecyPolicy`]:
//! parameter labels plus explicit declassification sites (assignment-site
//! ordinals whose result is deliberately downgraded to public — e.g. the
//! final comparison verdict of a MAC check). Implicit flows need no
//! separate taint channel: the moment control flow depends on a secret the
//! analysis reports an error, so control-dependent assignments past that
//! point cannot launder secrets silently.
//!
//! Memory is tracked by *provenance*: a pointer argument carries the name
//! of the region it points into, pointer arithmetic preserves the
//! provenance set, and a per-state set of secret regions decides whether a
//! load yields tainted data. Storing a tainted value through a pointer
//! taints the pointed-to regions (monotonically — regions never become
//! public again, which keeps the fixpoint terminating and the analysis a
//! sound may-analysis). A store through a pointer with no known provenance
//! havocs memory: every subsequent load is treated as secret.
//!
//! Like every pass in this crate the analysis is derivation-blind and
//! conservative: it may flag code that is in fact constant-time, never
//! the reverse. The soundness direction is exercised semantically in the
//! workspace root (`tests/ct_semantics.rs`): programs the analysis calls
//! clean produce identical branch-decision and address traces in the
//! Bedrock2 interpreter across inputs that differ only in secret-labeled
//! arguments.

use crate::dataflow::{forward_solve, ForwardAnalysis, Lattice};
use crate::{Finding, FindingKind, Pass};
use rupicola_bedrock::cfg::{Cfg, Stmt, Terminator};
use rupicola_bedrock::{BExpr, BFunction, BinOp};
use rupicola_core::fnspec::{ArgSpec, FnSpec};
use rupicola_core::CompiledFunction;
use std::collections::{BTreeMap, BTreeSet};

/// Which inputs of a program are secret, and which assignment sites
/// deliberately declassify their result.
///
/// Parameter labels name either the model parameter or the Bedrock2
/// argument (both are accepted, so callers can label whichever level they
/// think in). For an array or cell parameter the label means the pointed-to
/// *contents* are secret; the pointer value itself and any `LenOf` length
/// argument stay public (lengths are part of the public interface, as in
/// the standard constant-time threat model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecrecyPolicy {
    /// Names of secret parameters (model or Bedrock2 level).
    pub secret_params: BTreeSet<String>,
    /// Assignment-site ordinals (see [`rupicola_bedrock::cfg`]) whose
    /// result is downgraded to public.
    pub declassify_sites: BTreeSet<usize>,
}

impl SecrecyPolicy {
    /// A policy marking the given parameters secret.
    pub fn secrets<I, S>(params: I) -> SecrecyPolicy
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SecrecyPolicy {
            secret_params: params.into_iter().map(Into::into).collect(),
            declassify_sites: BTreeSet::new(),
        }
    }

    /// Adds a declassification site (builder style).
    #[must_use]
    pub fn with_declassify(mut self, site: usize) -> SecrecyPolicy {
        self.declassify_sites.insert(site);
        self
    }

    /// Whether `name` (model parameter or Bedrock2 argument) is secret.
    pub fn is_secret(&self, name: &str) -> bool {
        self.secret_params.contains(name)
    }

    /// A canonical, stable rendering of the policy, suitable for keying
    /// (the service fingerprint includes it so artifacts are never served
    /// under a different policy than they were verified against).
    /// `BTreeSet` iteration makes the rendering order-independent.
    pub fn identity_string(&self) -> String {
        if self.secret_params.is_empty() && self.declassify_sites.is_empty() {
            return "public".to_string();
        }
        let secrets: Vec<&str> = self.secret_params.iter().map(String::as_str).collect();
        let sites: Vec<String> = self.declassify_sites.iter().map(ToString::to_string).collect();
        format!("secret={};declassify={}", secrets.join(","), sites.join(","))
    }
}

/// The taint of one value: whether the *value* is secret, and which memory
/// regions a pointer derived from it may point into.
#[derive(Debug, Clone, Default, PartialEq)]
struct TaintVal {
    tainted: bool,
    prov: BTreeSet<String>,
}

impl TaintVal {
    fn public() -> TaintVal {
        TaintVal::default()
    }

    fn secret() -> TaintVal {
        TaintVal { tainted: true, prov: BTreeSet::new() }
    }

    fn join_with(&mut self, other: &TaintVal) -> bool {
        let mut changed = false;
        if other.tainted && !self.tainted {
            self.tainted = true;
            changed = true;
        }
        for p in &other.prov {
            changed |= self.prov.insert(p.clone());
        }
        changed
    }
}

/// The per-point state: `None` = unreached.
#[derive(Debug, Clone, PartialEq)]
struct CtState(Option<CtData>);

#[derive(Debug, Clone, Default, PartialEq)]
struct CtData {
    /// Taint of each bound local. A local absent from the map is public
    /// with no provenance (reads of genuinely unbound locals are the
    /// definite-assignment pass's report, not ours).
    locals: BTreeMap<String, TaintVal>,
    /// Regions whose contents may hold secret data.
    secret_regions: BTreeSet<String>,
    /// A secret value was stored through a pointer of unknown provenance:
    /// all memory may now hold secrets.
    havoc: bool,
}

impl Lattice for CtState {
    fn join_with(&mut self, other: &Self) -> bool {
        match (&mut self.0, &other.0) {
            (_, None) => false,
            (s @ None, Some(_)) => {
                *s = other.0.clone();
                true
            }
            (Some(a), Some(b)) => {
                let mut changed = false;
                for (var, tv) in &b.locals {
                    match a.locals.get_mut(var) {
                        Some(mine) => changed |= mine.join_with(tv),
                        None => {
                            a.locals.insert(var.clone(), tv.clone());
                            changed = true;
                        }
                    }
                }
                for r in &b.secret_regions {
                    changed |= a.secret_regions.insert(r.clone());
                }
                if b.havoc && !a.havoc {
                    a.havoc = true;
                    changed = true;
                }
                changed
            }
        }
    }
}

/// Taint of an expression under a state (pure, no findings).
fn taint_of(e: &BExpr, data: &CtData) -> TaintVal {
    match e {
        BExpr::Lit(_) => TaintVal::public(),
        BExpr::Var(v) => data.locals.get(v).cloned().unwrap_or_default(),
        BExpr::Load(_, addr) => {
            let a = taint_of(addr, data);
            TaintVal { tainted: loaded_is_secret(&a, data), prov: BTreeSet::new() }
        }
        BExpr::InlineTable { index, .. } => {
            // A public table indexed by a secret yields a secret-dependent
            // value (and the access itself is a finding, reported by the
            // checking walk).
            TaintVal { tainted: taint_of(index, data).tainted, prov: BTreeSet::new() }
        }
        BExpr::Op(_, a, b) => {
            let mut t = taint_of(a, data);
            t.join_with(&taint_of(b, data));
            t
        }
    }
}

/// Whether a load through a pointer with taint `addr` may yield secret
/// data. A tainted address value already means the *access pattern* leaks;
/// the loaded value is then conservatively secret too. A pointer with no
/// known provenance is assumed to possibly alias any secret region.
fn loaded_is_secret(addr: &TaintVal, data: &CtData) -> bool {
    addr.tainted
        || data.havoc
        || addr.prov.iter().any(|p| data.secret_regions.contains(p))
        || (addr.prov.is_empty() && !data.secret_regions.is_empty())
}

struct CtAnalysis<'p> {
    policy: &'p SecrecyPolicy,
    entry: CtData,
}

impl ForwardAnalysis for CtAnalysis<'_> {
    type State = CtState;

    fn boundary(&self) -> CtState {
        CtState(Some(self.entry.clone()))
    }

    fn bottom(&self) -> CtState {
        CtState(None)
    }

    fn transfer(&self, stmt: &Stmt, state: &mut CtState) {
        let Some(data) = &mut state.0 else { return };
        match stmt {
            Stmt::Set { var, expr, site } => {
                let tv = if self.policy.declassify_sites.contains(site) {
                    TaintVal::public()
                } else {
                    taint_of(expr, data)
                };
                data.locals.insert(var.clone(), tv);
            }
            Stmt::Unset(v) => {
                data.locals.remove(v);
            }
            Stmt::Store(_, addr, val) => {
                if taint_of(val, data).tainted {
                    let a = taint_of(addr, data);
                    if a.prov.is_empty() {
                        data.havoc = true;
                    } else {
                        data.secret_regions.extend(a.prov.iter().cloned());
                    }
                }
            }
            Stmt::Call { rets, args, .. } | Stmt::Interact { rets, args, .. } => {
                // Conservative: the callee may mix any argument into any
                // result, and may store secrets through any pointer
                // argument it receives.
                let any_secret = args.iter().any(|a| taint_of(a, data).tainted);
                if any_secret {
                    for a in args {
                        let tv = taint_of(a, data);
                        data.secret_regions.extend(tv.prov.iter().cloned());
                    }
                }
                let tv = if any_secret { TaintVal::secret() } else { TaintVal::public() };
                for r in rets {
                    data.locals.insert(r.clone(), tv.clone());
                }
            }
            Stmt::AllocEnter { var, site, .. } => {
                data.locals.insert(
                    var.clone(),
                    TaintVal { tainted: false, prov: [format!("#stack{site}")].into() },
                );
            }
            Stmt::AllocExit { var, .. } => {
                data.locals.remove(var);
            }
        }
    }
}

/// Entry taint from the spec: secret scalars carry value taint, pointer
/// arguments carry the provenance of their parameter's region (secret or
/// not), lengths are public.
fn entry_data(spec: &FnSpec, policy: &SecrecyPolicy) -> CtData {
    let mut data = CtData::default();
    for arg in &spec.args {
        match arg {
            ArgSpec::Scalar { name, param, .. } => {
                let tv = if policy.is_secret(param) || policy.is_secret(name) {
                    TaintVal::secret()
                } else {
                    TaintVal::public()
                };
                data.locals.insert(name.clone(), tv);
            }
            ArgSpec::ArrayPtr { name, param, .. } | ArgSpec::CellPtr { name, param } => {
                data.locals
                    .insert(name.clone(), TaintVal { tainted: false, prov: [param.clone()].into() });
                if policy.is_secret(param) || policy.is_secret(name) {
                    data.secret_regions.insert(param.clone());
                }
            }
            ArgSpec::LenOf { name, .. } => {
                data.locals.insert(name.clone(), TaintVal::public());
            }
        }
    }
    data
}

fn finding(f: &BFunction, kind: FindingKind, site: Option<usize>, message: String) -> Finding {
    Finding { pass: Pass::Ct, kind, function: f.name.clone(), site, message }
}

/// Walks an expression's sub-terms, reporting secret-dependent addresses
/// and secret operands to variable-latency ops.
fn check_expr(
    e: &BExpr,
    data: &CtData,
    f: &BFunction,
    site: Option<usize>,
    where_: &str,
    findings: &mut Vec<Finding>,
) {
    match e {
        BExpr::Lit(_) | BExpr::Var(_) => {}
        BExpr::Load(_, addr) => {
            check_expr(addr, data, f, site, where_, findings);
            let a = taint_of(addr, data);
            if a.tainted {
                findings.push(finding(
                    f,
                    FindingKind::SecretAddress,
                    site,
                    format!("load address depends on a secret in {where_}"),
                ));
            }
        }
        BExpr::InlineTable { table, index, .. } => {
            check_expr(index, data, f, site, where_, findings);
            if taint_of(index, data).tainted {
                findings.push(finding(
                    f,
                    FindingKind::SecretAddress,
                    site,
                    format!("inline-table `{table}` indexed by a secret in {where_}"),
                ));
            }
        }
        BExpr::Op(op, a, b) => {
            check_expr(a, data, f, site, where_, findings);
            check_expr(b, data, f, site, where_, findings);
            if matches!(op, BinOp::DivU | BinOp::RemU)
                && (taint_of(a, data).tainted || taint_of(b, data).tainted)
            {
                findings.push(finding(
                    f,
                    FindingKind::SecretVariableLatency,
                    site,
                    format!("variable-latency `{op:?}` has a secret operand in {where_}"),
                ));
            }
        }
    }
}

/// Runs the analysis over one function body under an explicit spec and
/// policy. Used directly by the opt validation layer on candidate bodies
/// (which share the original certificate's spec).
pub fn run_function(f: &BFunction, spec: &FnSpec, policy: &SecrecyPolicy) -> Vec<Finding> {
    let cfg = Cfg::build(&f.body);
    let analysis = CtAnalysis { policy, entry: entry_data(spec, policy) };
    let sol = forward_solve(&cfg, &analysis);
    let mut findings = Vec::new();

    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut state = sol.ins[b].clone();
        for stmt in &block.stmts {
            if let Some(data) = &state.0 {
                match stmt {
                    Stmt::Set { var, expr, site } => {
                        check_expr(
                            expr,
                            data,
                            f,
                            Some(*site),
                            &format!("`{var} = …`"),
                            &mut findings,
                        );
                    }
                    Stmt::Store(_, addr, val) => {
                        check_expr(addr, data, f, None, "a store address", &mut findings);
                        check_expr(val, data, f, None, "a stored value", &mut findings);
                        if taint_of(addr, data).tainted {
                            findings.push(finding(
                                f,
                                FindingKind::SecretAddress,
                                None,
                                "store address depends on a secret".to_string(),
                            ));
                        }
                    }
                    Stmt::Call { args, .. } | Stmt::Interact { args, .. } => {
                        for a in args {
                            check_expr(a, data, f, None, "a call argument", &mut findings);
                        }
                    }
                    Stmt::Unset(_) | Stmt::AllocEnter { .. } | Stmt::AllocExit { .. } => {}
                }
            }
            analysis.transfer(stmt, &mut state);
        }
        if let Terminator::Branch { cond, .. } = &block.term {
            if let Some(data) = &state.0 {
                check_expr(cond, data, f, None, "a branch condition", &mut findings);
                if taint_of(cond, data).tainted {
                    findings.push(finding(
                        f,
                        FindingKind::SecretBranch,
                        None,
                        "branch condition depends on a secret".to_string(),
                    ));
                }
            }
        }
    }

    findings
}

/// Runs the analysis over a compiled function's certified body.
pub fn run(cf: &CompiledFunction, policy: &SecrecyPolicy) -> Vec<Finding> {
    run_function(&cf.function, &cf.spec, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupicola_bedrock::ast::{AccessSize, Cmd};
    use rupicola_lang::ElemKind;
    use rupicola_sep::ScalarKind;

    fn spec_scalar(name: &str, args: &[&str]) -> FnSpec {
        FnSpec::new(
            name,
            args.iter()
                .map(|a| ArgSpec::Scalar {
                    name: (*a).to_string(),
                    param: (*a).to_string(),
                    kind: ScalarKind::Word,
                })
                .collect(),
            vec![],
        )
    }

    fn spec_bytes(name: &str, arr: &str) -> FnSpec {
        FnSpec::new(
            name,
            vec![
                ArgSpec::ArrayPtr {
                    name: arr.to_string(),
                    param: arr.to_string(),
                    elem: ElemKind::Byte,
                },
                ArgSpec::LenOf {
                    name: "len".to_string(),
                    param: arr.to_string(),
                    elem: ElemKind::Byte,
                },
            ],
            vec![],
        )
    }

    fn kinds(findings: &[Finding]) -> Vec<&FindingKind> {
        findings.iter().map(|f| &f.kind).collect()
    }

    #[test]
    fn branch_on_secret_flagged() {
        let f = BFunction::new(
            "f",
            ["c"],
            ["out"],
            Cmd::seq([
                Cmd::if_(BExpr::var("c"), Cmd::set("out", BExpr::lit(1)), {
                    Cmd::set("out", BExpr::lit(0))
                }),
            ]),
        );
        let policy = SecrecyPolicy::secrets(["c"]);
        let findings = run_function(&f, &spec_scalar("f", &["c"]), &policy);
        assert!(kinds(&findings).contains(&&FindingKind::SecretBranch));
        // The same body under an all-public policy is clean.
        assert!(run_function(&f, &spec_scalar("f", &["c"]), &SecrecyPolicy::default()).is_empty());
    }

    #[test]
    fn branchless_select_on_secret_clean() {
        // m = 0 - c; out = (x & m) | (y & ~m): no branch, no flags.
        let f = BFunction::new(
            "sel",
            ["c", "x", "y"],
            ["out"],
            Cmd::seq([
                Cmd::set("m", BExpr::op(BinOp::Sub, BExpr::lit(0), BExpr::var("c"))),
                Cmd::set(
                    "out",
                    BExpr::op(
                        BinOp::Or,
                        BExpr::op(BinOp::And, BExpr::var("x"), BExpr::var("m")),
                        BExpr::op(
                            BinOp::And,
                            BExpr::var("y"),
                            BExpr::op(BinOp::Xor, BExpr::var("m"), BExpr::lit(u64::MAX)),
                        ),
                    ),
                ),
            ]),
        );
        let policy = SecrecyPolicy::secrets(["c", "x", "y"]);
        assert!(run_function(&f, &spec_scalar("sel", &["c", "x", "y"]), &policy).is_empty());
    }

    #[test]
    fn secret_indexed_load_flagged() {
        // out = s[s[0]]: the inner load is at a public index, the outer
        // address depends on the loaded (secret) byte.
        let f = BFunction::new(
            "f",
            ["s", "len"],
            ["out"],
            Cmd::seq([
                Cmd::set("i", BExpr::load(AccessSize::One, BExpr::var("s"))),
                Cmd::set(
                    "out",
                    BExpr::load(
                        AccessSize::One,
                        BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i")),
                    ),
                ),
            ]),
        );
        let policy = SecrecyPolicy::secrets(["s"]);
        let findings = run_function(&f, &spec_bytes("f", "s"), &policy);
        assert!(kinds(&findings).contains(&&FindingKind::SecretAddress));
    }

    #[test]
    fn public_indexed_load_of_secret_array_clean() {
        let f = BFunction::new(
            "f",
            ["s", "len"],
            ["out"],
            Cmd::set("out", BExpr::load(AccessSize::One, BExpr::var("s"))),
        );
        let policy = SecrecyPolicy::secrets(["s"]);
        assert!(run_function(&f, &spec_bytes("f", "s"), &policy).is_empty());
    }

    #[test]
    fn secret_division_flagged() {
        let f = BFunction::new(
            "f",
            ["a", "b"],
            ["out"],
            Cmd::set("out", BExpr::op(BinOp::DivU, BExpr::var("a"), BExpr::var("b"))),
        );
        let policy = SecrecyPolicy::secrets(["b"]);
        let findings = run_function(&f, &spec_scalar("f", &["a", "b"]), &policy);
        assert!(kinds(&findings).contains(&&FindingKind::SecretVariableLatency));
    }

    #[test]
    fn declassify_site_downgrades() {
        // out = a ^ b is secret; with site 0 declassified, branching on
        // `out` afterwards is allowed.
        let body = Cmd::seq([
            Cmd::set("t", BExpr::op(BinOp::Xor, BExpr::var("a"), BExpr::var("b"))),
            Cmd::if_(BExpr::var("t"), Cmd::set("out", BExpr::lit(1)), {
                Cmd::set("out", BExpr::lit(0))
            }),
        ]);
        let f = BFunction::new("f", ["a", "b"], ["out"], body);
        let spec = spec_scalar("f", &["a", "b"]);
        let secret = SecrecyPolicy::secrets(["a", "b"]);
        assert!(!run_function(&f, &spec, &secret).is_empty());
        let declassified = SecrecyPolicy::secrets(["a", "b"]).with_declassify(0);
        assert!(run_function(&f, &spec, &declassified).is_empty());
    }

    #[test]
    fn store_of_secret_taints_region() {
        // Store a secret into d, then reload it and branch: flagged even
        // though d itself was a public region.
        let f = BFunction::new(
            "f",
            ["d", "len", "x"],
            ["out"],
            Cmd::seq([
                Cmd::store(AccessSize::One, BExpr::var("d"), BExpr::var("x")),
                Cmd::set("t", BExpr::load(AccessSize::One, BExpr::var("d"))),
                Cmd::if_(BExpr::var("t"), Cmd::set("out", BExpr::lit(1)), {
                    Cmd::set("out", BExpr::lit(0))
                }),
            ]),
        );
        let mut spec = spec_bytes("f", "d");
        spec.args.push(ArgSpec::Scalar {
            name: "x".to_string(),
            param: "x".to_string(),
            kind: ScalarKind::Word,
        });
        let policy = SecrecyPolicy::secrets(["x"]);
        let findings = run_function(&f, &spec, &policy);
        assert!(kinds(&findings).contains(&&FindingKind::SecretBranch));
    }

    #[test]
    fn loop_on_public_length_clean() {
        // i = 0; while (i < len) { acc |= s[i]; i++ }: the memcmp shape.
        let f = BFunction::new(
            "f",
            ["s", "len"],
            ["out"],
            Cmd::seq([
                Cmd::set("i", BExpr::lit(0)),
                Cmd::set("acc", BExpr::lit(0)),
                Cmd::while_(
                    BExpr::op(BinOp::LtU, BExpr::var("i"), BExpr::var("len")),
                    Cmd::seq([
                        Cmd::set(
                            "acc",
                            BExpr::op(
                                BinOp::Or,
                                BExpr::var("acc"),
                                BExpr::load(
                                    AccessSize::One,
                                    BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("i")),
                                ),
                            ),
                        ),
                        Cmd::set("i", BExpr::op(BinOp::Add, BExpr::var("i"), BExpr::lit(1))),
                    ]),
                ),
                Cmd::set("out", BExpr::var("acc")),
            ]),
        );
        let policy = SecrecyPolicy::secrets(["s"]);
        assert!(run_function(&f, &spec_bytes("f", "s"), &policy).is_empty());
    }

    #[test]
    fn identity_string_is_stable_and_order_independent() {
        assert_eq!(SecrecyPolicy::default().identity_string(), "public");
        let a = SecrecyPolicy::secrets(["s", "t"]).with_declassify(3);
        let b = SecrecyPolicy::secrets(["t", "s"]).with_declassify(3);
        assert_eq!(a.identity_string(), "secret=s,t;declassify=3");
        assert_eq!(a.identity_string(), b.identity_string());
        assert_ne!(a.identity_string(), SecrecyPolicy::secrets(["s"]).identity_string());
    }
}
