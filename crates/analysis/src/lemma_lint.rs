//! Lemma-library linting.
//!
//! Rupicola's proof search is ordered and non-backtracking: the *first*
//! matching lemma commits the derivation (§2.2). Library hygiene therefore
//! matters in ways a backtracking prover would forgive:
//!
//! - two lemmas with the same name are indistinguishable to the
//!   name-based witness checker — an error;
//! - a lemma that always loses the race to an earlier one (matches only
//!   goals an earlier lemma also matches, never cited by an actual
//!   derivation) is *shadowed*: registered, billed, never used;
//! - a lemma that matches no probed goal shape and no derivation is
//!   *unreachable* for the probed corpus;
//! - a solver whose every recorded discharge is also provable by an
//!   earlier-registered solver is *redundant* on the corpus.
//!
//! Probing applies each statement lemma to the corpus programs' initial
//! goals with a fresh, resource-limited compiler per probe, under a panic
//! guard — a misbehaving extension lemma fails its own probe only.

use crate::{Finding, FindingKind, Pass};
use rupicola_core::lemma::HintDbs;
use rupicola_core::{catch_quiet, Compiler, CompiledFunction, EngineLimits, StmtGoal};
use rupicola_core::derive::Derivation;
use rupicola_core::error::CompileError;
use rupicola_lang::Model;
use std::collections::{BTreeMap, BTreeSet};

/// One probe subject: a program's initial goal plus the derivation its
/// certificate recorded (the ground truth for "actually used").
pub struct ProbeSuite {
    /// Display name (the program's function name).
    pub label: String,
    /// The source model (probe compilers evaluate tables against it).
    pub model: Model,
    /// The initial compilation goal.
    pub goal: StmtGoal,
    /// The recorded derivation.
    pub derivation: Derivation,
}

impl ProbeSuite {
    /// Builds a suite from a compilation certificate.
    ///
    /// # Errors
    ///
    /// Propagates the [`CompileError`] if the certificate's spec no longer
    /// produces an initial goal (cross-checked separately by the
    /// certificate pass).
    pub fn from_compiled(cf: &CompiledFunction) -> Result<ProbeSuite, CompileError> {
        Ok(ProbeSuite {
            label: cf.function.name.clone(),
            model: cf.model.clone(),
            goal: cf.initial_goal()?,
            derivation: cf.derivation.clone(),
        })
    }
}

fn finding(kind: FindingKind, message: String) -> Finding {
    Finding { pass: Pass::LemmaLint, kind, function: "(library)".to_string(), site: None, message }
}

/// Lints the hint databases against a corpus of probe suites.
pub fn run(dbs: &HintDbs, suites: &[ProbeSuite]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Duplicate names: fatal, since witnesses cite lemmas by name.
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for l in dbs.stmt_lemmas() {
        *seen.entry(l.name()).or_default() += 1;
    }
    for l in dbs.expr_lemmas() {
        *seen.entry(l.name()).or_default() += 1;
    }
    for (name, count) in &seen {
        if *count > 1 {
            findings.push(finding(
                FindingKind::DuplicateLemma { lemma: name.to_string() },
                format!(
                    "{count} registered lemmas share the name `{name}`; witness checking \
                     is name-based and cannot tell them apart"
                ),
            ));
        }
    }
    let mut solver_seen: BTreeMap<&str, usize> = BTreeMap::new();
    for s in dbs.solvers() {
        *solver_seen.entry(s.name()).or_default() += 1;
    }
    for (name, count) in &solver_seen {
        if *count > 1 {
            findings.push(finding(
                FindingKind::DuplicateLemma { lemma: name.to_string() },
                format!("{count} registered solvers share the name `{name}`"),
            ));
        }
    }

    // Ground truth: lemmas and solvers the corpus derivations actually
    // cite.
    let mut cited: BTreeSet<String> = BTreeSet::new();
    let mut records = Vec::new();
    for s in suites {
        s.derivation.root.walk(&mut |n| {
            cited.insert(n.lemma.to_string());
            for r in &n.side_conds {
                records.push(r.clone());
            }
        });
    }

    // Probe statement lemmas against each suite's initial goal. A probe
    // runs in a fresh, tightly-budgeted compiler: matching is what we
    // measure, not whether the lemma completes a derivation.
    let stmt = dbs.stmt_lemmas();
    let n = stmt.len();
    let mut matched_somewhere = vec![false; n];
    let mut first_somewhere = vec![false; n];
    for suite in suites {
        let mut first_seen = false;
        for (i, lemma) in stmt.iter().enumerate() {
            let matched = catch_quiet(|| {
                let mut cx = Compiler::with_limits(&suite.model, dbs, EngineLimits::default());
                lemma.try_apply(&suite.goal, &mut cx).is_some()
            })
            // A panicking lemma engaged with the goal: count it as a match
            // (its brokenness is reported by the engine's own isolation).
            .unwrap_or(true);
            if matched {
                matched_somewhere[i] = true;
                if !first_seen {
                    first_somewhere[i] = true;
                }
                first_seen = true;
            }
        }
    }
    for (i, lemma) in stmt.iter().enumerate() {
        let name = lemma.name();
        if cited.contains(name) {
            continue;
        }
        if matched_somewhere[i] && !first_somewhere[i] {
            findings.push(finding(
                FindingKind::ShadowedLemma { lemma: name.to_string() },
                format!(
                    "statement lemma `{name}` matches corpus goals but is always preceded \
                     by an earlier match, and no corpus derivation cites it (shadowed)"
                ),
            ));
        } else if !matched_somewhere[i] && !suites.is_empty() {
            findings.push(finding(
                FindingKind::UnreachableLemma { lemma: name.to_string() },
                format!(
                    "statement lemma `{name}` matches no corpus goal and no corpus \
                     derivation cites it (unreachable for these goal shapes)"
                ),
            ));
        }
    }

    // Expression lemmas are matched deep inside derivations; citation is
    // the only reliable reachability signal.
    if !suites.is_empty() {
        for lemma in dbs.expr_lemmas() {
            let name = lemma.name();
            if !cited.contains(name) {
                findings.push(finding(
                    FindingKind::UnreachableLemma { lemma: name.to_string() },
                    format!(
                        "expression lemma `{name}` is cited by no corpus derivation \
                         (unreachable for these goal shapes)"
                    ),
                ));
            }
        }
    }

    // Solver redundancy: a solver is redundant on the corpus if every side
    // condition it discharged is also discharged by an earlier-registered
    // solver.
    let solvers = dbs.solvers();
    for (si, solver) in solvers.iter().enumerate() {
        if si == 0 {
            continue;
        }
        let name = solver.name();
        let mine: Vec<_> = records.iter().filter(|r| r.solver == name).collect();
        if mine.is_empty() {
            continue;
        }
        let all_covered = mine.iter().all(|r| {
            solvers[..si].iter().any(|earlier| {
                catch_quiet(|| earlier.solve(&r.cond, &r.hyps)).unwrap_or(false)
            })
        });
        if all_covered {
            findings.push(finding(
                FindingKind::RedundantSolver { solver: name.to_string() },
                format!(
                    "solver `{name}` discharged {} side condition(s), all of which an \
                     earlier-registered solver also discharges (redundant on this corpus)",
                    mine.len()
                ),
            ));
        }
    }

    findings
}
