//! Monad encodings and postcondition lifts (§3.4.1).
//!
//! Rupicola's *extensional* effects are introduced through explicit monadic
//! encodings: "users start with a pure specification, implement a functional
//! model of it using monads, and then compile that model". This crate
//! provides the Rust renditions of the monads the paper supports —
//! nondeterminism, writer, I/O, and a generic free monad — together with the
//! monad-specific `lift` combinators that phrase compilation postconditions,
//! and executable statements of the lifting laws that the compilation lemmas
//! rely on. The laws are exercised by unit and property tests here; the
//! compilation side lives in `rupicola-ext`, and end-to-end agreement is
//! enforced by `rupicola-core`'s checker.
//!
//! # The nondeterminism lift
//!
//! A nondeterministic computation returning `A` is encoded as a predicate
//! `A → Prop` ([`Nondet`]). The lift is
//! `lift P = λ ma st. ∃ a, ma a ∧ P a st`, and the law used when compiling
//! `bind ma k` is: for any `a` with `ma a`, `lift P (bind ma k) st` follows
//! from `lift P (k a) st` — see [`Nondet::lift_holds`].
//!
//! # The writer lift
//!
//! A writer computation is a value plus accumulated output ([`Writer`]).
//! The lift is `lift o P = λ ma st. P (fst ma) (o ++ snd ma) st`, and
//! compiling `bind ma k` reduces `lift o P (bind ma k)` to
//! `lift (o ++ snd ma) P (k (fst ma))` — see [`Writer::lift`].

use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// A nondeterministic computation: the *set* of values it may produce,
/// encoded as a predicate (the paper's `A → Prop`).
///
/// For example, "a list of `n` unspecified bytes" is
/// `λ l. length l = n` — see [`Nondet::bytes`].
#[derive(Clone)]
pub struct Nondet<A> {
    pred: Rc<dyn Fn(&A) -> bool>,
    desc: String,
}

impl<A> fmt::Debug for Nondet<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nondet({})", self.desc)
    }
}

impl<A: 'static> Nondet<A> {
    /// The computation that may produce exactly the values satisfying
    /// `pred`.
    pub fn such_that<F>(desc: impl Into<String>, pred: F) -> Self
    where
        F: Fn(&A) -> bool + 'static,
    {
        Nondet { pred: Rc::new(pred), desc: desc.into() }
    }

    /// Monadic return: the singleton set.
    pub fn ret(a: A) -> Self
    where
        A: PartialEq + fmt::Debug,
    {
        let desc = format!("ret {a:?}");
        Nondet::such_that(desc, move |x| *x == a)
    }

    /// Whether `a` is a possible result.
    pub fn admits(&self, a: &A) -> bool {
        (self.pred)(a)
    }

    /// Monadic bind: `b ∈ bind ma k` iff `∃ a, ma a ∧ b ∈ k a`. Because the
    /// intermediate value is existentially quantified, the executable
    /// encoding takes the witness candidates to consider (the logical
    /// encoding in the paper does not need them).
    pub fn bind<B: 'static, K>(self, candidates: Vec<A>, k: K) -> Nondet<B>
    where
        K: Fn(&A) -> Nondet<B> + 'static,
    {
        let desc = format!("bind({})", self.desc);
        Nondet::such_that(desc, move |b| {
            candidates.iter().any(|a| self.admits(a) && k(a).admits(b))
        })
    }

    /// The postcondition lift: `lift P ma st = ∃ a, ma a ∧ P a st`.
    ///
    /// `lift_holds(p, a)` states the *introduction rule* the compiler uses:
    /// if `ma` admits `a` and `P a` holds, then `lift P ma` holds.
    pub fn lift_holds<P>(&self, p: P, witness: &A) -> bool
    where
        P: Fn(&A) -> bool,
    {
        self.admits(witness) && p(witness)
    }
}

impl Nondet<Vec<u8>> {
    /// A list of `n` unspecified bytes (the paper's example and Table 1's
    /// `alloc`).
    pub fn bytes(n: usize) -> Self {
        Nondet::such_that(format!("length l = {n}"), move |l: &Vec<u8>| l.len() == n)
    }
}

impl Nondet<u64> {
    /// An unspecified word strictly below `bound` (Table 1's `peek`).
    pub fn word_below(bound: u64) -> Self {
        Nondet::such_that(format!("w < {bound}"), move |w| *w < bound)
    }
}

/// A writer computation: "a pair of a value and some accumulated output".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Writer<A> {
    /// The computed value (`fst ma`).
    pub value: A,
    /// The output accumulated by this computation (`snd ma`).
    pub output: Vec<u64>,
}

impl<A> Writer<A> {
    /// Monadic return: no output.
    pub fn ret(value: A) -> Self {
        Writer { value, output: Vec::new() }
    }

    /// Emits one word of output.
    pub fn tell(w: u64) -> Writer<()> {
        Writer { value: (), output: vec![w] }
    }

    /// Monadic bind: outputs concatenate.
    pub fn bind<B, K>(self, k: K) -> Writer<B>
    where
        K: FnOnce(A) -> Writer<B>,
    {
        let Writer { value, mut output } = self;
        let Writer { value: b, output: out2 } = k(value);
        output.extend(out2);
        Writer { value: b, output }
    }

    /// The postcondition lift:
    /// `lift o P ma st = P (fst ma) (o ++ snd ma) st`.
    ///
    /// The parameter `o` "accumulates previous output, allowing us to
    /// compile monadic binds by accumulating their output into that
    /// parameter while reducing the source term".
    pub fn lift<P>(&self, prior: &[u64], p: P) -> bool
    where
        P: Fn(&A, &[u64]) -> bool,
    {
        let mut acc = prior.to_vec();
        acc.extend(&self.output);
        p(&self.value, &acc)
    }
}

/// The state threaded by [`Io`] computations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoState {
    /// Pending input words.
    pub input: VecDeque<u64>,
    /// Output words written so far.
    pub output: Vec<u64>,
}

/// The interactions performed by a free-monad run: `(tag, args, result)`
/// per command, in order.
pub type InteractionTrace = Vec<(String, Vec<u64>, u64)>;

/// The state-transformer representation underlying [`Io`].
type IoThunk<A> = Box<dyn FnOnce(&mut IoState) -> Result<A, IoError>>;

/// An I/O computation: a state transformer over [`IoState`].
pub struct Io<A>(IoThunk<A>);

/// Failure of an I/O computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError;

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "io input exhausted")
    }
}

impl std::error::Error for IoError {}

impl<A: 'static> Io<A> {
    /// Monadic return.
    pub fn ret(a: A) -> Self {
        Io(Box::new(move |_| Ok(a)))
    }

    /// Monadic bind.
    pub fn bind<B: 'static, K>(self, k: K) -> Io<B>
    where
        K: FnOnce(A) -> Io<B> + 'static,
    {
        Io(Box::new(move |st| {
            let a = (self.0)(st)?;
            (k(a).0)(st)
        }))
    }

    /// Runs the computation.
    ///
    /// # Errors
    ///
    /// Returns [`IoError`] when a read exhausts the input.
    pub fn run(self, st: &mut IoState) -> Result<A, IoError> {
        (self.0)(st)
    }
}

impl Io<u64> {
    /// Reads the next input word.
    pub fn read() -> Self {
        Io(Box::new(|st| st.input.pop_front().ok_or(IoError)))
    }
}

impl Io<()> {
    /// Writes one output word.
    pub fn write(w: u64) -> Self {
        Io(Box::new(move |st| {
            st.output.push(w);
            Ok(())
        }))
    }
}

impl<A> fmt::Debug for Io<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Io(..)")
    }
}

/// The generic free monad over word-valued commands: either a pure value or
/// a command with a continuation.
///
/// The nondeterminism, writer and I/O monads can all be obtained by
/// interpreting command tags; Rupicola compiles free-monad commands to
/// Bedrock2 `interact` statements, so any effect the environment can
/// implement is expressible.
pub enum Free<A> {
    /// A pure result.
    Pure(A),
    /// A command: tag, argument words, and the continuation applied to the
    /// command's result word.
    Op {
        /// Command tag.
        tag: String,
        /// Argument words.
        args: Vec<u64>,
        /// Continuation.
        k: Box<dyn FnOnce(u64) -> Free<A>>,
    },
}

impl<A: 'static> Free<A> {
    /// Monadic return.
    pub fn ret(a: A) -> Self {
        Free::Pure(a)
    }

    /// A single command returning its result word.
    pub fn op(tag: impl Into<String>, args: Vec<u64>) -> Free<u64> {
        Free::Op { tag: tag.into(), args, k: Box::new(Free::Pure) }
    }

    /// Monadic bind.
    pub fn bind<B: 'static, K>(self, k: K) -> Free<B>
    where
        K: FnOnce(A) -> Free<B> + 'static,
    {
        match self {
            Free::Pure(a) => k(a),
            Free::Op { tag, args, k: k1 } => Free::Op {
                tag,
                args,
                k: Box::new(move |w| k1(w).bind(k)),
            },
        }
    }

    /// Interprets the computation with a handler, collecting the trace of
    /// `(tag, args, result)` events — the analog of running compiled code
    /// and reading its Bedrock2 event trace.
    ///
    /// # Errors
    ///
    /// Propagates handler failures.
    pub fn interpret<H>(
        self,
        handler: &mut H,
    ) -> Result<(A, InteractionTrace), String>
    where
        H: FnMut(&str, &[u64]) -> Result<u64, String>,
    {
        let mut trace = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Free::Pure(a) => return Ok((a, trace)),
                Free::Op { tag, args, k } => {
                    let w = handler(&tag, &args)?;
                    trace.push((tag.clone(), args, w));
                    cur = k(w);
                }
            }
        }
    }
}

impl<A> fmt::Debug for Free<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Free::Pure(_) => write!(f, "Free::Pure(..)"),
            Free::Op { tag, args, .. } => write!(f, "Free::Op({tag}, {args:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nondet_bytes_admits_by_length_only() {
        let ma = Nondet::bytes(3);
        assert!(ma.admits(&vec![1, 2, 3]));
        assert!(ma.admits(&vec![0, 0, 0]));
        assert!(!ma.admits(&vec![1, 2]));
    }

    #[test]
    fn nondet_lift_introduction_rule() {
        // {…} c {lift P (bind ma k)} follows from ma a ∧ {…} c {lift P (k a)}.
        let ma = Nondet::word_below(10);
        let p = |w: &u64| (*w).is_multiple_of(2);
        assert!(ma.lift_holds(p, &4)); // witness 4: ma 4 ∧ P 4
        assert!(!ma.lift_holds(p, &5)); // P fails
        assert!(!ma.lift_holds(p, &12)); // ma fails
    }

    #[test]
    fn nondet_bind_composes_sets() {
        let ma = Nondet::word_below(3);
        let mb = ma.bind((0..3).collect(), |a| Nondet::word_below(a + 1));
        // b possible iff ∃ a < 3, b ≤ a.
        assert!(mb.admits(&0));
        assert!(mb.admits(&2));
        assert!(!mb.admits(&3));
    }

    #[test]
    fn nondet_ret_is_singleton() {
        let ma = Nondet::ret(7u64);
        assert!(ma.admits(&7));
        assert!(!ma.admits(&8));
    }

    #[test]
    fn writer_bind_concatenates_output() {
        let w = Writer::<()>::tell(1)
            .bind(|()| Writer::<()>::tell(2))
            .bind(|()| Writer::ret(42u64));
        assert_eq!(w.value, 42);
        assert_eq!(w.output, vec![1, 2]);
    }

    #[test]
    fn writer_lift_law() {
        // lift o P (bind ma k) = lift (o ++ snd ma) P (k (fst ma)).
        let ma = Writer { value: 7u64, output: vec![1, 2] };
        let k = |v: u64| Writer { value: v + 1, output: vec![3] };
        let p = |v: &u64, out: &[u64]| *v == 8 && out == [9, 1, 2, 3];
        let lhs = ma.clone().bind(k).lift(&[9], p);
        let mut o2 = vec![9u64];
        o2.extend(&ma.output);
        let rhs = k(ma.value).lift(&o2, p);
        assert_eq!(lhs, rhs);
        assert!(lhs);
    }

    #[test]
    fn writer_monad_laws() {
        // Left identity: bind (ret a) k = k a.
        let k = |v: u64| Writer { value: v * 2, output: vec![v] };
        assert_eq!(Writer::ret(21).bind(k), k(21));
        // Right identity: bind ma ret = ma.
        let ma = Writer { value: 3u64, output: vec![8] };
        assert_eq!(ma.clone().bind(Writer::ret), ma);
    }

    #[test]
    fn io_reads_and_writes_thread_state() {
        let prog = Io::read().bind(|x| Io::write(x + 1).bind(move |()| Io::ret(x)));
        let mut st = IoState { input: VecDeque::from([41]), output: vec![] };
        let v = prog.run(&mut st).unwrap();
        assert_eq!(v, 41);
        assert_eq!(st.output, vec![42]);
        assert!(st.input.is_empty());
    }

    #[test]
    fn io_read_exhausted_fails() {
        let mut st = IoState::default();
        assert_eq!(Io::read().run(&mut st), Err(IoError));
    }

    #[test]
    fn free_interprets_with_trace() {
        let prog = Free::<u64>::op("rng", vec![6]).bind(|a| {
            Free::<u64>::op("rng", vec![6]).bind(move |b| Free::Pure(a + b))
        });
        let mut n = 0;
        let (v, trace) = prog
            .interpret(&mut |tag, args| {
                assert_eq!(tag, "rng");
                assert_eq!(args, [6]);
                n += 1;
                Ok(n)
            })
            .unwrap();
        assert_eq!(v, 3);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].2, 1);
    }

    #[test]
    fn free_handler_failure_propagates() {
        let prog = Free::<u64>::op("boom", vec![]);
        let err = prog.interpret(&mut |_, _| Err("no".to_string())).unwrap_err();
        assert_eq!(err, "no");
    }

    #[test]
    fn free_monad_left_identity() {
        let k = |x: u64| Free::<u64>::op("f", vec![x]);
        let lhs = Free::Pure(5).bind(k);
        let rhs = k(5);
        let run = |p: Free<u64>| p.interpret(&mut |_, args| Ok(args[0] * 10)).unwrap();
        assert_eq!(run(lhs), run(rhs));
    }
}
