//! Rupicola-rs: relational compilation for performance-critical applications.
//!
//! This facade crate re-exports the full toolkit. See the repository README
//! for a guided tour and `DESIGN.md` for the system inventory.

pub use rupicola_analysis as analysis;
pub use rupicola_programs::parallel::{compile_suite_parallel, compile_suite_serial, SuiteResult};
pub use rupicola_bedrock as bedrock;
pub use rupicola_core as core;
pub use rupicola_ext as ext;
pub use rupicola_lang as lang;
pub use rupicola_monads as monads;
pub use rupicola_opt as opt;
pub use rupicola_opt::{optimize_compiled, PassId, PipelineConfig, PipelineReport};
pub use rupicola_programs as programs;
pub use rupicola_rv as rv;
pub use rupicola_rv::{lower_validated, RvBackendError, RvPipelineConfig, RvReport, RvStageId};
pub use rupicola_sep as sep;
pub use rupicola_service as service;
pub use rupicola_service::{compile_suite_cached, CachedResult, Store};
pub use rupicola_stackm as stackm;
