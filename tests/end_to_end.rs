//! End-to-end integration: model → relational compilation → witness
//! checking → Bedrock2 execution → C and Rust rendering, across the whole
//! benchmark suite.

use rupicola::bedrock::{cprint, rsprint, ExecState, Interpreter, NoExternals, Program};
use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::fnspec::{concretize, RetSpec};
use rupicola::ext::standard_dbs;
use rupicola::lang::eval::{eval_model, World};
use rupicola::lang::Value;
use rupicola::programs::suite;

fn workload_for(name: &str, n: usize) -> Vec<u8> {
    let mut state = 0x1234_5678_u64 | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match name {
                // Text-ish inputs for the string programs.
                "upstr" | "fasta" | "utf8" => 0x20 + (state & 0x3f) as u8,
                _ => (state & 0xff) as u8,
            }
        })
        .collect()
}

/// Compile, check, and cross-execute every suite program on a concrete
/// workload: the interpreter run of the generated Bedrock2 must agree with
/// the source semantics.
#[test]
fn suite_pipeline_agrees_with_source_semantics() {
    let dbs = standard_dbs();
    for entry in suite() {
        let name = entry.info.name;
        if name == "m3s" {
            continue; // scalar ABI; covered below
        }
        let compiled = (entry.compiled)().unwrap_or_else(|e| panic!("{name}: {e}"));
        let config = CheckConfig { vectors: 8, ..CheckConfig::default() };
        check_with(&compiled, &dbs, &config).unwrap_or_else(|e| panic!("{name}: {e}"));

        let data = workload_for(name, 64);
        let input = Value::byte_list(data.iter().copied());
        let expected = eval_model(&compiled.model, std::slice::from_ref(&input), &mut World::default())
            .unwrap_or_else(|e| panic!("{name} source eval: {e}"));

        let mut program = Program::new();
        program.insert(compiled.function.clone());
        let interp = Interpreter::new(&program);
        let call = concretize(&compiled.spec, &compiled.model.params, &[input]).unwrap();
        let mut state = ExecState::new(call.mem);
        let rets = interp
            .call(name, &call.args, &mut state, &mut NoExternals, 10_000_000)
            .unwrap_or_else(|e| panic!("{name} target run: {e}"));

        match &compiled.spec.rets[0] {
            RetSpec::Scalar { .. } => {
                assert_eq!(rets[0], expected.to_scalar_word().unwrap(), "{name}");
            }
            RetSpec::InPlace { .. } => {
                let region = state.mem.region(call.args[0]).unwrap();
                assert_eq!(
                    Value::from_layout_bytes(rupicola::lang::ElemKind::Byte, region).unwrap(),
                    expected,
                    "{name}"
                );
            }
        }
    }
}

#[test]
fn m3s_scalar_pipeline() {
    let compiled = rupicola::programs::m3s::compiled().unwrap();
    let mut program = Program::new();
    program.insert(compiled.function.clone());
    let interp = Interpreter::new(&program);
    for k in [0u32, 1, 0xdead_beef, u32::MAX] {
        let mut state = ExecState::default();
        let rets = interp
            .call("m3s", &[u64::from(k)], &mut state, &mut NoExternals, 10_000)
            .unwrap();
        assert_eq!(rets[0], u64::from(rupicola::programs::m3s::reference(k)));
    }
}

/// Every suite program renders to C (with the expected shape markers) and
/// transpiles to Rust.
#[test]
fn suite_renders_to_c_and_rust() {
    for entry in suite() {
        let compiled = (entry.compiled)().unwrap();
        let c = cprint::function_to_c(&compiled.function);
        assert!(c.contains(&format!("{}(", entry.info.name)), "{c}");
        let rs = rsprint::function_to_rust(&compiled.function).unwrap();
        assert!(rs.contains(&format!("pub fn {}(", entry.info.name)), "{rs}");
        if entry.info.features.loops {
            assert!(c.contains("while"), "{}: expected a loop\n{c}", entry.info.name);
        }
        if entry.info.features.inline {
            assert!(c.contains("static const"), "{}: expected a table", entry.info.name);
        }
    }
}

/// The derivation witnesses are structurally meaningful: they cite only
/// registered lemmas and record the loop invariants for loop programs.
#[test]
fn suite_derivations_are_well_formed() {
    let dbs = standard_dbs();
    for entry in suite() {
        let compiled = (entry.compiled)().unwrap();
        let mut lemmas = Vec::new();
        let mut invariants = 0;
        compiled.derivation.root.walk(&mut |n| {
            lemmas.push(n.lemma.clone());
            if n.invariant.is_some() {
                invariants += 1;
            }
        });
        for l in &lemmas {
            assert!(dbs.knows_lemma(l), "{}: unknown lemma {l}", entry.info.name);
        }
        if entry.info.features.loops {
            assert!(invariants > 0, "{}: loop program without invariant", entry.info.name);
        }
    }
}

/// Re-running the compiler is deterministic: same function, same witness.
#[test]
fn compilation_is_deterministic() {
    for entry in suite() {
        let a = (entry.compiled)().unwrap();
        let b = (entry.compiled)().unwrap();
        assert_eq!(a.function, b.function, "{}", entry.info.name);
        assert_eq!(a.derivation, b.derivation, "{}", entry.info.name);
    }
}
