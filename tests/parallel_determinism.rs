//! Determinism of the suite-parallel compilation driver.
//!
//! `compile_suite_parallel` hands each worker a disjoint strided slice of
//! pre-allocated result slots, so output order is suite order no matter how
//! the OS schedules the workers. These tests pin the stronger claim the
//! throughput layer rests on: the *contents* are byte-identical run to run
//! and identical to the serial driver's — same C rendering, same witness
//! node counts, same compile stats.

use rupicola::bedrock::cprint::function_to_c;
use rupicola::{compile_suite_parallel, compile_suite_serial};
use rupicola::ext::standard_dbs;

#[test]
fn parallel_runs_are_byte_identical_across_invocations() {
    let dbs = standard_dbs();
    let first = compile_suite_parallel(&dbs);
    let second = compile_suite_parallel(&dbs);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.name, b.name, "suite order must be deterministic");
        let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(
            function_to_c(&a.function),
            function_to_c(&b.function),
            "{}: C output differs between two parallel runs",
            a.function.name
        );
        assert_eq!(a.derivation.node_count, b.derivation.node_count);
        assert_eq!(a.derivation, b.derivation);
    }
}

#[test]
fn parallel_matches_serial_byte_for_byte() {
    let dbs = standard_dbs();
    let serial = compile_suite_serial(&dbs);
    let parallel = compile_suite_parallel(&dbs);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.name, p.name, "suite order must match");
        let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert_eq!(
            function_to_c(&s.function),
            function_to_c(&p.function),
            "{}: C output differs between serial and parallel drivers",
            s.function.name
        );
        assert_eq!(s.function, p.function);
        assert_eq!(s.derivation.node_count, p.derivation.node_count);
        assert_eq!(s.derivation, p.derivation);
        assert_eq!(
            (s.stats.solver_cache_hits, s.stats.solver_cache_misses),
            (p.stats.solver_cache_hits, p.stats.solver_cache_misses),
            "{}: per-program cache stats must not depend on the driver",
            s.function.name
        );
    }
}
