//! Integration battery for the persistent compilation service: artifact
//! round-trips, fingerprint stability, verified-load soundness under
//! corruption, and the warm-cache zero-derivation guarantee.

use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::serial::{decode_compiled_function, encode_compiled_function};
use rupicola::core::{DispatchMode, EngineLimits};
use rupicola::ext::standard_dbs;
use rupicola::lang::json;
use rupicola::programs::suite;
use rupicola::service::fingerprint::fingerprint;
use rupicola::service::incremental::{compile_suite_cached, Provenance};
use rupicola::service::store::{LoadOutcome, Store};
use rupicola_minicheck::check;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rupicola-itest-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `deserialize(serialize(cf))` is structurally the identity for every
/// benchmark program, through the *rendered text* (not just the value
/// tree), for every field the artifact carries.
#[test]
fn serialization_round_trips_all_seven_programs() {
    for entry in suite() {
        let cf = (entry.compiled)()
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", entry.info.name));
        let text = encode_compiled_function(&cf).render();
        let parsed = json::parse(&text)
            .unwrap_or_else(|e| panic!("{}: rendered JSON unparseable: {e}", entry.info.name));
        let back = decode_compiled_function(&parsed)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", entry.info.name));
        assert_eq!(back.function, cf.function, "{}", entry.info.name);
        assert_eq!(back.linked, cf.linked, "{}", entry.info.name);
        assert_eq!(back.derivation, cf.derivation, "{}", entry.info.name);
        assert_eq!(back.model, cf.model, "{}", entry.info.name);
        assert_eq!(back.spec, cf.spec, "{}", entry.info.name);
        assert_eq!(back.stats, cf.stats, "{}", entry.info.name);
        // And the decoded artifact still certifies.
        check_with(&back, &standard_dbs(), &CheckConfig::default())
            .unwrap_or_else(|e| panic!("{}: round-tripped artifact fails check: {e}", entry.info.name));
    }
}

/// Deterministic, semantically-targeted corruptions: every one must be
/// *evicted* by the verified load, and the subsequent pass must recompile
/// and re-store a good artifact.
#[test]
fn targeted_corruption_evicts_and_recompiles() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let entry = suite().into_iter().find(|e| e.info.name == "upstr").unwrap();
    let model = (entry.model)();
    let spec = (entry.spec)();
    let cf = (entry.compiled)().unwrap();

    type Corruption = Box<dyn Fn(&str) -> String>;
    let corruptions: Vec<(&str, Corruption)> = vec![
        ("truncated", Box::new(|t: &str| t[..t.len() / 2].to_string())),
        ("not json", Box::new(|_t: &str| "][".to_string())),
        (
            "counter tampered",
            Box::new(|t: &str| t.replacen("\"node_count\": ", "\"node_count\": 1", 1)),
        ),
        (
            "lemma renamed",
            Box::new(|t: &str| t.replace("compile_array_map", "compile_array_mop")),
        ),
        (
            "format bumped",
            Box::new(|t: &str| {
                let current = format!("\"format\": {}", rupicola::service::FORMAT_VERSION);
                t.replacen(&current, "\"format\": 999", 1)
            }),
        ),
    ];
    let root = scratch("targeted-corruption");
    // This test evicts the same key once per corruption; quarantine (which
    // has its own test) would kick in after the third and refuse the heal.
    let mut store = Store::open(&root).unwrap().with_quarantine_after(0);
    let key = store.key_for(&model, &spec, &dbs, &limits);
    let path = store.put(key, &cf).unwrap();
    let pristine = std::fs::read_to_string(&path).unwrap();
    for (what, corrupt) in corruptions {
        let bad = corrupt(&pristine);
        assert_ne!(bad, pristine, "{what}: corruption was a no-op");
        std::fs::write(&path, bad).unwrap();
        match store.load_verified(&model, &spec, &dbs, &limits) {
            LoadOutcome::Evicted { .. } => {}
            other => panic!("{what}: expected eviction, got {other:?}"),
        }
        assert!(!path.exists(), "{what}: eviction must delete the artifact");
        // Recompile-and-restore: the incremental path heals the store.
        let healed = rupicola::core::compile(&model, &spec, &dbs).unwrap();
        store.put(key, &healed).unwrap();
        match store.load_verified(&model, &spec, &dbs, &limits) {
            LoadOutcome::Hit(loaded) => assert_eq!(loaded.function, cf.function),
            other => panic!("{what}: healed store should hit, got {other:?}"),
        }
        std::fs::write(&path, &pristine).unwrap();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Randomized single-bit flips over the stored artifact. The property is
/// the soundness contract, not a fixed outcome: a flip either gets the
/// artifact evicted (and a recompile serves the request), or the load
/// still hits — in which case the store has already re-checked the
/// artifact and cross-checked its model and spec against the request, so
/// what was served is a *certified* answer to the *right* request.
#[test]
fn random_bit_flips_never_yield_an_unverified_artifact() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let entry = suite().into_iter().find(|e| e.info.name == "fasta").unwrap();
    let model = (entry.model)();
    let spec = (entry.spec)();
    let cf = (entry.compiled)().unwrap();
    let root = scratch("bitflip");
    // Full certification strength on load: the property below re-checks
    // every served artifact under `CheckConfig::default()`, so the store
    // must verify at the same strength (the fast 4-vector default could
    // legitimately serve a flip that only vector 11 distinguishes).
    // Quarantine off: 48 flips against one key would trip it long before
    // the property finishes exercising the evict-or-certify contract.
    let mut store = Store::open(&root)
        .unwrap()
        .with_check_config(CheckConfig::default())
        .with_quarantine_after(0);
    let key = store.key_for(&model, &spec, &dbs, &limits);
    let path = store.put(key, &cf).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    check("bit flips are evicted or re-verified", 48, |rng| {
        let mut bytes = pristine.clone();
        let at = rng.range(0, bytes.len() - 1);
        let bit = 1u8 << rng.below(8);
        bytes[at] ^= bit;
        std::fs::write(&path, &bytes).unwrap();
        match store.load_verified(&model, &spec, &dbs, &limits) {
            LoadOutcome::Evicted { .. } => {
                // The poisoned file is gone; a fresh put heals the slot.
                assert!(!path.exists());
                store.put(key, &cf).unwrap();
            }
            LoadOutcome::Hit(loaded) => {
                // Flip was immaterial (e.g. inside a focus label): the
                // served artifact still passed the checker on this load,
                // and must be for the requested inputs.
                assert_eq!(loaded.model, model);
                assert_eq!(loaded.spec, spec);
                check_with(&loaded, &dbs, &CheckConfig::default())
                    .expect("served artifact must certify under the full config");
                std::fs::write(&path, &pristine).unwrap();
            }
            LoadOutcome::Miss => panic!("artifact file exists; miss is impossible"),
            LoadOutcome::Unavailable { reason } => {
                panic!("healthy filesystem, no faults injected: {reason}")
            }
        }
    });
    let _ = std::fs::remove_dir_all(&root);
}

/// Same request in a *different process* produces the same key (the store
/// is shareable across runs — the whole point of persistence). The child
/// re-executes this test binary with `RUPICOLA_FP_CHILD=1`, which makes
/// this same test print its keys and exit; the parent diffs.
#[test]
fn fingerprints_stable_across_processes() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let mine: Vec<String> = suite()
        .iter()
        .map(|e| {
            format!(
                "{}={}",
                e.info.name,
                fingerprint(&(e.model)(), &(e.spec)(), &dbs, &limits).as_hex()
            )
        })
        .collect();
    if std::env::var_os("RUPICOLA_FP_CHILD").is_some() {
        for line in &mine {
            println!("FPLINE {line}");
        }
        return;
    }
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args(["fingerprints_stable_across_processes", "--exact", "--nocapture"])
        .env("RUPICOLA_FP_CHILD", "1")
        .output()
        .expect("re-exec test binary");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The harness's `test <name> ... ` prefix shares a line with the first
    // FPLINE under --nocapture, so split on the marker rather than the prefix.
    let theirs: Vec<&str> =
        stdout.lines().filter_map(|l| l.split("FPLINE ").nth(1)).collect();
    assert_eq!(theirs.len(), 7, "child printed {stdout}");
    for (a, b) in mine.iter().zip(theirs) {
        assert_eq!(a, b, "fingerprint differs across processes");
    }
}

/// Changing the lemma set, the registration order, or the dispatch mode
/// changes the key; identical rebuilds don't.
#[test]
fn fingerprints_track_hint_db_identity() {
    let limits = EngineLimits::default();
    let entry = suite().into_iter().find(|e| e.info.name == "m3s").unwrap();
    let model = (entry.model)();
    let spec = (entry.spec)();
    let base = fingerprint(&model, &spec, &standard_dbs(), &limits);

    // Identical rebuild: same key.
    assert_eq!(base, fingerprint(&model, &spec, &standard_dbs(), &limits));

    // One more lemma (same behavior class, appended): different key.
    let mut extra = standard_dbs();
    extra.register_expr(rupicola::ext::arith::ExprLit);
    assert_ne!(base, fingerprint(&model, &spec, &extra, &limits));

    // Same lemma set, different order: different key. First-match
    // dispatch makes order semantically relevant, so it must be part of
    // the identity.
    let mut reordered = standard_dbs();
    reordered.register_expr_front(rupicola::ext::arith::ExprLit);
    assert_ne!(
        fingerprint(&model, &spec, &extra, &limits),
        fingerprint(&model, &spec, &reordered, &limits)
    );

    // Dispatch mode: different key.
    let mut linear = standard_dbs();
    linear.set_dispatch_mode(DispatchMode::Linear);
    assert_ne!(base, fingerprint(&model, &spec, &linear, &limits));

    // Solver memo toggle: different key.
    let mut memoless = standard_dbs();
    memoless.set_solver_memo(false);
    assert_ne!(base, fingerprint(&model, &spec, &memoless, &limits));
}

/// The acceptance-criterion test: after a cold pass, a warm suite pass
/// serves all 7 programs from the store (zero engine derivations) with
/// every load re-checked, and the artifacts are bit-for-bit the cold ones.
#[test]
fn warm_suite_pass_performs_zero_derivations() {
    let root = scratch("warm-zero");
    let mut store = Store::open(&root).unwrap();
    let dbs = standard_dbs();

    let cold = compile_suite_cached(&mut store, &dbs);
    assert!(cold.iter().all(|r| r.provenance == Provenance::Compiled));
    let warm = compile_suite_cached(&mut store, &dbs);
    assert_eq!(warm.len(), 7);
    // Every program came from the store — the engine compiled nothing.
    assert!(
        warm.iter().all(|r| r.provenance == Provenance::Cache),
        "warm pass recompiled something: {warm:?}"
    );
    let stats = store.stats();
    assert_eq!(stats.hits, 7);
    assert_eq!(stats.evictions, 0);
    assert!(stats.verify_nanos > 0, "loads must actually re-verify");
    for (c, w) in cold.iter().zip(warm.iter()) {
        let (c, w) = (c.result.as_ref().unwrap(), w.result.as_ref().unwrap());
        assert_eq!(c.function, w.function);
        assert_eq!(c.derivation, w.derivation);
        assert_eq!(c.stats, w.stats, "build-time stats must survive the cache");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Protocol smoke over the in-memory server: a mixed batch against a warm
/// store reports cached results and coherent counters.
#[test]
fn batch_protocol_end_to_end() {
    let root = scratch("protocol");
    let mut store = Store::open(&root).unwrap();
    let dbs = standard_dbs();
    // Warm the store.
    compile_suite_cached(&mut store, &dbs);

    let input = "{\"op\":\"compile\",\"program\":\"crc32\"}\n{\"op\":\"suite\"}\n{\"op\":\"stats\"}\n";
    let mut out = Vec::new();
    let n = rupicola::service::serve(input.as_bytes(), &mut out, &mut store, &dbs).unwrap();
    assert_eq!(n, 3);
    let lines: Vec<json::Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| json::parse(l).unwrap())
        .collect();
    assert_eq!(lines[0].get("program").and_then(json::Json::as_str), Some("crc32"));
    assert_eq!(lines[0].get("cached").and_then(json::Json::as_bool), Some(true));
    assert_eq!(lines[1].get("cached").and_then(json::Json::as_u64), Some(7));
    let cache = lines[2].get("cache").expect("stats payload");
    assert!(cache.get("hits").and_then(json::Json::as_u64).unwrap() >= 7);
    assert_eq!(cache.get("evictions").and_then(json::Json::as_u64), Some(0));
    let _ = std::fs::remove_dir_all(&root);
}
