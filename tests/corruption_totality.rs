//! Corruption totality: the verified load must be a *total* function of
//! the file contents. DESIGN.md §12 claims any environmental corruption
//! collapses to eviction-and-recompile; this battery makes the claim
//! exhaustive rather than sampled — a stored envelope is truncated at
//! **every** byte offset, and every header field (`format`, `key`,
//! `program`) has **every bit of every byte** flipped. No outcome may be
//! a panic, and no served artifact may fail the checker.
//!
//! The envelope deliberately contains non-ASCII text (derivation focus
//! strings use `↦`), so truncation and bit flips routinely produce
//! invalid UTF-8 — which must surface as eviction (corruption), not as a
//! retry loop or an I/O error.

use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::core::EngineLimits;
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::Model;
use rupicola::sep::ScalarKind;
use rupicola::service::store::{LoadOutcome, Store};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rupicola-totality-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn word_spec(name: &str) -> FnSpec {
    FnSpec::new(
        name,
        vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
}

/// A small program keeps the envelope — and the O(bytes) sweep — small
/// without weakening the property: the verification ladder is the same
/// for every artifact.
fn small_artifact() -> (Model, FnSpec) {
    let model =
        Model::new("inc", ["x"], let_n("y", word_add(var("x"), word_lit(1)), var("y")));
    (model, word_spec("inc"))
}

#[test]
fn truncation_at_every_byte_offset_evicts_or_serves_certified() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let (model, spec) = small_artifact();
    let cf = rupicola::core::compile(&model, &spec, &dbs).unwrap();
    let root = scratch("trunc");
    // Quarantine off: this test evicts the same key thousands of times on
    // purpose. Full-strength check config so a surviving Hit is held to
    // the same bar the test re-checks it against.
    let mut store = Store::open(&root)
        .unwrap()
        .with_quarantine_after(0)
        .with_check_config(CheckConfig::default());
    let key = store.key_for(&model, &spec, &dbs, &limits);
    let path = store.put(key, &cf).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    assert!(pristine.len() > 512, "envelope suspiciously small: {}", pristine.len());

    for cut in 0..=pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        match store.load_verified(&model, &spec, &dbs, &limits) {
            LoadOutcome::Evicted { .. } => {
                assert!(!path.exists(), "offset {cut}: eviction must delete the file");
            }
            LoadOutcome::Hit(loaded) => {
                // Only the full-length "truncation" should land here, and
                // a served artifact must certify and answer this request.
                assert_eq!(loaded.model, model, "offset {cut}");
                assert_eq!(loaded.spec, spec, "offset {cut}");
                check_with(&loaded, &dbs, &CheckConfig::default()).unwrap_or_else(|e| {
                    panic!("offset {cut}: served artifact fails the checker: {e}")
                });
            }
            LoadOutcome::Miss => panic!("offset {cut}: the file exists; a miss is impossible"),
            LoadOutcome::Unavailable { reason } => {
                panic!("offset {cut}: corruption must never look like an outage: {reason}")
            }
        }
    }
    assert!(!store.degraded(), "corruption must never flip the store into degraded mode");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bit_flips_in_every_header_field_evict() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let (model, spec) = small_artifact();
    let cf = rupicola::core::compile(&model, &spec, &dbs).unwrap();
    let root = scratch("header-flip");
    let mut store = Store::open(&root).unwrap().with_quarantine_after(0);
    let key = store.key_for(&model, &spec, &dbs, &limits);
    let path = store.put(key, &cf).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let text = String::from_utf8(pristine.clone()).unwrap();

    // Locate each header field's bytes: from the opening quote of its
    // name through its value, up to (not including) the field delimiter.
    let mut regions: Vec<(&str, std::ops::Range<usize>)> = Vec::new();
    for field in ["format", "key", "program"] {
        let needle = format!("\"{field}\":");
        let start = text.find(&needle).unwrap_or_else(|| panic!("envelope lost `{field}`"));
        let end = start
            + text[start..]
                .find(['\n', ','])
                .unwrap_or_else(|| panic!("unterminated `{field}` field"));
        regions.push((field, start..end));
    }

    let mut flips = 0usize;
    let mut benign = 0usize;
    for (field, region) in regions {
        for at in region {
            for bit in 0..8u8 {
                let mut corrupt = pristine.clone();
                corrupt[at] ^= 1 << bit;
                std::fs::write(&path, &corrupt).unwrap();
                flips += 1;
                // The format version, key echo, and program name are each
                // cross-checked against the request, so almost every flip
                // evicts. The exceptions are representation-only flips the
                // parser is entitled to tolerate (e.g. a space becoming a
                // leading zero) — those must serve a *certified* answer to
                // *this* request, which is the soundness contract.
                match store.load_verified(&model, &spec, &dbs, &limits) {
                    LoadOutcome::Evicted { .. } => {
                        assert!(!path.exists(), "{field} byte {at} bit {bit}");
                    }
                    LoadOutcome::Hit(loaded) => {
                        benign += 1;
                        assert_eq!(loaded.model, model, "{field} byte {at} bit {bit}");
                        assert_eq!(loaded.spec, spec, "{field} byte {at} bit {bit}");
                        check_with(&loaded, &dbs, &CheckConfig::default()).unwrap_or_else(|e| {
                            panic!(
                                "{field} byte {at} bit {bit}: served artifact fails: {e}"
                            )
                        });
                    }
                    other => panic!(
                        "{field} byte {at} bit {bit}: expected eviction or certified hit, \
                         got {other:?}"
                    ),
                }
            }
        }
    }
    assert!(flips > 100, "the sweep should cover every header byte, got {flips}");
    assert_eq!(store.stats().evictions, flips - benign);
    assert!(
        benign * 20 < flips,
        "header flips should be overwhelmingly material: {benign}/{flips} benign"
    );
    let _ = std::fs::remove_dir_all(&root);
}
