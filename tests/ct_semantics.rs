//! Semantic ground truth for the constant-time analysis.
//!
//! The static analysis in `rupicola-analysis::ct` claims that a clean
//! program's control flow and memory-access pattern are independent of
//! its secret inputs. This battery checks that claim against the
//! *interpreter*: the execution engine records a leakage log
//! ([`CtLog`] — every branch decision and every address touched) and we
//! assert that
//!
//! 1. for every CT suite program, logs are **identical** across randomized
//!    input pairs that differ only in the secret-labeled arguments — on
//!    the certified body *and* on the optimized body produced under the
//!    program's policy;
//! 2. for every seeded CT mutant, a **distinguishing pair** exists: two
//!    secret inputs whose logs differ, witnessing that the leak the
//!    analysis reports is observable and not a false positive.
//!
//! Together these tie the analysis to its leakage model from both sides:
//! clean means nothing observable, flagged means something observable.

use rupicola::analysis::{ct, SecrecyPolicy};
use rupicola::bedrock::interp::{CtLog, ExecState, Interpreter, NoExternals};
use rupicola::bedrock::{BFunction, Program};
use rupicola::core::check::CheckConfig;
use rupicola::core::fnspec::concretize;
use rupicola::core::CompiledFunction;
use rupicola::ext::standard_dbs;
use rupicola::lang::Value;
use rupicola::opt::{optimize_compiled, PipelineConfig};
use rupicola::programs::{ct_suite, ctmutants};
use rupicola_minicheck::{check, Rng};

const FUEL: u64 = 1_000_000;
const PAIRS: u64 = 24;

/// Executes `body` on the concretized model vector and returns the
/// leakage log. `body` need not be `cf.function` — the optimized body and
/// mutant bodies share the original's spec, which is all concretization
/// needs.
fn leakage(body: &BFunction, cf: &CompiledFunction, vector: &[Value]) -> CtLog {
    let call = concretize(&cf.spec, &cf.model.params, vector).expect("vector concretizes");
    let mut program = Program::new();
    program.insert(body.clone());
    for callee in &cf.linked {
        program.insert(callee.clone());
    }
    let interp = Interpreter::new(&program);
    let mut state = ExecState::new(call.mem).with_ct_log();
    interp
        .call(&body.name, &call.args, &mut state, &mut NoExternals, FUEL)
        .unwrap_or_else(|e| panic!("{}: execution failed: {e}", body.name));
    state.ct_log.expect("log was requested")
}

/// A randomized input pair for `program` that agrees on every *public*
/// input (for `ct_memcmp` the shared length; `ct_select` is all-secret;
/// `chacha_qr` is a fixed-shape 4-word state) and differs in the secret
/// ones.
fn secret_pair(program: &str, rng: &mut Rng) -> (Vec<Value>, Vec<Value>) {
    match program {
        "ct_memcmp" => {
            let len = rng.below(12) as usize + 1;
            (
                vec![Value::byte_list(rng.bytes(len)), Value::byte_list(rng.bytes(len))],
                vec![Value::byte_list(rng.bytes(len)), Value::byte_list(rng.bytes(len))],
            )
        }
        "ct_select" => {
            let scalars = |rng: &mut Rng| {
                vec![
                    Value::Word(rng.next_u64() & 1),
                    Value::Word(rng.next_u64()),
                    Value::Word(rng.next_u64()),
                ]
            };
            (scalars(rng), scalars(rng))
        }
        "chacha_qr" => (
            vec![Value::word_list(rng.words(4))],
            vec![Value::word_list(rng.words(4))],
        ),
        other => panic!("no pair generator for {other}"),
    }
}

#[test]
fn clean_programs_leak_nothing_on_either_route() {
    let dbs = standard_dbs();
    let config = CheckConfig::default();

    for e in ct_suite() {
        let name = e.entry.info.name;
        let policy = SecrecyPolicy::secrets(e.secret_params.iter().copied());
        let mut cf = (e.entry.compiled)().unwrap_or_else(|err| panic!("{name}: {err}"));

        // The analysis agrees these are clean — the property below is
        // what that verdict *means*.
        assert!(ct::run(&cf, &policy).is_empty(), "{name}: analysis says clean");

        let pipeline = PipelineConfig::full().with_ct_policy(policy.clone());
        optimize_compiled(&mut cf, &dbs, &pipeline, &config);

        check(&format!("ct-leakage/{name}"), PAIRS, |rng| {
            let (v1, v2) = secret_pair(name, rng);
            let (l1, l2) = (leakage(&cf.function, &cf, &v1), leakage(&cf.function, &cf, &v2));
            assert_eq!(
                l1, l2,
                "{name}: certified body leaked — \
                 branch/address trace depends on secrets"
            );
            if let Some(opt) = &cf.optimized {
                let (o1, o2) = (leakage(opt, &cf, &v1), leakage(opt, &cf, &v2));
                assert_eq!(
                    o1, o2,
                    "{name}: optimized body leaked — \
                     the validated pipeline must preserve constant-time"
                );
            }
        });
    }
}

#[test]
fn every_seeded_mutant_has_a_distinguishing_pair() {
    // Hand-picked secret-input pairs that make each seeded leak
    // observable. Public inputs (lengths, shapes) agree within each pair.
    let witness = |program: &str| -> (Vec<Value>, Vec<Value>) {
        match program {
            // Equal arrays never exit early; a first-byte mismatch exits
            // immediately — different branch traces.
            "ct_memcmp" => (
                vec![Value::byte_list([1, 2, 3, 4]), Value::byte_list([1, 2, 3, 4])],
                vec![Value::byte_list([1, 2, 3, 4]), Value::byte_list([9, 2, 3, 4])],
            ),
            // The branchy select takes a different arm per condition.
            "ct_select" => (
                vec![Value::Word(0), Value::Word(5), Value::Word(7)],
                vec![Value::Word(1), Value::Word(5), Value::Word(7)],
            ),
            // The S-box lookup touches a table offset equal to the low
            // byte of the secret state word.
            "chacha_qr" => (
                vec![Value::word_list([0, 0, 0, 0])],
                vec![Value::word_list([1, 0, 0, 0])],
            ),
            other => panic!("no witness pair for {other}"),
        }
    };

    let suite = ct_suite();
    for m in ctmutants::all() {
        let e = suite
            .iter()
            .find(|e| e.entry.info.name == m.program)
            .unwrap_or_else(|| panic!("{}: unknown program {}", m.name, m.program));
        let policy = SecrecyPolicy::secrets(e.secret_params.iter().copied());
        let cf = (e.entry.compiled)().unwrap_or_else(|err| panic!("{}: {err}", m.program));
        let leaky = (m.build)(&cf.function);

        // The analysis flags it…
        assert!(
            !ct::run_function(&leaky, &cf.spec, &policy).is_empty(),
            "{}: analysis misses the seeded leak `{}`",
            m.program,
            m.name
        );

        // …and the leak is real: the logs tell the two inputs apart.
        let (v1, v2) = witness(m.program);
        let (l1, l2) = (leakage(&leaky, &cf, &v1), leakage(&leaky, &cf, &v2));
        assert_ne!(
            l1, l2,
            "{}: `{}` should be observable — no distinguishing pair found \
             (the finding would be a false positive)",
            m.program, m.name
        );
    }
}
