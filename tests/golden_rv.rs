//! Golden-snapshot tests for the RISC-V listings of the benchmark suite —
//! both routes: the validated spill-all lowering (`<name>.s`) and the
//! fully-optimized pipeline output (`<name>.opt.s`).
//!
//! `tests/golden_rs.rs` pins the Rust printer; this file pins the machine
//! backend. The lowering pipeline is required to be deterministic
//! (the allocator sorts by weight with name tiebreaks, the peepholes are
//! pure rewrites), so its output is snapshot-stable: an allocator or
//! peephole change that perturbs emitted code fails loudly in review
//! rather than silently shifting instruction counts.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! BLESS=1 cargo test --test golden_rv
//! ```
//!
//! and commit the diff under `tests/golden_rv/`.

use rupicola::bedrock::rv::listing;
use rupicola::compile_suite_parallel;
use rupicola::core::check::CheckConfig;
use rupicola::ext::standard_dbs;
use rupicola::{lower_validated, RvPipelineConfig};
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden_rv")
}

#[test]
fn rv_listings_match_checked_in_goldens() {
    let bless = rupicola::service::env::flag("BLESS").expect("BLESS");
    let dir = golden_dir();
    let dbs = standard_dbs();
    // The snapshot pins *which code is emitted*, not the validator's
    // strength (rvbench and the battery cover that in release); a couple
    // of vectors keeps the per-stage validation honest at debug speed.
    let check = CheckConfig { vectors: 2, ..CheckConfig::default() };
    let mut mismatches = Vec::new();
    let mut compare = |name: &str, file: String, rendered: &str| {
        let path = dir.join(&file);
        if bless {
            fs::create_dir_all(&dir).expect("create golden dir");
            fs::write(&path, rendered).expect("write golden");
            return;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); run `BLESS=1 cargo test --test golden_rv` \
                 once and commit the result",
                path.display()
            )
        });
        if rendered != golden {
            mismatches.push(format!(
                "{name}: RISC-V listing drifted from tests/golden_rv/{file}\n\
                 --- golden ---\n{golden}\n--- current ---\n{rendered}"
            ));
        }
    };
    for r in compile_suite_parallel(&dbs) {
        let compiled = r.result.expect("suite compiles");
        let (naive, _) = lower_validated(&compiled, &RvPipelineConfig::none(), &check)
            .unwrap_or_else(|e| panic!("{}: naive route: {e}", r.name));
        compare(r.name, format!("{}.s", r.name), &listing(&naive.asm));
        let (full, report) = lower_validated(&compiled, &RvPipelineConfig::full(), &check)
            .unwrap_or_else(|e| panic!("{}: full route: {e}", r.name));
        assert_eq!(
            report.rolled_back_count(),
            0,
            "{}: stage rolled back on the suite:\n{report}",
            r.name
        );
        compare(r.name, format!("{}.opt.s", r.name), &listing(&full.asm));
    }
    assert!(
        mismatches.is_empty(),
        "{} golden mismatch(es); if the change is intentional, re-bless:\n\n{}",
        mismatches.len(),
        mismatches.join("\n\n")
    );
}

#[test]
fn goldens_cover_exactly_the_suite_both_routes() {
    if rupicola::service::env::flag("BLESS").expect("BLESS") {
        return; // the blessing run may be mid-update
    }
    let mut expect: Vec<String> = rupicola::programs::suite()
        .iter()
        .flat_map(|e| [format!("{}.s", e.info.name), format!("{}.opt.s", e.info.name)])
        .collect();
    expect.sort();
    let mut have: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden_rv exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    have.sort();
    assert_eq!(have, expect, "tests/golden_rv/ out of sync with the suite");
}
