//! Integration tests of the independent static-analysis layer: the full
//! benchmark suite must analyze clean, and seeded defects — in code, in
//! certificates, and in hint databases — must each be caught by the pass
//! responsible for them.

use rupicola::analysis::{
    self, analyze, analyze_with_dbs, lemma_lint, run_code_passes, AbsVal, Bound, FindingKind,
    MemEnv, ProbeSuite, Range, RegionInfo, Severity, SizeInfo,
};
use rupicola::bedrock::{AccessSize, BExpr, BFunction, BinOp, Cmd};
use rupicola::core::error::CompileError;
use rupicola::core::lemma::{Applied, HintDbs, StmtLemma};
use rupicola::core::{Compiler, StmtGoal};
use rupicola::ext::standard_dbs;
use rupicola::programs::suite;
use rupicola_core::CompiledFunction;

fn compiled(name: &str) -> CompiledFunction {
    let entry = suite()
        .into_iter()
        .find(|e| e.info.name == name)
        .unwrap_or_else(|| panic!("unknown program {name}"));
    (entry.compiled)().unwrap_or_else(|e| panic!("{name} failed to compile: {e}"))
}

/// A one-region environment: `s` points at a byte array of `min_count`-or-
/// more elements whose count is bound to `len`.
fn byte_array_env(min_count: u64) -> MemEnv {
    MemEnv {
        regions: vec![RegionInfo {
            name: "s".into(),
            elem_bytes: 1,
            size: SizeInfo::Sym { min_count },
        }],
        entry: vec![
            ("s".into(), AbsVal::Ptr { region: 0, off: Range::exact(0) }),
            (
                "len".into(),
                AbsVal::Num(Range {
                    lo: min_count,
                    hi: Bound::Sym { region: 0, scale: 1, shift: 0, delta: 0 },
                }),
            ),
        ],
        count_equal: Vec::new(),
    }
}

// --- positive: the whole suite is clean -----------------------------------

/// Every benchmark passes every lint, including certificate cross-checking
/// against the databases that compiled it.
#[test]
fn all_benchmarks_analyze_clean() {
    let dbs = standard_dbs();
    for entry in suite() {
        let name = entry.info.name;
        let cf = (entry.compiled)().unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = analyze_with_dbs(&cf, Some(&dbs));
        assert!(
            report.is_clean(),
            "{name} has findings:\n{report}"
        );
    }
}

/// The standard lemma library lints with warnings at most (lemmas serving
/// features beyond the benchmark corpus), never errors.
#[test]
fn lemma_library_has_no_errors() {
    let dbs = standard_dbs();
    let suites: Vec<ProbeSuite> = suite()
        .into_iter()
        .map(|e| {
            let cf = (e.compiled)().expect("compiles");
            ProbeSuite::from_compiled(&cf).expect("probe suite")
        })
        .collect();
    let findings = lemma_lint::run(&dbs, &suites);
    for f in &findings {
        assert_eq!(f.severity(), Severity::Warning, "library error: {f}");
    }
    // Cited lemmas must never be flagged unreachable.
    let mut cited = std::collections::BTreeSet::new();
    for s in &suites {
        s.derivation.root.walk(&mut |n| {
            cited.insert(n.lemma.clone());
        });
    }
    for f in &findings {
        if let FindingKind::UnreachableLemma { lemma } = &f.kind {
            assert!(!cited.contains(lemma.as_str()), "cited lemma flagged unreachable: {lemma}");
        }
    }
}

// --- seeded code defects, one per pass ------------------------------------

#[test]
fn seeded_use_before_def_is_flagged() {
    let f = BFunction::new(
        "f",
        ["s", "len"],
        ["out"],
        Cmd::set("out", BExpr::var("nowhere")),
    );
    let findings = run_code_passes(&f, &byte_array_env(0));
    assert!(
        findings.iter().any(|f| matches!(&f.kind, FindingKind::UseBeforeDef { var } if var == "nowhere")),
        "{findings:?}"
    );
}

#[test]
fn seeded_dead_store_is_flagged_with_site() {
    let f = BFunction::new(
        "f",
        ["s", "len"],
        ["out"],
        Cmd::seq([Cmd::set("tmp", BExpr::lit(3)), Cmd::set("out", BExpr::lit(0))]),
    );
    let findings = run_code_passes(&f, &byte_array_env(0));
    let dead: Vec<_> = findings
        .iter()
        .filter(|f| matches!(&f.kind, FindingKind::DeadStore { var } if var == "tmp"))
        .collect();
    assert_eq!(dead.len(), 1, "{findings:?}");
    assert_eq!(dead[0].site, Some(0));
}

#[test]
fn seeded_out_of_footprint_load_is_flagged() {
    // load1 at s + len: one past the end of the array.
    let f = BFunction::new(
        "f",
        ["s", "len"],
        ["out"],
        Cmd::set(
            "out",
            BExpr::load(
                AccessSize::One,
                BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("len")),
            ),
        ),
    );
    let findings = run_code_passes(&f, &byte_array_env(4));
    assert!(
        findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::UnprovenAccess | FindingKind::OutOfFootprint
        )),
        "{findings:?}"
    );
}

#[test]
fn seeded_table_overrun_is_flagged() {
    let f = BFunction::new(
        "f",
        ["s", "len"],
        ["out"],
        Cmd::set("out", BExpr::table(AccessSize::One, "T", BExpr::lit(4))),
    )
    .with_table(rupicola::bedrock::BTable { name: "T".into(), data: vec![0; 4] });
    let findings = run_code_passes(&f, &byte_array_env(0));
    assert!(
        findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::TableOutOfBounds { table } if table == "T")),
        "{findings:?}"
    );
}

#[test]
fn seeded_stuck_loop_is_flagged() {
    let f = BFunction::new(
        "f",
        ["s", "len"],
        ["out"],
        Cmd::seq([
            Cmd::set("out", BExpr::lit(0)),
            Cmd::while_(BExpr::op(BinOp::LtU, BExpr::var("out"), BExpr::var("len")), Cmd::Skip),
        ]),
    );
    let findings = run_code_passes(&f, &byte_array_env(0));
    assert!(
        findings.iter().any(|f| matches!(f.kind, FindingKind::LoopNoProgress)),
        "{findings:?}"
    );
}

// --- seeded certificate defects -------------------------------------------

#[test]
fn stale_witness_counters_are_flagged() {
    let mut cf = compiled("fnv1a");
    cf.derivation.node_count += 1;
    let report = analyze(&cf);
    assert!(
        report.findings.iter().any(|f| matches!(f.kind, FindingKind::CertMismatch)),
        "{report}"
    );
}

#[test]
fn corrupted_inline_table_is_flagged() {
    let mut cf = compiled("crc32");
    cf.function.tables[0].data[7] ^= 0xff;
    let report = analyze(&cf);
    assert!(
        report.findings.iter().any(|f| matches!(f.kind, FindingKind::CertMismatch)),
        "{report}"
    );
}

#[test]
fn repointed_return_slot_is_flagged() {
    let mut cf = compiled("fnv1a");
    cf.function.rets = vec!["hijacked".into()];
    let report = analyze(&cf);
    assert!(
        report.findings.iter().any(|f| matches!(f.kind, FindingKind::CertMismatch)),
        "{report}"
    );
}

#[test]
fn unknown_cited_lemma_is_flagged() {
    let dbs = standard_dbs();
    let mut cf = compiled("fnv1a");
    cf.derivation.root.lemma = "no_such_lemma".into();
    let report = analyze_with_dbs(&cf, Some(&dbs));
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::UnknownLemma { lemma } if lemma == "no_such_lemma")),
        "{report}"
    );
    // Without databases the citation cannot be checked; the rest still is.
    assert!(!analyze(&cf).findings.iter().any(|f| matches!(f.kind, FindingKind::UnknownLemma { .. })));
}

// --- seeded library defects -----------------------------------------------

struct NamedNoop(&'static str);

impl StmtLemma for NamedNoop {
    fn name(&self) -> &'static str {
        self.0
    }
    fn try_apply(
        &self,
        _goal: &StmtGoal,
        _cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        None
    }
}

struct CatchAll;

impl StmtLemma for CatchAll {
    fn name(&self) -> &'static str {
        "test_catch_all"
    }
    fn try_apply(
        &self,
        _goal: &StmtGoal,
        _cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        // Matches everything; committing would fail. The linter only
        // measures matching, with a budgeted throwaway compiler.
        Some(Err(CompileError::Internal("catch-all for lint tests".into())))
    }
}

#[test]
fn duplicate_lemma_names_are_flagged() {
    let mut dbs = HintDbs::new();
    dbs.register_stmt(NamedNoop("twice"));
    dbs.register_stmt(NamedNoop("twice"));
    let findings = lemma_lint::run(&dbs, &[]);
    assert!(
        findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::DuplicateLemma { lemma } if lemma == "twice")),
        "{findings:?}"
    );
}

#[test]
fn shadowed_lemma_is_flagged() {
    // A lemma that matches every goal but is registered last: some earlier
    // lemma always matches first, and no derivation cites it.
    let mut dbs = standard_dbs();
    dbs.register_stmt(CatchAll);
    let cf = compiled("fnv1a");
    let suites = vec![ProbeSuite::from_compiled(&cf).expect("probe suite")];
    let findings = lemma_lint::run(&dbs, &suites);
    assert!(
        findings.iter().any(
            |f| matches!(&f.kind, FindingKind::ShadowedLemma { lemma } if lemma == "test_catch_all")
        ),
        "{findings:?}"
    );
    // Registered first instead, it matches first and is *not* shadowed
    // (it would be cited-or-first): the lint is order-sensitive.
    let mut front = standard_dbs();
    front.register_stmt_front(CatchAll);
    let findings = lemma_lint::run(&front, &suites);
    assert!(
        !findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::ShadowedLemma { lemma } if lemma == "test_catch_all")),
        "{findings:?}"
    );
}

// --- the analyzer as a second line of defense -----------------------------

/// The analyzer (which never replays the derivation) still kills every
/// stale-counter structural mutant and every corrupted-table mutant of the
/// fault matrix, and a nonzero share of structural mutants overall.
#[test]
fn analyzer_kills_structural_mutants() {
    use rupicola::core::faultinject::{mutants, MutationClass};
    let cf = compiled("crc32");
    let mut structural = 0usize;
    let mut structural_killed = 0usize;
    for m in mutants(&cf) {
        let killed = analyze(&m.cf).has_errors();
        if m.class.is_structural() {
            structural += 1;
            if killed {
                structural_killed += 1;
            }
        }
        match m.class {
            MutationClass::DroppedSideCond
            | MutationClass::TruncatedDerivation
            | MutationClass::CorruptedTableBytes => {
                assert!(killed, "analyzer missed: [{}] {}", m.class, m.description);
            }
            _ => {}
        }
    }
    assert!(structural > 0);
    assert!(structural_killed > 0, "analyzer killed no structural mutants");
}

/// The opt-in analyzing pipeline: accepts the honest artifact, rejects one
/// the analysis faults, and surfaces compile errors unchanged.
#[test]
fn analyzing_compile_gates_on_findings() {
    let entry = suite()
        .into_iter()
        .find(|e| e.info.name == "fnv1a")
        .expect("fnv1a in suite");
    let dbs = standard_dbs();
    let model = (entry.model)();
    let spec = compiled("fnv1a").spec;
    let opts = analysis::CompileOptions { analyze: true, ..Default::default() };
    let cf = analysis::compile(&model, &spec, &dbs, &opts).expect("clean program certifies");
    assert!(analyze_with_dbs(&cf, Some(&dbs)).is_clean());
}
