//! Equivalence battery for the throughput layer.
//!
//! The dispatch index and the solver memo cache are *performance* features:
//! by construction they must not change which lemma discharges a goal, the
//! recorded witness, or the emitted code. These tests check that claim
//! end-to-end, the way translation validation would: run the optimized
//! engine and the seed-faithful forced-linear engine on the same inputs and
//! require byte-identical artifacts.
//!
//! The property test goes further than the standard databases: it samples
//! random *subsets* of the lemma library (preserving registration order,
//! which is semantically significant — first match wins) and requires the
//! two engines to agree on every suite program, including agreeing that a
//! crippled library fails to compile. A dispatch-index bug — a lemma
//! bucketed under the wrong head constructor — shows up here as the indexed
//! engine failing (or worse, picking a later lemma) where the linear scan
//! succeeds.

use rupicola::bedrock::cprint::function_to_c;
use rupicola::bedrock::interp::NoExternals;
use rupicola::bedrock::{ExecState, Interpreter, Program};
use rupicola::core::check::{differential_inputs, CheckConfig};
use rupicola::core::{compile, DispatchMode, HintDbs};
use rupicola::ext::standard_dbs;
use rupicola::programs::suite;
use rupicola::{optimize_compiled, PipelineConfig};
use rupicola_minicheck::{check, Rng};

/// Rebuilds `base` with the lemmas selected by `keep_stmt`/`keep_expr`, in
/// the original registration order, and with every solver. Returns the pair
/// (indexed, forced-linear) over the *same* library.
fn subset_dbs(base: &HintDbs, keep_stmt: &[bool], keep_expr: &[bool]) -> (HintDbs, HintDbs) {
    let mut indexed = HintDbs::new();
    let mut linear = HintDbs::new();
    for (l, keep) in base.stmt_lemmas().iter().zip(keep_stmt) {
        if *keep {
            indexed.register_stmt_arc(l.clone());
            linear.register_stmt_arc(l.clone());
        }
    }
    for (l, keep) in base.expr_lemmas().iter().zip(keep_expr) {
        if *keep {
            indexed.register_expr_arc(l.clone());
            linear.register_expr_arc(l.clone());
        }
    }
    for s in base.solvers() {
        indexed.register_solver_arc(s.clone());
        linear.register_solver_arc(s.clone());
    }
    indexed.set_dispatch_mode(DispatchMode::Indexed);
    linear.set_dispatch_mode(DispatchMode::Linear);
    (indexed, linear)
}

/// Compiles every suite program under both engines and asserts agreement:
/// same success/failure verdict, and on success byte-identical Bedrock2,
/// C rendering, and `Derivation` tree.
fn assert_engines_agree(indexed: &HintDbs, linear: &HintDbs) {
    for entry in suite() {
        let name = entry.info.name;
        let (model, spec) = ((entry.model)(), (entry.spec)());
        let fast = compile(&model, &spec, indexed);
        let slow = compile(&model, &spec, linear);
        assert_eq!(
            fast.is_ok(),
            slow.is_ok(),
            "{name}: engines disagree on compilability (indexed: {fast:?}, linear: {slow:?})"
        );
        let (Ok(fast), Ok(slow)) = (fast, slow) else { continue };
        assert_eq!(fast.function, slow.function, "{name}: Bedrock2 output differs");
        assert_eq!(
            function_to_c(&fast.function),
            function_to_c(&slow.function),
            "{name}: C rendering differs"
        );
        assert_eq!(fast.derivation, slow.derivation, "{name}: derivation tree differs");
        assert_eq!(
            fast.derivation.node_count, slow.derivation.node_count,
            "{name}: witness node counts differ"
        );
    }
}

#[test]
fn indexed_engine_matches_linear_on_standard_dbs() {
    let base = standard_dbs();
    let all_stmt = vec![true; base.stmt_lemmas().len()];
    let all_expr = vec![true; base.expr_lemmas().len()];
    let (indexed, linear) = subset_dbs(&base, &all_stmt, &all_expr);
    assert_engines_agree(&indexed, &linear);
}

#[test]
fn indexed_engine_matches_linear_on_random_lemma_subsets() {
    let base = standard_dbs();
    let n_stmt = base.stmt_lemmas().len();
    let n_expr = base.expr_lemmas().len();
    check("equivalence/random-subsets", 24, |rng: &mut Rng| {
        // Bias toward large subsets so a healthy fraction of cases still
        // compile (all-lemmas is exercised by the test above; tiny subsets
        // mostly check that both engines fail identically).
        let keep = |rng: &mut Rng, n: usize| -> Vec<bool> {
            (0..n).map(|_| rng.below(8) != 0).collect()
        };
        let keep_stmt = keep(rng, n_stmt);
        let keep_expr = keep(rng, n_expr);
        let (indexed, linear) = subset_dbs(&base, &keep_stmt, &keep_expr);
        assert_engines_agree(&indexed, &linear);
    });
}

#[test]
fn optimized_body_matches_unoptimized_observable_behavior() {
    // The optimization pipeline is validated internally (checker + lints +
    // differential, per pass, with rollback). This leg re-checks the end
    // result *externally*: run the certified body and the final optimized
    // body side by side on the checker's concretized inputs and demand
    // byte-identical observable behavior — return words, final heap, and
    // event trace. Unlike the internal differential, this does not trust
    // any `rupicola_opt` comparison code: it drives the interpreter
    // directly from this test.
    let dbs = standard_dbs();
    let pipeline = PipelineConfig::full();
    let config = CheckConfig::default();
    let mut optimized_count = 0;
    for entry in suite() {
        let name = entry.info.name;
        let (model, spec) = ((entry.model)(), (entry.spec)());
        let mut cf = compile(&model, &spec, &dbs).expect("suite compiles");
        let report = optimize_compiled(&mut cf, &dbs, &pipeline, &config);
        assert_eq!(report.rolled_back_count(), 0, "{name}: rollback on suite:\n{report}");
        let Some(opt) = &cf.optimized else { continue };
        optimized_count += 1;
        assert_ne!(*opt, cf.function, "{name}: optimized body set but identical");

        let mut prog_orig = Program::new();
        prog_orig.insert(cf.function.clone());
        let mut prog_opt = Program::new();
        prog_opt.insert(opt.clone());
        for f in &cf.linked {
            prog_orig.insert(f.clone());
            prog_opt.insert(f.clone());
        }
        let interp_orig = Interpreter::new(&prog_orig);
        let interp_opt = Interpreter::new(&prog_opt);
        let inputs = differential_inputs(&cf, &config);
        assert!(!inputs.is_empty(), "{name}: no differential inputs");
        for input in inputs {
            let mut st_o = ExecState::new(input.mem.clone());
            let res_o = interp_orig
                .call_with_locals(name, &input.args, &mut st_o, &mut NoExternals, config.max_fuel);
            let mut st_c = ExecState::new(input.mem);
            let res_c = interp_opt
                .call_with_locals(name, &input.args, &mut st_c, &mut NoExternals, config.max_fuel);
            match (res_o, res_c) {
                (Err(_), Err(_)) => {}
                (Ok((rets_o, _)), Ok((rets_c, _))) => {
                    assert_eq!(rets_o, rets_c, "{name}: returns differ on [{}]", input.desc);
                    assert_eq!(st_o.mem, st_c.mem, "{name}: heap differs on [{}]", input.desc);
                    assert_eq!(st_o.trace, st_c.trace, "{name}: trace differs on [{}]", input.desc);
                }
                (o, c) => panic!(
                    "{name}: fault behavior differs on [{}]: orig {o:?} vs opt {c:?}",
                    input.desc
                ),
            }
        }
    }
    assert!(optimized_count >= 3, "only {optimized_count} suite programs optimized");
}

#[test]
fn memo_cache_does_not_change_artifacts() {
    // Same dispatch mode, cache on vs off: the memo can only change *how
    // fast* a side condition is discharged, never by which solver or with
    // what record.
    let mut cached = standard_dbs();
    cached.set_solver_memo(true);
    let mut uncached = standard_dbs();
    uncached.set_solver_memo(false);
    for entry in suite() {
        let name = entry.info.name;
        let (model, spec) = ((entry.model)(), (entry.spec)());
        let with_memo = compile(&model, &spec, &cached).expect("suite compiles");
        let without = compile(&model, &spec, &uncached).expect("suite compiles");
        assert_eq!(with_memo.function, without.function, "{name}: Bedrock2 differs");
        assert_eq!(with_memo.derivation, without.derivation, "{name}: derivation differs");
        assert!(
            with_memo.stats.solver_cache_hits + with_memo.stats.solver_cache_misses
                >= without.stats.solver_cache_hits,
            "{name}: cache counters malformed"
        );
        assert_eq!(
            without.stats.solver_cache_hits, 0,
            "{name}: disabled cache must record no hits"
        );
    }
}
