//! Equivalence battery for the throughput layer.
//!
//! The dispatch index and the solver memo cache are *performance* features:
//! by construction they must not change which lemma discharges a goal, the
//! recorded witness, or the emitted code. These tests check that claim
//! end-to-end, the way translation validation would: run the optimized
//! engine and the seed-faithful forced-linear engine on the same inputs and
//! require byte-identical artifacts.
//!
//! The property test goes further than the standard databases: it samples
//! random *subsets* of the lemma library (preserving registration order,
//! which is semantically significant — first match wins) and requires the
//! two engines to agree on every suite program, including agreeing that a
//! crippled library fails to compile. A dispatch-index bug — a lemma
//! bucketed under the wrong head constructor — shows up here as the indexed
//! engine failing (or worse, picking a later lemma) where the linear scan
//! succeeds.

use rupicola::bedrock::cprint::function_to_c;
use rupicola::core::{compile, DispatchMode, HintDbs};
use rupicola::ext::standard_dbs;
use rupicola::programs::suite;
use rupicola_minicheck::{check, Rng};

/// Rebuilds `base` with the lemmas selected by `keep_stmt`/`keep_expr`, in
/// the original registration order, and with every solver. Returns the pair
/// (indexed, forced-linear) over the *same* library.
fn subset_dbs(base: &HintDbs, keep_stmt: &[bool], keep_expr: &[bool]) -> (HintDbs, HintDbs) {
    let mut indexed = HintDbs::new();
    let mut linear = HintDbs::new();
    for (l, keep) in base.stmt_lemmas().iter().zip(keep_stmt) {
        if *keep {
            indexed.register_stmt_arc(l.clone());
            linear.register_stmt_arc(l.clone());
        }
    }
    for (l, keep) in base.expr_lemmas().iter().zip(keep_expr) {
        if *keep {
            indexed.register_expr_arc(l.clone());
            linear.register_expr_arc(l.clone());
        }
    }
    for s in base.solvers() {
        indexed.register_solver_arc(s.clone());
        linear.register_solver_arc(s.clone());
    }
    indexed.set_dispatch_mode(DispatchMode::Indexed);
    linear.set_dispatch_mode(DispatchMode::Linear);
    (indexed, linear)
}

/// Compiles every suite program under both engines and asserts agreement:
/// same success/failure verdict, and on success byte-identical Bedrock2,
/// C rendering, and `Derivation` tree.
fn assert_engines_agree(indexed: &HintDbs, linear: &HintDbs) {
    for entry in suite() {
        let name = entry.info.name;
        let (model, spec) = ((entry.model)(), (entry.spec)());
        let fast = compile(&model, &spec, indexed);
        let slow = compile(&model, &spec, linear);
        assert_eq!(
            fast.is_ok(),
            slow.is_ok(),
            "{name}: engines disagree on compilability (indexed: {fast:?}, linear: {slow:?})"
        );
        let (Ok(fast), Ok(slow)) = (fast, slow) else { continue };
        assert_eq!(fast.function, slow.function, "{name}: Bedrock2 output differs");
        assert_eq!(
            function_to_c(&fast.function),
            function_to_c(&slow.function),
            "{name}: C rendering differs"
        );
        assert_eq!(fast.derivation, slow.derivation, "{name}: derivation tree differs");
        assert_eq!(
            fast.derivation.node_count, slow.derivation.node_count,
            "{name}: witness node counts differ"
        );
    }
}

#[test]
fn indexed_engine_matches_linear_on_standard_dbs() {
    let base = standard_dbs();
    let all_stmt = vec![true; base.stmt_lemmas().len()];
    let all_expr = vec![true; base.expr_lemmas().len()];
    let (indexed, linear) = subset_dbs(&base, &all_stmt, &all_expr);
    assert_engines_agree(&indexed, &linear);
}

#[test]
fn indexed_engine_matches_linear_on_random_lemma_subsets() {
    let base = standard_dbs();
    let n_stmt = base.stmt_lemmas().len();
    let n_expr = base.expr_lemmas().len();
    check("equivalence/random-subsets", 24, |rng: &mut Rng| {
        // Bias toward large subsets so a healthy fraction of cases still
        // compile (all-lemmas is exercised by the test above; tiny subsets
        // mostly check that both engines fail identically).
        let keep = |rng: &mut Rng, n: usize| -> Vec<bool> {
            (0..n).map(|_| rng.below(8) != 0).collect()
        };
        let keep_stmt = keep(rng, n_stmt);
        let keep_expr = keep(rng, n_expr);
        let (indexed, linear) = subset_dbs(&base, &keep_stmt, &keep_expr);
        assert_engines_agree(&indexed, &linear);
    });
}

#[test]
fn memo_cache_does_not_change_artifacts() {
    // Same dispatch mode, cache on vs off: the memo can only change *how
    // fast* a side condition is discharged, never by which solver or with
    // what record.
    let mut cached = standard_dbs();
    cached.set_solver_memo(true);
    let mut uncached = standard_dbs();
    uncached.set_solver_memo(false);
    for entry in suite() {
        let name = entry.info.name;
        let (model, spec) = ((entry.model)(), (entry.spec)());
        let with_memo = compile(&model, &spec, &cached).expect("suite compiles");
        let without = compile(&model, &spec, &uncached).expect("suite compiles");
        assert_eq!(with_memo.function, without.function, "{name}: Bedrock2 differs");
        assert_eq!(with_memo.derivation, without.derivation, "{name}: derivation differs");
        assert!(
            with_memo.stats.solver_cache_hits + with_memo.stats.solver_cache_misses
                >= without.stats.solver_cache_hits,
            "{name}: cache counters malformed"
        );
        assert_eq!(
            without.stats.solver_cache_hits, 0,
            "{name}: disabled cache must record no hits"
        );
    }
}
