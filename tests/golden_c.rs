//! Golden-snapshot tests for the C renderings of the benchmark suite.
//!
//! The throughput layer (dispatch index, memo cache, parallel driver) is
//! required to be *byte*-output-preserving; the equivalence battery checks
//! that the engine agrees with itself across configurations, and these
//! snapshots pin the output against the checked-in goldens so that any
//! engine change that perturbs emitted code — even one that perturbs every
//! configuration identically — fails loudly in review.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! BLESS=1 cargo test --test golden_c
//! ```
//!
//! and commit the diff under `tests/golden/`.

use rupicola::bedrock::cprint::function_to_c;
use rupicola::compile_suite_parallel;
use rupicola::ext::standard_dbs;
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

#[test]
fn c_output_matches_checked_in_goldens() {
    // Strict flag parse: `BLESS=yes` or `BLESS=` is an error, not a silent
    // bless (or silent non-bless) — only 0/1/true/false/unset are valid.
    let bless = rupicola::service::env::flag("BLESS").expect("BLESS");
    let dir = golden_dir();
    let dbs = standard_dbs();
    let mut mismatches = Vec::new();
    for r in compile_suite_parallel(&dbs) {
        let compiled = r.result.expect("suite compiles");
        let rendered = function_to_c(&compiled.function);
        let path = dir.join(format!("{}.c", r.name));
        if bless {
            fs::create_dir_all(&dir).expect("create golden dir");
            fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden {} ({e}); run `BLESS=1 cargo test --test golden_c` \
                 once and commit the result",
                r.name,
                path.display()
            )
        });
        if rendered != golden {
            mismatches.push(format!(
                "{name}: C output drifted from tests/golden/{name}.c\n\
                 --- golden ---\n{golden}\n--- current ---\n{rendered}",
                name = r.name
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} golden mismatch(es); if the change is intentional, re-bless:\n\n{}",
        mismatches.len(),
        mismatches.join("\n\n")
    );
}

#[test]
fn goldens_cover_exactly_the_suite() {
    if rupicola::service::env::flag("BLESS").expect("BLESS") {
        return; // the blessing run may be mid-update
    }
    let mut expect: Vec<String> =
        rupicola::programs::suite().iter().map(|e| format!("{}.c", e.info.name)).collect();
    expect.sort();
    let mut have: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    have.sort();
    assert_eq!(have, expect, "tests/golden/ out of sync with the suite");
}
