//! Integration battery for RISC-V machine artifacts in the service store:
//! a validated [`RvArtifact`] rides the envelope under the rv-pipeline
//! fingerprint, is differentially re-validated on every load, round-trips
//! through both the plain and the sharded store, and is evicted the
//! moment its machine code is corrupted.

use rupicola::core::check::CheckConfig;
use rupicola::core::EngineLimits;
use rupicola::ext::standard_dbs;
use rupicola::programs::suite;
use rupicola::service::store::{LoadOutcome, Store};
use rupicola::service::ShardedStore;
use rupicola::{lower_validated, RvPipelineConfig};
use std::fs;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rupicola-rvstore-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn upstr() -> (rupicola::lang::Model, rupicola::core::fnspec::FnSpec, rupicola::core::CompiledFunction)
{
    let entry = suite().into_iter().find(|e| e.info.name == "upstr").unwrap();
    ((entry.model)(), (entry.spec)(), (entry.compiled)().unwrap())
}

#[test]
fn rv_artifact_round_trips_through_the_store() {
    let root = scratch("roundtrip");
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let pipeline = RvPipelineConfig::full();
    let (model, spec, cf) = upstr();
    let (art, _) = lower_validated(&cf, &pipeline, &CheckConfig::default()).unwrap();

    let mut store = Store::open(&root).unwrap().with_rv_pipeline(pipeline.clone());
    let key = store.key_for(&model, &spec, &dbs, &limits);
    // The rv pipeline is part of the key: a plain store disagrees.
    let mut plain = Store::open(scratch("plainkey")).unwrap();
    assert_ne!(key, plain.key_for(&model, &spec, &dbs, &limits));

    // An rv-keyed store refuses envelopes without the machine artifact —
    // a hit would otherwise silently downgrade the backend.
    assert!(store.put(key, &cf).is_err(), "rv store must demand the machine artifact");
    // And a plain store refuses to carry one it cannot re-validate.
    assert!(plain.put_with_rv(key, &cf, Some(&art)).is_err());

    store.put_with_rv(key, &cf, Some(&art)).unwrap();
    let (outcome, loaded_rv) = store.load_verified_rv(&model, &spec, &dbs, &limits);
    match outcome {
        LoadOutcome::Hit(loaded) => assert_eq!(loaded.function, cf.function),
        other => panic!("expected hit, got {other:?}"),
    }
    assert_eq!(
        loaded_rv.as_deref(),
        Some(&art),
        "machine artifact must round-trip bit-for-bit"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupted_rv_artifact_is_evicted() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let pipeline = RvPipelineConfig::full();
    let (model, spec, cf) = upstr();
    let (art, _) = lower_validated(&cf, &pipeline, &CheckConfig::default()).unwrap();

    // (corruption name, raw-text edit applied to the stored envelope)
    type Edit = Box<dyn Fn(&str) -> String>;
    let corruptions: Vec<(&str, Edit)> = vec![
        // A wrong-width load in the machine code: decodes fine, fails the
        // differential re-validation.
        ("widened load", Box::new(|t: &str| t.replacen("lbu", "lhu", 1))),
        // Machine code from some *other* pipeline configuration.
        (
            "pipeline identity tampered",
            Box::new(|t: &str| {
                t.replacen(&RvPipelineConfig::full().identity_string(), "lower", 1)
            }),
        ),
        // The rv block dropped wholesale — an rv-keyed store must not
        // serve a hit without its machine artifact.
        ("rv block dropped", Box::new(|t: &str| t.replacen("\"rv\"", "\"xx\"", 1))),
    ];
    for (tag, edit) in corruptions {
        let root = scratch(&format!("evict-{}", tag.replace(' ', "-")));
        let mut store = Store::open(&root).unwrap().with_rv_pipeline(pipeline.clone());
        let key = store.key_for(&model, &spec, &dbs, &limits);
        let path = store.put_with_rv(key, &cf, Some(&art)).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let corrupted = edit(&text);
        assert_ne!(text, corrupted, "{tag}: the edit must change the envelope");
        fs::write(&path, corrupted).unwrap();
        let (outcome, loaded_rv) = store.load_verified_rv(&model, &spec, &dbs, &limits);
        match outcome {
            LoadOutcome::Evicted { reason } => {
                assert!(!path.exists(), "{tag}: evicted artifact must be deleted ({reason})");
            }
            other => panic!("{tag}: expected eviction, got {other:?}"),
        }
        assert!(loaded_rv.is_none(), "{tag}: no machine artifact may survive eviction");
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn rv_artifact_round_trips_through_the_sharded_store() {
    let root = scratch("sharded");
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let pipeline = RvPipelineConfig::full();
    let (model, spec, cf) = upstr();
    let (art, _) = lower_validated(&cf, &pipeline, &CheckConfig::default()).unwrap();

    let sharded = ShardedStore::open(&root, 8).unwrap().with_rv_pipeline(pipeline.clone());
    assert_eq!(sharded.rv_pipeline().as_ref(), Some(&pipeline));
    let key = sharded.key_for(&model, &spec, &dbs, &limits);
    let path = sharded.put_with_rv(key, &cf, Some(&art)).unwrap();
    let (outcome, loaded_rv) = sharded.load_verified_rv(&model, &spec, &dbs, &limits);
    match outcome {
        LoadOutcome::Hit(loaded) => assert_eq!(loaded.function, cf.function),
        other => panic!("expected hit, got {other:?}"),
    }
    assert_eq!(loaded_rv.as_deref(), Some(&art));

    // Corrupt the shard's file on disk: the routed verified load evicts.
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, text.replacen("lbu", "lhu", 1)).unwrap();
    let (outcome, loaded_rv) = sharded.load_verified_rv(&model, &spec, &dbs, &limits);
    assert!(
        matches!(outcome, LoadOutcome::Evicted { .. }),
        "expected eviction, got {outcome:?}"
    );
    assert!(loaded_rv.is_none());
    assert!(!path.exists(), "evicted artifact must be deleted");
    let _ = fs::remove_dir_all(&root);
}
