//! The §4.1.3 expression-compiler case study: "machine words, bytes,
//! Booleans, integers, two representations of natural numbers, and
//! expressions with casts between different types".
//!
//! Each case compiles a one-binding model through the relational expression
//! compiler and validates it with the trusted checker — the Rust analog of
//! the per-construct correctness lemmas the case study describes.

use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::core::{compile, Hyp};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{Expr, Model};
use rupicola::sep::ScalarKind;

fn run_expr(name: &str, e: Expr, ret_kind: ScalarKind, hints: Vec<Hyp>) {
    let model = Model::new(name, ["x", "y"], let_n("r", e, var("r")));
    let mut spec = FnSpec::new(
        name,
        vec![
            ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
            ArgSpec::Scalar { name: "y".into(), param: "y".into(), kind: ScalarKind::Word },
        ],
        vec![RetSpec::Scalar { name: "out".into(), kind: ret_kind }],
    );
    for h in hints {
        spec = spec.with_hint(h);
    }
    let dbs = standard_dbs();
    let compiled = compile(&model, &spec, &dbs).unwrap_or_else(|e| panic!("{name}: {e}"));
    let config = CheckConfig { vectors: 8, ..CheckConfig::default() };
    check_with(&compiled, &dbs, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
}

#[test]
fn words_every_operator() {
    run_expr("w_add", word_add(var("x"), var("y")), ScalarKind::Word, vec![]);
    run_expr("w_sub", word_sub(var("x"), var("y")), ScalarKind::Word, vec![]);
    run_expr("w_mul", word_mul(var("x"), var("y")), ScalarKind::Word, vec![]);
    run_expr("w_and", word_and(var("x"), var("y")), ScalarKind::Word, vec![]);
    run_expr("w_or", word_or(var("x"), var("y")), ScalarKind::Word, vec![]);
    run_expr("w_xor", word_xor(var("x"), var("y")), ScalarKind::Word, vec![]);
    run_expr("w_shl", word_shl(var("x"), word_lit(9)), ScalarKind::Word, vec![]);
    run_expr("w_shr", word_shr(var("x"), word_lit(9)), ScalarKind::Word, vec![]);
    run_expr("w_sar", word_sar(var("x"), word_lit(9)), ScalarKind::Word, vec![]);
}

#[test]
fn words_signed_and_unsigned_comparisons_differ_correctly() {
    // The checker runs both across vectors including values above 2⁶³ − 1
    // is unlikely with the biased generator; explicitly exercise the
    // semantic difference in the source evaluator and the compiled code on
    // a one-sided spec instead.
    run_expr("w_ltu", word_of_bool(word_ltu(var("x"), var("y"))), ScalarKind::Word, vec![]);
    run_expr("w_lts", word_of_bool(word_lts(var("x"), var("y"))), ScalarKind::Word, vec![]);
    run_expr(
        "w_lts_neg",
        // (0 - x) <ₛ y : exercises genuinely negative left operands.
        word_of_bool(word_lts(word_sub(word_lit(0), var("x")), var("y"))),
        ScalarKind::Word,
        vec![],
    );
    run_expr("w_eq", word_of_bool(word_eq(var("x"), var("y"))), ScalarKind::Word, vec![]);
}

#[test]
fn division_and_remainder_guarded() {
    run_expr("w_div_lit", word_divu(var("x"), word_lit(10)), ScalarKind::Word, vec![]);
    run_expr("w_rem_lit", word_remu(var("x"), word_lit(10)), ScalarKind::Word, vec![]);
    run_expr(
        "w_div_var",
        word_divu(var("x"), var("y")),
        ScalarKind::Word,
        vec![Hyp::LtU(word_lit(0), var("y"))],
    );
}

#[test]
fn bytes_all_operators_and_wraparound() {
    let bx = byte_of_word(var("x"));
    let by = byte_of_word(var("y"));
    run_expr("b_add", byte_add(bx.clone(), by.clone()), ScalarKind::Byte, vec![]);
    run_expr("b_sub", byte_sub(bx.clone(), by.clone()), ScalarKind::Byte, vec![]);
    run_expr("b_and", byte_and(bx.clone(), by.clone()), ScalarKind::Byte, vec![]);
    run_expr("b_or", byte_or(bx.clone(), by.clone()), ScalarKind::Byte, vec![]);
    run_expr("b_xor", byte_xor(bx.clone(), by.clone()), ScalarKind::Byte, vec![]);
    run_expr("b_shl", byte_shl(bx.clone(), byte_lit(3)), ScalarKind::Byte, vec![]);
    run_expr("b_shr", byte_shr(bx.clone(), byte_lit(3)), ScalarKind::Byte, vec![]);
    run_expr("b_ltu", word_of_bool(byte_ltu(bx.clone(), by.clone())), ScalarKind::Word, vec![]);
    run_expr("b_eq", word_of_bool(byte_eq(bx, by)), ScalarKind::Word, vec![]);
}

#[test]
fn booleans_and_their_algebra() {
    let p = word_ltu(var("x"), var("y"));
    let q = word_eq(var("x"), word_lit(0));
    run_expr("bool_not", word_of_bool(not(p.clone())), ScalarKind::Word, vec![]);
    run_expr("bool_and", word_of_bool(andb(p.clone(), q.clone())), ScalarKind::Word, vec![]);
    run_expr("bool_or", word_of_bool(orb(p.clone(), q.clone())), ScalarKind::Word, vec![]);
    run_expr(
        "bool_demorgan",
        // ¬(p ∧ q) = ¬p ∨ ¬q — both sides, xored, is always 0.
        word_xor(
            word_of_bool(not(andb(p.clone(), q.clone()))),
            word_of_bool(orb(not(p), not(q))),
        ),
        ScalarKind::Word,
        vec![],
    );
}

#[test]
fn naturals_with_overflow_side_conditions() {
    let bound = Hyp::LtU(var("x"), word_lit(10_000));
    let n = nat_of_word(var("x"));
    run_expr(
        "n_add",
        word_of_nat(nat_add(n.clone(), nat_lit(3))),
        ScalarKind::Word,
        vec![bound.clone()],
    );
    run_expr(
        "n_sub_truncated",
        word_of_nat(nat_sub(n.clone(), nat_lit(5000))),
        ScalarKind::Word,
        vec![bound.clone()],
    );
    run_expr(
        "n_mul",
        word_of_nat(nat_mul(n.clone(), nat_lit(7))),
        ScalarKind::Word,
        vec![bound.clone()],
    );
    run_expr("n_lt", word_of_bool(nat_lt(n, nat_lit(42))), ScalarKind::Word, vec![bound]);
}

#[test]
fn unbounded_nat_addition_is_rejected() {
    // Without a range hint, `nat_add` cannot discharge its no-overflow
    // side condition: partiality is not silently compiled away.
    let model = Model::new(
        "n_unbounded",
        ["x", "y"],
        let_n(
            "r",
            word_of_nat(nat_add(nat_of_word(var("x")), nat_of_word(var("y")))),
            var("r"),
        ),
    );
    let spec = FnSpec::new(
        "n_unbounded",
        vec![
            ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
            ArgSpec::Scalar { name: "y".into(), param: "y".into(), kind: ScalarKind::Word },
        ],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    );
    let err = compile(&model, &spec, &standard_dbs()).unwrap_err();
    assert!(
        matches!(err, rupicola::core::CompileError::SideCondition { .. }),
        "got {err:?}"
    );
}

#[test]
fn casts_compose_across_all_kinds() {
    // word → byte → word (truncation then zero-extension).
    run_expr(
        "cast_wbw",
        word_of_byte(byte_of_word(var("x"))),
        ScalarKind::Word,
        vec![],
    );
    // word → nat → word (exact both ways).
    run_expr("cast_wnw", word_of_nat(nat_of_word(var("x"))), ScalarKind::Word, vec![]);
    // bool → word (0/1 encoding) mixed into arithmetic.
    run_expr(
        "cast_bool_arith",
        word_add(
            word_mul(word_of_bool(word_ltu(var("x"), var("y"))), word_lit(100)),
            word_of_byte(byte_of_word(var("x"))),
        ),
        ScalarKind::Word,
        vec![],
    );
    // byte arithmetic sandwiched between casts, nested three deep.
    run_expr(
        "cast_sandwich",
        word_of_byte(byte_xor(
            byte_of_word(word_shr(var("x"), word_lit(8))),
            byte_add(byte_of_word(var("y")), byte_lit(1)),
        )),
        ScalarKind::Word,
        vec![],
    );
}

/// The byte-result ABI: a function can return a byte-kinded scalar, and
/// the checker masks accordingly.
#[test]
fn byte_kinded_return_values() {
    run_expr(
        "ret_byte",
        byte_add(byte_of_word(var("x")), byte_of_word(var("y"))),
        ScalarKind::Byte,
        vec![],
    );
    run_expr(
        "ret_bool",
        word_ltu(var("x"), var("y")),
        ScalarKind::Bool,
        vec![],
    );
}
