uintptr_t ip(uintptr_t s, uintptr_t len) {
  uintptr_t n = 0;
  uintptr_t acc = 0;
  uintptr_t i = 0;
  uintptr_t r = 0;
  uintptr_t out = 0;
  n = ((len) >> (((uintptr_t)1ULL) & 63));
  acc = (uintptr_t)0ULL;
  i = (uintptr_t)0ULL;
  while (((uintptr_t)((i) < (n)))) {
    acc = ((acc) + ((((((uintptr_t)(*(uint8_t*)(((s) + ((((uintptr_t)2ULL) * (i))))))) << (((uintptr_t)8ULL) & 63))) | ((uintptr_t)(*(uint8_t*)(((s) + ((((((uintptr_t)2ULL) * (i))) + ((uintptr_t)1ULL))))))))));
    i = ((i) + ((uintptr_t)1ULL));
  }
  acc = ((((acc) & ((uintptr_t)65535ULL))) + (((acc) >> (((uintptr_t)16ULL) & 63))));
  acc = ((((acc) & ((uintptr_t)65535ULL))) + (((acc) >> (((uintptr_t)16ULL) & 63))));
  acc = ((((acc) & ((uintptr_t)65535ULL))) + (((acc) >> (((uintptr_t)16ULL) & 63))));
  acc = ((((acc) & ((uintptr_t)65535ULL))) + (((acc) >> (((uintptr_t)16ULL) & 63))));
  r = ((acc) ^ ((uintptr_t)65535ULL));
  out = r;
  return out;
}
