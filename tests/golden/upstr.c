void upstr(uintptr_t s, uintptr_t len) {
  uintptr_t _i0 = 0;
  uintptr_t b = 0;
  _i0 = (uintptr_t)0ULL;
  while (((uintptr_t)((_i0) < (len)))) {
    b = (uintptr_t)(*(uint8_t*)(((s) + (_i0))));
    *(uint8_t*)(((s) + (_i0))) = (uint8_t)(((b) ^ (((((((uintptr_t)((((((b) - ((uintptr_t)97ULL))) & ((uintptr_t)255ULL))) < ((uintptr_t)26ULL)))) << (((uintptr_t)5ULL) & 63))) & ((uintptr_t)255ULL)))));
    _i0 = ((_i0) + ((uintptr_t)1ULL));
  }
}
