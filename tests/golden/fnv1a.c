uintptr_t fnv1a(uintptr_t s, uintptr_t len) {
  uintptr_t acc = 0;
  uintptr_t _i0 = 0;
  uintptr_t b = 0;
  uintptr_t out = 0;
  acc = (uintptr_t)0xcbf29ce484222325ULL;
  _i0 = (uintptr_t)0ULL;
  while (((uintptr_t)((_i0) < (len)))) {
    b = (uintptr_t)(*(uint8_t*)(((s) + (_i0))));
    acc = ((((acc) ^ (b))) * ((uintptr_t)1099511628211ULL));
    _i0 = ((_i0) + ((uintptr_t)1ULL));
  }
  out = acc;
  return out;
}
