uintptr_t m3s(uintptr_t k) {
  uintptr_t out = 0;
  k = ((((k) * ((uintptr_t)3432918353ULL))) & ((uintptr_t)4294967295ULL));
  k = ((((((k) << (((uintptr_t)15ULL) & 63))) | (((k) >> (((uintptr_t)17ULL) & 63))))) & ((uintptr_t)4294967295ULL));
  k = ((((k) * ((uintptr_t)461845907ULL))) & ((uintptr_t)4294967295ULL));
  out = k;
  return out;
}
