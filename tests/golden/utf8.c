uintptr_t utf8(uintptr_t s, uintptr_t len) {
  uintptr_t n = 0;
  uintptr_t acc = 0;
  uintptr_t i = 0;
  uintptr_t out = 0;
  n = ((len) - ((uintptr_t)3ULL));
  acc = (uintptr_t)0ULL;
  i = (uintptr_t)0ULL;
  while (((uintptr_t)((i) < (n)))) {
    acc = ((acc) + ((((((((uintptr_t)(*(uint8_t*)(((s) + (i))))) * (((uintptr_t)(((uintptr_t)(*(uint8_t*)(((s) + (i))))) < ((uintptr_t)128ULL)))))) + ((((((((((uintptr_t)(*(uint8_t*)(((s) + (i))))) & ((uintptr_t)31ULL))) << (((uintptr_t)6ULL) & 63))) | ((((uintptr_t)(*(uint8_t*)(((s) + (((i) + ((uintptr_t)1ULL))))))) & ((uintptr_t)63ULL))))) * (((uintptr_t)(((((uintptr_t)(*(uint8_t*)(((s) + (i))))) >> (((uintptr_t)5ULL) & 63))) == ((uintptr_t)6ULL)))))))) + ((((((((((((uintptr_t)(*(uint8_t*)(((s) + (i))))) & ((uintptr_t)15ULL))) << (((uintptr_t)12ULL) & 63))) | ((((((((uintptr_t)(*(uint8_t*)(((s) + (((i) + ((uintptr_t)1ULL))))))) & ((uintptr_t)63ULL))) << (((uintptr_t)6ULL) & 63))) | ((((uintptr_t)(*(uint8_t*)(((s) + (((i) + ((uintptr_t)2ULL))))))) & ((uintptr_t)63ULL))))))) * (((uintptr_t)(((((uintptr_t)(*(uint8_t*)(((s) + (i))))) >> (((uintptr_t)4ULL) & 63))) == ((uintptr_t)14ULL)))))) + ((((((((((uintptr_t)(*(uint8_t*)(((s) + (i))))) & ((uintptr_t)7ULL))) << (((uintptr_t)18ULL) & 63))) | ((((((((uintptr_t)(*(uint8_t*)(((s) + (((i) + ((uintptr_t)1ULL))))))) & ((uintptr_t)63ULL))) << (((uintptr_t)12ULL) & 63))) | ((((((((uintptr_t)(*(uint8_t*)(((s) + (((i) + ((uintptr_t)2ULL))))))) & ((uintptr_t)63ULL))) << (((uintptr_t)6ULL) & 63))) | ((((uintptr_t)(*(uint8_t*)(((s) + (((i) + ((uintptr_t)3ULL))))))) & ((uintptr_t)63ULL))))))))) * (((uintptr_t)(((((uintptr_t)(*(uint8_t*)(((s) + (i))))) >> (((uintptr_t)3ULL) & 63))) == ((uintptr_t)30ULL)))))))))));
    i = ((i) + ((uintptr_t)1ULL));
  }
  out = acc;
  return out;
}
