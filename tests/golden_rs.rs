//! Golden-snapshot tests for the Rust renderings of the benchmark suite —
//! both routes: the certified body (`<name>.rs`) and the
//! translation-validated optimized body (`<name>.opt.rs`).
//!
//! `tests/golden_c.rs` pins the C printer; this file pins the Rust printer
//! that the bench crate's build script feeds to rustc, plus the output of
//! the full optimization pipeline. The pipeline is required to be
//! deterministic, so its output is snapshot-stable: any pass change that
//! perturbs emitted code fails loudly in review rather than silently
//! shifting benchmark numbers.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! BLESS=1 cargo test --test golden_rs
//! ```
//!
//! and commit the diff under `tests/golden_rs/`.

use rupicola::bedrock::rsprint::function_to_rust;
use rupicola::compile_suite_parallel;
use rupicola::core::check::CheckConfig;
use rupicola::ext::standard_dbs;
use rupicola::{optimize_compiled, PipelineConfig};
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden_rs")
}

#[test]
fn rust_output_matches_checked_in_goldens() {
    let bless = rupicola::service::env::flag("BLESS").expect("BLESS");
    let dir = golden_dir();
    let dbs = standard_dbs();
    let pipeline = PipelineConfig::full();
    let check = CheckConfig::default();
    let mut mismatches = Vec::new();
    let mut compare = |name: &str, file: String, rendered: &str| {
        let path = dir.join(&file);
        if bless {
            fs::create_dir_all(&dir).expect("create golden dir");
            fs::write(&path, rendered).expect("write golden");
            return;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); run `BLESS=1 cargo test --test golden_rs` \
                 once and commit the result",
                path.display()
            )
        });
        if rendered != golden {
            mismatches.push(format!(
                "{name}: Rust output drifted from tests/golden_rs/{file}\n\
                 --- golden ---\n{golden}\n--- current ---\n{rendered}"
            ));
        }
    };
    for r in compile_suite_parallel(&dbs) {
        let mut compiled = r.result.expect("suite compiles");
        let rendered = function_to_rust(&compiled.function).expect("transpiles");
        compare(r.name, format!("{}.rs", r.name), &rendered);
        // The optimized leg: run the full translation-validated pipeline
        // and pin its output too. A program the pipeline leaves untouched
        // (no `optimized` body) snapshots its certified body, matching the
        // bench build script's fallback.
        let report = optimize_compiled(&mut compiled, &dbs, &pipeline, &check);
        assert_eq!(
            report.rolled_back_count(),
            0,
            "{}: pass rolled back on the suite:\n{report}",
            r.name
        );
        let opt_fn = compiled.optimized.as_ref().unwrap_or(&compiled.function);
        let rendered_opt = function_to_rust(opt_fn).expect("opt transpiles");
        compare(r.name, format!("{}.opt.rs", r.name), &rendered_opt);
    }
    assert!(
        mismatches.is_empty(),
        "{} golden mismatch(es); if the change is intentional, re-bless:\n\n{}",
        mismatches.len(),
        mismatches.join("\n\n")
    );
}

#[test]
fn goldens_cover_exactly_the_suite_both_routes() {
    if rupicola::service::env::flag("BLESS").expect("BLESS") {
        return; // the blessing run may be mid-update
    }
    let mut expect: Vec<String> = rupicola::programs::suite()
        .iter()
        .flat_map(|e| {
            [format!("{}.rs", e.info.name), format!("{}.opt.rs", e.info.name)]
        })
        .collect();
    expect.sort();
    let mut have: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden_rs exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    have.sort();
    assert_eq!(have, expect, "tests/golden_rs/ out of sync with the suite");
}
