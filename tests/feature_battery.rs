//! The feature battery: "an additional suite of dozens of programs testing
//! features around arithmetic, monadic extensions, and stack allocation"
//! (§4.2). Every program here is compiled with the standard databases and
//! certified by the trusted checker.

use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec, TraceSpec};
use rupicola::core::{compile, Hyp, MonadCtx};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{ElemKind, Expr, Model, MonadKind, TableDef, Value};
use rupicola::sep::ScalarKind;

fn run(model: Model, spec: FnSpec) {
    let name = model.name.clone();
    let dbs = standard_dbs();
    let compiled = compile(&model, &spec, &dbs).unwrap_or_else(|e| panic!("{name}: {e}"));
    let config = CheckConfig { vectors: 8, ..CheckConfig::default() };
    check_with(&compiled, &dbs, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
}

fn wspec(name: &str, params: &[&str]) -> FnSpec {
    FnSpec::new(
        name,
        params
            .iter()
            .map(|p| ArgSpec::Scalar {
                name: (*p).to_string(),
                param: (*p).to_string(),
                kind: ScalarKind::Word,
            })
            .collect(),
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
}

fn aspec(name: &str, ret: RetSpec) -> FnSpec {
    FnSpec::new(
        name,
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
        ],
        vec![ret],
    )
}

// --- arithmetic ---

#[test]
fn arith_every_word_op() {
    for (i, mk) in [
        word_add(var("x"), var("y")),
        word_sub(var("x"), var("y")),
        word_mul(var("x"), var("y")),
        word_and(var("x"), var("y")),
        word_or(var("x"), var("y")),
        word_xor(var("x"), var("y")),
        word_shl(var("x"), word_lit(13)),
        word_shr(var("x"), word_lit(13)),
        word_sar(var("x"), word_lit(13)),
        word_of_bool(word_ltu(var("x"), var("y"))),
        word_of_bool(word_lts(var("x"), var("y"))),
        word_of_bool(word_eq(var("x"), var("y"))),
    ]
    .into_iter()
    .enumerate()
    {
        let name = format!("wop{i}");
        run(
            Model::new(name.clone(), ["x", "y"], let_n("r", mk, var("r"))),
            wspec(&name, &["x", "y"]),
        );
    }
}

#[test]
fn arith_division_with_literal_divisors() {
    run(
        Model::new(
            "div7",
            ["x"],
            let_n("q", word_divu(var("x"), word_lit(7)), let_n("r", word_remu(var("x"), word_lit(7)), word_add(word_mul(var("q"), word_lit(7)), var("r")))),
        ),
        wspec("div7", &["x"]),
    );
}

#[test]
fn arith_division_with_hypothesized_divisor() {
    let spec = wspec("divy", &["x", "y"]).with_hint(Hyp::LtU(word_lit(0), var("y")));
    run(
        Model::new("divy", ["x", "y"], let_n("q", word_divu(var("x"), var("y")), var("q"))),
        spec,
    );
}

#[test]
fn arith_byte_tower() {
    // Byte arithmetic with wrap-around and casts both ways.
    run(
        Model::new(
            "btower",
            ["x"],
            let_n(
                "b",
                byte_of_word(var("x")),
                let_n(
                    "c",
                    byte_add(byte_shl(var("b"), byte_lit(3)), byte_lit(0xAB)),
                    let_n("r", word_of_byte(byte_xor(var("c"), var("b"))), var("r")),
                ),
            ),
        ),
        wspec("btower", &["x"]),
    );
}

#[test]
fn arith_bool_algebra() {
    run(
        Model::new(
            "boolz",
            ["x", "y"],
            let_n(
                "p",
                word_ltu(var("x"), var("y")),
                let_n(
                    "q",
                    word_eq(var("x"), word_lit(0)),
                    let_n("r", word_of_bool(andb(orb(var("p"), var("q")), not(var("q")))), var("r")),
                ),
            ),
        ),
        wspec("boolz", &["x", "y"]),
    );
}

#[test]
fn arith_nat_bounded() {
    // Naturals compile under no-overflow side conditions; bounded inputs
    // discharge them.
    let spec = wspec("natz", &["x"]).with_hint(Hyp::LtU(var("x"), word_lit(1000)));
    run(
        Model::new(
            "natz",
            ["x"],
            let_n(
                "n",
                nat_of_word(var("x")),
                let_n(
                    "m",
                    nat_add(var("n"), nat_lit(17)),
                    let_n("r", word_of_nat(nat_sub(var("m"), nat_lit(5))), var("r")),
                ),
            ),
        ),
        spec,
    );
}

#[test]
fn arith_deep_expression_nesting() {
    let mut e = var("x");
    for k in 0..12 {
        e = word_xor(word_add(e, word_lit(k)), word_shr(var("x"), word_lit(k % 63)));
    }
    run(Model::new("deep", ["x"], let_n("r", e, var("r"))), wspec("deep", &["x"]));
}

// --- control flow ---

#[test]
fn conditional_chains() {
    run(
        Model::new(
            "clamp",
            ["x"],
            let_n(
                "a",
                ite(word_ltu(var("x"), word_lit(10)), word_lit(10), var("x")),
                let_n(
                    "b",
                    ite(word_ltu(word_lit(100), var("a")), word_lit(100), var("a")),
                    var("b"),
                ),
            ),
        ),
        wspec("clamp", &["x"]),
    );
}

#[test]
fn nested_range_fold_and_conditional() {
    // popcount-by-nibble via a ranged fold with a conditional body value.
    run(
        Model::new(
            "nibsum",
            ["x"],
            let_n(
                "r",
                range_fold(
                    "i",
                    "acc",
                    word_add(var("acc"), word_and(word_shr(var("x"), word_mul(var("i"), word_lit(4))), word_lit(0xf))),
                    word_lit(0),
                    word_lit(0),
                    word_lit(16),
                ),
                var("r"),
            ),
        ),
        wspec("nibsum", &["x"]),
    );
}

#[test]
fn early_exit_scan() {
    // First power of two ≥ x (bounded search with break).
    run(
        Model::new(
            "npow2",
            ["x"],
            let_n(
                "r",
                range_fold_break(
                    "i",
                    "acc",
                    ite(
                        word_ltu(var("acc"), var("x")),
                        pair(bool_lit(true), word_mul(var("acc"), word_lit(2))),
                        pair(bool_lit(false), var("acc")),
                    ),
                    word_lit(1),
                    word_lit(0),
                    word_lit(64),
                ),
                var("r"),
            ),
        ),
        wspec("npow2", &["x"]).with_hint(Hyp::LtU(var("x"), word_lit(1 << 62))),
    );
}

// --- arrays & tables ---

#[test]
fn array_reverse_complement_style_update() {
    // Two puts guarded by a length hint.
    let spec = aspec("swap2", RetSpec::InPlace { param: "s".into() })
        .with_hint(Hyp::LtU(word_lit(1), array_len_b(var("s"))));
    run(
        Model::new(
            "swap2",
            ["s"],
            let_n(
                "a",
                array_get_b(var("s"), word_lit(0)),
                let_n(
                    "b",
                    array_get_b(var("s"), word_lit(1)),
                    let_n(
                        "s",
                        array_put_b(var("s"), word_lit(0), var("b")),
                        let_n("s", array_put_b(var("s"), word_lit(1), var("a")), var("s")),
                    ),
                ),
            ),
        ),
        spec,
    );
}

#[test]
fn map_after_fold_reads_consistent_lengths() {
    run(
        Model::new(
            "foldmap",
            ["s"],
            let_n(
                "k",
                array_fold_b("acc", "b", word_add(var("acc"), word_of_byte(var("b"))), word_lit(0), var("s")),
                let_n(
                    "s",
                    array_map_b("b", byte_xor(var("b"), byte_of_word(var("k"))), var("s")),
                    var("s"),
                ),
            ),
        ),
        aspec("foldmap", RetSpec::InPlace { param: "s".into() }),
    );
}

#[test]
fn multi_table_lookup() {
    let t1: Vec<u8> = (0..=255u8).map(|b| b.rotate_left(1)).collect();
    let t2: Vec<u8> = (0..=255u8).map(|b| b ^ 0x55).collect();
    let model = Model::new(
        "twotables",
        ["s"],
        let_n(
            "s",
            array_map_b(
                "b",
                table_get("t2", word_of_byte(table_get("t1", word_of_byte(var("b"))))),
                var("s"),
            ),
            var("s"),
        ),
    )
    .with_table(TableDef::bytes("t1", t1))
    .with_table(TableDef::bytes("t2", t2));
    run(model, aspec("twotables", RetSpec::InPlace { param: "s".into() }));
}

#[test]
fn word_array_sum() {
    let spec = FnSpec::new(
        "wsum",
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Word },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Word },
        ],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    );
    run(
        Model::new(
            "wsum",
            ["s"],
            let_n(
                "r",
                array_fold_w("acc", "w", word_add(var("acc"), var("w")), word_lit(0), var("s")),
                var("r"),
            ),
        ),
        spec,
    );
}

#[test]
fn scatter_combine_two_arrays() {
    // dst := fold_range 0 len (fun i dst => put dst i (dst[i] ^ src[i])) dst
    // — the two-array combine that map cannot express (its body sees only
    // the current element of one array).
    let model = Model::new(
        "xor_into",
        ["dst", "src"],
        let_n(
            "dst",
            range_fold(
                "i",
                "dst",
                array_put_b(
                    var("dst"),
                    var("i"),
                    byte_xor(
                        array_get_b(var("dst"), var("i")),
                        array_get_b(var("src"), var("i")),
                    ),
                ),
                var("dst"),
                word_lit(0),
                array_len_b(var("dst")),
            ),
            var("dst"),
        ),
    );
    let spec = FnSpec::new(
        "xor_into",
        vec![
            ArgSpec::ArrayPtr { name: "dst".into(), param: "dst".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "dst".into(), elem: ElemKind::Byte },
            ArgSpec::ArrayPtr { name: "src".into(), param: "src".into(), elem: ElemKind::Byte },
        ],
        vec![RetSpec::InPlace { param: "dst".into() }],
    )
    // The combine reads src at dst's indices: equal lengths required.
    .with_hint(Hyp::EqWord(array_len_b(var("dst")), array_len_b(var("src"))));
    run(model, spec);
}

#[test]
fn scatter_reversed_copy_into_scratch() {
    // t := stack [0; 0; 0; 0]; t := fold_range 0 4 (fun i t =>
    //   put t i s[3 - i]) t — a reversed gather into a scratch buffer.
    let model = Model::new(
        "rev4",
        ["s"],
        let_n(
            "t",
            stack(rupicola::lang::Expr::Lit(Value::byte_list([0; 4]))),
            let_n(
                "t",
                range_fold(
                    "i",
                    "t",
                    array_put_b(
                        var("t"),
                        var("i"),
                        array_get_b(var("s"), word_sub(word_lit(3), var("i"))),
                    ),
                    var("t"),
                    word_lit(0),
                    word_lit(4),
                ),
                let_n(
                    "r",
                    array_fold_b(
                        "acc",
                        "b",
                        word_add(word_mul(var("acc"), word_lit(256)), word_of_byte(var("b"))),
                        word_lit(0),
                        var("t"),
                    ),
                    var("r"),
                ),
            ),
        ),
    );
    let spec = aspec("rev4", RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word })
        .with_hint(Hyp::EqWord(array_len_b(var("s")), word_lit(4)));
    run(model, spec);
}

// --- cells ---

#[test]
fn cell_counter_protocol() {
    let spec = FnSpec::new(
        "proto",
        vec![
            ArgSpec::CellPtr { name: "c".into(), param: "c".into() },
            ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
        ],
        vec![RetSpec::InPlace { param: "c".into() }],
    );
    run(
        Model::new(
            "proto",
            ["c", "x"],
            let_n(
                "c",
                cell_put(var("c"), word_add(cell_get(var("c")), var("x"))),
                let_n(
                    "c",
                    cell_put(var("c"), word_mul(cell_get(var("c")), word_lit(3))),
                    var("c"),
                ),
            ),
        ),
        spec,
    );
}

#[test]
fn cell_read_into_scalar_result() {
    let spec = FnSpec::new(
        "peek_cell",
        vec![ArgSpec::CellPtr { name: "c".into(), param: "c".into() }],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    );
    run(
        Model::new(
            "peek_cell",
            ["c"],
            let_n("v", cell_get(var("c")), word_add(var("v"), word_lit(1))),
        ),
        spec,
    );
}

// --- stack allocation ---

#[test]
fn stack_table_then_lookup() {
    run(
        Model::new(
            "stacked",
            ["x"],
            let_n(
                "t",
                stack(Expr::Lit(Value::byte_list([1, 2, 4, 8, 16, 32, 64, 128]))),
                let_n(
                    "b",
                    array_get_b(var("t"), word_and(var("x"), word_lit(7))),
                    word_of_byte(var("b")),
                ),
            ),
        ),
        wspec("stacked", &["x"]),
    );
}

#[test]
fn stack_buffer_mutated_then_summed() {
    run(
        Model::new(
            "stackmut",
            ["x"],
            let_n(
                "t",
                stack(Expr::Lit(Value::byte_list([0; 4]))),
                let_n(
                    "t",
                    array_put_b(var("t"), word_lit(0), byte_of_word(var("x"))),
                    let_n(
                        "r",
                        array_fold_b("acc", "b", word_add(var("acc"), word_of_byte(var("b"))), word_lit(0), var("t")),
                        var("r"),
                    ),
                ),
            ),
        ),
        wspec("stackmut", &["x"]),
    );
}

// --- monadic extensions ---

#[test]
fn nondet_scratch_pipeline() {
    let spec = wspec("ndpipe", &["x"]).with_monad(MonadCtx::Monadic(MonadKind::Nondet));
    run(
        Model::new(
            "ndpipe",
            ["x"],
            bind(
                MonadKind::Nondet,
                "buf",
                nondet_bytes(word_lit(4)),
                let_n(
                    "buf",
                    array_put_b(var("buf"), word_lit(2), byte_of_word(var("x"))),
                    let_n(
                        "b",
                        array_get_b(var("buf"), word_lit(2)),
                        ret(MonadKind::Nondet, word_of_byte(var("b"))),
                    ),
                ),
            ),
        ),
        spec,
    );
}

#[test]
fn io_echo_loop_free() {
    let spec = FnSpec::new(
        "pump3",
        vec![],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
    .with_monad(MonadCtx::Monadic(MonadKind::Io))
    .with_trace(TraceSpec::MirrorsSource);
    run(
        Model::new(
            "pump3",
            Vec::<String>::new(),
            bind(
                MonadKind::Io,
                "a",
                io_read(),
                bind(
                    MonadKind::Io,
                    "b",
                    io_read(),
                    bind(
                        MonadKind::Io,
                        "_",
                        io_write(word_add(var("a"), var("b"))),
                        bind(
                            MonadKind::Io,
                            "c",
                            io_read(),
                            ret(MonadKind::Io, word_xor(var("c"), var("a"))),
                        ),
                    ),
                ),
            ),
        ),
        spec,
    );
}

#[test]
fn writer_logs_intermediates() {
    let spec = wspec("logged", &["x"])
        .with_monad(MonadCtx::Monadic(MonadKind::Writer))
        .with_trace(TraceSpec::MirrorsSource);
    run(
        Model::new(
            "logged",
            ["x"],
            bind(
                MonadKind::Writer,
                "y",
                ret(MonadKind::Writer, word_mul(var("x"), var("x"))),
                bind(
                    MonadKind::Writer,
                    "_",
                    writer_tell(var("y")),
                    bind(
                        MonadKind::Writer,
                        "_",
                        writer_tell(word_add(var("y"), word_lit(1))),
                        ret(MonadKind::Writer, var("y")),
                    ),
                ),
            ),
        ),
        spec,
    );
}

#[test]
fn nondet_peek_guarded() {
    let spec = wspec("pickle", &["x"])
        .with_monad(MonadCtx::Monadic(MonadKind::Nondet))
        .with_hint(Hyp::LtU(var("x"), word_lit(1 << 32)));
    run(
        Model::new(
            "pickle",
            ["x"],
            bind(
                MonadKind::Nondet,
                "w",
                nondet_word(word_add(var("x"), word_lit(1))),
                ret(MonadKind::Nondet, word_add(var("w"), word_lit(5))),
            ),
        ),
        spec,
    );
}

// --- combinations ---

#[test]
fn checksum_then_uppercase() {
    // A fold followed by an in-place map in the same function: two loops,
    // two invariants, one shared array.
    run(
        Model::new(
            "sum_up",
            ["s"],
            let_n(
                "k",
                array_fold_b("acc", "b", word_xor(var("acc"), word_of_byte(var("b"))), word_lit(0), var("s")),
                let_n(
                    "s",
                    array_map_b("b", byte_and(var("b"), byte_lit(0xdf)), var("s")),
                    let_n(
                        "k2",
                        array_fold_b("acc", "b", word_add(var("acc"), word_of_byte(var("b"))), var("k"), var("s")),
                        pair(var("k2"), var("s")),
                    ),
                ),
            ),
        ),
        FnSpec::new(
            "sum_up",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ],
            vec![
                RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word },
                RetSpec::InPlace { param: "s".into() },
            ],
        ),
    );
}
