//! Test coverage for the side-condition solver memo cache.
//!
//! The cache's contract (see `Compiler::solve`): repeated `(condition,
//! hypotheses)` pairs are discharged from the cache without re-consulting
//! any solver, only *successes* are ever cached, and a solver panic is
//! treated as a decline that leaves no trace — the solver must be
//! re-consulted on the next occurrence of the same condition.

use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::core::solver::SideSolver;
use rupicola::core::{
    compile, Applied, CompileError, Compiler, HypRef, SideCond, StmtGoal, StmtLemma,
};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::Model;
use rupicola::sep::ScalarKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Wraps the built-in `lia` logic behind a shared call counter, so the
/// test can observe exactly how often the solver loop actually runs.
#[derive(Debug)]
struct CountingLia(Arc<AtomicUsize>);

impl SideSolver for CountingLia {
    fn name(&self) -> &'static str {
        "counting_lia"
    }
    fn solve(&self, cond: &SideCond, hyps: &[HypRef]) -> bool {
        self.0.fetch_add(1, Ordering::Relaxed);
        rupicola::core::solver::Lia.solve(cond, hyps)
    }
}

#[test]
fn repeated_side_conditions_hit_the_cache_instead_of_the_solver() {
    // utf8 discharges the same bounds conditions many times, so it
    // exercises both sides of the cache.
    let (model, spec) = (rupicola::programs::utf8::model(), rupicola::programs::utf8::spec());

    let calls = Arc::new(AtomicUsize::new(0));
    let mut dbs = standard_dbs();
    dbs.register_solver_front(CountingLia(calls.clone()));
    dbs.set_solver_memo(true);
    let compiled = compile(&model, &spec, &dbs).expect("utf8 compiles");
    assert!(compiled.stats.solver_cache_hits > 0, "utf8 must repeat side conditions");
    assert_eq!(
        calls.load(Ordering::Relaxed),
        compiled.stats.solver_cache_misses,
        "with the memo on, the solver runs exactly once per distinct condition"
    );
    assert_eq!(
        compiled.stats.side_conditions,
        compiled.stats.solver_cache_hits + compiled.stats.solver_cache_misses,
        "every record is either a hit or a miss"
    );

    // Same compile with the memo off: the solver runs for every record.
    let calls_off = Arc::new(AtomicUsize::new(0));
    let mut dbs = standard_dbs();
    dbs.register_solver_front(CountingLia(calls_off.clone()));
    dbs.set_solver_memo(false);
    let uncached = compile(&model, &spec, &dbs).expect("utf8 compiles");
    assert_eq!(uncached.stats.solver_cache_hits, 0);
    assert_eq!(uncached.stats.solver_cache_misses, 0);
    assert_eq!(
        calls_off.load(Ordering::Relaxed),
        uncached.stats.side_conditions,
        "with the memo off, every record re-runs the solver"
    );
    // The cache changes consultation counts only — never the artifacts.
    assert_eq!(compiled.function, uncached.function);
    assert_eq!(compiled.derivation, uncached.derivation);
}

static FLAKY_CALLS: AtomicUsize = AtomicUsize::new(0);
static PROBE_RAN: AtomicUsize = AtomicUsize::new(0);

/// Panics on its first consultation, succeeds afterwards. A correct engine
/// treats the panic as a decline and must NOT memoize anything for it.
#[derive(Debug)]
struct FlakySolver;

impl SideSolver for FlakySolver {
    fn name(&self) -> &'static str {
        "flaky"
    }
    fn solve(&self, cond: &SideCond, _hyps: &[HypRef]) -> bool {
        if !matches!(cond, SideCond::Lt(..)) {
            return false;
        }
        let n = FLAKY_CALLS.fetch_add(1, Ordering::SeqCst);
        assert!(n > 0, "flaky solver panics on its first consultation");
        true
    }
}

/// A wildcard statement lemma that, once per process, drives
/// `Compiler::solve` three times on the same condition and checks what the
/// cache did, then declines so normal compilation continues.
#[derive(Debug)]
struct CacheProbe;

impl StmtLemma for CacheProbe {
    fn name(&self) -> &'static str {
        "cache_probe"
    }
    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        if PROBE_RAN.swap(1, Ordering::SeqCst) != 0 {
            return None;
        }
        // A condition `lia` cannot prove, so only the flaky solver matters.
        let cond = || SideCond::Lt(var("p"), var("q"));
        // 1st occurrence: the flaky solver panics -> treated as a decline
        // -> no solver discharges the condition. Nothing may be cached.
        let first = cx.solve(self.name(), cond(), &goal.hyps);
        assert!(first.is_err(), "no solver discharges the probe on the first try");
        // 2nd occurrence: were the panic (or the failure) cached, the
        // solver would not be consulted again and this would fail too.
        let second = cx
            .solve(self.name(), cond(), &goal.hyps)
            .expect("flaky solver must be re-consulted after a panic");
        assert_eq!(second.solver, "flaky");
        assert_eq!(FLAKY_CALLS.load(Ordering::SeqCst), 2, "panic + retry = two consultations");
        // 3rd occurrence: the *success* is cached — replayed without
        // another consultation, byte-identical.
        let third = cx.solve(self.name(), cond(), &goal.hyps).expect("cache replays the success");
        assert_eq!(third, second, "the cached record is byte-identical");
        assert_eq!(FLAKY_CALLS.load(Ordering::SeqCst), 2, "the hit must not consult the solver");
        None
    }
}

#[test]
fn a_panicking_solvers_result_is_never_cached() {
    let mut dbs = standard_dbs();
    dbs.register_solver(FlakySolver);
    dbs.register_stmt_front(CacheProbe);
    dbs.set_solver_memo(true);

    let model = Model::new("probe_host", ["x"], var("x"));
    let spec = FnSpec::new(
        "probe_host",
        vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    );
    let compiled = compile(&model, &spec, &dbs).expect("host program compiles");
    assert_eq!(PROBE_RAN.load(Ordering::SeqCst), 1, "the probe lemma ran");
    // Two consultations total: the panicking first call and the succeeding
    // second; the third `solve` was served from the cache (asserted inside
    // the probe, where the compiler is in scope).
    assert_eq!(FLAKY_CALLS.load(Ordering::SeqCst), 2);
    // The probe's solves are engine-internal; the compiled artifact itself
    // records no side conditions citing the flaky solver.
    let mut cites_flaky = false;
    compiled.derivation.root.walk(&mut |n| {
        cites_flaky |= n.side_conds.iter().any(|sc| sc.solver == "flaky");
    });
    assert!(!cites_flaky);
}
