//! The full end-to-end leg: functional model → relational compilation →
//! Bedrock2 → RV64 assembly → ISA simulation, cross-checked against the
//! executable specifications.
//!
//! This is the "compiled to RISC-V, yielding an end-to-end proof from
//! high-level specifications to assembly" pipeline of §4.1.3, with the
//! proof replaced by differential validation at every level (see
//! DESIGN.md).

use rupicola::bedrock::rv_compile::{compile_function, run_function};
use rupicola::bedrock::Memory;
use rupicola::programs::{crc32, fasta, fnv1a, ip, m3s, upstr, utf8};

fn workload(n: usize, text: bool) -> Vec<u8> {
    let mut state = 0xBEEF_u64 | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if text {
                0x20 + (state & 0x3f) as u8
            } else {
                (state & 0xff) as u8
            }
        })
        .collect()
}

/// Runs a compiled suite program on a buffer through the RV64 simulator.
fn rv_run_on_buffer(
    function: &rupicola::bedrock::BFunction,
    data: &[u8],
) -> (Vec<u64>, Vec<u8>) {
    let art = compile_function(function).unwrap_or_else(|e| panic!("{}: {e}", function.name));
    let mut mem = Memory::new();
    let p = mem.alloc(data.to_vec());
    let rets = run_function(&art, &mut mem, &[p, data.len() as u64], 50_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", function.name));
    let out = mem.region(p).expect("buffer survives").to_vec();
    (rets, out)
}

#[test]
fn fnv1a_to_assembly() {
    let compiled = fnv1a::compiled().unwrap();
    let data = workload(257, false);
    let (rets, _) = rv_run_on_buffer(&compiled.function, &data);
    assert_eq!(rets, vec![fnv1a::reference(&data)]);
}

#[test]
fn upstr_to_assembly() {
    let compiled = upstr::compiled().unwrap();
    let data = workload(300, true);
    let (_, out) = rv_run_on_buffer(&compiled.function, &data);
    assert_eq!(out, upstr::reference(&data));
}

#[test]
fn utf8_to_assembly() {
    let compiled = utf8::compiled().unwrap();
    let data = workload(128, true);
    let (rets, _) = rv_run_on_buffer(&compiled.function, &data);
    assert_eq!(rets, vec![utf8::reference(&data)]);
}

#[test]
fn m3s_to_assembly() {
    let compiled = m3s::compiled().unwrap();
    let art = compile_function(&compiled.function).unwrap();
    for k in [0u32, 1, 0xdead_beef, u32::MAX] {
        let mut mem = Memory::new();
        let rets = run_function(&art, &mut mem, &[u64::from(k)], 10_000).unwrap();
        assert_eq!(rets, vec![u64::from(m3s::reference(k))]);
    }
}

#[test]
fn ip_to_assembly() {
    let compiled = ip::compiled().unwrap();
    let data = workload(96, false);
    let (rets, _) = rv_run_on_buffer(&compiled.function, &data);
    assert_eq!(rets, vec![u64::from(ip::reference(&data))]);
}

#[test]
fn fasta_to_assembly() {
    let compiled = fasta::compiled().unwrap();
    let data = b"GATTACA and friends: ACGTacgtNN".to_vec();
    let (_, out) = rv_run_on_buffer(&compiled.function, &data);
    assert_eq!(out, fasta::reference(&data));
}

#[test]
fn crc32_to_assembly() {
    let compiled = crc32::compiled().unwrap();
    let data = b"123456789".to_vec();
    let (rets, _) = rv_run_on_buffer(&compiled.function, &data);
    assert_eq!(rets, vec![0xCBF4_3926]);
}

/// The three execution routes of the generated code agree: the Bedrock2
/// interpreter, the RV64 simulation, and the reference.
#[test]
fn all_routes_agree_on_crc32() {
    use rupicola::bedrock::{ExecState, Interpreter, NoExternals, Program};
    let compiled = crc32::compiled().unwrap();
    let data = workload(64, false);

    // Route 1: Bedrock2 interpreter.
    let call = rupicola::core::fnspec::concretize(
        &compiled.spec,
        &compiled.model.params,
        &[rupicola::lang::Value::byte_list(data.iter().copied())],
    )
    .unwrap();
    let mut program = Program::new();
    program.insert(compiled.function.clone());
    let interp = Interpreter::new(&program);
    let mut state = ExecState::new(call.mem);
    let r1 = interp
        .call("crc32", &call.args, &mut state, &mut NoExternals, 10_000_000)
        .unwrap();

    // Route 2: RV64 simulation.
    let (r2, _) = rv_run_on_buffer(&compiled.function, &data);

    // Route 3: the executable specification.
    let r3 = u64::from(crc32::reference(&data));

    assert_eq!(r1, r2);
    assert_eq!(r2, vec![r3]);
}
