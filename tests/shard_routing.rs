//! Property battery for the sharded store's routing function
//! (DESIGN.md §14): fingerprint→shard assignment is a pure, stable,
//! uniform function of the key prefix, and the 1-shard configuration is
//! byte-equivalent to the plain single [`Store`] — the regression anchor
//! that keeps every pre-sharding artifact, tool and test
//! (`tests/service_cache.rs`) valid against a sharded deployment.

use rupicola::core::EngineLimits;
use rupicola::ext::standard_dbs;
use rupicola::programs::suite;
use rupicola::service::fingerprint::Fingerprint;
use rupicola::service::store::{LoadOutcome, Store};
use rupicola::service::{shard_of_key, shard_root, ShardedStore};
use rupicola_minicheck::{check, Rng};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rupicola-routing-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Routing is a pure function of the key: stable across calls (and hence
/// across runs — it reads no ambient state), in range, dependent only on
/// the top 16 bits.
#[test]
fn routing_is_stable_pure_and_prefix_determined() {
    check("routing stable and prefix-determined", 300, |rng: &mut Rng| {
        let key = Fingerprint(rng.next_u64());
        let nshards = (rng.below(64) + 1) as usize;
        let shard = shard_of_key(key, nshards);
        assert!(shard < nshards);
        assert_eq!(shard, shard_of_key(key, nshards), "same key, same shard");
        // Only the prefix matters: scrambling the low 48 bits never moves
        // the key.
        let scrambled = Fingerprint((key.0 & 0xffff_0000_0000_0000) | (rng.next_u64() >> 16));
        assert_eq!(shard, shard_of_key(scrambled, nshards));
        // And 1 shard maps everything to 0 (the plain-store layout).
        assert_eq!(shard_of_key(key, 1), 0);
    });
}

/// Assignment survives store open/close: an artifact stored through one
/// `ShardedStore` is found by a *fresh* `ShardedStore` over the same root
/// (same shard directory), for every program.
#[test]
fn routing_survives_store_reopen() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let root = scratch("reopen");
    let keys: Vec<(Fingerprint, PathBuf)> = {
        let store = ShardedStore::open(&root, 8).unwrap();
        suite()
            .iter()
            .map(|e| {
                let cf = (e.compiled)().unwrap();
                let key = store.key_for(&(e.model)(), &(e.spec)(), &dbs, &limits);
                let path = store.put(key, &cf).unwrap();
                (key, path)
            })
            .collect()
    }; // first store closed here
    let reopened = ShardedStore::open(&root, 8).unwrap();
    for (entry, (key, path)) in suite().iter().zip(&keys) {
        assert_eq!(
            reopened.key_for(&(entry.model)(), &(entry.spec)(), &dbs, &limits),
            *key,
            "{}: fingerprint stable across open/close",
            entry.info.name
        );
        let expected_dir = shard_root(&root, reopened.shard_of(*key), 8);
        assert_eq!(path.parent().unwrap(), expected_dir, "{}", entry.info.name);
        match reopened.load_verified(&(entry.model)(), &(entry.spec)(), &dbs, &limits) {
            LoadOutcome::Hit(_) => {}
            other => panic!("{}: expected hit after reopen, got {other:?}", entry.info.name),
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Uniformity: across 1k random fingerprints, every shard's load is
/// within 2x of the uniform expectation, for several shard counts. (FNV
/// output bits are uniform; the router scales the top 16 bits, so the
/// bound holds with huge margin — the property pins against a future
/// router accidentally folding low-entropy bits.)
#[test]
fn routing_is_uniform_within_2x_over_1k_random_keys() {
    for nshards in [2usize, 4, 8, 16] {
        check(&format!("uniform over {nshards} shards"), 1, |rng: &mut Rng| {
            let mut counts = vec![0usize; nshards];
            for _ in 0..1000 {
                counts[shard_of_key(Fingerprint(rng.next_u64()), nshards)] += 1;
            }
            let expected = 1000 / nshards;
            for (shard, &n) in counts.iter().enumerate() {
                assert!(
                    n <= 2 * expected && n >= expected / 2,
                    "shard {shard}/{nshards}: {n} keys vs uniform {expected} (2x bound)"
                );
            }
        });
    }
}

/// The 1-shard configuration is **byte-equivalent** to a plain single
/// `Store`: same artifact path, same file bytes, mutually readable. This
/// is the regression anchor for all pre-sharding behavior.
#[test]
fn one_shard_config_is_byte_equivalent_to_plain_store() {
    let dbs = standard_dbs();
    let limits = EngineLimits::default();
    let sharded_root = scratch("flat-sharded");
    let plain_root = scratch("flat-plain");
    let sharded = ShardedStore::open(&sharded_root, 1).unwrap();
    let mut plain = Store::open(&plain_root).unwrap();
    for entry in suite() {
        let model = (entry.model)();
        let spec = (entry.spec)();
        let cf = (entry.compiled)().unwrap();
        let key = sharded.key_for(&model, &spec, &dbs, &limits);
        assert_eq!(key, plain.key_for(&model, &spec, &dbs, &limits), "{}", entry.info.name);
        let sharded_path = sharded.put(key, &cf).unwrap();
        let plain_path = plain.put(key, &cf).unwrap();
        // Identical layout: same file name relative to the root…
        assert_eq!(
            sharded_path.strip_prefix(&sharded_root).unwrap(),
            plain_path.strip_prefix(&plain_root).unwrap(),
            "{}: 1-shard layout must match the plain store's",
            entry.info.name
        );
        // …and identical bytes on disk.
        assert_eq!(
            std::fs::read(&sharded_path).unwrap(),
            std::fs::read(&plain_path).unwrap(),
            "{}: 1-shard artifact bytes must match the plain store's",
            entry.info.name
        );
        // Cross-readability: the plain store serves the sharded artifact.
        let mut cross = Store::open(&sharded_root).unwrap();
        match cross.load_verified(&model, &spec, &dbs, &limits) {
            LoadOutcome::Hit(loaded) => assert_eq!(loaded.function, cf.function),
            other => panic!("{}: plain store must read 1-shard layout: {other:?}", entry.info.name),
        }
    }
    // No shard directories were created in the 1-shard layout.
    assert!(
        !std::fs::read_dir(&sharded_root)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().starts_with("shard-")),
        "1-shard config must not create shard directories"
    );
    let _ = std::fs::remove_dir_all(&sharded_root);
    let _ = std::fs::remove_dir_all(&plain_root);
}
