#[allow(unused_mut, unused_variables, unused_parens, unused_assignments, clippy::all)]
pub fn m3s(mem: &mut Vec<u8>, mut k: u64) -> u64 {
    let mut out: u64 = 0;
    k = (((k).wrapping_mul(3432918353u64)) & (4294967295u64));
    k = ((((((k) << ((15u64) & 63))) | (((k) >> ((17u64) & 63))))) & (4294967295u64));
    k = (((k).wrapping_mul(461845907u64)) & (4294967295u64));
    out = k;
    out
}
