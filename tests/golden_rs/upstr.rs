#[allow(unused_mut, unused_variables, unused_parens, unused_assignments, clippy::all)]
pub fn upstr(mem: &mut Vec<u8>, mut s: u64, mut len: u64) -> () {
    let mut _i0: u64 = 0;
    let mut b: u64 = 0;
    _i0 = 0u64;
    while (u64::from((_i0) < (len))) != 0 {
        b = u64::from(mem[((s).wrapping_add(_i0)) as usize]);
        mem[((s).wrapping_add(_i0)) as usize] = (((b) ^ (((((u64::from(((((b).wrapping_sub(97u64)) & (255u64))) < (26u64))) << ((5u64) & 63))) & (255u64))))) as u8;
        _i0 = (_i0).wrapping_add(1u64);
    }
}
