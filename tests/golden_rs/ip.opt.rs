#[allow(unused_mut, unused_variables, unused_parens, unused_assignments, clippy::all)]
pub fn ip(mem: &mut Vec<u8>, mut s: u64, mut len: u64) -> u64 {
    let mut n: u64 = 0;
    let mut acc: u64 = 0;
    let mut i: u64 = 0;
    let mut out: u64 = 0;
    n = ((len) >> ((1u64) & 63));
    acc = 0u64;
    i = 0u64;
    while (u64::from((i) < (n))) != 0 {
        acc = (acc).wrapping_add(((((u64::from(mem[((s).wrapping_add(((i) << ((1u64) & 63)))) as usize])) << ((8u64) & 63))) | (u64::from(mem[((s).wrapping_add((((i) << ((1u64) & 63))).wrapping_add(1u64))) as usize]))));
        i = (i).wrapping_add(1u64);
    }
    acc = (((acc) & (65535u64))).wrapping_add(((acc) >> ((16u64) & 63)));
    acc = (((acc) & (65535u64))).wrapping_add(((acc) >> ((16u64) & 63)));
    acc = (((acc) & (65535u64))).wrapping_add(((acc) >> ((16u64) & 63)));
    acc = (((acc) & (65535u64))).wrapping_add(((acc) >> ((16u64) & 63)));
    out = ((acc) ^ (65535u64));
    out
}
