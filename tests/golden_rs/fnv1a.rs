#[allow(unused_mut, unused_variables, unused_parens, unused_assignments, clippy::all)]
pub fn fnv1a(mem: &mut Vec<u8>, mut s: u64, mut len: u64) -> u64 {
    let mut acc: u64 = 0;
    let mut _i0: u64 = 0;
    let mut b: u64 = 0;
    let mut out: u64 = 0;
    acc = 14695981039346656037u64;
    _i0 = 0u64;
    while (u64::from((_i0) < (len))) != 0 {
        b = u64::from(mem[((s).wrapping_add(_i0)) as usize]);
        acc = (((acc) ^ (b))).wrapping_mul(1099511628211u64);
        _i0 = (_i0).wrapping_add(1u64);
    }
    out = acc;
    out
}
