#[allow(unused_mut, unused_variables, unused_parens, unused_assignments, clippy::all)]
pub fn utf8(mem: &mut Vec<u8>, mut s: u64, mut len: u64) -> u64 {
    let mut n: u64 = 0;
    let mut acc: u64 = 0;
    let mut i: u64 = 0;
    let mut _cse0: u64 = 0;
    let mut _cse1: u64 = 0;
    let mut _cse2: u64 = 0;
    let mut out: u64 = 0;
    n = (len).wrapping_sub(3u64);
    acc = 0u64;
    i = 0u64;
    while (u64::from((i) < (n))) != 0 {
        _cse0 = ((u64::from(mem[((s).wrapping_add((i).wrapping_add(1u64))) as usize])) & (63u64));
        _cse1 = ((u64::from(mem[((s).wrapping_add((i).wrapping_add(2u64))) as usize])) & (63u64));
        _cse2 = u64::from(mem[((s).wrapping_add(i)) as usize]);
        acc = (acc).wrapping_add((((_cse2).wrapping_mul(u64::from((_cse2) < (128u64)))).wrapping_add((((((((_cse2) & (31u64))) << ((6u64) & 63))) | (_cse0))).wrapping_mul(u64::from((((_cse2) >> ((5u64) & 63))) == (6u64))))).wrapping_add(((((((((_cse2) & (15u64))) << ((12u64) & 63))) | (((((_cse0) << ((6u64) & 63))) | (_cse1))))).wrapping_mul(u64::from((((_cse2) >> ((4u64) & 63))) == (14u64)))).wrapping_add((((((((_cse2) & (7u64))) << ((18u64) & 63))) | (((((_cse0) << ((12u64) & 63))) | (((((_cse1) << ((6u64) & 63))) | (((u64::from(mem[((s).wrapping_add((i).wrapping_add(3u64))) as usize])) & (63u64))))))))).wrapping_mul(u64::from((((_cse2) >> ((3u64) & 63))) == (30u64))))));
        i = (i).wrapping_add(1u64);
    }
    out = acc;
    out
}
