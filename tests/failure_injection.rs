//! Failure injection: the safety net must actually catch things.
//!
//! The design claims (DESIGN.md §7): deliberately wrong lemmas are caught
//! by the checker; unsupported constructs surface residual goals rather
//! than wrong code; out-of-bounds accesses trap in the interpreter; and
//! forged witnesses are rejected.

use rupicola::bedrock::{AccessSize, BExpr, BinOp, Cmd};
use rupicola::core::check::{check, check_with, CheckConfig, CheckError};
use rupicola::core::derive::DerivationNode;
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::core::{
    compile, Applied, CompileError, Compiler, StmtGoal, StmtLemma,
};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{ElemKind, Expr, Model};
use rupicola::sep::ScalarKind;

fn word_spec(name: &str) -> FnSpec {
    FnSpec::new(
        name,
        vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
}

/// A deliberately wrong lemma: compiles `let y := x + 1` as `y = x + 2`.
/// The (untrusted) search accepts it; the (trusted) checker must not.
struct OffByOneLemma;

impl StmtLemma for OffByOneLemma {
    fn name(&self) -> &'static str {
        "bogus_let_plus_one"
    }
    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        let Expr::Let { name, value, body } = &goal.prog else { return None };
        let Expr::Prim { op: rupicola::lang::PrimOp::WAdd, .. } = value.as_ref() else {
            return None;
        };
        let mut g = goal.clone();
        g.locals.set(
            name.clone(),
            rupicola::sep::SymValue::Scalar(ScalarKind::Word, Expr::Var(name.clone())),
        );
        g.prog = body.as_ref().clone();
        let (k_cmd, k_node) = match cx.compile_stmt(&g) {
            Ok(x) => x,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(Applied {
            cmd: Cmd::seq([
                Cmd::set(
                    name.clone(),
                    BExpr::op(BinOp::Add, BExpr::var("x"), BExpr::lit(2)), // wrong!
                ),
                k_cmd,
            ]),
            node: DerivationNode::leaf(self.name(), "bogus").with_child(k_node),
        }))
    }
}

#[test]
fn wrong_lemma_is_caught_by_differential_validation() {
    let model = Model::new("inc", ["x"], let_n("y", word_add(var("x"), word_lit(1)), var("y")));
    let mut dbs = standard_dbs();
    dbs.register_stmt_front(OffByOneLemma);
    let compiled = compile(&model, &word_spec("inc"), &dbs).unwrap();
    // The search happily used the bogus lemma…
    assert_eq!(compiled.derivation.root.lemma, "bogus_let_plus_one");
    // …and the checker rejects the result.
    let err = check(&compiled, &dbs).unwrap_err();
    assert!(matches!(err, CheckError::Mismatch { .. }), "got {err:?}");
}

#[test]
fn forged_witness_with_unknown_lemma_is_rejected() {
    let model = Model::new("idw", ["x"], var("x"));
    let dbs = standard_dbs();
    let mut compiled = compile(&model, &word_spec("idw"), &dbs).unwrap();
    compiled.derivation = rupicola::core::derive::Derivation::new(DerivationNode::leaf(
        "lemma_nobody_registered",
        "x",
    ));
    let err = check(&compiled, &dbs).unwrap_err();
    assert_eq!(err, CheckError::UnknownLemma("lemma_nobody_registered".into()));
}

#[test]
fn unsupported_construct_surfaces_residual_goal_not_wrong_code() {
    // General recursion is not in the source language; the closest thing —
    // an unregistered extern — must stop compilation with a readable goal.
    let model = Model::new(
        "mystery",
        ["x"],
        let_n("y", extern_op("collatz_step", vec![var("x")]), var("y")),
    );
    let err = compile(&model, &word_spec("mystery"), &standard_dbs()).unwrap_err();
    let CompileError::ResidualGoal { goal, hint } = err else {
        panic!("expected residual goal, got {err}");
    };
    assert!(goal.contains("collatz_step"), "{goal}");
    assert!(hint.contains("ExprLemma"), "{hint}");
}

#[test]
fn oob_code_traps_in_the_interpreter_and_fails_the_check() {
    // Hand-forge a compiled function that reads one past the end.
    let model = Model::new("peek_past", ["s"], array_len_b(var("s")));
    let spec = FnSpec::new(
        "peek_past",
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
        ],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    );
    let dbs = standard_dbs();
    let mut compiled = compile(&model, &spec, &dbs).unwrap();
    compiled.function.body = Cmd::seq([
        Cmd::set(
            "out",
            BExpr::load(
                AccessSize::One,
                BExpr::op(BinOp::Add, BExpr::var("s"), BExpr::var("len")),
            ),
        ),
    ]);
    let err = check(&compiled, &dbs).unwrap_err();
    assert!(matches!(err, CheckError::TargetStuck { .. }), "got {err:?}");
}

#[test]
fn tampered_loop_invariant_is_rejected_at_the_loop_head() {
    // Take the valid upstr derivation and corrupt the recorded invariant's
    // map body; the runtime loop-head evaluation must disagree.
    let dbs = standard_dbs();
    let mut compiled = rupicola::programs::upstr::compiled().unwrap();
    fn corrupt(n: &mut DerivationNode) {
        if let Some(inv) = &mut n.invariant {
            if let rupicola::core::invariant::LoopInvariantKind::ArrayMapInPlace { f, .. } =
                &mut inv.kind
            {
                *f = byte_lit(0); // claims the loop zeroes the array
            }
        }
        for c in &mut n.children {
            corrupt(c);
        }
    }
    corrupt(&mut compiled.derivation.root);
    let err = check(&compiled, &dbs).unwrap_err();
    assert!(matches!(err, CheckError::InvariantViolated { .. }), "got {err:?}");
}

#[test]
fn mutating_a_non_output_array_is_rejected() {
    // The model mutates `s` but the spec does not declare it an output —
    // the implicit ensures clause says the caller's memory is unchanged,
    // so the (otherwise internally consistent) compilation must not
    // certify.
    let model = Model::new(
        "sneaky_write",
        ["s"],
        let_n(
            "s",
            array_put_b(var("s"), word_lit(0), byte_lit(0xEE)),
            word_lit(7),
        ),
    );
    let spec = FnSpec::new(
        "sneaky_write",
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
        ],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
    .with_hint(rupicola::core::Hyp::LtU(word_lit(0), array_len_b(var("s"))));
    let dbs = standard_dbs();
    let compiled = compile(&model, &spec, &dbs).unwrap();
    let err = check(&compiled, &dbs).unwrap_err();
    match &err {
        CheckError::Mismatch { detail, .. } => {
            assert!(detail.contains("not an output"), "{detail}");
        }
        other => panic!("expected a memory-footprint mismatch, got {other:?}"),
    }
}

#[test]
fn monadic_loop_cannot_smuggle_mutation_across_iterations() {
    // Inside a monadic loop body, a `put` rebinding is iteration-local at
    // the source level (the accumulator is the only loop-carried value),
    // but a naive compilation's store persists. The checker's footprint
    // comparison catches the divergence.
    use rupicola::core::fnspec::TraceSpec;
    use rupicola::core::MonadCtx;
    use rupicola::lang::MonadKind;
    let body = bind(
        MonadKind::Io,
        "s",
        ret(
            MonadKind::Io,
            array_put_b(var("s"), word_lit(0), byte_of_word(var("i"))),
        ),
        bind(
            MonadKind::Io,
            "_",
            io_write(word_of_byte(array_get_b(var("s"), word_lit(0)))),
            ret(MonadKind::Io, var("acc")),
        ),
    );
    let model = Model::new(
        "smuggle",
        ["s"],
        bind(
            MonadKind::Io,
            "acc",
            range_fold_m(MonadKind::Io, "i", "acc", body, word_lit(0), word_lit(1), word_lit(3)),
            ret(MonadKind::Io, var("acc")),
        ),
    );
    let spec = FnSpec::new(
        "smuggle",
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
        ],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
    .with_monad(MonadCtx::Monadic(MonadKind::Io))
    .with_trace(TraceSpec::MirrorsSource)
    .with_hint(rupicola::core::Hyp::LtU(word_lit(0), array_len_b(var("s"))));
    let dbs = standard_dbs();
    // Either the compiler declines, or the checker rejects the result;
    // in no case does an unsound function certify.
    match compile(&model, &spec, &dbs) {
        Err(_) => {}
        Ok(compiled) => {
            let err = check(&compiled, &dbs).unwrap_err();
            assert!(matches!(err, CheckError::Mismatch { .. }), "got {err:?}");
        }
    }
}

/// A lemma with an injected implementation bug: it panics whenever it is
/// consulted. The engine must convert the panic into a typed error instead
/// of aborting the process.
struct PanickyLemma;

impl StmtLemma for PanickyLemma {
    fn name(&self) -> &'static str {
        "panicky"
    }
    fn try_apply(
        &self,
        _goal: &StmtGoal,
        _cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        panic!("injected lemma bug");
    }
}

#[test]
fn panicking_lemma_yields_typed_error_not_abort() {
    let model = Model::new("inc", ["x"], let_n("y", word_add(var("x"), word_lit(1)), var("y")));
    let mut dbs = standard_dbs();
    dbs.register_stmt_front(PanickyLemma);
    let err = compile(&model, &word_spec("inc"), &dbs).unwrap_err();
    let CompileError::LemmaPanicked { lemma, message, .. } = err else {
        panic!("expected LemmaPanicked, got {err}");
    };
    assert_eq!(lemma, "panicky");
    assert!(message.contains("injected lemma bug"), "{message}");
    // The pipeline survives: the same model compiles fine without the
    // faulty extension.
    let ok = compile(&model, &word_spec("inc"), &standard_dbs()).unwrap();
    check(&ok, &standard_dbs()).unwrap();
}

/// A non-productive lemma: it "makes progress" by recursing on the exact
/// same goal, so the search never terminates on its own.
struct LoopForeverLemma;

impl StmtLemma for LoopForeverLemma {
    fn name(&self) -> &'static str {
        "loop_forever"
    }
    fn try_apply(
        &self,
        goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        Some(cx.compile_stmt(goal).map(|(cmd, node)| Applied {
            cmd,
            node: DerivationNode::leaf(self.name(), "loop").with_child(node),
        }))
    }
}

#[test]
fn non_productive_recursion_exhausts_budget_not_the_stack() {
    use rupicola::core::{compile_with_limits, EngineLimits, ResourceKind};
    let model = Model::new("idw", ["x"], var("x"));
    let mut dbs = standard_dbs();
    dbs.register_stmt_front(LoopForeverLemma);
    let err =
        compile_with_limits(&model, &word_spec("idw"), &dbs, EngineLimits::tight()).unwrap_err();
    let CompileError::ResourceExhausted { resource, limit, path } = err else {
        panic!("expected ResourceExhausted, got {err}");
    };
    assert!(
        matches!(resource, ResourceKind::RecursionDepth | ResourceKind::LemmaApplications),
        "got {resource}"
    );
    assert!(limit > 0);
    // The partial derivation path shows the runaway lemma.
    assert!(path.iter().any(|l| l == "loop_forever"), "{path:?}");
}

#[test]
fn expired_deadline_is_a_typed_error_not_a_hang() {
    use rupicola::core::{compile_with_limits, EngineLimits, ResourceKind};
    let model = Model::new("idw", ["x"], var("x"));
    let dbs = standard_dbs();
    // `Some(0)` means "no time at all": the first judgment entry trips
    // the deadline deterministically, with the usual typed error.
    let limits = EngineLimits::default().with_deadline_ms(0);
    let err = compile_with_limits(&model, &word_spec("idw"), &dbs, limits).unwrap_err();
    let CompileError::ResourceExhausted { resource, limit, .. } = err else {
        panic!("expected ResourceExhausted, got {err}");
    };
    assert!(matches!(resource, ResourceKind::WallClock), "got {resource}");
    assert_eq!(limit, 0);
    // And without a deadline the same request compiles fine.
    compile_with_limits(&model, &word_spec("idw"), &dbs, EngineLimits::default()).unwrap();
}

/// A lemma that burns through the fresh-name supply without producing
/// anything.
struct NameHogLemma;

impl StmtLemma for NameHogLemma {
    fn name(&self) -> &'static str {
        "name_hog"
    }
    fn try_apply(
        &self,
        _goal: &StmtGoal,
        cx: &mut Compiler<'_>,
    ) -> Option<Result<Applied, CompileError>> {
        loop {
            let _ = cx.fresh_var("hog");
        }
    }
}

#[test]
fn fresh_name_exhaustion_is_a_typed_error() {
    use rupicola::core::{compile_with_limits, EngineLimits, ResourceKind};
    let model = Model::new("idw", ["x"], var("x"));
    let mut dbs = standard_dbs();
    dbs.register_stmt_front(NameHogLemma);
    let err =
        compile_with_limits(&model, &word_spec("idw"), &dbs, EngineLimits::tight()).unwrap_err();
    let CompileError::ResourceExhausted { resource, .. } = err else {
        panic!("expected ResourceExhausted, got {err}");
    };
    assert!(matches!(resource, ResourceKind::FreshNames), "got {resource}");
}

/// A solver with an injected bug: it panics on every query. The engine
/// must treat it as "cannot solve" and fall through to the next solver.
struct PanickySolver;

impl rupicola::core::solver::SideSolver for PanickySolver {
    fn name(&self) -> &'static str {
        "panicky_solver"
    }
    fn solve(&self, _cond: &rupicola::core::SideCond, _hyps: &[rupicola::core::HypRef]) -> bool {
        panic!("injected solver bug");
    }
}

#[test]
fn panicking_solver_falls_through_to_the_next_one() {
    // Division generates a NonZero side condition; the panicking solver is
    // consulted first, and `lia` still discharges the obligation.
    let model = Model::new("div3", ["x"], let_n("y", word_divu(var("x"), word_lit(3)), var("y")));
    let mut dbs = standard_dbs();
    dbs.register_solver_front(PanickySolver);
    let compiled = compile(&model, &word_spec("div3"), &dbs).unwrap();
    let mut recorded = Vec::new();
    compiled.derivation.root.walk(&mut |n| {
        for sc in &n.side_conds {
            recorded.push(sc.solver.clone());
        }
    });
    assert!(recorded.iter().all(|s| s != "panicky_solver"), "{recorded:?}");
    assert!(recorded.iter().any(|s| s == "lia"), "{recorded:?}");
    check(&compiled, &dbs).unwrap();
}

#[test]
fn every_structural_mutant_class_is_killed_by_its_layer() {
    use rupicola::core::faultinject::{expect_killed, mutants, MutationClass};
    let dbs = standard_dbs();
    let config = CheckConfig { vectors: 6, ..CheckConfig::default() };
    let compiled = rupicola::programs::upstr::compiled().unwrap();
    let all = mutants(&compiled);
    // The always-generated classes must be present.
    for class in [MutationClass::ForgedSideCond, MutationClass::MismatchedRetSlot] {
        assert!(all.iter().any(|m| m.class == class), "no {class} mutants generated");
    }
    for m in all.iter().filter(|m| m.class.is_structural()) {
        let err = expect_killed(m, &dbs, &config)
            .unwrap_or_else(|| panic!("structural mutant survived: [{}] {}", m.class, m.description));
        match m.class {
            // Stale-counter corruptions die in the integrity layer.
            MutationClass::DroppedSideCond | MutationClass::TruncatedDerivation => {
                assert!(matches!(err, CheckError::WitnessCorrupted { .. }), "got {err:?}");
            }
            // A forged record has consistent counters; re-solving kills it.
            MutationClass::ForgedSideCond => {
                assert!(matches!(err, CheckError::SideCondition { .. }), "got {err:?}");
            }
            // ABI mismatches die in differential comparison.
            MutationClass::MismatchedRetSlot => {
                assert!(matches!(err, CheckError::Mismatch { .. }), "got {err:?}");
            }
            _ => unreachable!("filtered to structural classes"),
        }
    }
}

#[test]
fn fault_matrix_reports_full_structural_kill_rate() {
    use rupicola::core::faultinject::run_matrix;
    let dbs = standard_dbs();
    let config = CheckConfig { vectors: 6, ..CheckConfig::default() };
    for program in [
        rupicola::programs::fnv1a::compiled().unwrap(),
        rupicola::programs::m3s::compiled().unwrap(),
    ] {
        let matrix = run_matrix(&program, &dbs, &config);
        assert!(matrix.generated() > 0);
        assert!(
            matrix.structural_clean(),
            "{}: structural survivors: {:?}",
            program.function.name,
            matrix.survivors
        );
    }
}

#[test]
fn vacuous_preconditions_are_not_silent() {
    // A spec whose hints exclude every generated input must fail loudly
    // (insufficient coverage), not report success.
    let model = Model::new("idq", ["x"], var("x"));
    let spec = word_spec("idq").with_hint(rupicola::core::Hyp::LtU(var("x"), word_lit(0)));
    let dbs = standard_dbs();
    let compiled = compile(&model, &spec, &dbs).unwrap();
    let err = check_with(&compiled, &dbs, &CheckConfig::default()).unwrap_err();
    assert!(matches!(err, CheckError::InsufficientCoverage { .. }), "got {err:?}");
}
