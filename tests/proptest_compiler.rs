//! Property-based compiler metatheory: on randomized well-formed models,
//! every successful derivation must pass the trusted checker — i.e. the
//! composed lemma library never produces a witness the validator rejects.

use proptest::prelude::*;
use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{ElemKind, Expr, Model};
use rupicola::sep::ScalarKind;

fn quick_config() -> CheckConfig {
    CheckConfig { vectors: 6, ..CheckConfig::default() }
}

/// Random pure word expressions over one variable (kind-correct by
/// construction).
fn arb_word_expr(var_name: &'static str) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(var(var_name)),
        (0u64..1000).prop_map(word_lit),
        any::<u64>().prop_map(word_lit),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        (0usize..8, inner.clone(), inner).prop_map(|(op, a, b)| match op {
            0 => word_add(a, b),
            1 => word_sub(a, b),
            2 => word_mul(a, b),
            3 => word_and(a, b),
            4 => word_or(a, b),
            5 => word_xor(a, b),
            6 => word_shl(a, word_lit(7)),
            _ => word_shr(a, word_lit(3)),
        })
    })
}

/// Random pure byte expressions over one variable.
fn arb_byte_expr(var_name: &'static str) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(var(var_name)), any::<u8>().prop_map(byte_lit)];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (0usize..6, inner.clone(), inner).prop_map(|(op, a, b)| match op {
            0 => byte_and(a, b),
            1 => byte_or(a, b),
            2 => byte_xor(a, b),
            3 => byte_add(a, b),
            4 => byte_sub(a, b),
            _ => byte_shr(a, byte_lit(1)),
        })
    })
}

fn scalar_spec(name: &str) -> FnSpec {
    FnSpec::new(
        name,
        vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
}

fn array_spec(name: &str, ret: RetSpec) -> FnSpec {
    FnSpec::new(
        name,
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
        ],
        vec![ret],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chains of scalar lets over random word expressions compile and
    /// certify, and the RV64 backend agrees with the Bedrock2 interpreter.
    #[test]
    fn straightline_models_certify(e1 in arb_word_expr("x"), e2 in arb_word_expr("y"), x in any::<u64>()) {
        let model = Model::new(
            "straight",
            ["x"],
            let_n("y", e1, let_n("z", e2, var("z"))),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(&model, &scalar_spec("straight"), &dbs).unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
        // Cross-backend agreement on a random input.
        use rupicola::bedrock::{ExecState, Interpreter, Memory, NoExternals, Program};
        let mut program = Program::new();
        program.insert(compiled.function.clone());
        let interp = Interpreter::new(&program);
        let mut state = ExecState::new(Memory::new());
        let r1 = interp.call("straight", &[x], &mut state, &mut NoExternals, 100_000).unwrap();
        let art = rupicola::bedrock::rv_compile::compile_function(&compiled.function).unwrap();
        let mut mem = Memory::new();
        let r2 = rupicola::bedrock::rv_compile::run_function(&art, &mut mem, &[x], 100_000).unwrap();
        prop_assert_eq!(r1, r2);
    }

    /// In-place maps with random byte bodies compile and certify (with
    /// runtime invariant checking at every loop head).
    #[test]
    fn random_map_models_certify(f in arb_byte_expr("b")) {
        let model = Model::new(
            "mapped",
            ["s"],
            let_n("s", array_map_b("b", f, var("s")), var("s")),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(
            &model,
            &array_spec("mapped", RetSpec::InPlace { param: "s".into() }),
            &dbs,
        )
        .unwrap();
        let report = check_with(&compiled, &dbs, &quick_config()).unwrap();
        prop_assert!(report.invariant_checks > 0);
    }

    /// Folds with random word bodies over (acc, element) compile and
    /// certify.
    #[test]
    fn random_fold_models_certify(f0 in arb_word_expr("acc"), init in any::<u64>()) {
        // Mix the element in so the fold actually reads the array.
        let f = word_xor(f0, word_of_byte(var("b")));
        let model = Model::new(
            "folded",
            ["s"],
            let_n("h", array_fold_b("acc", "b", f, word_lit(init), var("s")), var("h")),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(
            &model,
            &array_spec("folded", RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }),
            &dbs,
        )
        .unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    }

    /// Conditional bindings with random scalar branches certify, and the
    /// branch condition's hypotheses never mislead the solver.
    #[test]
    fn random_conditionals_certify(t in arb_word_expr("x"), e in arb_word_expr("x"), c in any::<u64>()) {
        let model = Model::new(
            "condy",
            ["x"],
            let_n(
                "y",
                ite(word_ltu(var("x"), word_lit(c)), t, e),
                var("y"),
            ),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(&model, &scalar_spec("condy"), &dbs).unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    }

    /// Whole random *programs*: a chain of mixed statements — scalar lets,
    /// in-place maps, folds, conditionals — over one array and one scalar,
    /// assembled in random order. Every successful derivation certifies;
    /// this is the composition stress test (ghost renaming, length
    /// equations and loop invariants interacting across statements).
    #[test]
    fn random_statement_chains_certify(
        steps in proptest::collection::vec((0usize..4, arb_byte_expr("b"), arb_word_expr("x")), 1..5),
        ret_scalar in proptest::bool::ANY,
    ) {
        // Build the body inside-out.
        let mut body = if ret_scalar {
            pair(var("x"), var("s"))
        } else {
            pair(word_lit(0), var("s"))
        };
        for (kind, bexpr, wexpr) in steps.into_iter().rev() {
            body = match kind {
                0 => let_n("s", array_map_b("b", bexpr, var("s")), body),
                1 => let_n(
                    "x",
                    array_fold_b("acc", "b", word_xor(var("acc"), word_of_byte(bexpr)), wexpr, var("s")),
                    body,
                ),
                2 => let_n("x", wexpr, body),
                _ => let_n(
                    "x",
                    ite(word_ltu(var("x"), word_lit(1000)), wexpr, var("x")),
                    body,
                ),
            };
        }
        let model = Model::new("chain", ["s", "x"], body);
        let spec = FnSpec::new(
            "chain",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
            ],
            vec![
                RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word },
                RetSpec::InPlace { param: "s".into() },
            ],
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(&model, &spec, &dbs).unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    }

    /// Two stacked maps (rebinding the same name twice) certify: the ghost
    /// renaming discipline composes.
    #[test]
    fn stacked_maps_certify(f in arb_byte_expr("b"), g in arb_byte_expr("b")) {
        let model = Model::new(
            "twice",
            ["s"],
            let_n(
                "s",
                array_map_b("b", f, var("s")),
                let_n("s", array_map_b("b", g, var("s")), var("s")),
            ),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(
            &model,
            &array_spec("twice", RetSpec::InPlace { param: "s".into() }),
            &dbs,
        )
        .unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    }
}
