//! Property-based compiler metatheory: on randomized well-formed models,
//! every successful derivation must pass the trusted checker — i.e. the
//! composed lemma library never produces a witness the validator rejects.

use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{ElemKind, Expr, Model};
use rupicola::sep::ScalarKind;
use rupicola_minicheck::{check, Rng};

fn quick_config() -> CheckConfig {
    CheckConfig { vectors: 6, ..CheckConfig::default() }
}

/// Random pure word expressions over one variable (kind-correct by
/// construction).
fn arb_word_expr(rng: &mut Rng, var_name: &str, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => var(var_name),
            1 => word_lit(rng.below(1000)),
            _ => word_lit(rng.next_u64()),
        };
    }
    let a = arb_word_expr(rng, var_name, depth - 1);
    let b = arb_word_expr(rng, var_name, depth - 1);
    match rng.below(8) {
        0 => word_add(a, b),
        1 => word_sub(a, b),
        2 => word_mul(a, b),
        3 => word_and(a, b),
        4 => word_or(a, b),
        5 => word_xor(a, b),
        6 => word_shl(a, word_lit(7)),
        _ => word_shr(a, word_lit(3)),
    }
}

/// Random pure byte expressions over one variable.
fn arb_byte_expr(rng: &mut Rng, var_name: &str, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return if rng.bool() { var(var_name) } else { byte_lit(rng.byte()) };
    }
    let a = arb_byte_expr(rng, var_name, depth - 1);
    let b = arb_byte_expr(rng, var_name, depth - 1);
    match rng.below(6) {
        0 => byte_and(a, b),
        1 => byte_or(a, b),
        2 => byte_xor(a, b),
        3 => byte_add(a, b),
        4 => byte_sub(a, b),
        _ => byte_shr(a, byte_lit(1)),
    }
}

fn scalar_spec(name: &str) -> FnSpec {
    FnSpec::new(
        name,
        vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
}

fn array_spec(name: &str, ret: RetSpec) -> FnSpec {
    FnSpec::new(
        name,
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
        ],
        vec![ret],
    )
}

/// Chains of scalar lets over random word expressions compile and
/// certify, and the RV64 backend agrees with the Bedrock2 interpreter.
#[test]
fn straightline_models_certify() {
    check("straightline_models_certify", 24, |rng| {
        let e1 = arb_word_expr(rng, "x", 4);
        let e2 = arb_word_expr(rng, "y", 4);
        let x = rng.next_u64();
        let model = Model::new(
            "straight",
            ["x"],
            let_n("y", e1, let_n("z", e2, var("z"))),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(&model, &scalar_spec("straight"), &dbs).unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
        // Cross-backend agreement on a random input.
        use rupicola::bedrock::{ExecState, Interpreter, Memory, NoExternals, Program};
        let mut program = Program::new();
        program.insert(compiled.function.clone());
        let interp = Interpreter::new(&program);
        let mut state = ExecState::new(Memory::new());
        let r1 = interp.call("straight", &[x], &mut state, &mut NoExternals, 100_000).unwrap();
        let art = rupicola::bedrock::rv_compile::compile_function(&compiled.function).unwrap();
        let mut mem = Memory::new();
        let r2 = rupicola::bedrock::rv_compile::run_function(&art, &mut mem, &[x], 100_000).unwrap();
        assert_eq!(r1, r2);
    });
}

/// In-place maps with random byte bodies compile and certify (with
/// runtime invariant checking at every loop head).
#[test]
fn random_map_models_certify() {
    check("random_map_models_certify", 24, |rng| {
        let f = arb_byte_expr(rng, "b", 3);
        let model = Model::new(
            "mapped",
            ["s"],
            let_n("s", array_map_b("b", f, var("s")), var("s")),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(
            &model,
            &array_spec("mapped", RetSpec::InPlace { param: "s".into() }),
            &dbs,
        )
        .unwrap();
        let report = check_with(&compiled, &dbs, &quick_config()).unwrap();
        assert!(report.invariant_checks > 0);
    });
}

/// Folds with random word bodies over (acc, element) compile and
/// certify.
#[test]
fn random_fold_models_certify() {
    check("random_fold_models_certify", 24, |rng| {
        let f0 = arb_word_expr(rng, "acc", 4);
        let init = rng.next_u64();
        // Mix the element in so the fold actually reads the array.
        let f = word_xor(f0, word_of_byte(var("b")));
        let model = Model::new(
            "folded",
            ["s"],
            let_n("h", array_fold_b("acc", "b", f, word_lit(init), var("s")), var("h")),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(
            &model,
            &array_spec("folded", RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }),
            &dbs,
        )
        .unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    });
}

/// Conditional bindings with random scalar branches certify, and the
/// branch condition's hypotheses never mislead the solver.
#[test]
fn random_conditionals_certify() {
    check("random_conditionals_certify", 24, |rng| {
        let t = arb_word_expr(rng, "x", 4);
        let e = arb_word_expr(rng, "x", 4);
        let c = rng.next_u64();
        let model = Model::new(
            "condy",
            ["x"],
            let_n(
                "y",
                ite(word_ltu(var("x"), word_lit(c)), t, e),
                var("y"),
            ),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(&model, &scalar_spec("condy"), &dbs).unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    });
}

/// Whole random *programs*: a chain of mixed statements — scalar lets,
/// in-place maps, folds, conditionals — over one array and one scalar,
/// assembled in random order. Every successful derivation certifies;
/// this is the composition stress test (ghost renaming, length
/// equations and loop invariants interacting across statements).
#[test]
fn random_statement_chains_certify() {
    check("random_statement_chains_certify", 24, |rng| {
        let n_steps = rng.range(1, 5);
        let steps: Vec<(u64, Expr, Expr)> = (0..n_steps)
            .map(|_| {
                (rng.below(4), arb_byte_expr(rng, "b", 3), arb_word_expr(rng, "x", 4))
            })
            .collect();
        let ret_scalar = rng.bool();
        // Build the body inside-out.
        let mut body = if ret_scalar {
            pair(var("x"), var("s"))
        } else {
            pair(word_lit(0), var("s"))
        };
        for (kind, bexpr, wexpr) in steps.into_iter().rev() {
            body = match kind {
                0 => let_n("s", array_map_b("b", bexpr, var("s")), body),
                1 => let_n(
                    "x",
                    array_fold_b("acc", "b", word_xor(var("acc"), word_of_byte(bexpr)), wexpr, var("s")),
                    body,
                ),
                2 => let_n("x", wexpr, body),
                _ => let_n(
                    "x",
                    ite(word_ltu(var("x"), word_lit(1000)), wexpr, var("x")),
                    body,
                ),
            };
        }
        let model = Model::new("chain", ["s", "x"], body);
        let spec = FnSpec::new(
            "chain",
            vec![
                ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
                ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word },
            ],
            vec![
                RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word },
                RetSpec::InPlace { param: "s".into() },
            ],
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(&model, &spec, &dbs).unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    });
}

/// Two stacked maps (rebinding the same name twice) certify: the ghost
/// renaming discipline composes.
#[test]
fn stacked_maps_certify() {
    check("stacked_maps_certify", 24, |rng| {
        let f = arb_byte_expr(rng, "b", 3);
        let g = arb_byte_expr(rng, "b", 3);
        let model = Model::new(
            "twice",
            ["s"],
            let_n(
                "s",
                array_map_b("b", f, var("s")),
                let_n("s", array_map_b("b", g, var("s")), var("s")),
            ),
        );
        let dbs = standard_dbs();
        let compiled = rupicola::core::compile(
            &model,
            &array_spec("twice", RetSpec::InPlace { param: "s".into() }),
            &dbs,
        )
        .unwrap();
        check_with(&compiled, &dbs, &quick_config()).unwrap();
    });
}
