//! Property tests for the hash-consing interner (`rupicola_lang::intern`):
//! interned-id equality must coincide exactly with structural equality —
//! including for terms built independently on different code paths — and
//! the JSON codec must round-trip every expression back to the *same*
//! interned node within one process.
//!
//! These are the invariants the engine's deep-work layers lean on: the
//! memo cache confirms hits by id-backed `Hyp` comparisons, the linear
//! solver keys atoms by id, and `DESIGN.md` §16's soundness argument is
//! exactly "id equality ⟺ structural equality among live refs".

use rupicola::lang::codec::{decode_expr, encode_expr};
use rupicola::lang::dsl::*;
use rupicola::lang::{Expr, ExprRef};
use rupicola_minicheck::{check, Rng};

/// A random expression drawing from every scalar constructor family plus
/// array/table reads — broad enough to exercise hashing across variants,
/// closed so evaluation kinds don't matter (these terms are never run).
fn arb_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(4) {
            0 => var(format!("v{}", rng.below(4))),
            1 => word_lit(rng.below(8)),
            2 => byte_lit((rng.below(4) & 0xff) as u8),
            _ => bool_lit(rng.bool()),
        };
    }
    let a = arb_expr(rng, depth - 1);
    match rng.below(10) {
        0 => word_add(a, arb_expr(rng, depth - 1)),
        1 => word_mul(a, arb_expr(rng, depth - 1)),
        2 => word_xor(a, arb_expr(rng, depth - 1)),
        3 => byte_and(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
        4 => word_shr(a, word_lit(rng.below(8))),
        5 => array_get_b(var("s"), a),
        6 => array_len_w(var("st")),
        7 => table_get("t", a),
        8 => ite(bool_lit(rng.bool()), a, arb_expr(rng, depth - 1)),
        _ => let_n(format!("x{}", rng.below(3)), a, arb_expr(rng, depth - 1)),
    }
}

#[test]
fn interned_id_equality_iff_structural_equality() {
    check("intern_id_iff_structural", 300, |rng| {
        // Small depth and a tiny leaf alphabet make accidental structural
        // collisions common, exercising both directions of the iff.
        let a = arb_expr(rng, 3);
        let b = arb_expr(rng, 3);
        let (ra, rb) = (ExprRef::new(a.clone()), ExprRef::new(b.clone()));
        assert_eq!(
            ra.id() == rb.id(),
            a == b,
            "id equality must coincide with structural equality: {a:?} vs {b:?}"
        );
        // Pointer equality is the same relation.
        assert_eq!(ExprRef::ptr_eq(&ra, &rb), a == b);
        if a == b {
            assert_eq!(ra.cached_hash(), rb.cached_hash());
        }
    });
}

#[test]
fn separately_built_equal_terms_intern_to_one_node() {
    check("intern_separate_builds", 200, |rng| {
        // Build the same tree twice through different construction paths:
        // once directly, once via a clone that goes through a Vec (fresh
        // allocations throughout), and once rebuilt leaf-by-leaf from a
        // serialized copy. All three must land on the same interned id.
        let e = arb_expr(rng, 4);
        let direct = ExprRef::new(e.clone());
        let via_vec = ExprRef::new(vec![e.clone()].pop().expect("nonempty"));
        assert_eq!(direct.id(), via_vec.id());
        assert!(ExprRef::ptr_eq(&direct, &via_vec));
    });
}

#[test]
fn codec_round_trip_reinterns_to_same_id() {
    check("intern_codec_round_trip", 200, |rng| {
        let e = arb_expr(rng, 4);
        let interned = ExprRef::new(e.clone());
        let decoded = decode_expr(&encode_expr(&e)).expect("codec round-trip");
        assert_eq!(decoded, e, "decode must invert encode");
        let reinterned = ExprRef::new(decoded);
        assert_eq!(
            interned.id(),
            reinterned.id(),
            "a decoded copy must re-intern to the original node"
        );
        assert!(ExprRef::ptr_eq(&interned, &reinterned));
        assert_eq!(interned.cached_hash(), reinterned.cached_hash());
    });
}

#[test]
fn ids_are_stable_while_a_ref_is_live() {
    check("intern_id_stability", 100, |rng| {
        let e = arb_expr(rng, 4);
        let first = ExprRef::new(e.clone());
        let id = first.id();
        // Interning unrelated churn must not move a live node.
        for _ in 0..16 {
            let _ = ExprRef::new(arb_expr(rng, 3));
        }
        assert_eq!(ExprRef::new(e).id(), id);
    });
}
