//! Deterministic concurrency battery for the multi-tenant server
//! (DESIGN.md §14).
//!
//! The server's contract is that concurrency is *invisible in the
//! answers*: scheduling, lock striping, work stealing, chaos-injected
//! store faults and racing clients may change provenance (cache vs
//! fresh) and latency, but every response must be byte-identical — via
//! the artifact types' structural equality, which the codec round-trip
//! battery in `service_cache.rs` ties to the rendered bytes — to the
//! serial fault-free reference, with exactly one response per request
//! and exact per-tenant accounting. This battery pins that:
//!
//! - chaos-backed concurrent batches vs a serial reference across 3+
//!   seeds (every shard on its own seeded `ChaosBackend`);
//! - barrier-stepped client threads (fixed interleaving points) hammering
//!   one server concurrently, each batch checked against the reference
//!   and the lifetime accounting summed exactly;
//! - quota exactness across seeds, and a two-tenant starvation test: a
//!   greedy tenant's flood is rejected *at admission* with typed
//!   backpressure, so the victim's work and answers are untouched.

use rupicola::core::EngineLimits;
use rupicola::ext::standard_dbs;
use rupicola::programs::suite;
use rupicola::service::{
    ChaosBackend, CompileJob, FaultPlan, JobOutcome, Provenance, Server, ShardedStore,
    TenantPolicy, TenantStats, TenantTable,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Barrier;

const SEEDS: [u64; 4] = [1, 42, 0xC0FFEE, 0xDEAD_BEEF];
const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rupicola-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic splitmix-style stream for building request traces.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// A seeded mixed-tenant trace over the whole suite.
fn trace(seed: u64, n: usize) -> Vec<CompileJob> {
    let all = suite();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..n)
        .map(|_| {
            let program = all[(mix(&mut state) as usize) % all.len()].info.name;
            let tenant = TENANTS[(mix(&mut state) as usize) % TENANTS.len()];
            CompileJob::named(program).tenant(tenant)
        })
        .collect()
}

/// The serial fault-free reference: the same jobs through a 1-worker,
/// 1-shard, plain-filesystem server.
fn reference_answers(jobs: &[CompileJob], tag: &str) -> Vec<rupicola::core::CompiledFunction> {
    let dbs = standard_dbs();
    let root = scratch(tag);
    let server = Server::new(
        ShardedStore::open(&root, 1).unwrap(),
        TenantTable::default(),
        1,
    );
    let responses = server.run_batch(jobs, &dbs);
    let answers = responses
        .iter()
        .map(|r| match &r.outcome {
            JobOutcome::Done(result) => result.result.clone().expect("reference compiles"),
            other => panic!("reference run must resolve {}: {other:?}", r.program),
        })
        .collect();
    let _ = std::fs::remove_dir_all(&root);
    answers
}

/// Asserts a concurrent run's responses are exactly the reference's:
/// one response per request, same program in the same slot, identical
/// function and derivation.
fn assert_identical(
    label: &str,
    jobs: &[CompileJob],
    responses: &[impl std::borrow::Borrow<rupicola::service::JobResponse>],
    reference: &[rupicola::core::CompiledFunction],
) {
    assert_eq!(responses.len(), jobs.len(), "{label}: lost or duplicated responses");
    for (i, (job, r)) in jobs.iter().zip(responses.iter().map(std::borrow::Borrow::borrow)).enumerate() {
        assert_eq!(r.program, job.program, "{label}: slot {i} answers the wrong request");
        let JobOutcome::Done(result) = &r.outcome else {
            panic!("{label}: slot {i} ({}) not resolved: {:?}", job.program, r.outcome);
        };
        let cf = result.result.as_ref().unwrap_or_else(|e| {
            panic!("{label}: slot {i} ({}) failed: {e}", job.program)
        });
        assert_eq!(cf.function, reference[i].function, "{label}: slot {i} function differs");
        assert_eq!(
            cf.derivation, reference[i].derivation,
            "{label}: slot {i} derivation differs"
        );
    }
}

/// Sums per-tenant submissions in a trace.
fn submissions(jobs: &[CompileJob]) -> BTreeMap<String, usize> {
    let mut by_tenant: BTreeMap<String, usize> = BTreeMap::new();
    for job in jobs {
        *by_tenant.entry(job.tenant.clone().unwrap_or_default()).or_default() += 1;
    }
    by_tenant
}

/// Chaos-backed concurrent batches answer byte-identically to the serial
/// fault-free reference across every seed: per-shard seeded fault
/// injection (transient EIO, torn writes, bit flips) may cost retries,
/// misses and degraded shards — never a different answer, never a lost
/// response.
#[test]
fn chaos_concurrent_matches_serial_reference_across_seeds() {
    let dbs = standard_dbs();
    for &seed in &SEEDS {
        let jobs = trace(seed, 36);
        let reference = reference_answers(&jobs, &format!("ref-{seed:x}"));
        let root = scratch(&format!("chaos-{seed:x}"));
        let store = ShardedStore::open_with(
            &root,
            4,
            |i| Box::new(ChaosBackend::new(FaultPlan::calm(seed ^ (i as u64 + 1)))),
            |s| s,
        )
        .unwrap();
        let server = Server::new(store, TenantTable::default(), 4);
        // Two rounds: the first mostly compiles, the second mostly loads
        // (through the fault-injecting backend) — both must be identical
        // to the reference.
        for round in 0..2 {
            let responses = server.run_batch(&jobs, &dbs);
            assert_identical(&format!("seed {seed:#x} round {round}"), &jobs, &responses, &reference);
        }
        // Accounting is exact and complete: every submission admitted and
        // completed ok, per tenant, both rounds.
        let stats = server.tenant_stats();
        for (tenant, sent) in submissions(&jobs) {
            let s = stats.get(&tenant).expect("tenant accounted");
            assert!(s.exact(), "seed {seed:#x}: {tenant} inexact: {s:?}");
            assert_eq!(s.submitted, 2 * sent, "seed {seed:#x}: {tenant} submissions");
            assert_eq!(s.completed_ok, 2 * sent, "seed {seed:#x}: {tenant} completions");
            assert_eq!(s.rejected, 0);
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Barrier-stepped interleaving: N client threads release together into
/// `run_batch` on one shared server, for several rounds. Whatever the
/// interleaving does to scheduling, every client's every round is
/// byte-identical to the reference, and the server's lifetime accounting
/// is exactly the sum of what the clients sent.
#[test]
fn barrier_stepped_clients_are_answer_deterministic() {
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 3;
    let dbs = standard_dbs();
    let traces: Vec<Vec<CompileJob>> =
        (0..CLIENTS).map(|c| trace(0x5EED ^ c as u64, 18)).collect();
    let references: Vec<Vec<rupicola::core::CompiledFunction>> = traces
        .iter()
        .enumerate()
        .map(|(c, jobs)| reference_answers(jobs, &format!("barrier-ref-{c}")))
        .collect();

    let root = scratch("barrier");
    let server =
        Server::new(ShardedStore::open(&root, 4).unwrap(), TenantTable::default(), 2);
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for (c, (jobs, reference)) in traces.iter().zip(&references).enumerate() {
            let (server, barrier, dbs) = (&server, &barrier, &dbs);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Step the interleaving: all clients enter the round
                    // together, so batches genuinely overlap inside the
                    // striped store.
                    barrier.wait();
                    let responses = server.run_batch(jobs, dbs);
                    assert_identical(
                        &format!("client {c} round {round}"),
                        jobs,
                        &responses,
                        reference,
                    );
                }
            });
        }
    });

    // Lifetime accounting across all clients and rounds: no submission
    // lost, none double-counted, every identity exact.
    let mut expected: BTreeMap<String, usize> = BTreeMap::new();
    for jobs in &traces {
        for (tenant, sent) in submissions(jobs) {
            *expected.entry(tenant).or_default() += ROUNDS * sent;
        }
    }
    let stats = server.tenant_stats();
    for (tenant, sent) in expected {
        let s = stats.get(&tenant).expect("tenant accounted");
        assert!(s.exact(), "{tenant} inexact: {s:?}");
        assert_eq!(s.submitted, sent, "{tenant} lost or duplicated submissions");
        assert_eq!(s.completed_ok + s.completed_err, s.admitted);
        assert_eq!(s.rejected, 0);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Quota accounting stays exact under concurrent clients across seeds:
/// every batch's rejections are deterministic (admission is serial, in
/// request order), and the lifetime counters still satisfy the identities
/// after racing clients.
#[test]
fn quota_accounting_is_exact_under_concurrency_across_seeds() {
    let dbs = standard_dbs();
    for &seed in &SEEDS[..3] {
        let root = scratch(&format!("quota-{seed:x}"));
        let tenants = TenantTable::default()
            .with_tenant("capped", TenantPolicy { max_queued: 5, ..TenantPolicy::default() });
        let server =
            Server::new(ShardedStore::open(&root, 2).unwrap(), tenants, 3);
        // Each batch: 9 capped requests (5 admitted, 4 rejected —
        // deterministically the *last* 4, admission being request-order)
        // plus seeded filler from unlimited tenants.
        let mut jobs: Vec<CompileJob> =
            (0..9).map(|_| CompileJob::named("fnv1a").tenant("capped")).collect();
        jobs.extend(trace(seed, 8));
        let clients = 2;
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let (server, jobs, dbs) = (&server, &jobs, &dbs);
                scope.spawn(move || {
                    let responses = server.run_batch(jobs, dbs);
                    assert_eq!(responses.len(), jobs.len());
                    let rejected: Vec<usize> = responses
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| matches!(r.outcome, JobOutcome::Rejected(_)))
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(rejected, vec![5, 6, 7, 8], "rejections are deterministic");
                });
            }
        });
        let stats = server.tenant_stats();
        assert!(stats.values().all(TenantStats::exact), "seed {seed:#x}: {stats:?}");
        let capped = &stats["capped"];
        assert_eq!(capped.submitted, 9 * clients);
        assert_eq!(capped.admitted, 5 * clients);
        assert_eq!(capped.rejected, 4 * clients);
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Two-tenant starvation: a greedy tenant floods far past its quota while
/// a victim tenant submits normal work in the same batches. The flood is
/// cut at admission — typed rejections, no panic, no silent drop — so the
/// victim's answers are complete and correct and the scheduler never even
/// sees the excess (the victim's latency cannot be degraded by work that
/// is never admitted).
#[test]
fn greedy_tenant_cannot_starve_the_victim() {
    let dbs = standard_dbs();
    let root = scratch("starve");
    let tenants = TenantTable::default()
        .with_tenant("greedy", TenantPolicy { max_queued: 3, ..TenantPolicy::default() });
    let server = Server::new(ShardedStore::open(&root, 4).unwrap(), tenants, 4);

    let victim_jobs: Vec<CompileJob> = suite()
        .iter()
        .map(|e| CompileJob::named(e.info.name).tenant("victim"))
        .collect();
    let mut jobs: Vec<CompileJob> =
        (0..40).map(|_| CompileJob::named("utf8").tenant("greedy")).collect();
    jobs.extend(victim_jobs.iter().cloned());
    let reference = reference_answers(&victim_jobs, "starve-ref");

    let responses = server.run_batch(&jobs, &dbs);
    assert_eq!(responses.len(), jobs.len(), "every request answered, flood included");
    // The flood: exactly quota-many admitted, the rest typed rejections.
    let greedy: Vec<_> = responses.iter().filter(|r| r.tenant == "greedy").collect();
    let rejected = greedy
        .iter()
        .filter(|r| matches!(r.outcome, JobOutcome::Rejected(_)))
        .count();
    assert_eq!(rejected, 37, "flood rejected at admission: 3 admitted of 40");
    assert!(
        greedy.iter().all(|r| !matches!(r.outcome, JobOutcome::UnknownProgram)),
        "rejection is typed, never a swallowed request"
    );
    // The victim: all answers present, correct, and in order.
    let victim: Vec<_> = responses.iter().filter(|r| r.tenant == "victim").collect();
    assert_identical("victim under flood", &victim_jobs, &victim, &reference);
    let stats = server.tenant_stats();
    assert_eq!(stats["victim"].completed_ok, victim_jobs.len());
    assert_eq!(stats["victim"].rejected, 0);
    assert_eq!(stats["greedy"].admitted, 3);
    assert!(stats.values().all(TenantStats::exact));
    let _ = std::fs::remove_dir_all(&root);
}

/// Racing cold requests for the same key: however the workers interleave,
/// the store converges to one verified artifact and a follow-up batch is
/// all cache hits — duplicated *work* is possible, duplicated or divergent
/// *answers* are not.
#[test]
fn racing_cold_requests_converge_to_one_verified_artifact() {
    let dbs = standard_dbs();
    let root = scratch("race");
    let server =
        Server::new(ShardedStore::open(&root, 2).unwrap(), TenantTable::default(), 4);
    let jobs: Vec<CompileJob> = (0..8)
        .map(|i| CompileJob::named("crc32").tenant(TENANTS[i % TENANTS.len()]))
        .collect();
    let reference = reference_answers(&jobs, "race-ref");
    let responses = server.run_batch(&jobs, &dbs);
    assert_identical("racing colds", &jobs, &responses, &reference);
    // Convergence: the next batch serves every duplicate from the cache.
    let warm = server.run_batch(&jobs, &dbs);
    for r in &warm {
        let JobOutcome::Done(result) = &r.outcome else { panic!("unresolved: {r:?}") };
        assert_eq!(result.provenance, Provenance::Cache, "{}", r.program);
    }
    // And per-request deadlines still ride through the concurrent path:
    // an instantly-expiring deadline on a *cold* key fails in-band.
    let expire_root = scratch("race-deadline");
    let expire = Server::new(
        ShardedStore::open(&expire_root, 1).unwrap(),
        TenantTable::default(),
        2,
    );
    let mut dead = CompileJob::named("fnv1a");
    dead.deadline_ms = Some(0);
    let responses = expire.run_batch(std::slice::from_ref(&dead), &dbs);
    let JobOutcome::Done(result) = &responses[0].outcome else {
        panic!("deadline'd job must resolve in-band: {:?}", responses[0]);
    };
    assert!(result.result.is_err(), "0ms deadline on a cold key must expire");
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&expire_root);
}

/// Limits are part of the fingerprint (except `max_wall_ms`): per-tenant
/// budget overrides route to their own artifacts, but a deadline does not
/// fork the key — the concurrent server inherits the store's sharing
/// semantics unchanged.
#[test]
fn tenant_budgets_fork_keys_but_deadlines_do_not() {
    let dbs = standard_dbs();
    let root = scratch("budget");
    let tenants = TenantTable::default()
        .with_tenant("tight", TenantPolicy { limits: EngineLimits::tight(), ..TenantPolicy::default() });
    let server = Server::new(ShardedStore::open(&root, 2).unwrap(), tenants, 2);
    // A default-tenant compile populates the default-limits artifact.
    let responses = server.run_batch(&[CompileJob::named("m3s")], &dbs);
    assert!(responses[0].is_ok());
    // The tight tenant's limits hash differently: its first request is a
    // fresh compile, not a hit on the default artifact.
    let responses = server.run_batch(&[CompileJob::named("m3s").tenant("tight")], &dbs);
    let JobOutcome::Done(result) = &responses[0].outcome else { panic!() };
    assert_eq!(result.provenance, Provenance::Compiled, "tight limits fork the key");
    // A deadline'd request under default limits *hits* the default
    // artifact: wall-clock budget is deliberately not in the key.
    let mut dead = CompileJob::named("m3s");
    dead.deadline_ms = Some(600_000);
    let responses = server.run_batch(std::slice::from_ref(&dead), &dbs);
    let JobOutcome::Done(result) = &responses[0].outcome else { panic!() };
    assert_eq!(result.provenance, Provenance::Cache, "deadlines do not fork the key");
    let _ = std::fs::remove_dir_all(&root);
}
