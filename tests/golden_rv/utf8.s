  ld    x5, 8(x2)
  li    x6, 3
  sub   x5, x5, x6
  sd    x5, 16(x2)
  li    x5, 0
  sd    x5, 24(x2)
  li    x5, 0
  sd    x5, 32(x2)
.Lhead0:
  ld    x5, 32(x2)
  ld    x6, 16(x2)
  sltu  x5, x5, x6
  beq   x5, x0, .Lendw1
  ld    x5, 24(x2)
  ld    x6, 0(x2)
  ld    x7, 32(x2)
  add   x6, x6, x7
  lbu   x6, 0(x6)
  ld    x7, 0(x2)
  ld    x8, 32(x2)
  add   x7, x7, x8
  lbu   x7, 0(x7)
  li    x8, 128
  sltu  x7, x7, x8
  mul   x6, x6, x7
  ld    x7, 0(x2)
  ld    x8, 32(x2)
  add   x7, x7, x8
  lbu   x7, 0(x7)
  li    x8, 31
  and   x7, x7, x8
  li    x8, 6
  sll   x7, x7, x8
  ld    x8, 0(x2)
  ld    x9, 32(x2)
  li    x10, 1
  add   x9, x9, x10
  add   x8, x8, x9
  lbu   x8, 0(x8)
  li    x9, 63
  and   x8, x8, x9
  or    x7, x7, x8
  ld    x8, 0(x2)
  ld    x9, 32(x2)
  add   x8, x8, x9
  lbu   x8, 0(x8)
  li    x9, 5
  srl   x8, x8, x9
  li    x9, 6
  sub   x8, x8, x9
  sltu  x8, x0, x8
  li    x9, 1
  xor   x8, x8, x9
  mul   x7, x7, x8
  add   x6, x6, x7
  ld    x7, 0(x2)
  ld    x8, 32(x2)
  add   x7, x7, x8
  lbu   x7, 0(x7)
  li    x8, 15
  and   x7, x7, x8
  li    x8, 12
  sll   x7, x7, x8
  ld    x8, 0(x2)
  ld    x9, 32(x2)
  li    x10, 1
  add   x9, x9, x10
  add   x8, x8, x9
  lbu   x8, 0(x8)
  li    x9, 63
  and   x8, x8, x9
  li    x9, 6
  sll   x8, x8, x9
  ld    x9, 0(x2)
  ld    x10, 32(x2)
  li    x11, 2
  add   x10, x10, x11
  add   x9, x9, x10
  lbu   x9, 0(x9)
  li    x10, 63
  and   x9, x9, x10
  or    x8, x8, x9
  or    x7, x7, x8
  ld    x8, 0(x2)
  ld    x9, 32(x2)
  add   x8, x8, x9
  lbu   x8, 0(x8)
  li    x9, 4
  srl   x8, x8, x9
  li    x9, 14
  sub   x8, x8, x9
  sltu  x8, x0, x8
  li    x9, 1
  xor   x8, x8, x9
  mul   x7, x7, x8
  ld    x8, 0(x2)
  ld    x9, 32(x2)
  add   x8, x8, x9
  lbu   x8, 0(x8)
  li    x9, 7
  and   x8, x8, x9
  li    x9, 18
  sll   x8, x8, x9
  ld    x9, 0(x2)
  ld    x10, 32(x2)
  li    x11, 1
  add   x10, x10, x11
  add   x9, x9, x10
  lbu   x9, 0(x9)
  li    x10, 63
  and   x9, x9, x10
  li    x10, 12
  sll   x9, x9, x10
  ld    x10, 0(x2)
  ld    x11, 32(x2)
  li    x12, 2
  add   x11, x11, x12
  add   x10, x10, x11
  lbu   x10, 0(x10)
  li    x11, 63
  and   x10, x10, x11
  li    x11, 6
  sll   x10, x10, x11
  ld    x11, 0(x2)
  ld    x12, 32(x2)
  li    x13, 3
  add   x12, x12, x13
  add   x11, x11, x12
  lbu   x11, 0(x11)
  li    x12, 63
  and   x11, x11, x12
  or    x10, x10, x11
  or    x9, x9, x10
  or    x8, x8, x9
  ld    x9, 0(x2)
  ld    x10, 32(x2)
  add   x9, x9, x10
  lbu   x9, 0(x9)
  li    x10, 3
  srl   x9, x9, x10
  li    x10, 30
  sub   x9, x9, x10
  sltu  x9, x0, x9
  li    x10, 1
  xor   x9, x9, x10
  mul   x8, x8, x9
  add   x7, x7, x8
  add   x6, x6, x7
  add   x5, x5, x6
  sd    x5, 24(x2)
  ld    x5, 32(x2)
  li    x6, 1
  add   x5, x5, x6
  sd    x5, 32(x2)
  j     .Lhead0
.Lendw1:
  ld    x5, 24(x2)
  sd    x5, 40(x2)
  halt
