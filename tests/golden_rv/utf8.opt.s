  ld    x19, 0(x2)
  ld    x22, 8(x2)
  li    x5, 3
  sub   x21, x22, x5
  addi  x20, x0, 0
  li    x5, 0
  add   x18, x5, x0
.Lhead0:
  sltu  x5, x18, x21
  beq   x5, x0, .Lendw1
  add   x5, x19, x18
  lbu   x5, 0(x5)
  add   x6, x19, x18
  lbu   x6, 0(x6)
  li    x7, 128
  sltu  x6, x6, x7
  mul   x5, x5, x6
  add   x6, x19, x18
  lbu   x6, 0(x6)
  li    x7, 31
  and   x6, x6, x7
  li    x7, 6
  sll   x6, x6, x7
  addi  x7, x18, 1
  add   x7, x19, x7
  lbu   x7, 0(x7)
  li    x8, 63
  and   x7, x7, x8
  or    x6, x6, x7
  add   x7, x19, x18
  lbu   x7, 0(x7)
  li    x8, 5
  srl   x7, x7, x8
  li    x8, 6
  sub   x7, x7, x8
  sltu  x7, x0, x7
  li    x8, 1
  xor   x7, x7, x8
  mul   x6, x6, x7
  add   x5, x5, x6
  add   x6, x19, x18
  lbu   x6, 0(x6)
  li    x7, 15
  and   x6, x6, x7
  li    x7, 12
  sll   x6, x6, x7
  addi  x7, x18, 1
  add   x7, x19, x7
  lbu   x7, 0(x7)
  li    x8, 63
  and   x7, x7, x8
  li    x8, 6
  sll   x7, x7, x8
  addi  x8, x18, 2
  add   x8, x19, x8
  lbu   x8, 0(x8)
  li    x9, 63
  and   x8, x8, x9
  or    x7, x7, x8
  or    x6, x6, x7
  add   x7, x19, x18
  lbu   x7, 0(x7)
  li    x8, 4
  srl   x7, x7, x8
  li    x8, 14
  sub   x7, x7, x8
  sltu  x7, x0, x7
  li    x8, 1
  xor   x7, x7, x8
  mul   x6, x6, x7
  add   x7, x19, x18
  lbu   x7, 0(x7)
  li    x8, 7
  and   x7, x7, x8
  li    x8, 18
  sll   x7, x7, x8
  addi  x8, x18, 1
  add   x8, x19, x8
  lbu   x8, 0(x8)
  li    x9, 63
  and   x8, x8, x9
  li    x9, 12
  sll   x8, x8, x9
  addi  x9, x18, 2
  add   x9, x19, x9
  lbu   x9, 0(x9)
  li    x10, 63
  and   x9, x9, x10
  li    x10, 6
  sll   x9, x9, x10
  addi  x10, x18, 3
  add   x10, x19, x10
  lbu   x10, 0(x10)
  li    x11, 63
  and   x10, x10, x11
  or    x9, x9, x10
  or    x8, x8, x9
  or    x7, x7, x8
  add   x8, x19, x18
  lbu   x8, 0(x8)
  li    x9, 3
  srl   x8, x8, x9
  li    x9, 30
  sub   x8, x8, x9
  sltu  x8, x0, x8
  li    x9, 1
  xor   x8, x8, x9
  mul   x7, x7, x8
  add   x6, x6, x7
  add   x5, x5, x6
  add   x5, x20, x5
  add   x20, x5, x0
  addi  x5, x18, 1
  add   x18, x5, x0
  j     .Lhead0
.Lendw1:
  add   x23, x20, x0
  sd    x19, 0(x2)
  sd    x22, 8(x2)
  sd    x21, 16(x2)
  sd    x20, 24(x2)
  sd    x18, 32(x2)
  sd    x23, 40(x2)
  halt
