  li    x5, -3750763034362895579
  sd    x5, 16(x2)
  li    x5, 0
  sd    x5, 24(x2)
.Lhead0:
  ld    x5, 24(x2)
  ld    x6, 8(x2)
  sltu  x5, x5, x6
  beq   x5, x0, .Lendw1
  ld    x5, 0(x2)
  ld    x6, 24(x2)
  add   x5, x5, x6
  lbu   x5, 0(x5)
  sd    x5, 32(x2)
  ld    x5, 16(x2)
  ld    x6, 32(x2)
  xor   x5, x5, x6
  li    x6, 1099511628211
  mul   x5, x5, x6
  sd    x5, 16(x2)
  ld    x5, 24(x2)
  li    x6, 1
  add   x5, x5, x6
  sd    x5, 24(x2)
  j     .Lhead0
.Lendw1:
  ld    x5, 16(x2)
  sd    x5, 40(x2)
  halt
