  ld    x20, 0(x2)
  ld    x21, 8(x2)
  li    x5, 0
  add   x18, x5, x0
.Lhead0:
  sltu  x5, x18, x21
  beq   x5, x0, .Lendw1
  add   x5, x20, x18
  lbu   x19, 0(x5)
  add   x5, x20, x18
  li    x6, 97
  sub   x6, x19, x6
  li    x7, 255
  and   x6, x6, x7
  li    x7, 26
  sltu  x6, x6, x7
  li    x7, 5
  sll   x6, x6, x7
  li    x7, 255
  and   x6, x6, x7
  xor   x6, x19, x6
  sb    x6, 0(x5)
  addi  x5, x18, 1
  add   x18, x5, x0
  j     .Lhead0
.Lendw1:
  sd    x20, 0(x2)
  sd    x21, 8(x2)
  sd    x18, 16(x2)
  sd    x19, 24(x2)
  halt
