  li    x5, 0
  sd    x5, 16(x2)
.Lhead0:
  ld    x5, 16(x2)
  ld    x6, 8(x2)
  sltu  x5, x5, x6
  beq   x5, x0, .Lendw1
  ld    x5, 0(x2)
  ld    x6, 16(x2)
  add   x5, x5, x6
  lbu   x5, 0(x5)
  sd    x5, 24(x2)
  ld    x5, 0(x2)
  ld    x6, 16(x2)
  add   x5, x5, x6
  ld    x6, 24(x2)
  ld    x7, 24(x2)
  li    x8, 97
  sub   x7, x7, x8
  li    x8, 255
  and   x7, x7, x8
  li    x8, 26
  sltu  x7, x7, x8
  li    x8, 5
  sll   x7, x7, x8
  li    x8, 255
  and   x7, x7, x8
  xor   x6, x6, x7
  sb    x6, 0(x5)
  ld    x5, 16(x2)
  li    x6, 1
  add   x5, x5, x6
  sd    x5, 16(x2)
  j     .Lhead0
.Lendw1:
  halt
