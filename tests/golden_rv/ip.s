  ld    x5, 8(x2)
  li    x6, 1
  srl   x5, x5, x6
  sd    x5, 16(x2)
  li    x5, 0
  sd    x5, 24(x2)
  li    x5, 0
  sd    x5, 32(x2)
.Lhead0:
  ld    x5, 32(x2)
  ld    x6, 16(x2)
  sltu  x5, x5, x6
  beq   x5, x0, .Lendw1
  ld    x5, 24(x2)
  ld    x6, 0(x2)
  li    x7, 2
  ld    x8, 32(x2)
  mul   x7, x7, x8
  add   x6, x6, x7
  lbu   x6, 0(x6)
  li    x7, 8
  sll   x6, x6, x7
  ld    x7, 0(x2)
  li    x8, 2
  ld    x9, 32(x2)
  mul   x8, x8, x9
  li    x9, 1
  add   x8, x8, x9
  add   x7, x7, x8
  lbu   x7, 0(x7)
  or    x6, x6, x7
  add   x5, x5, x6
  sd    x5, 24(x2)
  ld    x5, 32(x2)
  li    x6, 1
  add   x5, x5, x6
  sd    x5, 32(x2)
  j     .Lhead0
.Lendw1:
  ld    x5, 24(x2)
  li    x6, 65535
  and   x5, x5, x6
  ld    x6, 24(x2)
  li    x7, 16
  srl   x6, x6, x7
  add   x5, x5, x6
  sd    x5, 24(x2)
  ld    x5, 24(x2)
  li    x6, 65535
  and   x5, x5, x6
  ld    x6, 24(x2)
  li    x7, 16
  srl   x6, x6, x7
  add   x5, x5, x6
  sd    x5, 24(x2)
  ld    x5, 24(x2)
  li    x6, 65535
  and   x5, x5, x6
  ld    x6, 24(x2)
  li    x7, 16
  srl   x6, x6, x7
  add   x5, x5, x6
  sd    x5, 24(x2)
  ld    x5, 24(x2)
  li    x6, 65535
  and   x5, x5, x6
  ld    x6, 24(x2)
  li    x7, 16
  srl   x6, x6, x7
  add   x5, x5, x6
  sd    x5, 24(x2)
  ld    x5, 24(x2)
  li    x6, 65535
  xor   x5, x5, x6
  sd    x5, 40(x2)
  ld    x5, 40(x2)
  sd    x5, 48(x2)
  halt
