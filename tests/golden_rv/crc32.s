  li    x5, 4294967295
  sd    x5, 16(x2)
  li    x5, 0
  sd    x5, 24(x2)
.Lhead0:
  ld    x5, 24(x2)
  ld    x6, 8(x2)
  sltu  x5, x5, x6
  beq   x5, x0, .Lendw1
  ld    x5, 0(x2)
  ld    x6, 24(x2)
  add   x5, x5, x6
  lbu   x5, 0(x5)
  sd    x5, 32(x2)
  ld    x5, 16(x2)
  li    x6, 8
  srl   x5, x5, x6
  ld    x6, 16(x2)
  ld    x7, 32(x2)
  xor   x6, x6, x7
  li    x7, 255
  and   x6, x6, x7
  li    x7, 8
  mul   x6, x6, x7
  li    x7, %crc_t
  add   x6, x6, x7
  ld    x6, 0(x6)
  xor   x5, x5, x6
  sd    x5, 16(x2)
  ld    x5, 24(x2)
  li    x6, 1
  add   x5, x5, x6
  sd    x5, 24(x2)
  j     .Lhead0
.Lendw1:
  ld    x5, 16(x2)
  li    x6, 4294967295
  xor   x5, x5, x6
  sd    x5, 16(x2)
  ld    x5, 16(x2)
  sd    x5, 40(x2)
  halt
