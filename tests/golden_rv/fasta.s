  li    x5, 0
  sd    x5, 16(x2)
.Lhead0:
  ld    x5, 16(x2)
  ld    x6, 8(x2)
  sltu  x5, x5, x6
  beq   x5, x0, .Lendw1
  ld    x5, 0(x2)
  ld    x6, 16(x2)
  add   x5, x5, x6
  lbu   x5, 0(x5)
  sd    x5, 24(x2)
  ld    x5, 0(x2)
  ld    x6, 16(x2)
  add   x5, x5, x6
  ld    x6, 24(x2)
  li    x7, %comp
  add   x6, x6, x7
  lbu   x6, 0(x6)
  sb    x6, 0(x5)
  ld    x5, 16(x2)
  li    x6, 1
  add   x5, x5, x6
  sd    x5, 16(x2)
  j     .Lhead0
.Lendw1:
  halt
