  ld    x5, 0(x2)
  li    x6, 3432918353
  mul   x5, x5, x6
  li    x6, 4294967295
  and   x5, x5, x6
  sd    x5, 0(x2)
  ld    x5, 0(x2)
  li    x6, 15
  sll   x5, x5, x6
  ld    x6, 0(x2)
  li    x7, 17
  srl   x6, x6, x7
  or    x5, x5, x6
  li    x6, 4294967295
  and   x5, x5, x6
  sd    x5, 0(x2)
  ld    x5, 0(x2)
  li    x6, 461845907
  mul   x5, x5, x6
  li    x6, 4294967295
  and   x5, x5, x6
  sd    x5, 0(x2)
  ld    x5, 0(x2)
  sd    x5, 8(x2)
  halt
