  ld    x20, 0(x2)
  ld    x22, 8(x2)
  li    x5, 1
  srl   x21, x22, x5
  addi  x19, x0, 0
  li    x5, 0
  add   x18, x5, x0
.Lhead0:
  sltu  x5, x18, x21
  beq   x5, x0, .Lendw1
  li    x5, 2
  mul   x5, x5, x18
  add   x5, x20, x5
  lbu   x5, 0(x5)
  li    x6, 8
  sll   x5, x5, x6
  li    x6, 2
  mul   x6, x6, x18
  li    x7, 1
  add   x6, x6, x7
  add   x6, x20, x6
  lbu   x6, 0(x6)
  or    x5, x5, x6
  add   x5, x19, x5
  add   x19, x5, x0
  addi  x5, x18, 1
  add   x18, x5, x0
  j     .Lhead0
.Lendw1:
  li    x5, 65535
  and   x5, x19, x5
  li    x6, 16
  srl   x6, x19, x6
  add   x19, x5, x6
  li    x5, 65535
  and   x5, x19, x5
  li    x6, 16
  srl   x6, x19, x6
  add   x19, x5, x6
  li    x5, 65535
  and   x5, x19, x5
  li    x6, 16
  srl   x6, x19, x6
  add   x19, x5, x6
  li    x5, 65535
  and   x5, x19, x5
  li    x6, 16
  srl   x6, x19, x6
  add   x19, x5, x6
  li    x5, 65535
  xor   x23, x19, x5
  add   x24, x23, x0
  sd    x20, 0(x2)
  sd    x22, 8(x2)
  sd    x21, 16(x2)
  sd    x19, 24(x2)
  sd    x18, 32(x2)
  sd    x23, 40(x2)
  sd    x24, 48(x2)
  halt
