  ld    x22, 0(x2)
  ld    x21, 8(x2)
  addi  x19, x0, 4294967295
  li    x5, 0
  add   x18, x5, x0
.Lhead0:
  sltu  x5, x18, x21
  beq   x5, x0, .Lendw1
  add   x5, x22, x18
  lbu   x20, 0(x5)
  li    x5, 8
  srl   x5, x19, x5
  xor   x6, x19, x20
  li    x7, 255
  and   x6, x6, x7
  li    x7, 8
  mul   x6, x6, x7
  li    x7, %crc_t
  add   x6, x6, x7
  ld    x6, 0(x6)
  xor   x19, x5, x6
  addi  x5, x18, 1
  add   x18, x5, x0
  j     .Lhead0
.Lendw1:
  li    x5, 4294967295
  xor   x5, x19, x5
  add   x19, x5, x0
  add   x23, x19, x0
  sd    x22, 0(x2)
  sd    x21, 8(x2)
  sd    x19, 16(x2)
  sd    x18, 24(x2)
  sd    x20, 32(x2)
  sd    x23, 40(x2)
  halt
