  ld    x22, 0(x2)
  ld    x21, 8(x2)
  addi  x19, x0, -3750763034362895579
  li    x5, 0
  add   x18, x5, x0
.Lhead0:
  sltu  x5, x18, x21
  beq   x5, x0, .Lendw1
  add   x5, x22, x18
  lbu   x20, 0(x5)
  xor   x5, x19, x20
  li    x6, 1099511628211
  mul   x19, x5, x6
  addi  x5, x18, 1
  add   x18, x5, x0
  j     .Lhead0
.Lendw1:
  add   x23, x19, x0
  sd    x22, 0(x2)
  sd    x21, 8(x2)
  sd    x19, 16(x2)
  sd    x18, 24(x2)
  sd    x20, 32(x2)
  sd    x23, 40(x2)
  halt
