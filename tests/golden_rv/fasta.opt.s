  ld    x19, 0(x2)
  ld    x21, 8(x2)
  li    x5, 0
  add   x18, x5, x0
.Lhead0:
  sltu  x5, x18, x21
  beq   x5, x0, .Lendw1
  add   x5, x19, x18
  lbu   x20, 0(x5)
  add   x5, x19, x18
  li    x6, %comp
  add   x6, x20, x6
  lbu   x6, 0(x6)
  sb    x6, 0(x5)
  addi  x5, x18, 1
  add   x18, x5, x0
  j     .Lhead0
.Lendw1:
  sd    x19, 0(x2)
  sd    x21, 8(x2)
  sd    x18, 16(x2)
  sd    x20, 24(x2)
  halt
