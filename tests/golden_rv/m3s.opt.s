  ld    x18, 0(x2)
  li    x5, 3432918353
  mul   x5, x18, x5
  li    x6, 4294967295
  and   x18, x5, x6
  li    x5, 15
  sll   x5, x18, x5
  li    x6, 17
  srl   x6, x18, x6
  or    x5, x5, x6
  li    x6, 4294967295
  and   x18, x5, x6
  li    x5, 461845907
  mul   x5, x18, x5
  li    x6, 4294967295
  and   x18, x5, x6
  add   x19, x18, x0
  sd    x18, 0(x2)
  sd    x19, 8(x2)
  halt
