//! Property-based battery for the RISC-V backend: every suite and
//! CT-suite program, lowered through both end routes, differentially
//! validated on *freshly seeded* checker inputs each iteration — so the
//! machine simulator is held to the Bedrock2 interpreter on inputs the
//! goldens never saw — plus an assemble/listing round-trip property over
//! structurally random programs.

use rupicola::bedrock::rv::{listing, parse_listing, Asm, Imm};
use rupicola::core::check::CheckConfig;
use rupicola::core::CompiledFunction;
use rupicola::programs::{ct_suite, suite};
use rupicola::{lower_validated, RvPipelineConfig};
use rupicola_minicheck::{check, Rng};

fn all_programs() -> Vec<(&'static str, CompiledFunction)> {
    let mut out: Vec<(&'static str, CompiledFunction)> = Vec::new();
    for e in suite() {
        out.push((e.info.name, (e.compiled)().expect("suite compiles")));
    }
    for e in ct_suite() {
        out.push((e.entry.info.name, (e.entry.compiled)().expect("ct suite compiles")));
    }
    out
}

/// Both routes of every program validate on random seeds: the naive
/// spill-all lowering and the full pipeline each agree with the
/// interpreter on return words, final heap, and final locals, and no
/// pristine stage is ever rolled back.
#[test]
fn machine_agrees_with_interpreter_on_random_seeds() {
    let programs = all_programs();
    check("rv_differential_battery", 3, |rng| {
        let config = CheckConfig { vectors: 2, seed: rng.next_u64(), ..CheckConfig::default() };
        for (name, cf) in &programs {
            for route in [RvPipelineConfig::none(), RvPipelineConfig::full()] {
                let (_, report) = lower_validated(cf, &route, &config).unwrap_or_else(|e| {
                    panic!("{name} [{}]: {e}", route.identity_string())
                });
                assert_eq!(
                    report.rolled_back_count(),
                    0,
                    "{name} [{}]: pristine stage rolled back:\n{report}",
                    route.identity_string()
                );
            }
        }
    });
}

fn random_reg(rng: &mut Rng) -> u8 {
    rng.below(32) as u8
}

fn random_off(rng: &mut Rng) -> i64 {
    (rng.next_u64() % 4096) as i64 - 2048
}

fn random_label(rng: &mut Rng) -> String {
    format!(".L{}", rng.below(8))
}

fn random_instr(rng: &mut Rng) -> Asm {
    let (d, a, b) = (random_reg(rng), random_reg(rng), random_reg(rng));
    match rng.below(24) {
        0 => Asm::Add(d, a, b),
        1 => Asm::Sub(d, a, b),
        2 => Asm::Mul(d, a, b),
        3 => Asm::Mulhu(d, a, b),
        4 => Asm::Divu(d, a, b),
        5 => Asm::Remu(d, a, b),
        6 => Asm::And(d, a, b),
        7 => Asm::Or(d, a, b),
        8 => Asm::Xor(d, a, b),
        9 => Asm::Sll(d, a, b),
        10 => Asm::Srl(d, a, b),
        11 => Asm::Sra(d, a, b),
        12 => Asm::Slt(d, a, b),
        13 => Asm::Sltu(d, a, b),
        14 => {
            let imm = if rng.bool() {
                Imm::Lit(rng.next_u64() as i64)
            } else {
                Imm::TableBase(format!("tbl{}", rng.below(4)))
            };
            Asm::Li(d, imm)
        }
        15 => Asm::Addi(d, a, random_off(rng)),
        16 => Asm::Lbu(d, a, random_off(rng)),
        17 => Asm::Lhu(d, a, random_off(rng)),
        18 => Asm::Lwu(d, a, random_off(rng)),
        19 => Asm::Ld(d, a, random_off(rng)),
        20 => Asm::Sb(d, a, random_off(rng)),
        21 => Asm::Sh(d, a, random_off(rng)),
        22 => Asm::Sw(d, a, random_off(rng)),
        _ => match rng.below(8) {
            0 => Asm::Sd(d, a, random_off(rng)),
            1 => Asm::Label(random_label(rng)),
            2 => Asm::Beq(a, b, random_label(rng)),
            3 => Asm::Bne(a, b, random_label(rng)),
            4 => Asm::Bltu(a, b, random_label(rng)),
            5 => Asm::Bgeu(a, b, random_label(rng)),
            6 => Asm::J(random_label(rng)),
            _ => Asm::Halt,
        },
    }
}

/// `parse_listing ∘ listing` is the identity on arbitrary instruction
/// sequences — the artifact codec's text layer loses nothing, for any
/// register, offset, immediate, label, or table symbol.
#[test]
fn listing_round_trips_through_the_parser() {
    check("rv_listing_round_trip", 256, |rng| {
        let len = rng.range(0, 40);
        let asm: Vec<Asm> = (0..len).map(|_| random_instr(rng)).collect();
        let text = listing(&asm);
        let parsed = parse_listing(&text)
            .unwrap_or_else(|e| panic!("listing must re-parse: {e}\n{text}"));
        assert_eq!(parsed, asm, "round trip changed the program:\n{text}");
    });
}
