//! User-pluggable side-condition solvers.
//!
//! §3.1: when compilation requires "solving side conditions that Rupicola's
//! logic does not recognize", users "plug in … new tactics to discharge
//! unsolved side conditions". Here the built-in `lia` cannot prove
//! `x mod len < len` (it has no modulo theory for symbolic divisors); a
//! five-line user solver closes exactly that gap, and the whole pipeline —
//! including the checker's structural re-validation, which re-runs the
//! registered solvers — goes through.

use rupicola::core::check::check;
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::core::solver::SideSolver;
use rupicola::core::{compile, CompileError, Hyp, HypRef, SideCond};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{ElemKind, Expr, Model, PrimOp};

/// Proves `a mod b < b` when `b ≠ 0` is among the hypotheses (stated as
/// `0 < b`).
#[derive(Debug, Clone, Copy)]
struct RemuBound;

impl SideSolver for RemuBound {
    fn name(&self) -> &'static str {
        "remu_bound"
    }
    fn solve(&self, cond: &SideCond, hyps: &[HypRef]) -> bool {
        let SideCond::Lt(a, b) = cond else { return false };
        let Expr::Prim { op: PrimOp::WRemU, args } = a else { return false };
        args[1] == *b
            && hyps.iter().any(|h| matches!(&h.hyp, Hyp::LtU(zero, d)
                if d == b && *zero == word_lit(0)))
    }
}

fn modular_model() -> Model {
    // let b := s[x mod (len s)] in word_of_byte b
    Model::new(
        "mod_get",
        ["s", "x"],
        let_n(
            "b",
            array_get_b(var("s"), word_remu(var("x"), array_len_b(var("s")))),
            word_of_byte(var("b")),
        ),
    )
}

fn modular_spec() -> FnSpec {
    FnSpec::new(
        "mod_get",
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::Scalar {
                name: "x".into(),
                param: "x".into(),
                kind: rupicola::sep::ScalarKind::Word,
            },
        ],
        vec![RetSpec::Scalar { name: "out".into(), kind: rupicola::sep::ScalarKind::Word }],
    )
    // The nonemptiness precondition that makes the modulo well defined.
    .with_hint(Hyp::LtU(word_lit(0), array_len_b(var("s"))))
}

#[test]
fn builtin_solver_alone_cannot_discharge_the_bound() {
    let err = compile(&modular_model(), &modular_spec(), &standard_dbs()).unwrap_err();
    match err {
        CompileError::SideCondition { cond, .. } => {
            assert!(cond.contains("remu"), "{cond}");
        }
        other => panic!("expected a side-condition failure, got {other}"),
    }
}

#[test]
fn user_solver_closes_the_gap_and_the_checker_accepts_it() {
    let mut dbs = standard_dbs();
    dbs.register_solver(RemuBound);
    let compiled = compile(&modular_model(), &modular_spec(), &dbs).unwrap();
    // The derivation records which solver discharged the bound.
    let mut solvers = Vec::new();
    compiled.derivation.root.walk(&mut |n| {
        for sc in &n.side_conds {
            solvers.push(sc.solver.clone());
        }
    });
    assert!(solvers.iter().any(|s| s == "remu_bound"), "{solvers:?}");
    // The checker re-runs the registered solvers during structural
    // validation and then validates behaviour differentially.
    check(&compiled, &dbs).unwrap();
}

#[test]
fn checker_without_the_solver_rejects_the_witness() {
    // A witness whose side conditions cite a solver the verifier does not
    // have must not re-validate: trust is anchored in the checker's own
    // databases, not the compiler's claims.
    let mut dbs = standard_dbs();
    dbs.register_solver(RemuBound);
    let compiled = compile(&modular_model(), &modular_spec(), &dbs).unwrap();
    let plain = standard_dbs();
    let err = check(&compiled, &plain).unwrap_err();
    assert!(
        matches!(err, rupicola::core::check::CheckError::SideCondition { .. }),
        "got {err:?}"
    );
}
