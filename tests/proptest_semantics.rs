//! Property-based tests of the substrate semantics: the source language's
//! structural laws, the Bedrock2 memory model, and the §2 stack machine.

use proptest::prelude::*;
use rupicola::bedrock::{AccessSize, BinOp, Memory};
use rupicola::lang::dsl::*;
use rupicola::lang::eval::{eval, Env, World};
use rupicola::lang::{Expr, Value};
use rupicola::stackm;

fn eval_pure(e: &Expr, env: &Env) -> Value {
    eval(e, env, &[], &mut World::default()).expect("pure eval")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `ListArray.map` preserves length and acts elementwise.
    #[test]
    fn map_is_elementwise(data in proptest::collection::vec(any::<u8>(), 0..200), mask in any::<u8>()) {
        let mut env = Env::new();
        env.insert("s".into(), Value::byte_list(data.iter().copied()));
        let e = array_map_b("b", byte_and(var("b"), byte_lit(mask)), var("s"));
        let out = eval_pure(&e, &env);
        let expected: Vec<u8> = data.iter().map(|b| b & mask).collect();
        prop_assert_eq!(out, Value::byte_list(expected));
    }

    /// `fold_left` agrees with the iterative computation.
    #[test]
    fn fold_agrees_with_iteration(data in proptest::collection::vec(any::<u8>(), 0..200), init in any::<u64>()) {
        let mut env = Env::new();
        env.insert("s".into(), Value::byte_list(data.iter().copied()));
        let e = array_fold_b(
            "acc", "b",
            word_add(word_mul(var("acc"), word_lit(31)), word_of_byte(var("b"))),
            word_lit(init),
            var("s"),
        );
        let out = eval_pure(&e, &env);
        let expected = data.iter().fold(init, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(u64::from(*b))
        });
        prop_assert_eq!(out, Value::Word(expected));
    }

    /// `get (put a i v) i = v` and other indices unchanged.
    #[test]
    fn put_get_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..100), v in any::<u8>(), j in any::<prop::sample::Index>()) {
        let i = j.index(data.len()) as u64;
        let mut env = Env::new();
        env.insert("s".into(), Value::byte_list(data.iter().copied()));
        let put = array_put_b(var("s"), word_lit(i), byte_lit(v));
        let got = eval_pure(&array_get_b(put.clone(), word_lit(i)), &env);
        prop_assert_eq!(got, Value::Byte(v));
        // Another index is untouched.
        let k = (i + 1) % data.len() as u64;
        if k != i {
            let other = eval_pure(&array_get_b(put, word_lit(k)), &env);
            prop_assert_eq!(other, Value::Byte(data[k as usize]));
        }
    }

    /// `range_fold` splits: folding 0..n equals folding 0..m then m..n.
    #[test]
    fn range_fold_splits(n in 0u64..64, m_idx in any::<prop::sample::Index>(), salt in any::<u64>()) {
        let m = if n == 0 { 0 } else { m_idx.index(n as usize + 1) as u64 };
        let body = |acc: Expr, i: Expr| word_add(word_mul(acc, word_lit(3)), word_xor(i, word_lit(salt)));
        let env = Env::new();
        let whole = eval_pure(
            &range_fold("i", "a", body(var("a"), var("i")), word_lit(1), word_lit(0), word_lit(n)),
            &env,
        );
        let first = eval_pure(
            &range_fold("i", "a", body(var("a"), var("i")), word_lit(1), word_lit(0), word_lit(m)),
            &env,
        );
        let Value::Word(first_w) = first else { unreachable!() };
        let second = eval_pure(
            &range_fold("i", "a", body(var("a"), var("i")), word_lit(first_w), word_lit(m), word_lit(n)),
            &env,
        );
        prop_assert_eq!(whole, second);
    }

    /// Memory load/store roundtrips at every size, and neighbours survive.
    #[test]
    fn memory_roundtrips(len in 16usize..64, off in 0usize..8, value in any::<u64>(), size in 0usize..4) {
        let sizes = [AccessSize::One, AccessSize::Two, AccessSize::Four, AccessSize::Eight];
        let size = sizes[size];
        let mut m = Memory::new();
        let base = m.alloc(vec![0xCC; len]);
        let addr = base + off as u64;
        m.store(addr, size, value).unwrap();
        let loaded = m.load(addr, size).unwrap();
        let mask = if size.bytes() == 8 { u64::MAX } else { (1 << (8 * size.bytes())) - 1 };
        prop_assert_eq!(loaded, value & mask);
        // The byte just after the store is untouched.
        let after = addr + size.bytes();
        if after < base + len as u64 {
            prop_assert_eq!(m.load(after, AccessSize::One).unwrap(), 0xCC);
        }
    }

    /// Out-of-bounds accesses always trap, never wrap into other regions.
    #[test]
    fn memory_oob_always_traps(len in 0usize..32, past in 0u64..16) {
        let mut m = Memory::new();
        let a = m.alloc(vec![0; len]);
        let _b = m.alloc(vec![0; 32]);
        prop_assert!(m.load(a + len as u64 + past, AccessSize::One).is_err() || past >= 64);
        prop_assert!(m.store(a + len as u64 + past, AccessSize::One, 1).is_err() || past >= 64);
    }

    /// Bedrock2's division/remainder match the RISC-V convention exactly.
    #[test]
    fn bedrock_divrem_riscv(a in any::<u64>(), b in any::<u64>()) {
        let d = BinOp::DivU.eval(a, b);
        let r = BinOp::RemU.eval(a, b);
        if b == 0 {
            prop_assert_eq!(d, u64::MAX);
            prop_assert_eq!(r, a);
        } else {
            prop_assert_eq!(d, a / b);
            prop_assert_eq!(r, a % b);
            prop_assert_eq!(d.wrapping_mul(b).wrapping_add(r), a);
        }
    }
}

// --- §2 stack machine ---

fn arb_s() -> impl Strategy<Value = stackm::S> {
    let leaf = any::<u64>().prop_map(stackm::S::int);
    leaf.prop_recursive(6, 64, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| stackm::S::add(a, b))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The functional compiler, the relational derivation and the source
    /// semantics agree on arbitrary programs (§2's `StoT_ok`/`StoT_rel_ok`).
    #[test]
    fn stack_machine_compilers_agree(s in arb_s()) {
        let t = stackm::compile(&s);
        prop_assert!(stackm::equiv(&t, &s));
        let d = stackm::derive(&s);
        prop_assert_eq!(d.target(), t);
        prop_assert!(d.validate());
    }

    /// Stack-machine execution leaves lower stack entries untouched
    /// (the ∀zs quantification of `t ∼ s`).
    #[test]
    fn stack_machine_preserves_stack_below(s in arb_s(), zs in proptest::collection::vec(any::<u64>(), 0..5)) {
        let t = stackm::compile(&s);
        let out = stackm::run(&t, zs.clone());
        prop_assert_eq!(out.len(), zs.len() + 1);
        prop_assert_eq!(&out[..zs.len()], &zs[..]);
        prop_assert_eq!(out[zs.len()], s.eval());
    }
}
