//! Property-based tests of the substrate semantics: the source language's
//! structural laws, the Bedrock2 memory model, and the §2 stack machine.

use rupicola::bedrock::{AccessSize, BinOp, Memory};
use rupicola::lang::dsl::*;
use rupicola::lang::eval::{eval, Env, World};
use rupicola::lang::{Expr, Value};
use rupicola::stackm;
use rupicola_minicheck::{check, Rng};

fn eval_pure(e: &Expr, env: &Env) -> Value {
    eval(e, env, &[], &mut World::default()).expect("pure eval")
}

/// `ListArray.map` preserves length and acts elementwise.
#[test]
fn map_is_elementwise() {
    check("map_is_elementwise", 128, |rng| {
        let len = rng.range(0, 200);
        let data = rng.bytes(len);
        let mask = rng.byte();
        let mut env = Env::new();
        env.insert("s".into(), Value::byte_list(data.iter().copied()));
        let e = array_map_b("b", byte_and(var("b"), byte_lit(mask)), var("s"));
        let out = eval_pure(&e, &env);
        let expected: Vec<u8> = data.iter().map(|b| b & mask).collect();
        assert_eq!(out, Value::byte_list(expected));
    });
}

/// `fold_left` agrees with the iterative computation.
#[test]
fn fold_agrees_with_iteration() {
    check("fold_agrees_with_iteration", 128, |rng| {
        let len = rng.range(0, 200);
        let data = rng.bytes(len);
        let init = rng.next_u64();
        let mut env = Env::new();
        env.insert("s".into(), Value::byte_list(data.iter().copied()));
        let e = array_fold_b(
            "acc",
            "b",
            word_add(word_mul(var("acc"), word_lit(31)), word_of_byte(var("b"))),
            word_lit(init),
            var("s"),
        );
        let out = eval_pure(&e, &env);
        let expected = data
            .iter()
            .fold(init, |acc, b| acc.wrapping_mul(31).wrapping_add(u64::from(*b)));
        assert_eq!(out, Value::Word(expected));
    });
}

/// `get (put a i v) i = v` and other indices unchanged.
#[test]
fn put_get_roundtrip() {
    check("put_get_roundtrip", 128, |rng| {
        let len = rng.range(1, 100);
        let data = rng.bytes(len);
        let v = rng.byte();
        let i = rng.below(data.len() as u64);
        let mut env = Env::new();
        env.insert("s".into(), Value::byte_list(data.iter().copied()));
        let put = array_put_b(var("s"), word_lit(i), byte_lit(v));
        let got = eval_pure(&array_get_b(put.clone(), word_lit(i)), &env);
        assert_eq!(got, Value::Byte(v));
        // Another index is untouched.
        let k = (i + 1) % data.len() as u64;
        if k != i {
            let other = eval_pure(&array_get_b(put, word_lit(k)), &env);
            assert_eq!(other, Value::Byte(data[k as usize]));
        }
    });
}

/// `range_fold` splits: folding 0..n equals folding 0..m then m..n.
#[test]
fn range_fold_splits() {
    check("range_fold_splits", 128, |rng| {
        let n = rng.below(64);
        let m = rng.below(n + 1);
        let salt = rng.next_u64();
        let body =
            |acc: Expr, i: Expr| word_add(word_mul(acc, word_lit(3)), word_xor(i, word_lit(salt)));
        let env = Env::new();
        let whole = eval_pure(
            &range_fold("i", "a", body(var("a"), var("i")), word_lit(1), word_lit(0), word_lit(n)),
            &env,
        );
        let first = eval_pure(
            &range_fold("i", "a", body(var("a"), var("i")), word_lit(1), word_lit(0), word_lit(m)),
            &env,
        );
        let Value::Word(first_w) = first else { unreachable!() };
        let second = eval_pure(
            &range_fold(
                "i",
                "a",
                body(var("a"), var("i")),
                word_lit(first_w),
                word_lit(m),
                word_lit(n),
            ),
            &env,
        );
        assert_eq!(whole, second);
    });
}

/// Memory load/store roundtrips at every size, and neighbours survive.
#[test]
fn memory_roundtrips() {
    check("memory_roundtrips", 128, |rng| {
        let len = rng.range(16, 64);
        let off = rng.range(0, 8);
        let value = rng.next_u64();
        let sizes = [AccessSize::One, AccessSize::Two, AccessSize::Four, AccessSize::Eight];
        let size = *rng.pick(&sizes);
        let mut m = Memory::new();
        let base = m.alloc(vec![0xCC; len]);
        let addr = base + off as u64;
        m.store(addr, size, value).unwrap();
        let loaded = m.load(addr, size).unwrap();
        let mask =
            if size.bytes() == 8 { u64::MAX } else { (1 << (8 * size.bytes())) - 1 };
        assert_eq!(loaded, value & mask);
        // The byte just after the store is untouched.
        let after = addr + size.bytes();
        if after < base + len as u64 {
            assert_eq!(m.load(after, AccessSize::One).unwrap(), 0xCC);
        }
    });
}

/// Out-of-bounds accesses always trap, never wrap into other regions.
#[test]
fn memory_oob_always_traps() {
    check("memory_oob_always_traps", 128, |rng| {
        let len = rng.range(0, 32);
        let past = rng.below(16);
        let mut m = Memory::new();
        let a = m.alloc(vec![0; len]);
        let _b = m.alloc(vec![0; 32]);
        assert!(m.load(a + len as u64 + past, AccessSize::One).is_err() || past >= 64);
        assert!(m.store(a + len as u64 + past, AccessSize::One, 1).is_err() || past >= 64);
    });
}

/// Bedrock2's division/remainder match the RISC-V convention exactly.
#[test]
fn bedrock_divrem_riscv() {
    check("bedrock_divrem_riscv", 128, |rng| {
        let (a, b) = (rng.next_u64(), if rng.below(8) == 0 { 0 } else { rng.next_u64() });
        let d = BinOp::DivU.eval(a, b);
        let r = BinOp::RemU.eval(a, b);
        assert_eq!(d, a.checked_div(b).unwrap_or(u64::MAX));
        assert_eq!(r, a.checked_rem(b).unwrap_or(a));
        if b != 0 {
            assert_eq!(d.wrapping_mul(b).wrapping_add(r), a);
        }
    });
}

// --- §2 stack machine ---

fn arb_s(rng: &mut Rng, depth: usize) -> stackm::S {
    if depth == 0 || rng.below(3) == 0 {
        return stackm::S::int(rng.next_u64());
    }
    stackm::S::add(arb_s(rng, depth - 1), arb_s(rng, depth - 1))
}

/// The functional compiler, the relational derivation and the source
/// semantics agree on arbitrary programs (§2's `StoT_ok`/`StoT_rel_ok`).
#[test]
fn stack_machine_compilers_agree() {
    check("stack_machine_compilers_agree", 128, |rng| {
        let s = arb_s(rng, 6);
        let t = stackm::compile(&s);
        assert!(stackm::equiv(&t, &s));
        let d = stackm::derive(&s);
        assert_eq!(d.target(), t);
        assert!(d.validate());
    });
}

/// Stack-machine execution leaves lower stack entries untouched
/// (the ∀zs quantification of `t ∼ s`).
#[test]
fn stack_machine_preserves_stack_below() {
    check("stack_machine_preserves_stack_below", 128, |rng| {
        let s = arb_s(rng, 6);
        let zs_len = rng.range(0, 5);
        let zs = rng.words(zs_len);
        let t = stackm::compile(&s);
        let out = stackm::run(&t, zs.clone());
        assert_eq!(out.len(), zs.len() + 1);
        assert_eq!(&out[..zs.len()], &zs[..]);
        assert_eq!(out[zs.len()], s.eval());
    });
}
