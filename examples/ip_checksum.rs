//! The network-domain example: RFC 1071 one's-complement checksum,
//! end-to-end.
//!
//! Shows the three-layer methodology of §3.1 on the `ip` program:
//!
//! 1. an *abstract specification* (the RFC text, here an executable
//!    oracle),
//! 2. the *annotated functional model* verified against it (differential
//!    testing standing in for the by-hand Coq proof), and
//! 3. relational compilation to Bedrock2, certified by the checker.
//!
//! Run with `cargo run --example ip_checksum`.

use rupicola::bedrock::{cprint, ExecState, Interpreter, NoExternals, Program};
use rupicola::core::check::check;
use rupicola::core::fnspec::concretize;
use rupicola::ext::standard_dbs;
use rupicola::lang::eval::{eval_model, World};
use rupicola::lang::Value;
use rupicola::programs::ip;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: verify the functional model against the abstract spec.
    let model = ip::model();
    println!("verifying the functional model against RFC 1071…");
    let mut seed = 0x5EED_u64;
    for trial in 0..200 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let len = ((seed >> 33) % 128) as usize & !1; // even lengths
        let data: Vec<u8> = (0..len).map(|i| (seed.rotate_left(i as u32) & 0xff) as u8).collect();
        let spec_result = u64::from(ip::reference(&data));
        let model_result = eval_model(
            &model,
            &[Value::byte_list(data.iter().copied())],
            &mut World::default(),
        )?
        .as_word()
        .expect("scalar result");
        assert_eq!(spec_result, model_result, "trial {trial}");
    }
    println!("  model ≍ RFC 1071 on 200 random packets ✓\n");

    // Phase 2: relational compilation + certification.
    let dbs = standard_dbs();
    let compiled = ip::compiled()?;
    let report = check(&compiled, &dbs)?;
    println!(
        "compiled `ip` to {} Bedrock2 statements ({} lemma applications, {} side conditions; \
         checker ran {} vectors)\n",
        compiled.function.statement_count(),
        compiled.stats.lemma_applications,
        compiled.derivation.side_cond_count,
        report.vectors_run,
    );
    println!("== generated C ==\n{}", cprint::function_to_c(&compiled.function));

    // Phase 3: checksum a concrete packet with the generated code.
    // (The RFC 1071 §3 worked example.)
    let packet = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
    let mut program = Program::new();
    program.insert(compiled.function.clone());
    let interp = Interpreter::new(&program);
    let call = concretize(&ip::spec(), &compiled.model.params, &[Value::byte_list(packet)])
        .map_err(std::io::Error::other)?;
    let mut state = ExecState::new(call.mem);
    let rets = interp.call("ip", &call.args, &mut state, &mut NoExternals, 1_000_000)?;
    println!("checksum({packet:02x?}) = {:#06x}", rets[0]);
    assert_eq!(rets[0], u64::from(ip::reference(&packet)));
    Ok(())
}
