//! The full pipeline down to assembly: functional model → relational
//! compilation → Bedrock2 → RV64 → simulated execution.
//!
//! "The program can be further compiled using Bedrock2's verified compiler
//! (with support for linking against separately compiled … fragments of
//! RISC-V machine code as needed), or it can be pretty-printed to C" —
//! §3.2. This example takes the first route on the `ip` checksum.
//!
//! Run with `cargo run --example riscv_pipeline`.

use rupicola::bedrock::rv::listing;
use rupicola::bedrock::rv_compile::{compile_function, run_function};
use rupicola::bedrock::Memory;
use rupicola::core::check::check;
use rupicola::ext::standard_dbs;
use rupicola::programs::ip;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the model and certify the Bedrock2 level.
    let compiled = ip::compiled()?;
    check(&compiled, &standard_dbs())?;
    println!(
        "`ip` certified at the Bedrock2 level: {} statements, {} side conditions\n",
        compiled.function.statement_count(),
        compiled.derivation.side_cond_count
    );

    // 2. Lower to RV64.
    let artifact = compile_function(&compiled.function).map_err(std::io::Error::other)?;
    println!(
        "== RV64 assembly ({} instructions; locals frame: {:?}) ==",
        artifact.asm.iter().filter(|a| !matches!(a, rupicola::bedrock::rv::Asm::Label(_))).count(),
        artifact.locals
    );
    println!("{}", listing(&artifact.asm));

    // 3. Execute in the ISA simulator and compare with the reference.
    let packet = [0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                  0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7];
    let mut mem = Memory::new();
    let p = mem.alloc(packet.to_vec());
    let rets = run_function(&artifact, &mut mem, &[p, packet.len() as u64], 1_000_000)
        .map_err(std::io::Error::other)?;
    println!("checksum(IPv4 header) = {:#06x}", rets[0]);
    assert_eq!(rets[0], u64::from(ip::reference(&packet)));
    // The classic worked example: this header checksums to 0xb861.
    assert_eq!(rets[0], 0xb861);
    println!("matches the RFC 1071 worked example (0xb861) ✓");
    Ok(())
}
