//! Section 2, interactively: relational compilation on the pedagogical
//! arithmetic-language → stack-machine pair.
//!
//! Run with `cargo run --example stack_machine`.

use rupicola::stackm::{
    compile, derive, equiv, run,
    shallow::{derive_shallow, fact_add, fact_lit, validate, Fact, G},
    S, T, TOp,
};

fn show(t: &[TOp]) -> String {
    t.iter()
        .map(|op| match op {
            TOp::Push(z) => format!("Push {z}"),
            TOp::PopAdd => "PopAdd".to_string(),
        })
        .collect::<Vec<_>>()
        .join("; ")
}

fn main() {
    // §2.1: the traditional verified compiler StoT on s7 = 3 + 4.
    let s7 = S::add(S::int(3), S::int(4));
    let t7 = compile(&s7);
    println!("== §2.1 functional compiler ==");
    println!("compile({s7}) = [{}]", show(&t7));
    println!("σ_T(t7, []) = {:?}  (σ_S(s7) = {})", run(&t7, vec![]), s7.eval());
    assert!(equiv(&t7, &s7));

    // §2.2: the same compiler as proof search over the relation ℜ. The
    // derivation is the proof tree; its target is the existential witness.
    println!("\n== §2.2 relational compilation (proof search over ℜ) ==");
    let d = derive(&s7);
    println!("derivation for {s7}:");
    println!("  StoT_RAdd");
    println!("  ├─ StoT_RInt 3");
    println!("  └─ StoT_RInt 4");
    println!("witness: [{}]", show(&d.target()));
    println!("StoT_rel_ok re-check: {}", d.validate());
    assert_eq!(d.target(), t7);

    // §2.4: shallow embedding — hints compile host-level expressions.
    println!("\n== §2.4 shallow embedding with hint databases ==");
    let hints: &[Fact] = &[fact_lit, fact_add];
    let g = G::plus(G::plus(G::lit(1), G::lit(2)), G::lit(4));
    let t = derive_shallow(hints, &g).expect("hints cover the program");
    println!("t ≈ (1 + 2) + 4   ⟹   t = [{}]", show(&t));
    assert!(validate(&t, &g));

    // §2.3: extensibility — a user fact folds literal sums at compile time,
    // changing the generated code without touching the other facts.
    println!("\n== §2.3 user extension: constant folding ==");
    fn fact_fold(g: &G, _rec: &dyn Fn(&G) -> Option<T>) -> Option<T> {
        match g {
            G::Plus(a, b) => match (a.as_ref(), b.as_ref()) {
                (G::Lit(x), G::Lit(y)) => Some(vec![TOp::Push(x.wrapping_add(*y))]),
                _ => None,
            },
            G::Lit(_) => None,
        }
    }
    let extended: &[Fact] = &[fact_fold, fact_lit, fact_add];
    let t2 = derive_shallow(extended, &g).expect("still covered");
    println!("with fold hint: t = [{}]", show(&t2));
    assert!(validate(&t2, &g));
    assert!(t2.len() < t.len(), "the user fact shortened the program");

    // And incompleteness, the price of relational compilation (§2): an
    // empty hint database is a compiler for the empty language.
    println!("\n== incompleteness ==");
    println!(
        "derive_shallow([], 1 + 2) = {:?}  (no hints, no compiler)",
        derive_shallow(&[], &G::plus(G::lit(1), G::lit(2)))
    );
}
