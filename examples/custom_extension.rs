//! User-facing extensibility: adding a new operation to the compiler.
//!
//! The §4.1.1 experience: a user wants a saturating increment `sat_inc`
//! in their models. The recipe is (1) register the operation's semantics,
//! (2) plug an unfolding hint (or a bespoke lemma) into the hint
//! databases, (3) compile — and when step 2 is skipped, the compiler does
//! not guess: it prints the residual goal from which "the shape of missing
//! lemmas" can be read off.
//!
//! Run with `cargo run --example custom_extension`.

use rupicola::core::check::{check_with, CheckConfig};
use rupicola::core::fnspec::{ArgSpec, FnSpec, RetSpec};
use rupicola::ext::standard_dbs;
use rupicola::ext::unfold::UnfoldExpr;
use rupicola::lang::dsl::*;
use rupicola::lang::{Model, Value};
use rupicola::sep::ScalarKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A model using an operation the standard compiler has never heard of.
    let model = Model::new(
        "bump",
        ["x"],
        let_n("y", extern_op("sat_inc", vec![var("x")]), var("y")),
    );
    let spec = FnSpec::new(
        "bump",
        vec![ArgSpec::Scalar { name: "x".into(), param: "x".into(), kind: ScalarKind::Word }],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    );

    // Step 0: without an extension, compilation stops at a residual goal.
    let plain = standard_dbs();
    match rupicola::core::compile(&model, &spec, &plain) {
        Err(e) => println!("== without the extension, the compiler asks for guidance ==\n{e}\n"),
        Ok(_) => unreachable!("sat_inc is not in the standard databases"),
    }

    // Step 1: the operation's semantics (used by evaluation & validation).
    let mut config = CheckConfig::default();
    config.externs.register_fn("sat_inc", 1, |args| {
        let x = args[0].as_word().unwrap_or(0);
        Ok(Value::Word(x.saturating_add(1)))
    });

    // Step 2: the compilation hint — a branchless unfolding:
    //   sat_inc x = x + (x < MAX)   (adds 1 except at the top, where +0).
    let mut dbs = standard_dbs();
    dbs.register_expr(UnfoldExpr::new("sat_inc", |args| {
        let x = args[0].clone();
        word_add(
            x.clone(),
            word_of_bool(word_ltu(x, word_lit(u64::MAX))),
        )
    }));

    // Step 3: compile and validate.
    let compiled = rupicola::core::compile(&model, &spec, &dbs)?;
    let report = check_with(&compiled, &dbs, &config)?;
    println!(
        "== with the extension ==\nderivation:\n{}\nchecked on {} vectors ✓\n",
        compiled.derivation, report.vectors_run
    );
    println!(
        "generated C:\n{}",
        rupicola::bedrock::cprint::function_to_c(&compiled.function)
    );

    // A *wrong* unfolding does not certify: the checker rejects it.
    let mut wrong = standard_dbs();
    wrong.register_expr(UnfoldExpr::new("sat_inc", |args| {
        word_add(args[0].clone(), word_lit(2)) // off by one: not an increment
    }));
    let miscompiled = rupicola::core::compile(&model, &spec, &wrong)?;
    let err = check_with(&miscompiled, &wrong, &config)
        .expect_err("the checker must reject the wrong unfolding");
    println!("== a wrong extension is caught by the checker ==\n{err}");
    Ok(())
}
