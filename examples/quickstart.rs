//! Quickstart: the paper's §3.2 walkthrough on `upstr`.
//!
//! Defines the annotated functional model, states the ABI, runs the
//! relational compiler, shows the derivation witness and the generated
//! Bedrock2/C code, validates the result with the trusted checker, and
//! runs the generated program in the Bedrock2 interpreter.
//!
//! Run with `cargo run --example quickstart`.

use rupicola::bedrock::{cprint, ExecState, Interpreter, NoExternals, Program};
use rupicola::core::check::check;
use rupicola::core::fnspec::{concretize, ArgSpec, FnSpec, RetSpec};
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{ElemKind, Model, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The lowered functional model (§3.2):
    //      upstr' := λ s ⇒ let/n s := ListArray.map toupper' s in s
    //    with the branchless toupper' plugged in as a rewrite.
    let toupper = |b: rupicola::lang::Expr| {
        let is_lower = byte_ltu(byte_sub(b.clone(), byte_lit(b'a')), byte_lit(26));
        byte_xor(b, byte_of_word(word_shl(word_of_bool(is_lower), word_lit(5))))
    };
    let model = Model::new(
        "upstr",
        ["s"],
        let_n("s", array_map_b("b", toupper(var("b")), var("s")), var("s")),
    );
    println!("== functional model ==\n{}\n", model.body);

    // 2. The ABI (the fnspec! of §3.2): a pointer p and a length wlen such
    //    that wlen = length s and (array p s ∗ r) m; ensures the same
    //    memory holds upstr' s.
    let spec = FnSpec::new(
        "upstr",
        vec![
            ArgSpec::ArrayPtr { name: "s".into(), param: "s".into(), elem: ElemKind::Byte },
            ArgSpec::LenOf { name: "len".into(), param: "s".into(), elem: ElemKind::Byte },
        ],
        vec![RetSpec::InPlace { param: "s".into() }],
    );

    // 3. Derive! (The `Derive upstr_br2fn SuchThat … Proof. compile. Qed.`
    //    of the paper.)
    let dbs = standard_dbs();
    let compiled = rupicola::core::compile(&model, &spec, &dbs)?;
    println!("== derivation (one node per lemma application) ==");
    println!("{}", compiled.derivation);

    // 4. The generated Bedrock2 program, pretty-printed to C.
    println!("== generated C ==\n{}", cprint::function_to_c(&compiled.function));

    // 5. The trusted checker re-validates the witness: structurally,
    //    differentially, and with loop invariants evaluated at loop heads.
    let report = check(&compiled, &dbs)?;
    println!(
        "== checked == {} vectors, {} side conditions re-solved, {} invariant checks\n",
        report.vectors_run, report.side_conds_rechecked, report.invariant_checks
    );

    // 6. Run the generated program on a concrete string.
    let mut program = Program::new();
    program.insert(compiled.function.clone());
    let interp = Interpreter::new(&program);
    let input = Value::byte_list(*b"hello, Rupicola-rs!");
    let call = concretize(&spec, &compiled.model.params, &[input]).map_err(std::io::Error::other)?;
    let mut state = ExecState::new(call.mem);
    interp.call("upstr", &call.args, &mut state, &mut NoExternals, 1_000_000)?;
    let out = state.mem.region(call.args[0]).expect("region");
    println!("upstr(\"hello, Rupicola-rs!\") = {:?}", String::from_utf8_lossy(out));
    assert_eq!(out, b"HELLO, RUPICOLA-RS!");
    Ok(())
}
