//! Extensional effects: compiling writer- and io-monad models (§3.4.1).
//!
//! A pure specification is implemented as a monadic functional model and
//! compiled to Bedrock2 `interact` statements; the event trace of the
//! generated program mirrors the source's effect log, which the checker
//! verifies (via the monad's postcondition lift — see `rupicola-monads`).
//!
//! Run with `cargo run --example monadic_io`.

use rupicola::bedrock::interp::QueueIo;
use rupicola::bedrock::{cprint, ExecState, Interpreter, Memory, Program};
use rupicola::core::check::check;
use rupicola::core::fnspec::{FnSpec, RetSpec, TraceSpec};
use rupicola::core::MonadCtx;
use rupicola::ext::standard_dbs;
use rupicola::lang::dsl::*;
use rupicola::lang::{Model, MonadKind};
use rupicola::sep::ScalarKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An io-monad model: read two words from the environment, write their
    // running sums, return the total.
    //   let/n! a := read() in
    //   let/n! b := read() in
    //   let/n  s := a + b   in      (* pure binding inside the monad *)
    //   let/n! _ := write(a) in
    //   let/n! _ := write(s) in
    //   ret s
    let model = Model::new(
        "sum2",
        Vec::<String>::new(),
        bind(
            MonadKind::Io,
            "a",
            io_read(),
            bind(
                MonadKind::Io,
                "b",
                io_read(),
                bind(
                    MonadKind::Io,
                    "s",
                    ret(MonadKind::Io, word_add(var("a"), var("b"))),
                    bind(
                        MonadKind::Io,
                        "_",
                        io_write(var("a")),
                        bind(
                            MonadKind::Io,
                            "_",
                            io_write(var("s")),
                            ret(MonadKind::Io, var("s")),
                        ),
                    ),
                ),
            ),
        ),
    );
    let spec = FnSpec::new(
        "sum2",
        vec![],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
    .with_monad(MonadCtx::Monadic(MonadKind::Io))
    .with_trace(TraceSpec::MirrorsSource);

    let dbs = standard_dbs();
    let compiled = rupicola::core::compile(&model, &spec, &dbs)?;
    check(&compiled, &dbs)?;
    println!("== generated C (io maps to interact) ==\n{}", cprint::function_to_c(&compiled.function));

    // Run against a concrete environment.
    let mut program = Program::new();
    program.insert(compiled.function.clone());
    let interp = Interpreter::new(&program);
    let mut state = ExecState::new(Memory::new());
    let mut env = QueueIo::new([40, 2]);
    let rets = interp.call("sum2", &[], &mut state, &mut env, 10_000)?;
    println!("inputs [40, 2] → returned {}, trace:", rets[0]);
    for ev in &state.trace {
        println!("  {} args={:?} rets={:?}", ev.action, ev.args, ev.rets);
    }
    assert_eq!(rets, vec![42]);

    // A writer-monad model: emit the squares of 1..3 (the §4.1.1 shape).
    let wmodel = Model::new(
        "squares",
        Vec::<String>::new(),
        bind(
            MonadKind::Writer,
            "_",
            writer_tell(word_lit(1)),
            bind(
                MonadKind::Writer,
                "_",
                writer_tell(word_lit(4)),
                bind(
                    MonadKind::Writer,
                    "_",
                    writer_tell(word_lit(9)),
                    ret(MonadKind::Writer, word_lit(3)),
                ),
            ),
        ),
    );
    let wspec = FnSpec::new(
        "squares",
        vec![],
        vec![RetSpec::Scalar { name: "out".into(), kind: ScalarKind::Word }],
    )
    .with_monad(MonadCtx::Monadic(MonadKind::Writer))
    .with_trace(TraceSpec::MirrorsSource);
    let wcompiled = rupicola::core::compile(&wmodel, &wspec, &dbs)?;
    check(&wcompiled, &dbs)?;
    let mut program2 = Program::new();
    program2.insert(wcompiled.function.clone());
    let interp2 = Interpreter::new(&program2);
    let mut state2 = ExecState::new(Memory::new());
    let mut env2 = QueueIo::default();
    interp2.call("squares", &[], &mut state2, &mut env2, 10_000)?;
    let output: Vec<u64> = state2
        .trace
        .iter()
        .filter(|e| e.action == "writer_tell")
        .filter_map(|e| e.args.first().copied())
        .collect();
    println!("\nwriter output of `squares`: {output:?}");
    assert_eq!(output, vec![1, 4, 9]);
    Ok(())
}
