//! The inline-table example: in-place DNA complement (`fasta`).
//!
//! Demonstrates §4.1.2's inline tables: the 256-entry complement table is
//! a `const` array local to the generated function; at the source level
//! `InlineTable.get` is just `nth`.
//!
//! Run with `cargo run --example dna_complement`.

use rupicola::bedrock::{cprint, ExecState, Interpreter, NoExternals, Program};
use rupicola::core::check::check;
use rupicola::core::fnspec::concretize;
use rupicola::ext::standard_dbs;
use rupicola::lang::Value;
use rupicola::programs::fasta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = fasta::compiled()?;
    let dbs = standard_dbs();
    check(&compiled, &dbs)?;

    let c = cprint::function_to_c(&compiled.function);
    // Show the head of the generated function (the table is 256 entries).
    let head: String = c.lines().take(4).collect::<Vec<_>>().join("\n");
    println!("== generated C (head; inline table elided) ==\n{head}\n  …\n");

    let sequence = b"ATGGCGTACGGATTACACGT";
    let mut program = Program::new();
    program.insert(compiled.function.clone());
    let interp = Interpreter::new(&program);
    let call = concretize(
        &fasta::spec(),
        &compiled.model.params,
        &[Value::byte_list(*sequence)],
    )
    .map_err(std::io::Error::other)?;
    let mut state = ExecState::new(call.mem);
    interp.call("fasta", &call.args, &mut state, &mut NoExternals, 1_000_000)?;
    let out = state.mem.region(call.args[0]).expect("region").to_vec();
    println!("sequence:   {}", String::from_utf8_lossy(sequence));
    println!("complement: {}", String::from_utf8_lossy(&out));
    assert_eq!(out, fasta::reference(sequence));

    // Complementing twice is the identity — run the generated code again.
    let mut state2 = ExecState::new(state.mem);
    interp.call("fasta", &call.args, &mut state2, &mut NoExternals, 1_000_000)?;
    assert_eq!(state2.mem.region(call.args[0]).expect("region"), sequence);
    println!("double complement is the identity ✓");
    Ok(())
}
